/**
 * @file
 * Emit a full Alberta-workloads directory tree to disk: for every
 * benchmark, one directory per workload holding its generated input
 * artifacts plus a MANIFEST recording seed and parameters — the
 * distributable form of the suite.
 *
 *   ./generate_suite [output-dir] [benchmark]
 *   ./generate_suite /tmp/alberta-workloads 505.mcf_r
 */
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/suite.h"

int
main(int argc, char **argv)
{
    using namespace alberta;
    namespace fs = std::filesystem;

    const fs::path root =
        argc > 1 ? argv[1] : "alberta-workloads-out";
    const std::string only = argc > 2 ? argv[2] : "";

    std::size_t workloads = 0, files = 0, bytes = 0;
    for (const auto &benchmark : core::allBenchmarks()) {
        if (!only.empty() && benchmark->name() != only)
            continue;
        const fs::path benchDir = root / benchmark->name();
        for (const auto &workload : benchmark->workloads()) {
            const fs::path dir = benchDir / workload.name;
            fs::create_directories(dir);
            std::ofstream manifest(dir / "MANIFEST");
            manifest << "benchmark " << benchmark->name() << "\n";
            manifest << "workload " << workload.name << "\n";
            manifest << "seed " << workload.seed << "\n";
            for (const auto &[key, value] :
                 workload.params.entries())
                manifest << "param " << key << " = " << value
                         << "\n";
            for (const auto &[name, content] : workload.files) {
                std::ofstream out(dir / name, std::ios::binary);
                out.write(content.data(),
                          static_cast<std::streamsize>(
                              content.size()));
                ++files;
                bytes += content.size();
            }
            ++workloads;
        }
        std::cout << "wrote " << benchmark->name() << " ("
                  << benchmark->workloads().size()
                  << " workloads)\n";
    }
    std::cout << "\ntotal: " << workloads << " workloads, " << files
              << " input files, " << bytes / 1024 << " KiB under "
              << root << "\n";
    return 0;
}
