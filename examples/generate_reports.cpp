/**
 * @file
 * Produce the per-benchmark Markdown reports "distributed with the
 * Alberta Workloads": one file per benchmark with per-workload
 * measurements, coverage matrices, and the Section V summaries.
 *
 *   ./generate_reports [output-dir] [benchmark]
 *
 * The full run goes through the suite scheduler: every model run
 * across all 15 benchmarks is one longest-first Executor batch
 * (ALBERTA_JOBS controls the pool size, ALBERTA_CACHE_DIR persists
 * results across invocations); reports are emitted in Table II order
 * regardless.
 */
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/report.h"

int
main(int argc, char **argv)
{
    using namespace alberta;
    namespace fs = std::filesystem;

    const fs::path root = argc > 1 ? argv[1] : "alberta-reports";
    const std::string only = argc > 2 ? argv[2] : "";
    fs::create_directories(root);

    runtime::Engine engine = runtime::Engine::Builder()
                                 .cacheDirOption("", false)
                                 .build();
    const core::ReportWriter writer(core::ReportFormat::Markdown,
                                    &engine);
    core::RunRequest request;
    request.refrateRepetitions = 3;

    const auto writeReport = [&](const core::Characterization &c) {
        const fs::path file = root / (c.benchmark + ".md");
        std::ofstream out(file);
        out << writer.report(c);
        std::cout << "wrote " << file.string() << "\n";
    };

    if (!only.empty()) {
        const auto benchmark = core::makeBenchmark(only);
        writeReport(core::characterize(*benchmark, request, &engine));
        return 0;
    }
    for (const auto &c : core::characterizeTable2(request, &engine))
        writeReport(c);
    return 0;
}
