/**
 * @file
 * Produce the per-benchmark Markdown reports "distributed with the
 * Alberta Workloads": one file per benchmark with per-workload
 * measurements, coverage matrices, and the Section V summaries.
 *
 *   ./generate_reports [output-dir] [benchmark]
 *
 * Model runs execute on a shared worker pool (ALBERTA_JOBS controls
 * the size); reports are emitted in Table II order regardless.
 */
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/report.h"

int
main(int argc, char **argv)
{
    using namespace alberta;
    namespace fs = std::filesystem;

    const fs::path root = argc > 1 ? argv[1] : "alberta-reports";
    const std::string only = argc > 2 ? argv[2] : "";
    fs::create_directories(root);

    runtime::Engine engine;
    const core::ReportWriter writer(core::ReportFormat::Markdown,
                                    &engine);
    for (const auto &name : core::table2Names()) {
        if (!only.empty() && name != only)
            continue;
        const auto benchmark = core::makeBenchmark(name);
        core::CharacterizeOptions options;
        options.refrateRepetitions = 3;
        options.engine = &engine;
        const core::Characterization c =
            core::characterize(*benchmark, options);
        const fs::path file = root / (name + ".md");
        std::ofstream out(file);
        out << writer.report(c);
        std::cout << "wrote " << file.string() << "\n";
    }
    return 0;
}
