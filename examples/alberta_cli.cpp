/**
 * @file
 * `alberta` — the suite's command-line front end. Subcommands:
 *
 *   alberta_cli list                      all benchmarks + areas
 *   alberta_cli workloads <benchmark>     workload names + params
 *   alberta_cli run <benchmark> <workload> [reps]
 *   alberta_cli characterize <benchmark>  Table II row for one program
 *   alberta_cli suite                     full Table II through the
 *                                         suite scheduler
 *   alberta_cli report <benchmark>        behaviour report to stdout
 *   alberta_cli cluster <benchmark> <k>   Berube-style representatives
 *
 * Global flags (before or after the subcommand):
 *
 *   --jobs N        worker threads for model runs (default:
 *                   ALBERTA_JOBS when set, else hardware concurrency)
 *   --segments K    checkpoint-and-splice segment parallelism for
 *                   model runs: "auto" (default) segments long
 *                   workloads by their uop estimate, 1 forces every
 *                   run exact, K > 1 forces K segments. Spliced
 *                   top-down fractions are within 1e-3 of exact
 *                   (pinned by test); checksums and uop counts are
 *                   exact either way.
 *   --batched       route unsegmented model runs through the
 *                   trace-backed batched-exact path (capture once,
 *                   replay through the block-batched kernel). Outputs
 *                   are bit-identical to direct runs and share their
 *                   cache keys; timed refrate repetitions still
 *                   execute direct.
 *   --format FMT    output format: text (default), md, or json
 *   --trace FILE    write a JSON-lines span trace of the run session
 *   --cache-dir DIR persist model results (and the scheduler's cost
 *                   ledger) under DIR so later *processes* start warm
 *                   (default: ALBERTA_CACHE_DIR when set, else no
 *                   persistence)
 *   --metrics       print the end-of-run metrics table to stderr
 *   --stats         print the one-line executor/cache/scheduler
 *                   summary to stderr on exit
 *
 * All characterizing commands share one runtime::Engine: the worker
 * pool, result cache (optionally disk-backed), stats block, and
 * observability layer for the whole invocation.
 */
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/cluster.h"
#include "core/report.h"
#include "core/suite.h"
#include "support/check.h"
#include "support/table.h"
#include "support/text.h"
#include "topdown/machine.h"

namespace {

using namespace alberta;

int
cmdList()
{
    support::Table table({"Benchmark", "Area", "#workloads"});
    for (const auto &bm : core::allBenchmarks()) {
        table.addRow({bm->name(), bm->area(),
                      std::to_string(bm->workloads().size())});
    }
    table.print(std::cout);
    return 0;
}

int
cmdWorkloads(const std::string &name)
{
    const auto bm = core::makeBenchmark(name);
    support::Table table({"Workload", "seed", "parameters"});
    for (const auto &w : bm->workloads()) {
        std::string params;
        for (const auto &[key, value] : w.params.entries()) {
            if (!params.empty())
                params += ", ";
            params += key + "=" + value;
        }
        table.addRow({w.name, std::to_string(w.seed), params});
    }
    table.print(std::cout);
    return 0;
}

int
cmdRun(const std::string &name, const std::string &workloadName,
       int reps)
{
    const auto bm = core::makeBenchmark(name);
    const auto workload = runtime::findWorkload(*bm, workloadName);
    const auto agg = runtime::runRepeated(*bm, workload, reps);
    const auto &m = agg.representative;
    std::cout << bm->name() << " / " << workload.name << "\n";
    std::cout << "  time      : "
              << support::formatFixed(agg.meanSeconds, 4)
              << " s (mean of " << reps << ")\n";
    std::cout << "  uops      : " << m.retiredOps << "\n";
    std::cout << "  top-down  : f="
              << support::formatPercent(m.topdown.frontend, 1)
              << "% b=" << support::formatPercent(m.topdown.backend, 1)
              << "% s=" << support::formatPercent(m.topdown.badspec, 1)
              << "% r="
              << support::formatPercent(m.topdown.retiring, 1)
              << "%\n";
    std::cout << "  checksum  : " << m.checksum << "\n";
    return 0;
}

int
cmdCharacterize(const std::string &name, runtime::Engine &engine,
                const core::ReportWriter &writer, int segments,
                bool batched)
{
    const auto bm = core::makeBenchmark(name);
    core::CharacterizeOptions options;
    options.engine = &engine;
    options.segments = segments;
    options.batched = batched;
    const auto c = core::characterize(*bm, options);
    std::cout << writer.table2({c});
    return 0;
}

int
cmdSuite(runtime::Engine &engine, const core::ReportWriter &writer,
         int segments, bool batched)
{
    core::CharacterizeOptions options;
    options.engine = &engine;
    options.segments = segments;
    options.batched = batched;
    const auto results = core::characterizeTable2(options);
    std::cout << writer.table2(results);
    return 0;
}

int
cmdReport(const std::string &name, runtime::Engine &engine,
          const core::ReportWriter &writer, int segments,
          bool batched)
{
    const auto bm = core::makeBenchmark(name);
    core::CharacterizeOptions options;
    options.engine = &engine;
    options.segments = segments;
    options.batched = batched;
    const auto c = core::characterize(*bm, options);
    std::cout << writer.report(c);
    return 0;
}

int
cmdCluster(const std::string &name, std::size_t k,
           runtime::Engine &engine)
{
    const auto bm = core::makeBenchmark(name);
    core::CharacterizeOptions options;
    options.engine = &engine;
    options.refrateRepetitions = 1;
    const auto c = core::characterize(*bm, options);
    const auto clustering = core::clusterWorkloads(c, k);
    support::Table table({"cluster", "representative", "members"});
    for (std::size_t cl = 0; cl < clustering.medoids.size(); ++cl) {
        std::string members;
        for (std::size_t p = 0; p < c.workloadNames.size(); ++p) {
            if (clustering.assignment[p] == cl) {
                if (!members.empty())
                    members += ' ';
                members += c.workloadNames[p];
            }
        }
        table.addRow({std::to_string(cl + 1),
                      c.workloadNames[clustering.medoids[cl]],
                      members});
    }
    table.print(std::cout);
    return 0;
}

void
printStats(runtime::Engine &engine)
{
    const runtime::ExecutorStats &stats = engine.stats();
    std::cerr << "[stats] jobs=" << engine.jobs()
              << " tasks=" << stats.tasksRun
              << " queue=" << stats.queueSeconds << "s"
              << " run=" << stats.runSeconds << "s"
              << " cache_hits=" << stats.cacheHits
              << " cache_misses=" << stats.cacheMisses
              << " uops=" << stats.uopsRetired << " uops_per_sec="
              << support::formatFixed(stats.uopsPerSecond(), 0)
              << "\n";
    auto &metrics = engine.metrics();
    std::cerr << "[stats] scheduler_dispatched="
              << metrics.counter("scheduler.dispatched").value()
              << " scheduler_steals_avoided="
              << metrics.counter("scheduler.steals_avoided").value()
              << " scheduler_waves="
              << metrics.counter("scheduler.waves").value()
              << " ledger_entries=" << engine.ledger().size() << "\n";
    // Per-pass replay throughput: the record pass appends to the
    // trace while the benchmark computes; the replay pass is the
    // model alone, so its uops/s isolates the kernel's speed.
    const auto perPass = [&](const char *label, const char *uopsKey,
                             const char *secondsKey) {
        const std::uint64_t uops = metrics.counter(uopsKey).value();
        const double seconds =
            metrics.histogram(secondsKey).sum();
        if (uops == 0)
            return;
        std::cerr << "[stats] " << label << "_uops=" << uops
                  << " " << label << "_seconds="
                  << support::formatFixed(seconds, 3) << " " << label
                  << "_uops_per_sec="
                  << support::formatFixed(
                         seconds > 0.0
                             ? static_cast<double>(uops) / seconds
                             : 0.0,
                         0)
                  << "\n";
    };
    perPass("segment_record", "segment.record_uops",
            "segment.record_seconds");
    perPass("segment_replay", "segment.replay_uops",
            "segment.replay_seconds");
    const topdown::BatchCounters &batch = topdown::batchCounters();
    std::cerr << "[stats] batch_blocks=" << batch.blocks.load()
              << " batch_fallbacks=" << batch.fallbackBlocks.load()
              << "\n";
    if (const runtime::PersistentCache *disk = engine.disk()) {
        std::cerr << "[stats] cache_dir=" << disk->dir()
                  << " disk_hits=" << disk->hits()
                  << " disk_misses=" << disk->misses()
                  << " disk_corrupt=" << disk->corrupt()
                  << " disk_writes=" << disk->writes() << "\n";
    }
}

void
usage()
{
    std::cerr
        << "usage: alberta_cli [--jobs N] [--segments {auto,K}]\n"
           "                   [--batched]\n"
           "                   [--format {text,md,json}]\n"
           "                   [--trace FILE] [--cache-dir DIR]\n"
           "                   [--metrics] [--stats] <command>\n"
           "  alberta_cli list\n"
           "  alberta_cli workloads <benchmark>\n"
           "  alberta_cli run <benchmark> <workload> [reps]\n"
           "  alberta_cli characterize <benchmark>\n"
           "  alberta_cli suite\n"
           "  alberta_cli report <benchmark>\n"
           "  alberta_cli cluster <benchmark> <k>\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = 0;     // 0 = ALBERTA_JOBS / hardware concurrency
    int segments = 0; // 0 = auto (segment by uop estimate)
    bool batched = false;
    bool wantStats = false;
    bool wantMetrics = false;
    std::string tracePath;
    std::string cacheDir;
    if (const char *env = std::getenv("ALBERTA_CACHE_DIR"))
        cacheDir = env;
    core::ReportFormat format = core::ReportFormat::Text;
    std::vector<std::string> args;
    try {
        for (int i = 1; i < argc; ++i) {
            const auto flagArg = [&](const char *flag) {
                if (i + 1 >= argc)
                    support::fatal("alberta_cli: ", flag,
                                   " requires an argument");
                return argv[++i];
            };
            if (std::strcmp(argv[i], "--jobs") == 0)
                jobs = static_cast<int>(support::parsePositiveInt(
                    flagArg("--jobs"), "--jobs", 1024));
            else if (std::strcmp(argv[i], "--segments") == 0) {
                const char *value = flagArg("--segments");
                segments =
                    std::strcmp(value, "auto") == 0
                        ? 0
                        : static_cast<int>(support::parsePositiveInt(
                              value, "--segments", 1024));
            } else if (std::strcmp(argv[i], "--batched") == 0)
                batched = true;
            else if (std::strcmp(argv[i], "--format") == 0)
                format =
                    core::parseReportFormat(flagArg("--format"));
            else if (std::strcmp(argv[i], "--trace") == 0)
                tracePath = flagArg("--trace");
            else if (std::strcmp(argv[i], "--cache-dir") == 0) {
                cacheDir = flagArg("--cache-dir");
                if (cacheDir.empty())
                    support::fatal("alberta_cli: --cache-dir "
                                   "requires a non-empty directory");
            } else if (std::strcmp(argv[i], "--metrics") == 0)
                wantMetrics = true;
            else if (std::strcmp(argv[i], "--stats") == 0)
                wantStats = true;
            else
                args.emplace_back(argv[i]);
        }
    } catch (const support::FatalError &e) {
        std::cerr << "alberta_cli: " << e.what() << "\n";
        return 2;
    }
    if (args.empty()) {
        usage();
        return 2;
    }
    const std::string &command = args[0];

    int rc = 2;
    try {
        // Engine::Builder::build raises FatalError for a cache
        // directory that cannot be created or is not a directory; the
        // catch below turns that into a usage error.
        runtime::Engine engine = runtime::Engine::Builder()
                                     .jobs(jobs)
                                     .traceFile(tracePath)
                                     .cacheDir(cacheDir)
                                     .build();
        const core::ReportWriter writer(format, &engine);
        if (command == "list")
            rc = cmdList();
        else if (command == "workloads" && args.size() >= 2)
            rc = cmdWorkloads(args[1]);
        else if (command == "run" && args.size() >= 3)
            rc = cmdRun(args[1], args[2],
                        args.size() >= 4
                            ? static_cast<int>(
                                  support::parsePositiveInt(
                                      args[3], "run repetitions",
                                      1000))
                            : 3);
        else if (command == "characterize" && args.size() >= 2)
            rc = cmdCharacterize(args[1], engine, writer, segments,
                                 batched);
        else if (command == "suite")
            rc = cmdSuite(engine, writer, segments, batched);
        else if (command == "report" && args.size() >= 2)
            rc = cmdReport(args[1], engine, writer, segments,
                           batched);
        else if (command == "cluster" && args.size() >= 3)
            rc = cmdCluster(args[1],
                            static_cast<std::size_t>(
                                support::parsePositiveInt(
                                    args[2], "cluster k", 1024)),
                            engine);
        else
            usage();

        if (wantMetrics)
            std::cerr << writer.metrics(engine.metricsSnapshot());
        if (wantStats)
            printStats(engine);
        engine.flushTrace();
    } catch (const support::FatalError &e) {
        // User error (bad argument, unknown benchmark/format/file).
        std::cerr << "alberta_cli: " << e.what() << "\n";
        rc = 2;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = 1;
    }
    return rc;
}
