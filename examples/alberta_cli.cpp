/**
 * @file
 * `alberta` — the suite's command-line front end. Subcommands:
 *
 *   alberta_cli list                      all benchmarks + areas
 *   alberta_cli workloads <benchmark>     workload names + params
 *   alberta_cli run <benchmark> <workload> [reps]
 *   alberta_cli characterize <benchmark>  Table II row for one program
 *   alberta_cli suite                     full Table II through the
 *                                         suite scheduler
 *   alberta_cli report <benchmark>        behaviour report to stdout
 *   alberta_cli cluster <benchmark> <k>   Berube-style representatives
 *
 * Flags (before or after the subcommand; see --help):
 *
 *   --jobs N        worker threads for model runs (default:
 *                   ALBERTA_JOBS when set, else hardware concurrency)
 *   --segments K    checkpoint-and-splice segment parallelism for
 *                   model runs: "auto" (default) segments long
 *                   workloads by their uop estimate, 1 forces every
 *                   run exact, K > 1 forces K segments. Spliced
 *                   top-down fractions are within 1e-3 of exact
 *                   (pinned by test); checksums and uop counts are
 *                   exact either way.
 *   --batched       route unsegmented model runs through the
 *                   trace-backed batched-exact path (capture once,
 *                   replay through the block-batched kernel). Outputs
 *                   are bit-identical to direct runs and share their
 *                   cache keys; timed refrate repetitions still
 *                   execute direct.
 *   --format FMT    output format: text (default), md, or json
 *   --trace FILE    write a JSON-lines span trace of the run session
 *   --cache-dir DIR persist model results (and the scheduler's cost
 *                   ledger) under DIR so later *processes* start warm
 *                   (default: ALBERTA_CACHE_DIR when set, else no
 *                   persistence)
 *   --metrics       print the end-of-run metrics table to stderr
 *   --stats         print the one-line executor/cache/scheduler
 *                   summary to stderr on exit
 *
 * The characterizing commands build one core::RunRequest — the same
 * serializable spec `alberta_serve` accepts over its socket — and
 * execute it through one shared runtime::Engine, so `--format json`
 * output here is byte-identical to the daemon's payload for the same
 * request and cache.
 */
#include <iostream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/report.h"
#include "core/request.h"
#include "core/suite.h"
#include "support/argparse.h"
#include "support/check.h"
#include "support/table.h"
#include "support/text.h"
#include "topdown/machine.h"

namespace {

using namespace alberta;

int
cmdList()
{
    support::Table table({"Benchmark", "Area", "#workloads"});
    for (const auto &bm : core::allBenchmarks()) {
        table.addRow({bm->name(), bm->area(),
                      std::to_string(bm->workloads().size())});
    }
    table.print(std::cout);
    return 0;
}

int
cmdWorkloads(const std::string &name)
{
    const auto bm = core::makeBenchmark(name);
    support::Table table({"Workload", "seed", "parameters"});
    for (const auto &w : bm->workloads()) {
        std::string params;
        for (const auto &[key, value] : w.params.entries()) {
            if (!params.empty())
                params += ", ";
            params += key + "=" + value;
        }
        table.addRow({w.name, std::to_string(w.seed), params});
    }
    table.print(std::cout);
    return 0;
}

int
cmdRun(const std::string &name, const std::string &workloadName,
       int reps)
{
    const auto bm = core::makeBenchmark(name);
    const auto workload = runtime::findWorkload(*bm, workloadName);
    const auto agg = runtime::runRepeated(*bm, workload, reps);
    const auto &m = agg.representative;
    std::cout << bm->name() << " / " << workload.name << "\n";
    std::cout << "  time      : "
              << support::formatFixed(agg.meanSeconds, 4)
              << " s (mean of " << reps << ")\n";
    std::cout << "  uops      : " << m.retiredOps << "\n";
    std::cout << "  top-down  : f="
              << support::formatPercent(m.topdown.frontend, 1)
              << "% b=" << support::formatPercent(m.topdown.backend, 1)
              << "% s=" << support::formatPercent(m.topdown.badspec, 1)
              << "% r="
              << support::formatPercent(m.topdown.retiring, 1)
              << "%\n";
    std::cout << "  checksum  : " << m.checksum << "\n";
    return 0;
}

/** characterize / suite / report: one RunRequest executed through the
 * shared engine. JSON output prints the deliverable payload verbatim
 * (the daemon serves the same bytes); text and Markdown render the
 * characterized rows through the session's ReportWriter. */
int
cmdRequest(core::RunRequest request, runtime::Engine &engine,
           const core::ReportWriter &writer,
           core::ReportFormat format)
{
    std::vector<core::Characterization> rows;
    const core::RunResult result =
        core::execute(request, engine, &rows);
    if (format == core::ReportFormat::Json) {
        std::cout << result.payload << '\n';
        return 0;
    }
    std::cout << (request.kind == "report" ? writer.report(rows[0])
                                           : writer.table2(rows));
    return 0;
}

int
cmdCluster(const std::string &name, std::size_t k,
           runtime::Engine &engine)
{
    const auto bm = core::makeBenchmark(name);
    core::RunRequest request;
    request.refrateRepetitions = 1;
    const auto c = core::characterize(*bm, request, &engine);
    const auto clustering = core::clusterWorkloads(c, k);
    support::Table table({"cluster", "representative", "members"});
    for (std::size_t cl = 0; cl < clustering.medoids.size(); ++cl) {
        std::string members;
        for (std::size_t p = 0; p < c.workloadNames.size(); ++p) {
            if (clustering.assignment[p] == cl) {
                if (!members.empty())
                    members += ' ';
                members += c.workloadNames[p];
            }
        }
        table.addRow({std::to_string(cl + 1),
                      c.workloadNames[clustering.medoids[cl]],
                      members});
    }
    table.print(std::cout);
    return 0;
}

void
printStats(runtime::Engine &engine)
{
    const runtime::ExecutorStats &stats = engine.stats();
    std::cerr << "[stats] jobs=" << engine.jobs()
              << " tasks=" << stats.tasksRun
              << " queue=" << stats.queueSeconds << "s"
              << " run=" << stats.runSeconds << "s"
              << " cache_hits=" << stats.cacheHits
              << " cache_misses=" << stats.cacheMisses
              << " uops=" << stats.uopsRetired << " uops_per_sec="
              << support::formatFixed(stats.uopsPerSecond(), 0)
              << "\n";
    auto &metrics = engine.metrics();
    std::cerr << "[stats] scheduler_dispatched="
              << metrics.counter("scheduler.dispatched").value()
              << " scheduler_steals_avoided="
              << metrics.counter("scheduler.steals_avoided").value()
              << " scheduler_waves="
              << metrics.counter("scheduler.waves").value()
              << " ledger_entries=" << engine.ledger().size() << "\n";
    // Per-pass replay throughput: the record pass appends to the
    // trace while the benchmark computes; the replay pass is the
    // model alone, so its uops/s isolates the kernel's speed.
    const auto perPass = [&](const char *label, const char *uopsKey,
                             const char *secondsKey) {
        const std::uint64_t uops = metrics.counter(uopsKey).value();
        const double seconds =
            metrics.histogram(secondsKey).sum();
        if (uops == 0)
            return;
        std::cerr << "[stats] " << label << "_uops=" << uops
                  << " " << label << "_seconds="
                  << support::formatFixed(seconds, 3) << " " << label
                  << "_uops_per_sec="
                  << support::formatFixed(
                         seconds > 0.0
                             ? static_cast<double>(uops) / seconds
                             : 0.0,
                         0)
                  << "\n";
    };
    perPass("segment_record", "segment.record_uops",
            "segment.record_seconds");
    perPass("segment_replay", "segment.replay_uops",
            "segment.replay_seconds");
    const topdown::BatchCounters &batch = topdown::batchCounters();
    std::cerr << "[stats] batch_blocks=" << batch.blocks.load()
              << " batch_fallbacks=" << batch.fallbackBlocks.load()
              << "\n";
    if (const runtime::PersistentCache *disk = engine.disk()) {
        std::cerr << "[stats] cache_dir=" << disk->dir()
                  << " disk_hits=" << disk->hits()
                  << " disk_misses=" << disk->misses()
                  << " disk_corrupt=" << disk->corrupt()
                  << " disk_writes=" << disk->writes() << "\n";
    }
}

constexpr const char *kUsageTail =
    "commands:\n"
    "  list                        all benchmarks + areas\n"
    "  workloads <benchmark>       workload names + params\n"
    "  run <benchmark> <workload> [reps]\n"
    "  characterize <benchmark>    Table II row for one program\n"
    "  suite                       full Table II (suite scheduler)\n"
    "  report <benchmark>          behaviour report to stdout\n"
    "  cluster <benchmark> <k>     representative workloads\n";

} // namespace

int
main(int argc, char **argv)
{
    int jobs = 0;     // 0 = ALBERTA_JOBS / hardware concurrency
    int segments = 0; // 0 = auto (segment by uop estimate)
    bool batched = false;
    bool wantStats = false;
    bool wantMetrics = false;
    std::string tracePath;
    std::string cacheDir;
    bool cacheDirGiven = false;
    core::ReportFormat format = core::ReportFormat::Text;

    support::ArgParser parser("alberta_cli", kUsageTail);
    parser
        .positiveInt("--jobs", "N",
                     "worker threads for model runs (default: "
                     "ALBERTA_JOBS, else hardware concurrency)",
                     &jobs)
        .custom("--segments", "{auto,K}",
                "segment parallelism: auto (default), 1 = exact, "
                "K > 1 = force K segments",
                [&](const std::string &value) {
                    segments =
                        value == "auto"
                            ? 0
                            : static_cast<int>(
                                  support::parsePositiveInt(
                                      value, "--segments", 1024));
                })
        .flag("--batched",
              "trace-backed batched-exact model runs (bit-identical)",
              &batched)
        .custom("--format", "{text,md,json}",
                "output format (default: text)",
                [&](const std::string &value) {
                    format = core::parseReportFormat(value);
                })
        .option("--trace", "FILE",
                "write a JSON-lines span trace of the run session",
                &tracePath)
        .option("--cache-dir", "DIR",
                "persist model results under DIR (default: "
                "ALBERTA_CACHE_DIR, else no persistence)",
                &cacheDir, &cacheDirGiven)
        .flag("--metrics",
              "print the end-of-run metrics table to stderr",
              &wantMetrics)
        .flag("--stats",
              "print executor/cache/scheduler summaries to stderr",
              &wantStats);

    std::vector<std::string> args;
    try {
        args = parser.parse(argc, argv);
    } catch (const support::FatalError &e) {
        std::cerr << "alberta_cli: " << e.what() << "\n";
        return 2;
    }
    if (parser.helpRequested()) {
        std::cout << parser.help();
        return 0;
    }
    if (args.empty()) {
        std::cerr << parser.help();
        return 2;
    }
    const std::string &command = args[0];

    int rc = 2;
    try {
        // Engine::Builder::build raises FatalError for a cache
        // directory that cannot be created or is not a directory; the
        // catch below turns that into a usage error.
        runtime::Engine engine =
            runtime::Engine::Builder()
                .jobs(jobs)
                .traceFile(tracePath)
                .cacheDirOption(cacheDir, cacheDirGiven)
                .build();
        const core::ReportWriter writer(format, &engine);
        core::RunRequest request;
        request.segments = segments;
        request.batched = batched;
        if (command == "list")
            rc = cmdList();
        else if (command == "workloads" && args.size() >= 2)
            rc = cmdWorkloads(args[1]);
        else if (command == "run" && args.size() >= 3)
            rc = cmdRun(args[1], args[2],
                        args.size() >= 4
                            ? static_cast<int>(
                                  support::parsePositiveInt(
                                      args[3], "run repetitions",
                                      1000))
                            : 3);
        else if (command == "characterize" && args.size() >= 2) {
            request.kind = "characterize";
            request.benchmark = args[1];
            rc = cmdRequest(request, engine, writer, format);
        } else if (command == "suite") {
            request.kind = "suite";
            rc = cmdRequest(request, engine, writer, format);
        } else if (command == "report" && args.size() >= 2) {
            request.kind = "report";
            request.benchmark = args[1];
            rc = cmdRequest(request, engine, writer, format);
        } else if (command == "cluster" && args.size() >= 3)
            rc = cmdCluster(args[1],
                            static_cast<std::size_t>(
                                support::parsePositiveInt(
                                    args[2], "cluster k", 1024)),
                            engine);
        else
            std::cerr << parser.help();

        if (wantMetrics)
            std::cerr << writer.metrics(engine.metricsSnapshot());
        if (wantStats)
            printStats(engine);
        engine.flushTrace();
    } catch (const support::FatalError &e) {
        // User error (bad argument, unknown benchmark/format/file).
        std::cerr << "alberta_cli: " << e.what() << "\n";
        rc = 2;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = 1;
    }
    return rc;
}
