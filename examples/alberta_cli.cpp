/**
 * @file
 * `alberta` — the suite's command-line front end. Subcommands:
 *
 *   alberta_cli list                      all benchmarks + areas
 *   alberta_cli workloads <benchmark>     workload names + params
 *   alberta_cli run <benchmark> <workload> [reps]
 *   alberta_cli characterize <benchmark>  Table II row for one program
 *   alberta_cli report <benchmark>        Markdown report to stdout
 *   alberta_cli cluster <benchmark> <k>   Berube-style representatives
 *
 * Global flags (before or after the subcommand):
 *
 *   --jobs N   worker threads for model runs (default: ALBERTA_JOBS
 *              when set, otherwise the hardware concurrency)
 *   --stats    print executor/cache statistics to stderr on exit
 */
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <vector>

#include "core/cluster.h"
#include "core/report.h"
#include "core/suite.h"
#include "support/table.h"

namespace {

using namespace alberta;

/**
 * Parse the argument of `--jobs`: a positive decimal integer with no
 * trailing junk. Prints a diagnostic and exits 2 on anything else —
 * `std::atoi`-style silent zero would spawn a full hardware-concurrency
 * pool for "--jobs abc".
 */
int
parseJobs(const char *text)
{
    char *end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value <= 0 ||
        value > 1024) {
        std::cerr << "alberta_cli: --jobs expects a positive integer "
                     "(1..1024), got '"
                  << text << "'\n";
        std::exit(2);
    }
    return static_cast<int>(value);
}

/** Parallel-execution state shared by the characterizing commands. */
struct Engine
{
    runtime::Executor executor;
    runtime::ResultCache cache;
    runtime::ExecutorStats stats;

    explicit Engine(int jobs) : executor(jobs) {}

    core::CharacterizeOptions
    options()
    {
        core::CharacterizeOptions o;
        o.executor = &executor;
        o.cache = &cache;
        o.stats = &stats;
        return o;
    }

    void
    printStats() const
    {
        std::cerr << "[stats] jobs=" << executor.jobs()
                  << " tasks=" << stats.tasksRun
                  << " queue=" << stats.queueSeconds << "s"
                  << " run=" << stats.runSeconds << "s"
                  << " cache_hits=" << stats.cacheHits
                  << " cache_misses=" << stats.cacheMisses
                  << " uops=" << stats.uopsRetired << " uops_per_sec="
                  << support::formatFixed(stats.uopsPerSecond(), 0)
                  << "\n";
    }
};

int
cmdList()
{
    support::Table table({"Benchmark", "Area", "#workloads"});
    for (const auto &bm : core::allBenchmarks()) {
        table.addRow({bm->name(), bm->area(),
                      std::to_string(bm->workloads().size())});
    }
    table.print(std::cout);
    return 0;
}

int
cmdWorkloads(const std::string &name)
{
    const auto bm = core::makeBenchmark(name);
    support::Table table({"Workload", "seed", "parameters"});
    for (const auto &w : bm->workloads()) {
        std::string params;
        for (const auto &[key, value] : w.params.entries()) {
            if (!params.empty())
                params += ", ";
            params += key + "=" + value;
        }
        table.addRow({w.name, std::to_string(w.seed), params});
    }
    table.print(std::cout);
    return 0;
}

int
cmdRun(const std::string &name, const std::string &workloadName,
       int reps)
{
    const auto bm = core::makeBenchmark(name);
    const auto workload = runtime::findWorkload(*bm, workloadName);
    const auto agg = runtime::runRepeated(*bm, workload, reps);
    const auto &m = agg.representative;
    std::cout << bm->name() << " / " << workload.name << "\n";
    std::cout << "  time      : "
              << support::formatFixed(agg.meanSeconds, 4)
              << " s (mean of " << reps << ")\n";
    std::cout << "  uops      : " << m.retiredOps << "\n";
    std::cout << "  top-down  : f="
              << support::formatPercent(m.topdown.frontend, 1)
              << "% b=" << support::formatPercent(m.topdown.backend, 1)
              << "% s=" << support::formatPercent(m.topdown.badspec, 1)
              << "% r="
              << support::formatPercent(m.topdown.retiring, 1)
              << "%\n";
    std::cout << "  checksum  : " << m.checksum << "\n";
    return 0;
}

int
cmdCharacterize(const std::string &name, Engine &engine)
{
    const auto bm = core::makeBenchmark(name);
    const auto c = core::characterize(*bm, engine.options());
    support::Table table(core::table2Header());
    table.addRow(core::table2Row(c));
    table.print(std::cout);
    return 0;
}

int
cmdReport(const std::string &name, Engine &engine)
{
    const auto bm = core::makeBenchmark(name);
    const auto c = core::characterize(*bm, engine.options());
    std::cout << core::renderReport(c);
    return 0;
}

int
cmdCluster(const std::string &name, std::size_t k, Engine &engine)
{
    const auto bm = core::makeBenchmark(name);
    auto options = engine.options();
    options.refrateRepetitions = 1;
    const auto c = core::characterize(*bm, options);
    const auto clustering = core::clusterWorkloads(c, k);
    support::Table table({"cluster", "representative", "members"});
    for (std::size_t cl = 0; cl < clustering.medoids.size(); ++cl) {
        std::string members;
        for (std::size_t p = 0; p < c.workloadNames.size(); ++p) {
            if (clustering.assignment[p] == cl) {
                if (!members.empty())
                    members += ' ';
                members += c.workloadNames[p];
            }
        }
        table.addRow({std::to_string(cl + 1),
                      c.workloadNames[clustering.medoids[cl]],
                      members});
    }
    table.print(std::cout);
    return 0;
}

void
usage()
{
    std::cerr
        << "usage: alberta_cli [--jobs N] [--stats] <command>\n"
           "  alberta_cli list\n"
           "  alberta_cli workloads <benchmark>\n"
           "  alberta_cli run <benchmark> <workload> [reps]\n"
           "  alberta_cli characterize <benchmark>\n"
           "  alberta_cli report <benchmark>\n"
           "  alberta_cli cluster <benchmark> <k>\n";
}

} // namespace

int
main(int argc, char **argv)
{
    int jobs = 0; // 0 = ALBERTA_JOBS / hardware concurrency
    bool printStats = false;
    std::vector<std::string> args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::cerr << "alberta_cli: --jobs requires an argument\n";
                return 2;
            }
            jobs = parseJobs(argv[++i]);
        } else if (std::strcmp(argv[i], "--stats") == 0)
            printStats = true;
        else
            args.emplace_back(argv[i]);
    }
    if (args.empty()) {
        usage();
        return 2;
    }
    const std::string &command = args[0];
    Engine engine(jobs);
    int rc = 2;
    try {
        if (command == "list")
            rc = cmdList();
        else if (command == "workloads" && args.size() >= 2)
            rc = cmdWorkloads(args[1]);
        else if (command == "run" && args.size() >= 3)
            rc = cmdRun(args[1], args[2],
                        args.size() >= 4 ? std::atoi(args[3].c_str())
                                         : 3);
        else if (command == "characterize" && args.size() >= 2)
            rc = cmdCharacterize(args[1], engine);
        else if (command == "report" && args.size() >= 2)
            rc = cmdReport(args[1], engine);
        else if (command == "cluster" && args.size() >= 3)
            rc = cmdCluster(args[1], std::atoi(args[2].c_str()),
                            engine);
        else
            usage();
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = 1;
    }
    if (printStats)
        engine.printStats();
    return rc;
}
