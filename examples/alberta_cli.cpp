/**
 * @file
 * `alberta` — the suite's command-line front end. Subcommands:
 *
 *   alberta_cli list                      all benchmarks + areas
 *   alberta_cli workloads <benchmark>     workload names + params
 *   alberta_cli run <benchmark> <workload> [reps]
 *   alberta_cli characterize <benchmark>  Table II row for one program
 *   alberta_cli report <benchmark>        Markdown report to stdout
 *   alberta_cli cluster <benchmark> <k>   Berube-style representatives
 */
#include <iostream>

#include "core/cluster.h"
#include "core/report.h"
#include "core/suite.h"
#include "support/table.h"

namespace {

using namespace alberta;

int
cmdList()
{
    support::Table table({"Benchmark", "Area", "#workloads"});
    for (const auto &bm : core::allBenchmarks()) {
        table.addRow({bm->name(), bm->area(),
                      std::to_string(bm->workloads().size())});
    }
    table.print(std::cout);
    return 0;
}

int
cmdWorkloads(const std::string &name)
{
    const auto bm = core::makeBenchmark(name);
    support::Table table({"Workload", "seed", "parameters"});
    for (const auto &w : bm->workloads()) {
        std::string params;
        for (const auto &[key, value] : w.params.entries()) {
            if (!params.empty())
                params += ", ";
            params += key + "=" + value;
        }
        table.addRow({w.name, std::to_string(w.seed), params});
    }
    table.print(std::cout);
    return 0;
}

int
cmdRun(const std::string &name, const std::string &workloadName,
       int reps)
{
    const auto bm = core::makeBenchmark(name);
    const auto workload = runtime::findWorkload(*bm, workloadName);
    const auto agg = runtime::runRepeated(*bm, workload, reps);
    const auto &m = agg.representative;
    std::cout << bm->name() << " / " << workload.name << "\n";
    std::cout << "  time      : "
              << support::formatFixed(agg.meanSeconds, 4)
              << " s (mean of " << reps << ")\n";
    std::cout << "  uops      : " << m.retiredOps << "\n";
    std::cout << "  top-down  : f="
              << support::formatPercent(m.topdown.frontend, 1)
              << "% b=" << support::formatPercent(m.topdown.backend, 1)
              << "% s=" << support::formatPercent(m.topdown.badspec, 1)
              << "% r="
              << support::formatPercent(m.topdown.retiring, 1)
              << "%\n";
    std::cout << "  checksum  : " << m.checksum << "\n";
    return 0;
}

int
cmdCharacterize(const std::string &name)
{
    const auto bm = core::makeBenchmark(name);
    const auto c = core::characterize(*bm);
    support::Table table(core::table2Header());
    table.addRow(core::table2Row(c));
    table.print(std::cout);
    return 0;
}

int
cmdReport(const std::string &name)
{
    const auto bm = core::makeBenchmark(name);
    core::CharacterizeOptions options;
    const auto c = core::characterize(*bm, options);
    std::cout << core::renderReport(c);
    return 0;
}

int
cmdCluster(const std::string &name, std::size_t k)
{
    const auto bm = core::makeBenchmark(name);
    core::CharacterizeOptions options;
    options.refrateRepetitions = 1;
    const auto c = core::characterize(*bm, options);
    const auto clustering = core::clusterWorkloads(c, k);
    support::Table table({"cluster", "representative", "members"});
    for (std::size_t cl = 0; cl < clustering.medoids.size(); ++cl) {
        std::string members;
        for (std::size_t p = 0; p < c.workloadNames.size(); ++p) {
            if (clustering.assignment[p] == cl) {
                if (!members.empty())
                    members += ' ';
                members += c.workloadNames[p];
            }
        }
        table.addRow({std::to_string(cl + 1),
                      c.workloadNames[clustering.medoids[cl]],
                      members});
    }
    table.print(std::cout);
    return 0;
}

void
usage()
{
    std::cerr
        << "usage:\n"
           "  alberta_cli list\n"
           "  alberta_cli workloads <benchmark>\n"
           "  alberta_cli run <benchmark> <workload> [reps]\n"
           "  alberta_cli characterize <benchmark>\n"
           "  alberta_cli report <benchmark>\n"
           "  alberta_cli cluster <benchmark> <k>\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string command = argv[1];
    try {
        if (command == "list")
            return cmdList();
        if (command == "workloads" && argc >= 3)
            return cmdWorkloads(argv[2]);
        if (command == "run" && argc >= 4)
            return cmdRun(argv[2], argv[3],
                          argc >= 5 ? std::atoi(argv[4]) : 3);
        if (command == "characterize" && argc >= 3)
            return cmdCharacterize(argv[2]);
        if (command == "report" && argc >= 3)
            return cmdReport(argv[2]);
        if (command == "cluster" && argc >= 4)
            return cmdCluster(argv[2], std::atoi(argv[3]));
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    usage();
    return 2;
}
