/**
 * @file
 * Workload reduction by clustering (Berube et al., CGO 2009; paper
 * Section VI): characterize a benchmark, cluster its workloads in
 * top-down space, and print one representative per cluster — a
 * defensible subset when running all workloads is too expensive.
 *
 *   ./cluster_workloads [benchmark] [k]
 *   ./cluster_workloads 519.lbm_r 4
 */
#include <iostream>

#include "core/cluster.h"
#include "support/check.h"
#include "support/table.h"
#include "support/text.h"

int
main(int argc, char **argv)
{
    using namespace alberta;

    const std::string benchmarkName =
        argc > 1 ? argv[1] : "519.lbm_r";
    std::size_t k = 4;
    if (argc > 2) {
        try {
            k = static_cast<std::size_t>(
                support::parsePositiveInt(argv[2], "cluster k", 64));
        } catch (const support::FatalError &e) {
            std::cerr << "cluster_workloads: " << e.what() << "\n";
            return 2;
        }
    }

    const auto benchmark = core::makeBenchmark(benchmarkName);
    runtime::Engine engine;
    core::RunRequest request;
    request.refrateRepetitions = 1;
    const core::Characterization c =
        core::characterize(*benchmark, request, &engine);

    const core::Clustering clustering =
        core::clusterWorkloads(c, k);

    std::cout << benchmarkName << ": "
              << c.workloadNames.size() << " workloads clustered "
              << "into " << k << " behaviour groups (cost "
              << support::formatFixed(clustering.cost, 3) << ")\n\n";

    for (std::size_t cl = 0; cl < clustering.medoids.size(); ++cl) {
        const std::size_t medoid = clustering.medoids[cl];
        std::cout << "cluster " << cl + 1 << " — representative: "
                  << c.workloadNames[medoid] << "\n";
        const auto &r = c.topdownPerWorkload[medoid];
        std::cout << "  top-down f/b/s/r = "
                  << support::formatPercent(r.frontend, 1) << "/"
                  << support::formatPercent(r.backend, 1) << "/"
                  << support::formatPercent(r.badspec, 1) << "/"
                  << support::formatPercent(r.retiring, 1) << "%\n";
        std::cout << "  members:";
        for (std::size_t p = 0; p < c.workloadNames.size(); ++p) {
            if (clustering.assignment[p] == cl)
                std::cout << ' ' << c.workloadNames[p];
        }
        std::cout << "\n\n";
    }

    std::cout << "Running only the " << k
              << " representatives approximates the full suite's "
                 "behaviour space\n(the Berube-style sampling the "
                 "paper recommends when workloads abound).\n";
    return 0;
}
