/**
 * @file
 * `alberta_serve` — the characterization daemon. Binds an AF_UNIX
 * socket, builds one shared runtime::Engine, and serves the
 * line-delimited JSON request protocol (see src/serve/protocol.h)
 * until SIGTERM/SIGINT or a client's "shutdown" op, then drains
 * gracefully: every admitted request is answered before exit.
 *
 * Quick start:
 *
 *   alberta_serve --socket /tmp/alberta.sock --cache-dir ~/.alberta &
 *   printf '%s\n' '{"op":"run","id":1,"run":{"kind":"suite"}}' \
 *       | nc -U /tmp/alberta.sock
 *
 * The served payload is byte-identical to
 * `alberta_cli suite --format json` on the same cache.
 */
#include <csignal>
#include <cstring>
#include <iostream>
#include <thread>

#include <unistd.h>

#include "serve/server.h"
#include "support/argparse.h"
#include "support/check.h"

namespace {

// SIGTERM/SIGINT land on a self-pipe: the handler only write()s (the
// one async-signal-safe thing to do) and a watcher thread turns the
// byte into Server::beginShutdown().
int gSignalPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    const char byte = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(gSignalPipe[1], &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    alberta::serve::ServerOptions options;
    int queueCapacity = 64;
    alberta::support::ArgParser parser(
        "alberta_serve",
        "serves characterization requests (line-delimited JSON) on a "
        "local socket;\nsee src/serve/protocol.h for the request "
        "grammar.\n");
    parser
        .option("--socket", "PATH",
                "AF_UNIX socket path to listen on (required)",
                &options.socketPath)
        .positiveInt("--jobs", "N",
                     "engine worker threads (default: hardware "
                     "concurrency)",
                     &options.jobs)
        .option("--cache-dir", "DIR",
                "persist model results under DIR (default: "
                "ALBERTA_CACHE_DIR, else no persistence)",
                &options.cacheDir, &options.cacheDirGiven)
        .positiveInt("--queue", "N",
                     "admission bound on queued run requests "
                     "(default: 64)",
                     &queueCapacity, 100000)
        .option("--trace", "FILE",
                "write a JSON-lines span trace of the serving "
                "session",
                &options.traceFile);

    try {
        const auto positionals = parser.parse(argc, argv);
        if (parser.helpRequested()) {
            std::cout << parser.help();
            return 0;
        }
        alberta::support::fatalIf(!positionals.empty(),
                                  "unexpected argument '",
                                  positionals.front(), "'");
        alberta::support::fatalIf(options.socketPath.empty(),
                                  "--socket is required");
    } catch (const alberta::support::FatalError &e) {
        std::cerr << "alberta_serve: " << e.what() << "\n";
        return 2;
    }
    options.queueCapacity =
        static_cast<std::size_t>(queueCapacity);
    options.verbose = true;

    // A client vanishing mid-response must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);

    if (::pipe(gSignalPipe) != 0) {
        std::cerr << "alberta_serve: pipe(): "
                  << std::strerror(errno) << "\n";
        return 1;
    }
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    int rc = 0;
    try {
        alberta::serve::Server server(std::move(options));
        std::thread watcher([&server] {
            char byte;
            while (::read(gSignalPipe[0], &byte, 1) < 0 &&
                   errno == EINTR) {
            }
            server.beginShutdown();
        });
        server.serve();
        // serve() returned: wake the watcher if no signal arrived
        // (shutdown came from a client op).
        onSignal(0);
        watcher.join();
    } catch (const alberta::support::FatalError &e) {
        std::cerr << "alberta_serve: " << e.what() << "\n";
        rc = 2;
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        rc = 1;
    }
    ::close(gSignalPipe[0]);
    ::close(gSignalPipe[1]);
    return rc;
}
