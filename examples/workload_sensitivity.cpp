/**
 * @file
 * Rank the suite by workload sensitivity: compute the paper's
 * mu_g(V) and mu_g(M) summaries (Section V) for every benchmark and
 * sort, answering the paper's "which ones are which" question from
 * Section VII.
 *
 *   ./workload_sensitivity [--fast]
 */
#include <algorithm>
#include <iostream>
#include <string>

#include "core/suite.h"
#include "support/table.h"

int
main(int argc, char **argv)
{
    using namespace alberta;
    const bool fast = argc > 1 && std::string(argv[1]) == "--fast";

    struct Entry
    {
        std::string name;
        double muGV;
        double muGM;
        double badspecMean;
    };
    std::vector<Entry> entries;

    // One engine for the whole sweep: shared pool + result cache.
    runtime::Engine engine;
    for (const auto &name : core::table2Names()) {
        if (fast && entries.size() >= 5)
            break;
        const auto bm = core::makeBenchmark(name);
        core::RunRequest request;
        request.refrateRepetitions = 1;
        const core::Characterization c =
            core::characterize(*bm, request, &engine);
        entries.push_back({name, c.topdown.muGV, c.coverage.muGM,
                           c.topdown.badspec.mean});
        std::cerr << "  characterized " << name << "\n";
    }

    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  return a.muGV > b.muGV;
              });

    std::cout << "Benchmarks ranked by top-down workload sensitivity "
                 "mu_g(V):\n\n";
    support::Table table({"rank", "benchmark", "mu_g(V)", "mu_g(M)",
                          "note"});
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        std::string note;
        if (e.badspecMean < 0.005)
            note = "inflated: near-zero bad-speculation mean";
        else if (e.muGV < 5.5)
            note = "stable across workloads";
        table.addRow({std::to_string(i + 1), e.name,
                      support::formatFixed(e.muGV, 2),
                      support::formatFixed(e.muGM, 2), note});
    }
    table.print(std::cout);

    std::cout << "\nInterpretation (Section V): treat mu_g(V) as a "
                 "screening signal only — the\nflagged rows show the "
                 "small-geometric-mean pathology the paper warns "
                 "about.\n";
    return 0;
}
