/**
 * @file
 * The OneFile tool end to end (Section IV-A): generate a multi-unit
 * mini-C program whose units deliberately share static symbol names,
 * merge it into a single compilation unit with scope-aware mangling,
 * then compile and execute both forms and verify they agree.
 *
 *   ./onefile_demo [units] [seed]
 */
#include <iostream>

#include "benchmarks/gcc/codegen.h"
#include "benchmarks/gcc/generator.h"
#include "benchmarks/gcc/onefile.h"
#include "benchmarks/gcc/parser.h"

int
main(int argc, char **argv)
{
    using namespace alberta;
    using namespace alberta::gcc;

    const int units = argc > 1 ? std::atoi(argv[1]) : 4;
    const std::uint64_t seed = argc > 2 ? std::atoll(argv[2]) : 42;

    ProgramConfig config;
    config.seed = seed;
    config.functions = 16;
    const auto sources = generateMultiUnitProgram(config, units);

    std::cout << "generated " << sources.size()
              << " translation units:\n";
    for (std::size_t u = 0; u < sources.size(); ++u) {
        std::cout << "  unit " << u << ": " << sources[u].size()
                  << " bytes\n";
    }

    runtime::ExecutionContext ctx;
    const OneFileResult merged = oneFileFromSources(sources, ctx);
    std::cout << "\nOneFile merged them into one unit ("
              << merged.merged.prettyPrint().size() << " bytes), "
              << "mangling " << merged.renamedSymbols
              << " file-scope static symbols\n";

    // Show a slice of the merged source.
    const std::string printed = merged.merged.prettyPrint();
    std::cout << "\n--- merged source (first 25 lines) ---\n";
    std::size_t pos = 0;
    for (int line = 0; line < 25 && pos != std::string::npos;
         ++line) {
        const std::size_t eol = printed.find('\n', pos);
        std::cout << printed.substr(pos, eol - pos) << "\n";
        pos = eol == std::string::npos ? eol : eol + 1;
    }
    std::cout << "--- end ---\n";

    // The merged program must be a valid 502.gcc_r workload: compile
    // and execute it.
    const Module module = compile(merged.merged, ctx);
    const ExecResult result = execute(module, ctx);
    std::cout << "\ncompiled merged unit: "
              << module.instructionCount() << " VM instructions\n";
    std::cout << "executed main() -> " << result.value << " ("
              << result.executed << " instructions)\n";

    // Round trip through the pretty printer as a final check.
    runtime::ExecutionContext ctx2;
    Program reparsed = parseSource(printed, ctx2);
    const Module module2 = compile(reparsed, ctx2);
    const ExecResult result2 = execute(module2, ctx2);
    std::cout << "re-parsed pretty-printed source -> "
              << result2.value
              << (result2.value == result.value ? " (matches)"
                                                : " (MISMATCH!)")
              << "\n";
    return result2.value == result.value ? 0 : 1;
}
