/**
 * @file
 * Quickstart: generate an Alberta workload, run its benchmark, and
 * print the paper's three measurement types — execution time, the
 * four top-down fractions, and method coverage.
 *
 *   ./quickstart [benchmark] [workload]
 *   ./quickstart 505.mcf_r alberta.city-1
 */
#include <iostream>

#include "core/suite.h"
#include "runtime/benchmark.h"
#include "support/table.h"

int
main(int argc, char **argv)
{
    using namespace alberta;

    const std::string benchmarkName =
        argc > 1 ? argv[1] : "505.mcf_r";
    const std::string workloadName =
        argc > 2 ? argv[2] : "alberta.city-1";

    const auto benchmark = core::makeBenchmark(benchmarkName);
    std::cout << "benchmark: " << benchmark->name() << " ("
              << benchmark->area() << ")\n";
    std::cout << "available workloads:";
    for (const auto &w : benchmark->workloads())
        std::cout << ' ' << w.name;
    std::cout << "\n\n";

    // Workloads are generated deterministically from their seeds; the
    // artifacts below were synthesized in-process.
    const runtime::Workload workload =
        runtime::findWorkload(*benchmark, workloadName);
    std::cout << "running workload '" << workload.name << "' (seed "
              << workload.seed << ", " << workload.files.size()
              << " input artifact(s))\n";

    const auto m = runtime::runOnce(*benchmark, workload);

    std::cout << "\nwall time        : "
              << support::formatFixed(m.seconds, 4) << " s\n";
    std::cout << "modelled cycles  : "
              << support::formatFixed(m.simCycles / 1e6, 2) << " M\n";
    std::cout << "micro-ops retired: " << m.retiredOps << "\n";
    std::cout << "output checksum  : " << m.checksum << "\n";

    std::cout << "\ntop-down classification (Intel methodology):\n";
    std::cout << "  front-end bound : "
              << support::formatPercent(m.topdown.frontend, 1)
              << "%\n";
    std::cout << "  back-end bound  : "
              << support::formatPercent(m.topdown.backend, 1) << "%\n";
    std::cout << "  bad speculation : "
              << support::formatPercent(m.topdown.badspec, 1) << "%\n";
    std::cout << "  retiring        : "
              << support::formatPercent(m.topdown.retiring, 1)
              << "%\n";

    std::cout << "\nmethod coverage (fraction of execution):\n";
    for (const auto &[method, fraction] : m.coverage) {
        std::cout << "  " << method << ": "
                  << support::formatPercent(fraction, 1) << "%\n";
    }
    return 0;
}
