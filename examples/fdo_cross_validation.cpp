/**
 * @file
 * The paper's methodology argument, end to end: evaluate FDO on one
 * benchmark using (1) the criticized single-train/single-eval recipe
 * and (2) cross-validation over the Alberta workloads, and show how
 * the first misestimates the second.
 *
 *   ./fdo_cross_validation [benchmark] [train-workload]
 *   ./fdo_cross_validation 557.xz_r train
 */
#include <iostream>

#include "core/suite.h"
#include "fdo/fdo.h"
#include "support/table.h"

int
main(int argc, char **argv)
{
    using namespace alberta;

    const std::string benchmarkName =
        argc > 1 ? argv[1] : "557.xz_r";
    const std::string trainName = argc > 2 ? argv[2] : "train";

    const auto benchmark = core::makeBenchmark(benchmarkName);
    std::cout << "FDO cross-validation on " << benchmark->name()
              << ", training workload '" << trainName << "'\n\n";

    // Step 1: instrumented training run -> profile.
    const auto train = runtime::findWorkload(*benchmark, trainName);
    const fdo::Profile profile =
        fdo::collectProfile(*benchmark, train);
    std::cout << "profile: " << profile.sites.size()
              << " branch sites, " << profile.methodHotness.size()
              << " methods, " << profile.retiredOps
              << " uops observed\n";

    // Step 2: compile the profile into branch hints + code layout.
    const fdo::Optimization opt = fdo::compileOptimization(profile);
    std::cout << "optimization: " << opt.hintedSites
              << " hinted branch sites, " << opt.hotMethods
              << " hot methods laid out\n\n";

    // Step 3: evaluate everywhere, sharing one run-session engine so
    // baseline model runs are memoized across evaluations.
    runtime::Engine engine;
    fdo::CrossValidateOptions cvOptions;
    cvOptions.engine = &engine;
    const fdo::CrossValidation cv =
        fdo::crossValidate(*benchmark, trainName, cvOptions);

    support::Table table({"evaluation workload", "speedup"});
    table.addRow({trainName + "  (train==eval)",
                  support::formatFixed(cv.selfSpeedup, 4)});
    for (std::size_t i = 0; i < cv.evalNames.size(); ++i) {
        table.addRow({cv.evalNames[i],
                      support::formatFixed(cv.evalSpeedups[i], 4)});
    }
    table.print(std::cout);

    std::cout << "\nsingle-eval estimate (train->refrate): "
              << support::formatFixed(cv.refSpeedup, 4) << "\n";
    std::cout << "cross-validated geomean               : "
              << support::formatFixed(cv.meanCross, 4) << "\n";
    std::cout << "cross-validated range                 : ["
              << support::formatFixed(cv.minCross, 4) << ", "
              << support::formatFixed(cv.maxCross, 4) << "]\n";
    if (cv.selfSpeedup > cv.meanCross) {
        std::cout << "\nThe train==eval estimate overstates the "
                     "cross-workload benefit by "
                  << support::formatFixed(
                         (cv.selfSpeedup / cv.meanCross - 1.0) *
                             100.0,
                         2)
                  << "% — the paper's Section I critique.\n";
    }
    return 0;
}
