file(REMOVE_RECURSE
  "CMakeFiles/cluster_workloads.dir/cluster_workloads.cpp.o"
  "CMakeFiles/cluster_workloads.dir/cluster_workloads.cpp.o.d"
  "cluster_workloads"
  "cluster_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
