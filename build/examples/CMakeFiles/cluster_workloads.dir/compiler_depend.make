# Empty compiler generated dependencies file for cluster_workloads.
# This may be replaced when dependencies are built.
