file(REMOVE_RECURSE
  "CMakeFiles/generate_reports.dir/generate_reports.cpp.o"
  "CMakeFiles/generate_reports.dir/generate_reports.cpp.o.d"
  "generate_reports"
  "generate_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
