# Empty compiler generated dependencies file for generate_reports.
# This may be replaced when dependencies are built.
