# Empty compiler generated dependencies file for onefile_demo.
# This may be replaced when dependencies are built.
