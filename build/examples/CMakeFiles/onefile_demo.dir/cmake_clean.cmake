file(REMOVE_RECURSE
  "CMakeFiles/onefile_demo.dir/onefile_demo.cpp.o"
  "CMakeFiles/onefile_demo.dir/onefile_demo.cpp.o.d"
  "onefile_demo"
  "onefile_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onefile_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
