file(REMOVE_RECURSE
  "CMakeFiles/alberta_cli.dir/alberta_cli.cpp.o"
  "CMakeFiles/alberta_cli.dir/alberta_cli.cpp.o.d"
  "alberta_cli"
  "alberta_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
