# Empty compiler generated dependencies file for alberta_cli.
# This may be replaced when dependencies are built.
