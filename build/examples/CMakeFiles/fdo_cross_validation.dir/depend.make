# Empty dependencies file for fdo_cross_validation.
# This may be replaced when dependencies are built.
