file(REMOVE_RECURSE
  "CMakeFiles/fdo_cross_validation.dir/fdo_cross_validation.cpp.o"
  "CMakeFiles/fdo_cross_validation.dir/fdo_cross_validation.cpp.o.d"
  "fdo_cross_validation"
  "fdo_cross_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdo_cross_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
