# Empty compiler generated dependencies file for alberta_topdown.
# This may be replaced when dependencies are built.
