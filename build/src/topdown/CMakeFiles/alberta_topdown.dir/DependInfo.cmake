
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topdown/branch.cc" "src/topdown/CMakeFiles/alberta_topdown.dir/branch.cc.o" "gcc" "src/topdown/CMakeFiles/alberta_topdown.dir/branch.cc.o.d"
  "/root/repo/src/topdown/cache.cc" "src/topdown/CMakeFiles/alberta_topdown.dir/cache.cc.o" "gcc" "src/topdown/CMakeFiles/alberta_topdown.dir/cache.cc.o.d"
  "/root/repo/src/topdown/machine.cc" "src/topdown/CMakeFiles/alberta_topdown.dir/machine.cc.o" "gcc" "src/topdown/CMakeFiles/alberta_topdown.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/alberta_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/alberta_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
