file(REMOVE_RECURSE
  "CMakeFiles/alberta_topdown.dir/branch.cc.o"
  "CMakeFiles/alberta_topdown.dir/branch.cc.o.d"
  "CMakeFiles/alberta_topdown.dir/cache.cc.o"
  "CMakeFiles/alberta_topdown.dir/cache.cc.o.d"
  "CMakeFiles/alberta_topdown.dir/machine.cc.o"
  "CMakeFiles/alberta_topdown.dir/machine.cc.o.d"
  "libalberta_topdown.a"
  "libalberta_topdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
