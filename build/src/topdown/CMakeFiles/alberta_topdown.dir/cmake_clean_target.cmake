file(REMOVE_RECURSE
  "libalberta_topdown.a"
)
