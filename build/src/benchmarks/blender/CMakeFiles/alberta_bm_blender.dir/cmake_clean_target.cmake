file(REMOVE_RECURSE
  "libalberta_bm_blender.a"
)
