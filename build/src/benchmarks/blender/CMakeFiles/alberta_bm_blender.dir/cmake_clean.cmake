file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_blender.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_blender.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_blender.dir/render.cc.o"
  "CMakeFiles/alberta_bm_blender.dir/render.cc.o.d"
  "libalberta_bm_blender.a"
  "libalberta_bm_blender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_blender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
