# Empty compiler generated dependencies file for alberta_bm_blender.
# This may be replaced when dependencies are built.
