file(REMOVE_RECURSE
  "libalberta_bm_cactubssn.a"
)
