file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_cactubssn.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_cactubssn.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_cactubssn.dir/wave.cc.o"
  "CMakeFiles/alberta_bm_cactubssn.dir/wave.cc.o.d"
  "libalberta_bm_cactubssn.a"
  "libalberta_bm_cactubssn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_cactubssn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
