# Empty dependencies file for alberta_bm_cactubssn.
# This may be replaced when dependencies are built.
