# CMake generated Testfile for 
# Source directory: /root/repo/src/benchmarks/xalancbmk
# Build directory: /root/repo/build/src/benchmarks/xalancbmk
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
