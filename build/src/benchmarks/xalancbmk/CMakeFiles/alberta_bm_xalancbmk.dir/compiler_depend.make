# Empty compiler generated dependencies file for alberta_bm_xalancbmk.
# This may be replaced when dependencies are built.
