file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_xalancbmk.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_xalancbmk.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_xalancbmk.dir/xml.cc.o"
  "CMakeFiles/alberta_bm_xalancbmk.dir/xml.cc.o.d"
  "CMakeFiles/alberta_bm_xalancbmk.dir/xslt.cc.o"
  "CMakeFiles/alberta_bm_xalancbmk.dir/xslt.cc.o.d"
  "libalberta_bm_xalancbmk.a"
  "libalberta_bm_xalancbmk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_xalancbmk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
