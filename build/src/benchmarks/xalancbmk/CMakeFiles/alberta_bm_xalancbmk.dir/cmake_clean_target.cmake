file(REMOVE_RECURSE
  "libalberta_bm_xalancbmk.a"
)
