file(REMOVE_RECURSE
  "libalberta_bm_gcc.a"
)
