file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_gcc.dir/ast.cc.o"
  "CMakeFiles/alberta_bm_gcc.dir/ast.cc.o.d"
  "CMakeFiles/alberta_bm_gcc.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_gcc.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_gcc.dir/codegen.cc.o"
  "CMakeFiles/alberta_bm_gcc.dir/codegen.cc.o.d"
  "CMakeFiles/alberta_bm_gcc.dir/generator.cc.o"
  "CMakeFiles/alberta_bm_gcc.dir/generator.cc.o.d"
  "CMakeFiles/alberta_bm_gcc.dir/lexer.cc.o"
  "CMakeFiles/alberta_bm_gcc.dir/lexer.cc.o.d"
  "CMakeFiles/alberta_bm_gcc.dir/onefile.cc.o"
  "CMakeFiles/alberta_bm_gcc.dir/onefile.cc.o.d"
  "CMakeFiles/alberta_bm_gcc.dir/optimizer.cc.o"
  "CMakeFiles/alberta_bm_gcc.dir/optimizer.cc.o.d"
  "CMakeFiles/alberta_bm_gcc.dir/parser.cc.o"
  "CMakeFiles/alberta_bm_gcc.dir/parser.cc.o.d"
  "libalberta_bm_gcc.a"
  "libalberta_bm_gcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
