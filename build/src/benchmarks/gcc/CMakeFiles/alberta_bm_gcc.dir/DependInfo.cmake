
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/gcc/ast.cc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/ast.cc.o" "gcc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/ast.cc.o.d"
  "/root/repo/src/benchmarks/gcc/benchmark.cc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/benchmark.cc.o" "gcc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/benchmark.cc.o.d"
  "/root/repo/src/benchmarks/gcc/codegen.cc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/codegen.cc.o" "gcc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/codegen.cc.o.d"
  "/root/repo/src/benchmarks/gcc/generator.cc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/generator.cc.o" "gcc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/generator.cc.o.d"
  "/root/repo/src/benchmarks/gcc/lexer.cc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/lexer.cc.o" "gcc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/lexer.cc.o.d"
  "/root/repo/src/benchmarks/gcc/onefile.cc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/onefile.cc.o" "gcc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/onefile.cc.o.d"
  "/root/repo/src/benchmarks/gcc/optimizer.cc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/optimizer.cc.o" "gcc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/optimizer.cc.o.d"
  "/root/repo/src/benchmarks/gcc/parser.cc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/parser.cc.o" "gcc" "src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/alberta_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/alberta_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/alberta_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/topdown/CMakeFiles/alberta_topdown.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/alberta_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
