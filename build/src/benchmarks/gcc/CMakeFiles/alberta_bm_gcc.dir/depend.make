# Empty dependencies file for alberta_bm_gcc.
# This may be replaced when dependencies are built.
