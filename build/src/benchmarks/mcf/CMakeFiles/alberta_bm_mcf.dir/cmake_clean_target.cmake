file(REMOVE_RECURSE
  "libalberta_bm_mcf.a"
)
