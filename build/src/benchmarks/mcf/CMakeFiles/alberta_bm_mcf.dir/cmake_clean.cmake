file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_mcf.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_mcf.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_mcf.dir/generator.cc.o"
  "CMakeFiles/alberta_bm_mcf.dir/generator.cc.o.d"
  "CMakeFiles/alberta_bm_mcf.dir/mincost.cc.o"
  "CMakeFiles/alberta_bm_mcf.dir/mincost.cc.o.d"
  "libalberta_bm_mcf.a"
  "libalberta_bm_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
