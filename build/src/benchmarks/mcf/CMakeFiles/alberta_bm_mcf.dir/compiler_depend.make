# Empty compiler generated dependencies file for alberta_bm_mcf.
# This may be replaced when dependencies are built.
