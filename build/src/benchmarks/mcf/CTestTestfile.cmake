# CMake generated Testfile for 
# Source directory: /root/repo/src/benchmarks/mcf
# Build directory: /root/repo/build/src/benchmarks/mcf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
