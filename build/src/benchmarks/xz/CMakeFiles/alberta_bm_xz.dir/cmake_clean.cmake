file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_xz.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_xz.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_xz.dir/generator.cc.o"
  "CMakeFiles/alberta_bm_xz.dir/generator.cc.o.d"
  "CMakeFiles/alberta_bm_xz.dir/lz77.cc.o"
  "CMakeFiles/alberta_bm_xz.dir/lz77.cc.o.d"
  "libalberta_bm_xz.a"
  "libalberta_bm_xz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_xz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
