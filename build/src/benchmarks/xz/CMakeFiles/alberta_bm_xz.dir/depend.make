# Empty dependencies file for alberta_bm_xz.
# This may be replaced when dependencies are built.
