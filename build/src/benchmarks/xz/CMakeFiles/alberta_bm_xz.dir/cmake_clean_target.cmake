file(REMOVE_RECURSE
  "libalberta_bm_xz.a"
)
