file(REMOVE_RECURSE
  "libalberta_bm_wrf.a"
)
