# Empty compiler generated dependencies file for alberta_bm_wrf.
# This may be replaced when dependencies are built.
