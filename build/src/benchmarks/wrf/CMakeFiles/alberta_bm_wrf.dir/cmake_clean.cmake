file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_wrf.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_wrf.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_wrf.dir/model.cc.o"
  "CMakeFiles/alberta_bm_wrf.dir/model.cc.o.d"
  "libalberta_bm_wrf.a"
  "libalberta_bm_wrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_wrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
