file(REMOVE_RECURSE
  "libalberta_bm_nab.a"
)
