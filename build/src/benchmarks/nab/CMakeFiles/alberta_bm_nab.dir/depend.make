# Empty dependencies file for alberta_bm_nab.
# This may be replaced when dependencies are built.
