file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_nab.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_nab.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_nab.dir/forcefield.cc.o"
  "CMakeFiles/alberta_bm_nab.dir/forcefield.cc.o.d"
  "libalberta_bm_nab.a"
  "libalberta_bm_nab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_nab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
