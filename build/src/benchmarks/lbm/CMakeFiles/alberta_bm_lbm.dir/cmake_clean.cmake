file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_lbm.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_lbm.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_lbm.dir/lattice.cc.o"
  "CMakeFiles/alberta_bm_lbm.dir/lattice.cc.o.d"
  "libalberta_bm_lbm.a"
  "libalberta_bm_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
