# Empty compiler generated dependencies file for alberta_bm_lbm.
# This may be replaced when dependencies are built.
