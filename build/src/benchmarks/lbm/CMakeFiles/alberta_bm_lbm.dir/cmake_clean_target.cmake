file(REMOVE_RECURSE
  "libalberta_bm_lbm.a"
)
