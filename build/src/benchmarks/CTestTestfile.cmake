# CMake generated Testfile for 
# Source directory: /root/repo/src/benchmarks
# Build directory: /root/repo/build/src/benchmarks
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("mcf")
subdirs("xz")
subdirs("exchange2")
subdirs("deepsjeng")
subdirs("leela")
subdirs("omnetpp")
subdirs("xalancbmk")
subdirs("gcc")
subdirs("x264")
subdirs("lbm")
subdirs("cactubssn")
subdirs("nab")
subdirs("wrf")
subdirs("parest")
subdirs("povray")
subdirs("blender")
