# CMake generated Testfile for 
# Source directory: /root/repo/src/benchmarks/deepsjeng
# Build directory: /root/repo/build/src/benchmarks/deepsjeng
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
