file(REMOVE_RECURSE
  "libalberta_bm_deepsjeng.a"
)
