# Empty dependencies file for alberta_bm_deepsjeng.
# This may be replaced when dependencies are built.
