file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_deepsjeng.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_deepsjeng.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_deepsjeng.dir/board.cc.o"
  "CMakeFiles/alberta_bm_deepsjeng.dir/board.cc.o.d"
  "CMakeFiles/alberta_bm_deepsjeng.dir/search.cc.o"
  "CMakeFiles/alberta_bm_deepsjeng.dir/search.cc.o.d"
  "libalberta_bm_deepsjeng.a"
  "libalberta_bm_deepsjeng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_deepsjeng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
