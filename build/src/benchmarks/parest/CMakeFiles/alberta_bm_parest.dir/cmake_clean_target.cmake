file(REMOVE_RECURSE
  "libalberta_bm_parest.a"
)
