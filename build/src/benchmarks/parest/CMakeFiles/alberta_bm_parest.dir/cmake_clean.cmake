file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_parest.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_parest.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_parest.dir/solver.cc.o"
  "CMakeFiles/alberta_bm_parest.dir/solver.cc.o.d"
  "libalberta_bm_parest.a"
  "libalberta_bm_parest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_parest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
