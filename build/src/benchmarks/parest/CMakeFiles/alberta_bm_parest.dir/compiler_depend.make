# Empty compiler generated dependencies file for alberta_bm_parest.
# This may be replaced when dependencies are built.
