# Empty dependencies file for alberta_bm_omnetpp.
# This may be replaced when dependencies are built.
