file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_omnetpp.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_omnetpp.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_omnetpp.dir/sim.cc.o"
  "CMakeFiles/alberta_bm_omnetpp.dir/sim.cc.o.d"
  "CMakeFiles/alberta_bm_omnetpp.dir/topology.cc.o"
  "CMakeFiles/alberta_bm_omnetpp.dir/topology.cc.o.d"
  "libalberta_bm_omnetpp.a"
  "libalberta_bm_omnetpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_omnetpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
