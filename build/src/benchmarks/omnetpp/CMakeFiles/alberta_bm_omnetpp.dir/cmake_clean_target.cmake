file(REMOVE_RECURSE
  "libalberta_bm_omnetpp.a"
)
