file(REMOVE_RECURSE
  "libalberta_bm_povray.a"
)
