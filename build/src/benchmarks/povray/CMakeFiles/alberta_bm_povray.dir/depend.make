# Empty dependencies file for alberta_bm_povray.
# This may be replaced when dependencies are built.
