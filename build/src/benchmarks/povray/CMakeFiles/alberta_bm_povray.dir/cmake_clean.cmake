file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_povray.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_povray.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_povray.dir/tracer.cc.o"
  "CMakeFiles/alberta_bm_povray.dir/tracer.cc.o.d"
  "libalberta_bm_povray.a"
  "libalberta_bm_povray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_povray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
