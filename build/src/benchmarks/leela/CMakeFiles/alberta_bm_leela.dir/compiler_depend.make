# Empty compiler generated dependencies file for alberta_bm_leela.
# This may be replaced when dependencies are built.
