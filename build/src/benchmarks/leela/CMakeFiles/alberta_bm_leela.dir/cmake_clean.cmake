file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_leela.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_leela.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_leela.dir/goboard.cc.o"
  "CMakeFiles/alberta_bm_leela.dir/goboard.cc.o.d"
  "CMakeFiles/alberta_bm_leela.dir/mcts.cc.o"
  "CMakeFiles/alberta_bm_leela.dir/mcts.cc.o.d"
  "libalberta_bm_leela.a"
  "libalberta_bm_leela.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_leela.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
