file(REMOVE_RECURSE
  "libalberta_bm_leela.a"
)
