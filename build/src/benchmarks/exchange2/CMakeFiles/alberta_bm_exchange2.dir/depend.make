# Empty dependencies file for alberta_bm_exchange2.
# This may be replaced when dependencies are built.
