file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_exchange2.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_exchange2.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_exchange2.dir/sudoku.cc.o"
  "CMakeFiles/alberta_bm_exchange2.dir/sudoku.cc.o.d"
  "libalberta_bm_exchange2.a"
  "libalberta_bm_exchange2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_exchange2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
