
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/exchange2/benchmark.cc" "src/benchmarks/exchange2/CMakeFiles/alberta_bm_exchange2.dir/benchmark.cc.o" "gcc" "src/benchmarks/exchange2/CMakeFiles/alberta_bm_exchange2.dir/benchmark.cc.o.d"
  "/root/repo/src/benchmarks/exchange2/sudoku.cc" "src/benchmarks/exchange2/CMakeFiles/alberta_bm_exchange2.dir/sudoku.cc.o" "gcc" "src/benchmarks/exchange2/CMakeFiles/alberta_bm_exchange2.dir/sudoku.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/alberta_support.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/alberta_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/alberta_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/topdown/CMakeFiles/alberta_topdown.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/alberta_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
