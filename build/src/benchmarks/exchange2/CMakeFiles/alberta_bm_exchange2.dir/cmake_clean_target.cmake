file(REMOVE_RECURSE
  "libalberta_bm_exchange2.a"
)
