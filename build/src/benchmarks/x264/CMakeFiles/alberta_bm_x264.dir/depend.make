# Empty dependencies file for alberta_bm_x264.
# This may be replaced when dependencies are built.
