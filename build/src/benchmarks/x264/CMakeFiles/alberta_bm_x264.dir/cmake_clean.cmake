file(REMOVE_RECURSE
  "CMakeFiles/alberta_bm_x264.dir/benchmark.cc.o"
  "CMakeFiles/alberta_bm_x264.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_bm_x264.dir/codec.cc.o"
  "CMakeFiles/alberta_bm_x264.dir/codec.cc.o.d"
  "CMakeFiles/alberta_bm_x264.dir/video.cc.o"
  "CMakeFiles/alberta_bm_x264.dir/video.cc.o.d"
  "libalberta_bm_x264.a"
  "libalberta_bm_x264.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_bm_x264.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
