file(REMOVE_RECURSE
  "libalberta_bm_x264.a"
)
