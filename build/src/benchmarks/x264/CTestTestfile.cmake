# CMake generated Testfile for 
# Source directory: /root/repo/src/benchmarks/x264
# Build directory: /root/repo/build/src/benchmarks/x264
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
