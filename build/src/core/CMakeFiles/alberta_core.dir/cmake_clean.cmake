file(REMOVE_RECURSE
  "CMakeFiles/alberta_core.dir/cluster.cc.o"
  "CMakeFiles/alberta_core.dir/cluster.cc.o.d"
  "CMakeFiles/alberta_core.dir/phases.cc.o"
  "CMakeFiles/alberta_core.dir/phases.cc.o.d"
  "CMakeFiles/alberta_core.dir/report.cc.o"
  "CMakeFiles/alberta_core.dir/report.cc.o.d"
  "CMakeFiles/alberta_core.dir/suite.cc.o"
  "CMakeFiles/alberta_core.dir/suite.cc.o.d"
  "libalberta_core.a"
  "libalberta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
