# Empty compiler generated dependencies file for alberta_core.
# This may be replaced when dependencies are built.
