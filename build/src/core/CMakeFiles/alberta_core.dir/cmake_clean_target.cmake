file(REMOVE_RECURSE
  "libalberta_core.a"
)
