# Empty compiler generated dependencies file for alberta_stats.
# This may be replaced when dependencies are built.
