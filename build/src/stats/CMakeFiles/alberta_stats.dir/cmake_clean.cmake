file(REMOVE_RECURSE
  "CMakeFiles/alberta_stats.dir/pca.cc.o"
  "CMakeFiles/alberta_stats.dir/pca.cc.o.d"
  "CMakeFiles/alberta_stats.dir/summary.cc.o"
  "CMakeFiles/alberta_stats.dir/summary.cc.o.d"
  "libalberta_stats.a"
  "libalberta_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
