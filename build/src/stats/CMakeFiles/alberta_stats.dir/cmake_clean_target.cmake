file(REMOVE_RECURSE
  "libalberta_stats.a"
)
