file(REMOVE_RECURSE
  "libalberta_profile.a"
)
