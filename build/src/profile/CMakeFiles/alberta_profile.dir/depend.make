# Empty dependencies file for alberta_profile.
# This may be replaced when dependencies are built.
