file(REMOVE_RECURSE
  "CMakeFiles/alberta_profile.dir/coverage.cc.o"
  "CMakeFiles/alberta_profile.dir/coverage.cc.o.d"
  "libalberta_profile.a"
  "libalberta_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
