file(REMOVE_RECURSE
  "libalberta_fdo.a"
)
