# Empty compiler generated dependencies file for alberta_fdo.
# This may be replaced when dependencies are built.
