file(REMOVE_RECURSE
  "CMakeFiles/alberta_fdo.dir/fdo.cc.o"
  "CMakeFiles/alberta_fdo.dir/fdo.cc.o.d"
  "libalberta_fdo.a"
  "libalberta_fdo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_fdo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
