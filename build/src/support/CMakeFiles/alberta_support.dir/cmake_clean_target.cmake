file(REMOVE_RECURSE
  "libalberta_support.a"
)
