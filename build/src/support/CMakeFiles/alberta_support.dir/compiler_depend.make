# Empty compiler generated dependencies file for alberta_support.
# This may be replaced when dependencies are built.
