file(REMOVE_RECURSE
  "CMakeFiles/alberta_support.dir/table.cc.o"
  "CMakeFiles/alberta_support.dir/table.cc.o.d"
  "CMakeFiles/alberta_support.dir/text.cc.o"
  "CMakeFiles/alberta_support.dir/text.cc.o.d"
  "libalberta_support.a"
  "libalberta_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
