# Empty dependencies file for alberta_runtime.
# This may be replaced when dependencies are built.
