file(REMOVE_RECURSE
  "CMakeFiles/alberta_runtime.dir/benchmark.cc.o"
  "CMakeFiles/alberta_runtime.dir/benchmark.cc.o.d"
  "CMakeFiles/alberta_runtime.dir/context.cc.o"
  "CMakeFiles/alberta_runtime.dir/context.cc.o.d"
  "CMakeFiles/alberta_runtime.dir/workload.cc.o"
  "CMakeFiles/alberta_runtime.dir/workload.cc.o.d"
  "libalberta_runtime.a"
  "libalberta_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alberta_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
