file(REMOVE_RECURSE
  "libalberta_runtime.a"
)
