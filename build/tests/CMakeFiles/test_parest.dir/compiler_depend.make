# Empty compiler generated dependencies file for test_parest.
# This may be replaced when dependencies are built.
