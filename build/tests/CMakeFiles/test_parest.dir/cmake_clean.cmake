file(REMOVE_RECURSE
  "CMakeFiles/test_parest.dir/test_parest.cc.o"
  "CMakeFiles/test_parest.dir/test_parest.cc.o.d"
  "test_parest"
  "test_parest.pdb"
  "test_parest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
