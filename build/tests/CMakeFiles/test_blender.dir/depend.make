# Empty dependencies file for test_blender.
# This may be replaced when dependencies are built.
