file(REMOVE_RECURSE
  "CMakeFiles/test_blender.dir/test_blender.cc.o"
  "CMakeFiles/test_blender.dir/test_blender.cc.o.d"
  "test_blender"
  "test_blender.pdb"
  "test_blender[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
