
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_blender.cc" "tests/CMakeFiles/test_blender.dir/test_blender.cc.o" "gcc" "tests/CMakeFiles/test_blender.dir/test_blender.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmarks/blender/CMakeFiles/alberta_bm_blender.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/alberta_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/alberta_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/topdown/CMakeFiles/alberta_topdown.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/alberta_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alberta_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
