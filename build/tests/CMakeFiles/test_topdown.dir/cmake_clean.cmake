file(REMOVE_RECURSE
  "CMakeFiles/test_topdown.dir/test_topdown.cc.o"
  "CMakeFiles/test_topdown.dir/test_topdown.cc.o.d"
  "test_topdown"
  "test_topdown.pdb"
  "test_topdown[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
