# Empty compiler generated dependencies file for test_omnetpp.
# This may be replaced when dependencies are built.
