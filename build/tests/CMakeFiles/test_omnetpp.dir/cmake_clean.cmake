file(REMOVE_RECURSE
  "CMakeFiles/test_omnetpp.dir/test_omnetpp.cc.o"
  "CMakeFiles/test_omnetpp.dir/test_omnetpp.cc.o.d"
  "test_omnetpp"
  "test_omnetpp.pdb"
  "test_omnetpp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omnetpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
