file(REMOVE_RECURSE
  "CMakeFiles/test_deepsjeng.dir/test_deepsjeng.cc.o"
  "CMakeFiles/test_deepsjeng.dir/test_deepsjeng.cc.o.d"
  "test_deepsjeng"
  "test_deepsjeng.pdb"
  "test_deepsjeng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deepsjeng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
