# Empty compiler generated dependencies file for test_deepsjeng.
# This may be replaced when dependencies are built.
