file(REMOVE_RECURSE
  "CMakeFiles/test_nab.dir/test_nab.cc.o"
  "CMakeFiles/test_nab.dir/test_nab.cc.o.d"
  "test_nab"
  "test_nab.pdb"
  "test_nab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
