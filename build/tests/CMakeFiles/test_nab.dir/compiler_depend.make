# Empty compiler generated dependencies file for test_nab.
# This may be replaced when dependencies are built.
