# Empty compiler generated dependencies file for test_x264.
# This may be replaced when dependencies are built.
