file(REMOVE_RECURSE
  "CMakeFiles/test_x264.dir/test_x264.cc.o"
  "CMakeFiles/test_x264.dir/test_x264.cc.o.d"
  "test_x264"
  "test_x264.pdb"
  "test_x264[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_x264.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
