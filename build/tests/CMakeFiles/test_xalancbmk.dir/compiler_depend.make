# Empty compiler generated dependencies file for test_xalancbmk.
# This may be replaced when dependencies are built.
