file(REMOVE_RECURSE
  "CMakeFiles/test_xalancbmk.dir/test_xalancbmk.cc.o"
  "CMakeFiles/test_xalancbmk.dir/test_xalancbmk.cc.o.d"
  "test_xalancbmk"
  "test_xalancbmk.pdb"
  "test_xalancbmk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xalancbmk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
