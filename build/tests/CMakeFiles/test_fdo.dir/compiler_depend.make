# Empty compiler generated dependencies file for test_fdo.
# This may be replaced when dependencies are built.
