file(REMOVE_RECURSE
  "CMakeFiles/test_fdo.dir/test_fdo.cc.o"
  "CMakeFiles/test_fdo.dir/test_fdo.cc.o.d"
  "test_fdo"
  "test_fdo.pdb"
  "test_fdo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fdo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
