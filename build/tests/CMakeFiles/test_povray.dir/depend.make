# Empty dependencies file for test_povray.
# This may be replaced when dependencies are built.
