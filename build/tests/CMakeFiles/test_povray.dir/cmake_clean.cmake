file(REMOVE_RECURSE
  "CMakeFiles/test_povray.dir/test_povray.cc.o"
  "CMakeFiles/test_povray.dir/test_povray.cc.o.d"
  "test_povray"
  "test_povray.pdb"
  "test_povray[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_povray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
