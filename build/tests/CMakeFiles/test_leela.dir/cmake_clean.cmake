file(REMOVE_RECURSE
  "CMakeFiles/test_leela.dir/test_leela.cc.o"
  "CMakeFiles/test_leela.dir/test_leela.cc.o.d"
  "test_leela"
  "test_leela.pdb"
  "test_leela[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_leela.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
