# Empty compiler generated dependencies file for test_leela.
# This may be replaced when dependencies are built.
