# Empty dependencies file for test_cactubssn.
# This may be replaced when dependencies are built.
