file(REMOVE_RECURSE
  "CMakeFiles/test_cactubssn.dir/test_cactubssn.cc.o"
  "CMakeFiles/test_cactubssn.dir/test_cactubssn.cc.o.d"
  "test_cactubssn"
  "test_cactubssn.pdb"
  "test_cactubssn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cactubssn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
