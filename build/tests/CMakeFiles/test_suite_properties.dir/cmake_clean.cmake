file(REMOVE_RECURSE
  "CMakeFiles/test_suite_properties.dir/test_suite_properties.cc.o"
  "CMakeFiles/test_suite_properties.dir/test_suite_properties.cc.o.d"
  "test_suite_properties"
  "test_suite_properties.pdb"
  "test_suite_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
