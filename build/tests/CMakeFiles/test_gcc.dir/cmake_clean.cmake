file(REMOVE_RECURSE
  "CMakeFiles/test_gcc.dir/test_gcc.cc.o"
  "CMakeFiles/test_gcc.dir/test_gcc.cc.o.d"
  "test_gcc"
  "test_gcc.pdb"
  "test_gcc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
