# Empty dependencies file for test_wrf.
# This may be replaced when dependencies are built.
