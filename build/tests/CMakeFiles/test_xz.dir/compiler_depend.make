# Empty compiler generated dependencies file for test_xz.
# This may be replaced when dependencies are built.
