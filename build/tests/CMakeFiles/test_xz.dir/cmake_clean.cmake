file(REMOVE_RECURSE
  "CMakeFiles/test_xz.dir/test_xz.cc.o"
  "CMakeFiles/test_xz.dir/test_xz.cc.o.d"
  "test_xz"
  "test_xz.pdb"
  "test_xz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
