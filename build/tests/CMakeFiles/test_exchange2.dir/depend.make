# Empty dependencies file for test_exchange2.
# This may be replaced when dependencies are built.
