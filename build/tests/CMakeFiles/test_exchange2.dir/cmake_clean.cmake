file(REMOVE_RECURSE
  "CMakeFiles/test_exchange2.dir/test_exchange2.cc.o"
  "CMakeFiles/test_exchange2.dir/test_exchange2.cc.o.d"
  "test_exchange2"
  "test_exchange2.pdb"
  "test_exchange2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exchange2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
