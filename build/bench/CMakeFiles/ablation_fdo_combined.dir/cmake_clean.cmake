file(REMOVE_RECURSE
  "CMakeFiles/ablation_fdo_combined.dir/ablation_fdo_combined.cc.o"
  "CMakeFiles/ablation_fdo_combined.dir/ablation_fdo_combined.cc.o.d"
  "ablation_fdo_combined"
  "ablation_fdo_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fdo_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
