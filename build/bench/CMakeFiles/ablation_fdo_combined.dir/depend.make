# Empty dependencies file for ablation_fdo_combined.
# This may be replaced when dependencies are built.
