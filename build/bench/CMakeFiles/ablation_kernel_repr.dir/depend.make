# Empty dependencies file for ablation_kernel_repr.
# This may be replaced when dependencies are built.
