file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernel_repr.dir/ablation_kernel_repr.cc.o"
  "CMakeFiles/ablation_kernel_repr.dir/ablation_kernel_repr.cc.o.d"
  "ablation_kernel_repr"
  "ablation_kernel_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
