# Empty compiler generated dependencies file for ablation_lbm_variation.
# This may be replaced when dependencies are built.
