file(REMOVE_RECURSE
  "CMakeFiles/ablation_lbm_variation.dir/ablation_lbm_variation.cc.o"
  "CMakeFiles/ablation_lbm_variation.dir/ablation_lbm_variation.cc.o.d"
  "ablation_lbm_variation"
  "ablation_lbm_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lbm_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
