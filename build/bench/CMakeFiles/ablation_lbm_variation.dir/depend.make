# Empty dependencies file for ablation_lbm_variation.
# This may be replaced when dependencies are built.
