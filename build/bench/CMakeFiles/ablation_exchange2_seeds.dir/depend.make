# Empty dependencies file for ablation_exchange2_seeds.
# This may be replaced when dependencies are built.
