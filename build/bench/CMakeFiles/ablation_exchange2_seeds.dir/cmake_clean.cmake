file(REMOVE_RECURSE
  "CMakeFiles/ablation_exchange2_seeds.dir/ablation_exchange2_seeds.cc.o"
  "CMakeFiles/ablation_exchange2_seeds.dir/ablation_exchange2_seeds.cc.o.d"
  "ablation_exchange2_seeds"
  "ablation_exchange2_seeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_exchange2_seeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
