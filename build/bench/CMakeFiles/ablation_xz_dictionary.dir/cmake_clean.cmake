file(REMOVE_RECURSE
  "CMakeFiles/ablation_xz_dictionary.dir/ablation_xz_dictionary.cc.o"
  "CMakeFiles/ablation_xz_dictionary.dir/ablation_xz_dictionary.cc.o.d"
  "ablation_xz_dictionary"
  "ablation_xz_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xz_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
