# Empty dependencies file for ablation_fdo_crossval.
# This may be replaced when dependencies are built.
