file(REMOVE_RECURSE
  "CMakeFiles/ablation_fdo_crossval.dir/ablation_fdo_crossval.cc.o"
  "CMakeFiles/ablation_fdo_crossval.dir/ablation_fdo_crossval.cc.o.d"
  "ablation_fdo_crossval"
  "ablation_fdo_crossval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fdo_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
