
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1.cc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cc.o" "gcc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/alberta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fdo/CMakeFiles/alberta_fdo.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/gcc/CMakeFiles/alberta_bm_gcc.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/mcf/CMakeFiles/alberta_bm_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/cactubssn/CMakeFiles/alberta_bm_cactubssn.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/parest/CMakeFiles/alberta_bm_parest.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/povray/CMakeFiles/alberta_bm_povray.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/lbm/CMakeFiles/alberta_bm_lbm.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/omnetpp/CMakeFiles/alberta_bm_omnetpp.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/wrf/CMakeFiles/alberta_bm_wrf.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/xalancbmk/CMakeFiles/alberta_bm_xalancbmk.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/x264/CMakeFiles/alberta_bm_x264.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/blender/CMakeFiles/alberta_bm_blender.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/deepsjeng/CMakeFiles/alberta_bm_deepsjeng.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/leela/CMakeFiles/alberta_bm_leela.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/nab/CMakeFiles/alberta_bm_nab.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/exchange2/CMakeFiles/alberta_bm_exchange2.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/xz/CMakeFiles/alberta_bm_xz.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/alberta_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/alberta_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/topdown/CMakeFiles/alberta_topdown.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/alberta_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/alberta_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
