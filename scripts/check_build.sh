#!/usr/bin/env bash
# Tier-1 verification plus the cross-PR performance tracker.
#
#   scripts/check_build.sh [build-dir]
#
# Runs the canonical configure/build/test sequence from ROADMAP.md and
# then regenerates the performance trackers:
#
#   BENCH_machine.json  hot-path throughput of the top-down machine,
#                       plus a 64-bit model signature over all model
#                       outputs. The signature must match the committed
#                       file bit-for-bit — any semantic change to the
#                       model fails here unless it is explicitly
#                       acknowledged with ALBERTA_ALLOW_MODEL_CHANGE=1.
#   BENCH_table2.json   serial vs parallel wall time of the full
#                       Table II characterization.
#
# Set ALBERTA_SKIP_BENCH=1 to stop after ctest, and ALBERTA_JOBS to
# control the worker-pool size.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

if [[ "${ALBERTA_SKIP_BENCH:-0}" != "1" ]]; then
    committed_sig=""
    if [[ -f BENCH_machine.json ]]; then
        committed_sig="$(sed -n \
            's/.*"model_signature": "\(0x[0-9a-f]*\)".*/\1/p' \
            BENCH_machine.json)"
    fi
    "$BUILD_DIR"/bench/bench_machine --json BENCH_machine.json \
        > /dev/null
    new_sig="$(sed -n \
         's/.*"model_signature": "\(0x[0-9a-f]*\)".*/\1/p' \
        BENCH_machine.json)"
    echo "== BENCH_machine.json =="
    cat BENCH_machine.json
    if [[ -n "$committed_sig" && "$committed_sig" != "$new_sig" ]]; then
        if [[ "${ALBERTA_ALLOW_MODEL_CHANGE:-0}" == "1" ]]; then
            echo "check_build: model signature changed" \
                 "($committed_sig -> $new_sig), allowed by" \
                 "ALBERTA_ALLOW_MODEL_CHANGE=1"
        else
            echo "check_build: FAIL: model signature changed" \
                 "($committed_sig -> $new_sig)." >&2
            echo "The top-down model no longer produces bit-identical" \
                 "outputs. If intentional, rerun with" \
                 "ALBERTA_ALLOW_MODEL_CHANGE=1 and commit the new" \
                 "BENCH_machine.json." >&2
            exit 1
        fi
    fi

    "$BUILD_DIR"/bench/bench_table2 --json BENCH_table2.json \
        > /dev/null
    echo "== BENCH_table2.json =="
    cat BENCH_table2.json
fi

echo "check_build: OK"
