#!/usr/bin/env bash
# Tier-1 verification plus the cross-PR performance tracker.
#
#   scripts/check_build.sh [build-dir]
#
# Runs the canonical configure/build/test sequence from ROADMAP.md and
# then regenerates the performance trackers:
#
#   BENCH_machine.json  hot-path throughput of the top-down machine,
#                       plus a 64-bit model signature over all model
#                       outputs. The signature must match the committed
#                       file bit-for-bit — any semantic change to the
#                       model fails here unless it is explicitly
#                       acknowledged with ALBERTA_ALLOW_MODEL_CHANGE=1.
#   BENCH_table2.json   serial vs suite-scheduled vs cache-warm vs
#                       segment-parallel wall time of the full
#                       Table II characterization, with the splice
#                       error and critical-path columns.
#
# In between it smoke-tests the CLI: traced characterization (JSON
# spans), persistent cache (disk-warm bit-identity), and checkpoint-
# and-splice segmentation (--segments 4 within the pinned 1e-3
# fraction tolerance, checksums exact).
#
# After regenerating, each tracker is diffed against the committed
# snapshot with scripts/bench_diff.py: a >20% regression of any
# suite-level metric (uops/s, seconds, speedups) fails the build
# unless explicitly acknowledged with ALBERTA_ALLOW_PERF_REGRESSION=1.
# 20%, not the script's 10% default, because the shared 1-core CI box
# shows ±8-15% run-to-run variance even when idle; per-benchmark rows
# are noisier still and report without gating.
#
# Set ALBERTA_SKIP_BENCH=1 to stop after ctest, and ALBERTA_JOBS to
# control the worker-pool size.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Observability smoke test: one traced characterization through the
# CLI. The trace must be JSON-parseable line by line with at least one
# span per workload, and the Table II row must be a JSON document.
trace_file="$BUILD_DIR/check_trace.jsonl"
table2_json="$BUILD_DIR/check_table2_row.json"
"$BUILD_DIR"/examples/alberta_cli characterize 505.mcf_r \
    --trace "$trace_file" --metrics --format json \
    > "$table2_json" 2> /dev/null
if command -v python3 > /dev/null; then
    python3 - "$trace_file" "$table2_json" << 'EOF'
import json, sys
trace, table2 = sys.argv[1], sys.argv[2]
spans = []
with open(trace) as f:
    for n, line in enumerate(f, 1):
        try:
            spans.append(json.loads(line))
        except ValueError as e:
            sys.exit(f"check_build: trace line {n} is not JSON: {e}")
for key in ("id", "parent", "name", "cat", "start_s", "dur_s"):
    if any(key not in s for s in spans):
        sys.exit(f"check_build: trace span missing key '{key}'")
runs = [s for s in spans if s["cat"] in ("model_run", "refrate_rep")]
roots = [s for s in spans if s["cat"] == "characterize"]
if not roots:
    sys.exit("check_build: no characterize root span in trace")
workloads = roots[0].get("workloads", 0)
if len({r["name"] for r in runs}) < workloads:
    sys.exit(f"check_build: {len(runs)} run spans for "
             f"{workloads} workloads")
row = json.load(open(table2))
if row[0]["benchmark"] != "505.mcf_r":
    sys.exit("check_build: bad JSON Table II row")
print(f"check_build: trace OK ({len(spans)} spans, "
      f"{workloads} workloads), JSON Table II row OK")
EOF
else
    echo "check_build: python3 not found, skipping trace validation"
fi

# Persistent-cache smoke test: the same characterization through a
# fresh cache directory twice. The second process must hit the disk
# cache and produce a bit-identical JSON Table II row.
cache_dir="$(mktemp -d "${TMPDIR:-/tmp}/alberta-check-cache.XXXXXX")"
trap 'rm -rf "$cache_dir"' EXIT
cold_row="$BUILD_DIR/check_cache_cold.json"
warm_row="$BUILD_DIR/check_cache_warm.json"
cold_stats="$BUILD_DIR/check_cache_cold.stats"
warm_stats="$BUILD_DIR/check_cache_warm.stats"
"$BUILD_DIR"/examples/alberta_cli characterize 505.mcf_r \
    --cache-dir "$cache_dir" --stats --format json \
    > "$cold_row" 2> "$cold_stats"
"$BUILD_DIR"/examples/alberta_cli characterize 505.mcf_r \
    --cache-dir "$cache_dir" --stats --format json \
    > "$warm_row" 2> "$warm_stats"
if ! cmp -s "$cold_row" "$warm_row"; then
    echo "check_build: FAIL: disk-warm Table II row differs from" \
         "the cold one" >&2
    exit 1
fi
warm_hits="$(sed -n 's/.* disk_hits=\([0-9]*\).*/\1/p' "$warm_stats")"
if [[ -z "$warm_hits" || "$warm_hits" -eq 0 ]]; then
    echo "check_build: FAIL: second run reported no disk-cache hits" >&2
    cat "$warm_stats" >&2
    exit 1
fi
echo "check_build: persistent cache OK ($warm_hits disk hits," \
     "identical JSON row)"

# Segment-parallel smoke test: the same benchmark exact and spliced
# into 4 segments. Checksums must match exactly; every per-workload
# top-down fraction must agree within the pinned 1e-3 tolerance.
exact_report="$BUILD_DIR/check_segments_exact.json"
spliced_report="$BUILD_DIR/check_segments_spliced.json"
"$BUILD_DIR"/examples/alberta_cli report 505.mcf_r \
    --segments 1 --format json > "$exact_report" 2> /dev/null
"$BUILD_DIR"/examples/alberta_cli report 505.mcf_r \
    --segments 4 --format json > "$spliced_report" 2> /dev/null
if command -v python3 > /dev/null; then
    python3 - "$exact_report" "$spliced_report" << 'EOF'
import json, sys
exact = json.load(open(sys.argv[1]))
spliced = json.load(open(sys.argv[2]))
ew, sw = exact["workloads"], spliced["workloads"]
if [w["name"] for w in ew] != [w["name"] for w in sw]:
    sys.exit("check_build: segmented run changed the workload list")
worst = 0.0
for e, s in zip(ew, sw):
    if e["checksum"] != s["checksum"]:
        sys.exit(f"check_build: checksum drift on {e['name']}: "
                 f"{e['checksum']} != {s['checksum']}")
    for key in ("frontend", "backend", "badspec", "retiring"):
        worst = max(worst, abs(e[key] - s[key]))
if worst >= 1e-3:
    sys.exit(f"check_build: spliced fraction error {worst:.2e} "
             "exceeds the pinned 1e-3 tolerance")
print(f"check_build: segment splice OK ({len(ew)} workloads, "
      f"max fraction error {worst:.2e} < 1e-3, checksums exact)")
EOF
else
    echo "check_build: python3 not found, skipping segment check"
fi

# Serving-layer smoke test: a daemon on a temp socket must answer a
# Table II suite request with bytes identical to the CLI run against
# the same cache directory, answer /metrics out of the registry, and
# drain cleanly on SIGTERM without leaving the socket or any temp
# files behind. --segments 1 / "segments":1 pins the exact (unsliced)
# path so the comparison is independent of the host's core count.
serve_dir="$(mktemp -d "${TMPDIR:-/tmp}/alberta-check-serve.XXXXXX")"
trap 'rm -rf "$cache_dir" "$serve_dir"' EXIT
serve_sock="$serve_dir/daemon.sock"
serve_cache="$serve_dir/cache"
serve_log="$BUILD_DIR/check_serve.log"
served_suite="$BUILD_DIR/check_serve_suite.json"
cli_suite="$BUILD_DIR/check_cli_suite.json"
if command -v python3 > /dev/null; then
    "$BUILD_DIR"/examples/alberta_serve --socket "$serve_sock" \
        --cache-dir "$serve_cache" > "$serve_log" 2>&1 &
    serve_pid=$!
    python3 - "$serve_sock" "$served_suite" << 'EOF'
import json, socket, sys, time
path, out = sys.argv[1], sys.argv[2]
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
deadline = time.time() + 10
while True:
    try:
        s.connect(path)
        break
    except OSError:
        if time.time() > deadline:
            sys.exit("check_build: daemon socket never came up")
        time.sleep(0.05)
f = s.makefile("rwb")

def ask(line):
    f.write(line.encode() + b"\n")
    f.flush()
    resp = f.readline()
    if not resp:
        sys.exit("check_build: daemon hung up mid-conversation")
    return resp.decode()

resp = ask('{"op":"run","id":1,"run":{"kind":"suite","segments":1}}')
env = json.loads(resp)
if env["id"] != 1 or not env["ok"] or env["kind"] != "suite":
    sys.exit(f"check_build: bad suite envelope: {resp[:200]}")
body = resp.rstrip("\r\n")
start = body.index(',"payload":') + len(',"payload":')
with open(out, "w") as fh:
    fh.write(body[start:-1] + "\n")
env = json.loads(ask("/metrics"))
if not env["ok"] or env["kind"] != "metrics":
    sys.exit("check_build: bad /metrics envelope")
rendered = json.dumps(env["payload"])
for counter in ("serve.requests", "serve.responses"):
    if counter not in rendered:
        sys.exit(f"check_build: /metrics is missing {counter}")
s.close()
print("check_build: daemon answered the suite request and /metrics")
EOF
    "$BUILD_DIR"/examples/alberta_cli suite --format json --segments 1 \
        --cache-dir "$serve_cache" > "$cli_suite" 2> /dev/null
    if ! cmp -s "$served_suite" "$cli_suite"; then
        echo "check_build: FAIL: served suite JSON differs from the" \
             "CLI run on the same cache" >&2
        exit 1
    fi
    kill -TERM "$serve_pid"
    serve_rc=0
    wait "$serve_pid" || serve_rc=$?
    if [[ "$serve_rc" != "0" ]]; then
        echo "check_build: FAIL: daemon exited $serve_rc on SIGTERM" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    if [[ -e "$serve_sock" ]]; then
        echo "check_build: FAIL: daemon left its socket behind" >&2
        exit 1
    fi
    if find "$serve_dir" -name '*.tmp*' | grep -q .; then
        echo "check_build: FAIL: daemon left temp files behind" >&2
        exit 1
    fi
    echo "check_build: serving layer OK (byte-identical suite JSON," \
         "clean SIGTERM drain)"
else
    echo "check_build: python3 not found, skipping daemon check"
fi

if [[ "${ALBERTA_SKIP_BENCH:-0}" != "1" ]]; then
    committed_sig=""
    if [[ -f BENCH_machine.json ]]; then
        committed_sig="$(sed -n \
            's/.*"model_signature": "\(0x[0-9a-f]*\)".*/\1/p' \
            BENCH_machine.json)"
        cp BENCH_machine.json "$BUILD_DIR/bench_machine_baseline.json"
    fi
    if [[ -f BENCH_table2.json ]]; then
        cp BENCH_table2.json "$BUILD_DIR/bench_table2_baseline.json"
    fi
    "$BUILD_DIR"/bench/bench_machine --json BENCH_machine.json \
        > /dev/null
    new_sig="$(sed -n \
         's/.*"model_signature": "\(0x[0-9a-f]*\)".*/\1/p' \
        BENCH_machine.json)"
    echo "== BENCH_machine.json =="
    cat BENCH_machine.json
    if [[ -n "$committed_sig" && "$committed_sig" != "$new_sig" ]]; then
        if [[ "${ALBERTA_ALLOW_MODEL_CHANGE:-0}" == "1" ]]; then
            echo "check_build: model signature changed" \
                 "($committed_sig -> $new_sig), allowed by" \
                 "ALBERTA_ALLOW_MODEL_CHANGE=1"
        else
            echo "check_build: FAIL: model signature changed" \
                 "($committed_sig -> $new_sig)." >&2
            echo "The top-down model no longer produces bit-identical" \
                 "outputs. If intentional, rerun with" \
                 "ALBERTA_ALLOW_MODEL_CHANGE=1 and commit the new" \
                 "BENCH_machine.json." >&2
            exit 1
        fi
    fi

    "$BUILD_DIR"/bench/bench_table2 --json BENCH_table2.json \
        > /dev/null
    echo "== BENCH_table2.json =="
    cat BENCH_table2.json

    # Performance-regression gate: diff each regenerated tracker
    # against the committed snapshot. bench_diff.py fails on a
    # regression of any suite-level metric beyond the tolerance;
    # per-benchmark rows, counts, and signatures are reported but
    # never fail here (the signature gate above already handles
    # model changes).
    if command -v python3 > /dev/null; then
        perf_fail=0
        for pair in \
            "bench_machine_baseline.json BENCH_machine.json" \
            "bench_table2_baseline.json BENCH_table2.json"; do
            baseline="$BUILD_DIR/${pair%% *}"
            current="${pair##* }"
            [[ -f "$baseline" ]] || continue
            echo "== bench_diff: $current vs committed =="
            if ! python3 scripts/bench_diff.py "$baseline" \
                "$current" --tolerance 0.20; then
                perf_fail=1
            fi
        done
        if [[ "$perf_fail" == "1" ]]; then
            if [[ "${ALBERTA_ALLOW_PERF_REGRESSION:-0}" == "1" ]]; then
                echo "check_build: performance regressed beyond tolerance," \
                     "allowed by ALBERTA_ALLOW_PERF_REGRESSION=1"
            else
                echo "check_build: FAIL: performance regressed beyond" \
                     "tolerance versus the committed trackers." >&2
                echo "If the slowdown is intentional, rerun with" \
                     "ALBERTA_ALLOW_PERF_REGRESSION=1 and commit the" \
                     "regenerated BENCH_*.json." >&2
                exit 1
            fi
        fi
    else
        echo "check_build: python3 not found, skipping bench diff"
    fi
fi

echo "check_build: OK"
