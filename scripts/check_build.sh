#!/usr/bin/env bash
# Tier-1 verification plus the cross-PR performance tracker.
#
#   scripts/check_build.sh [build-dir]
#
# Runs the canonical configure/build/test sequence from ROADMAP.md and
# then regenerates BENCH_table2.json (serial vs parallel wall time of
# the full Table II characterization) so the execution engine's speedup
# is tracked across PRs. Set ALBERTA_SKIP_BENCH=1 to stop after ctest,
# and ALBERTA_JOBS to control the worker-pool size.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

if [[ "${ALBERTA_SKIP_BENCH:-0}" != "1" ]]; then
    "$BUILD_DIR"/bench/bench_table2 --json BENCH_table2.json \
        > /dev/null
    echo "== BENCH_table2.json =="
    cat BENCH_table2.json
fi

echo "check_build: OK"
