#!/usr/bin/env python3
"""Compare two BENCH_*.json performance trackers and fail on regression.

    scripts/bench_diff.py OLD.json NEW.json [--tolerance 0.10]

Walks both documents and compares every numeric leaf they share, using
the key name to decide which direction is a regression:

  *_seconds                     lower is better -> regression when the
                                new value exceeds old * (1 + tolerance)
  *_percent                     lower is better, but near-zero baselines
                                make relative deltas meaningless (0.7% ->
                                1.5% overhead is "+103%"); gated on the
                                absolute percentage-point increase
                                instead (--percent-points)
  *_per_second, speedup_*       higher is better -> regression when the
                                new value drops below old * (1 - tolerance)

Per-benchmark rows (paths under `per_benchmark.`) are sub-second
timings whose run-to-run noise on the 1-core CI box exceeds any
tolerance that would still catch real regressions; they are reported
with their deltas but never gate — the suite-level aggregates are the
tracked contract. Keys matching no pattern (counts, signatures,
booleans, strings) likewise report but never fail — they are
configuration, not performance. Exit status: 0 when no tracked metric
regressed by more than the tolerance, 1 otherwise, 2 on usage errors.
"""

import argparse
import json
import sys

LOWER_IS_BETTER = ("_seconds", "_percent")
HIGHER_IS_BETTER = ("_per_second",)
HIGHER_PREFIXES = ("speedup_",)
NOTE_ONLY_PREFIXES = ("per_benchmark.",)


def flatten(node, prefix=""):
    """Yield (dotted_path, leaf_value) pairs for a JSON document."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from flatten(value, f"{prefix}{key}.")
    elif isinstance(node, list):
        for index, value in enumerate(node):
            # Prefer a stable name over a positional index so rows can
            # be matched even when their order changes between runs.
            label = (
                value.get("name", index)
                if isinstance(value, dict)
                else index
            )
            yield from flatten(value, f"{prefix}{label}.")
    else:
        yield prefix[:-1], node


def direction(path):
    """'lower', 'higher', or None (untracked) for a metric path."""
    if path.startswith(NOTE_ONLY_PREFIXES):
        return None
    leaf = path.rsplit(".", 1)[-1]
    if leaf.endswith(LOWER_IS_BETTER):
        return "lower"
    if leaf.endswith(HIGHER_IS_BETTER) or leaf.startswith(
        HIGHER_PREFIXES
    ):
        return "higher"
    return None


def main():
    parser = argparse.ArgumentParser(
        description="Fail when NEW.json regresses versus OLD.json."
    )
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--percent-points",
        type=float,
        default=2.0,
        help="allowed absolute increase, in percentage points, for "
        "*_percent metrics (default 2.0)",
    )
    args = parser.parse_args()

    try:
        with open(args.old) as f:
            old = dict(flatten(json.load(f)))
        with open(args.new) as f:
            new = dict(flatten(json.load(f)))
    except (OSError, ValueError) as e:
        sys.exit(f"bench_diff: {e}")

    regressions = []
    for path in sorted(old.keys() & new.keys()):
        a, b = old[path], new[path]
        if a == b:
            continue
        kind = direction(path)
        numeric = isinstance(a, (int, float)) and isinstance(
            b, (int, float)
        )
        if not numeric:
            print(f"  note  {path}: {a} -> {b}")
            continue
        delta = (b - a) / a if a else float("inf") if b else 0.0
        arrow = f"{path}: {a:.6g} -> {b:.6g} ({delta:+.1%})"
        if kind is None:
            print(f"  note  {arrow}")
            continue
        if kind == "lower" and path.rsplit(".", 1)[-1].endswith(
            "_percent"
        ):
            worse = (b - a) > args.percent_points
        else:
            worse = (
                delta > args.tolerance
                if kind == "lower"
                else delta < -args.tolerance
            )
        if worse:
            regressions.append(arrow)
            print(f"  REGRESSION  {arrow}")
        else:
            print(f"  ok    {arrow}")

    if regressions:
        print(
            f"bench_diff: {len(regressions)} metric(s) regressed "
            f"beyond {args.tolerance:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"bench_diff: no regression beyond {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
