#!/usr/bin/env bash
# Regenerate every result in EXPERIMENTS.md: full test suite into
# test_output.txt, every table/figure/ablation bench into
# bench_output.txt.
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

(for b in build/bench/*; do
    case "$b" in *CTestTestfile*|*cmake_install*) continue ;; esac
    echo
    echo "===== $b ====="
    "$b"
done) 2>&1 | tee bench_output.txt

# One fully observed run session: span trace + metrics table for the
# suite's most workload-rich benchmark, kept alongside the bench logs.
build/examples/alberta_cli characterize 502.gcc_r \
    --trace trace_output.jsonl --metrics --format json \
    > table2_gcc.json 2> metrics_output.txt
echo "wrote trace_output.jsonl, table2_gcc.json, metrics_output.txt"
