/** @file Tests for the 544.nab_r mini-benchmark. */
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/nab/benchmark.h"
#include "benchmarks/nab/forcefield.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::nab;

TEST(Pdb, SerializeParseRoundTrip)
{
    const Molecule mol = generateProtein(10, 5);
    const Molecule parsed = Molecule::parsePdb(mol.serializePdb());
    ASSERT_EQ(parsed.atoms.size(), mol.atoms.size());
    ASSERT_EQ(parsed.bonds.size(), mol.bonds.size());
    for (std::size_t i = 0; i < mol.atoms.size(); ++i) {
        EXPECT_NEAR(parsed.atoms[i].position[0],
                    mol.atoms[i].position[0], 1e-5);
        EXPECT_NEAR(parsed.atoms[i].charge, mol.atoms[i].charge,
                    1e-5);
    }
}

TEST(Pdb, ParseRejectsGarbage)
{
    EXPECT_THROW(Molecule::parsePdb("HELLO 1 2 3\n"),
                 support::FatalError);
    EXPECT_THROW(Molecule::parsePdb("ATOM 0 C 0 0 0 0\n"),
                 support::FatalError); // missing mass field
    EXPECT_THROW(Molecule::parsePdb("END\n"), support::FatalError);
    EXPECT_THROW(
        Molecule::parsePdb("ATOM 0 C 0 0 0 0 12\nCONECT 0 5 1.0\n"),
        support::FatalError); // bond to nonexistent atom
}

TEST(Prm, SerializeParseRoundTrip)
{
    PrmConfig cfg;
    cfg.steps = 9;
    cfg.dt = 0.004;
    cfg.cutoff = 11.0;
    cfg.dielectric = 2.5;
    const PrmConfig parsed = PrmConfig::parse(cfg.serialize());
    EXPECT_EQ(parsed.steps, 9);
    EXPECT_DOUBLE_EQ(parsed.dt, 0.004);
    EXPECT_DOUBLE_EQ(parsed.cutoff, 11.0);
    EXPECT_DOUBLE_EQ(parsed.dielectric, 2.5);
}

TEST(Protein, GeneratorChainIsConnected)
{
    const Molecule mol = generateProtein(20, 7);
    EXPECT_EQ(mol.atoms.size(), 40u);      // backbone + side chain
    EXPECT_EQ(mol.bonds.size(), 19u + 20u); // chain + side bonds
    // Consecutive backbone atoms sit ~3.8 A apart.
    for (std::size_t b = 0; b < mol.bonds.size(); ++b) {
        const auto [i, j] = mol.bonds[b];
        double r2 = 0;
        for (int k = 0; k < 3; ++k) {
            const double d = mol.atoms[i].position[k] -
                             mol.atoms[j].position[k];
            r2 += d * d;
        }
        EXPECT_LT(std::sqrt(r2), 8.0);
    }
}

TEST(Forces, TwoLjAtomsAtMinimumFeelNoForce)
{
    // Build a 2-atom molecule at the LJ minimum distance 2^{1/6} s.
    Molecule mol;
    Atom a;
    a.charge = 0.0;
    mol.atoms.push_back(a);
    a.position = {std::pow(2.0, 1.0 / 6.0) * a.sigma, 0, 0};
    mol.atoms.push_back(a);
    PrmConfig prm;
    prm.steps = 0;
    Simulation sim(mol, prm);
    runtime::ExecutionContext ctx;
    const MdStats stats = sim.run(ctx);
    EXPECT_LT(stats.maxForce, 1e-9);
    EXPECT_LT(stats.potentialEnergy, 0.0); // in the well
}

TEST(Forces, OppositeChargesAttract)
{
    Molecule mol;
    Atom plus, minus;
    plus.charge = 0.5;
    minus.charge = -0.5;
    minus.position = {8.0, 0, 0}; // outside LJ range, inside cutoff
    mol.atoms.push_back(plus);
    mol.atoms.push_back(minus);
    PrmConfig prm;
    prm.steps = 3;
    prm.dt = 0.01;
    Simulation sim(mol, prm);
    runtime::ExecutionContext ctx;
    sim.run(ctx);
    // After a few steps they must have moved toward each other; the
    // potential becomes more negative.
    Simulation fresh(mol, prm);
    EXPECT_LT(sim.potentialEnergy(ctx), fresh.potentialEnergy(ctx));
}

TEST(Forces, CutoffLimitsPairCount)
{
    const Molecule mol = generateProtein(30, 9);
    PrmConfig tight, loose;
    tight.steps = loose.steps = 1;
    tight.cutoff = 4.0;
    loose.cutoff = 40.0;
    runtime::ExecutionContext ctx;
    Simulation a(mol, tight), b(mol, loose);
    EXPECT_LT(a.run(ctx).pairInteractions,
              b.run(ctx).pairInteractions);
}

TEST(Dynamics, EnergyStaysBoundedAtSmallDt)
{
    const Molecule mol = generateProtein(15, 11);
    PrmConfig prm;
    prm.steps = 30;
    prm.dt = 0.001;
    Simulation sim(mol, prm);
    runtime::ExecutionContext ctx;
    const MdStats stats = sim.run(ctx);
    EXPECT_TRUE(std::isfinite(stats.potentialEnergy));
    EXPECT_TRUE(std::isfinite(stats.kineticEnergy));
    EXPECT_LT(stats.kineticEnergy, 1e7);
}

TEST(NabBenchmark, WorkloadSetMatchesPaper)
{
    NabBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 11u); // Table II: 11 workloads
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_GE(alberta, 7); // paper: seven distinct proteins
}

TEST(NabBenchmark, RunsDeterministically)
{
    NabBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("nab::nonbonded_forces"));
    EXPECT_TRUE(a.coverage.count("nab::bonded_forces"));
}

} // namespace
