/** @file Tests for the 511.povray_r mini-benchmark. */
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/povray/benchmark.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::povray;

TEST(Vec3, BasicAlgebra)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_DOUBLE_EQ((a + b).y, 7.0);
    EXPECT_DOUBLE_EQ((b - a).z, 3.0);
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
    const Vec3 c = a.cross(b);
    EXPECT_DOUBLE_EQ(c.x, -3.0);
    EXPECT_DOUBLE_EQ(c.y, 6.0);
    EXPECT_DOUBLE_EQ(c.z, -3.0);
    EXPECT_NEAR((Vec3{3, 4, 0}.length()), 5.0, 1e-12);
    EXPECT_NEAR((Vec3{0, 0, 9}.normalized().z), 1.0, 1e-12);
}

TEST(Scene, SerializeParseRoundTrip)
{
    const Scene scene = makeCollectionScene(3, 8);
    const Scene parsed = Scene::parse(scene.serialize());
    EXPECT_EQ(parsed.shapes.size(), scene.shapes.size());
    EXPECT_EQ(parsed.lights.size(), scene.lights.size());
    EXPECT_NEAR(parsed.camera.position.z, scene.camera.position.z,
                1e-9);
}

TEST(Scene, ParseRejectsGarbage)
{
    EXPECT_THROW(Scene::parse("bogus 1 2 3"), support::FatalError);
    EXPECT_THROW(Scene::parse("render 32 32 4 1\n"),
                 support::FatalError); // no camera / objects
}

TEST(Render, ProducesNonTrivialImage)
{
    Scene scene = makeLumpyScene(5, 3);
    scene.width = 24;
    scene.height = 18;
    runtime::ExecutionContext ctx;
    RenderStats stats;
    const auto image = render(scene, ctx, &stats);
    ASSERT_EQ(image.size(), 24u * 18u);
    double lo = 1e9, hi = -1e9;
    for (const double v : image) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_LT(lo, hi); // contrast exists
    EXPECT_GT(stats.primaryRays, 0u);
    EXPECT_GT(stats.shadowRays, 0u);
}

TEST(Render, DeterministicImages)
{
    Scene scene = makePrimitiveScene(6, true, 0.2);
    scene.width = 16;
    scene.height = 12;
    runtime::ExecutionContext ctx;
    const auto a = render(scene, ctx);
    const auto b = render(scene, ctx);
    EXPECT_EQ(a, b);
}

TEST(Render, ReflectiveSceneCastsReflectionRays)
{
    Scene scene = makePrimitiveScene(7, false, 0.0);
    scene.width = 24;
    scene.height = 18;
    runtime::ExecutionContext ctx;
    RenderStats stats;
    render(scene, ctx, &stats);
    EXPECT_GT(stats.reflectionRays, 0u);
    EXPECT_EQ(stats.refractionRays, 0u);
}

TEST(Render, RefractiveSceneCastsRefractionRays)
{
    Scene scene = makePrimitiveScene(8, true, 0.0);
    scene.width = 24;
    scene.height = 18;
    runtime::ExecutionContext ctx;
    RenderStats stats;
    render(scene, ctx, &stats);
    EXPECT_GT(stats.refractionRays, 0u);
}

TEST(Render, DepthZeroStopsSecondaryRays)
{
    Scene scene = makePrimitiveScene(9, true, 0.0);
    scene.width = 16;
    scene.height = 12;
    scene.maxDepth = 0;
    runtime::ExecutionContext ctx;
    RenderStats stats;
    render(scene, ctx, &stats);
    EXPECT_EQ(stats.reflectionRays + stats.refractionRays, 0u);
}

TEST(Render, ShadowsDarkenOccludedGround)
{
    // A sphere directly between the light and a ground point.
    Scene scene;
    Shape plane;
    plane.kind = ShapeKind::Plane;
    plane.radius = 0.0;
    plane.material.shade = 0.9;
    scene.shapes.push_back(plane);
    Shape ball;
    ball.kind = ShapeKind::Sphere;
    ball.center = {0, 1.5, 0};
    ball.radius = 0.7;
    scene.shapes.push_back(ball);
    Light sun;
    sun.position = {0, 8, 0};
    sun.intensity = 1.2;
    scene.lights.push_back(sun);
    scene.camera.position = {0, 3, -6};
    scene.camera.lookAt = {0, 0, 0};
    scene.width = 48;
    scene.height = 36;
    runtime::ExecutionContext ctx;
    const auto image = render(scene, ctx);
    // The shadowed center column must be darker than the edges.
    const auto at = [&](int x, int y) {
        return image[y * 48 + x];
    };
    // The image center looks at the shadowed ground origin; the left
    // edge of the same row sees lit ground.
    EXPECT_LT(at(24, 18), at(4, 18));
}

TEST(PovrayBenchmark, WorkloadSetMatchesPaper)
{
    PovrayBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 10u); // Table II: 10 workloads
    int collection = 0, lumpy = 0, primitive = 0;
    for (const auto &wl : w) {
        collection += wl.name.find("collection") != std::string::npos;
        lumpy += wl.name.find("lumpy") != std::string::npos;
        primitive += wl.name.find("primitive") != std::string::npos;
    }
    EXPECT_GE(collection, 2); // the three families of Section IV-B
    EXPECT_GE(lumpy, 1);
    EXPECT_GE(primitive, 3);
}

TEST(PovrayBenchmark, RunsDeterministically)
{
    PovrayBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("povray::trace_ray"));
}

} // namespace
