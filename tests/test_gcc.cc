/** @file Tests for the 502.gcc_r mini-benchmark (compiler + OneFile). */
#include <gtest/gtest.h>

#include "benchmarks/gcc/benchmark.h"
#include "benchmarks/gcc/codegen.h"
#include "benchmarks/gcc/generator.h"
#include "benchmarks/gcc/onefile.h"
#include "benchmarks/gcc/optimizer.h"
#include "benchmarks/gcc/parser.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::gcc;

std::int64_t
runProgram(const std::string &source)
{
    runtime::ExecutionContext ctx;
    Program program = parseSource(source, ctx);
    const Module module = compile(program, ctx);
    return execute(module, ctx).value;
}

std::int64_t
runOptimized(const std::string &source)
{
    runtime::ExecutionContext ctx;
    Program program = parseSource(source, ctx);
    optimize(program, ctx);
    const Module module = compile(program, ctx);
    return execute(module, ctx).value;
}

TEST(Lexer, TokenizesOperatorsAndKeywords)
{
    runtime::ExecutionContext ctx;
    const auto tokens =
        tokenize("int x = 1 << 3; if (x >= 8) x = x && 1;", ctx);
    ASSERT_GT(tokens.size(), 10u);
    EXPECT_EQ(tokens[0].kind, TokenKind::KwInt);
    EXPECT_EQ(tokens[1].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[4].kind, TokenKind::Shl);
    EXPECT_EQ(tokens.back().kind, TokenKind::End);
}

TEST(Lexer, SkipsComments)
{
    runtime::ExecutionContext ctx;
    const auto tokens =
        tokenize("int a; // line\n/* block\ncomment */ int b;", ctx);
    int idents = 0;
    for (const auto &t : tokens)
        idents += t.kind == TokenKind::Identifier;
    EXPECT_EQ(idents, 2);
}

TEST(Lexer, RejectsUnknownCharacters)
{
    runtime::ExecutionContext ctx;
    EXPECT_THROW(tokenize("int a @ b;", ctx), support::FatalError);
}

TEST(Compiler, ArithmeticAndPrecedence)
{
    EXPECT_EQ(runProgram("int main(void) { return 2 + 3 * 4; }"), 14);
    EXPECT_EQ(runProgram("int main(void) { return (2 + 3) * 4; }"),
              20);
    EXPECT_EQ(runProgram("int main(void) { return 7 % 3 + 10 / 4; }"),
              3);
    EXPECT_EQ(runProgram("int main(void) { return 1 << 4 | 3; }"), 19);
}

TEST(Compiler, VariablesAndAssignment)
{
    EXPECT_EQ(runProgram("int main(void) { int x = 5; x = x + 2; "
                         "return x; }"),
              7);
}

TEST(Compiler, GlobalsPersistAcrossCalls)
{
    const char *src = "int counter = 0;"
                      "int bump(int a, int b) { counter = counter + a "
                      "+ b; return counter; }"
                      "int main(void) { bump(1, 2); bump(3, 4); "
                      "return counter; }";
    EXPECT_EQ(runProgram(src), 10);
}

TEST(Compiler, ControlFlow)
{
    const char *src =
        "int main(void) { int s = 0; int i = 0;"
        "for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) s = s + i; }"
        "while (s > 15) s = s - 1;"
        "return s; }";
    EXPECT_EQ(runProgram(src), 15);
}

TEST(Compiler, RecursionWorks)
{
    const char *src = "int fib(int n, int unused) { if (n < 2) return "
                      "n; return fib(n - 1, 0) + fib(n - 2, 0); }"
                      "int main(void) { return fib(12, 0); }";
    EXPECT_EQ(runProgram(src), 144);
}

TEST(Compiler, ScopingShadowsCorrectly)
{
    const char *src = "int x = 100;"
                      "int main(void) { int x = 1; { int x = 2; } "
                      "return x; }";
    EXPECT_EQ(runProgram(src), 1);
}

TEST(Compiler, ErrorsAreFatal)
{
    EXPECT_THROW(runProgram("int main(void) { return y; }"),
                 support::FatalError); // undefined variable
    EXPECT_THROW(runProgram("int main(void) { return f(1); }"),
                 support::FatalError); // undefined function
    EXPECT_THROW(runProgram("int f(int a) { return a; }"),
                 support::FatalError); // no main
    EXPECT_THROW(runProgram("int main(void) { return 1 / 0; }"),
                 support::FatalError); // division by zero
    EXPECT_THROW(runProgram("int main(void) { while (1) { } }"),
                 support::FatalError); // budget exceeded
}

TEST(Optimizer, FoldsConstants)
{
    runtime::ExecutionContext ctx;
    Program p = parseSource(
        "int main(void) { return 2 * 3 + (10 - 4); }", ctx);
    const OptStats stats = optimize(p, ctx);
    EXPECT_GT(stats.foldedExprs, 0u);
    const Module module = compile(p, ctx);
    EXPECT_EQ(execute(module, ctx).value, 12);
}

TEST(Optimizer, RemovesDeadBranches)
{
    runtime::ExecutionContext ctx;
    Program p = parseSource("int main(void) { if (0) return 1; "
                            "while (0) return 2; return 3; }",
                            ctx);
    const OptStats stats = optimize(p, ctx);
    EXPECT_GE(stats.deadBranches, 2u);
    const Module module = compile(p, ctx);
    EXPECT_EQ(execute(module, ctx).value, 3);
}

TEST(Optimizer, PreservesSemantics)
{
    // Property: optimized and unoptimized programs agree.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        ProgramConfig cfg;
        cfg.seed = seed;
        cfg.functions = 10;
        const std::string source = generateProgram(cfg);
        EXPECT_EQ(runProgram(source), runOptimized(source))
            << "seed " << seed;
    }
}

TEST(Optimizer, AppliesAlgebraicIdentities)
{
    runtime::ExecutionContext ctx;
    Program p = parseSource(
        "int main(void) { int x = 7; return x * 1 + 0 + x / 1; }",
        ctx);
    const OptStats stats = optimize(p, ctx);
    EXPECT_GT(stats.simplified, 0u);
    const Module module = compile(p, ctx);
    EXPECT_EQ(execute(module, ctx).value, 14);
}

TEST(PrettyPrint, RoundTripsThroughParser)
{
    ProgramConfig cfg;
    cfg.seed = 42;
    cfg.functions = 8;
    const std::string source = generateProgram(cfg);
    runtime::ExecutionContext ctx;
    Program p = parseSource(source, ctx);
    const std::string printed = p.prettyPrint();
    Program again = parseSource(printed, ctx);
    EXPECT_EQ(again.prettyPrint(), printed); // fixpoint
    EXPECT_EQ(runProgram(source), runProgram(printed));
}

TEST(Generator, ProgramsCompileAndRunAcrossStyles)
{
    for (const auto style :
         {ProgramStyle::Balanced, ProgramStyle::LoopHeavy,
          ProgramStyle::BranchHeavy, ProgramStyle::CallHeavy,
          ProgramStyle::Arithmetic}) {
        ProgramConfig cfg;
        cfg.seed = 7 + static_cast<int>(style);
        cfg.functions = 12;
        cfg.style = style;
        const std::string source = generateProgram(cfg);
        EXPECT_NO_THROW(runProgram(source))
            << "style " << static_cast<int>(style);
    }
}

TEST(Generator, DeterministicPerSeed)
{
    ProgramConfig cfg;
    cfg.seed = 11;
    EXPECT_EQ(generateProgram(cfg), generateProgram(cfg));
    ProgramConfig other = cfg;
    other.seed = 12;
    EXPECT_NE(generateProgram(cfg), generateProgram(other));
}

TEST(OneFile, ManglesStaticCollisions)
{
    const std::vector<std::string> sources = {
        "static int v = 1;"
        "static int get(int a, int b) { return v + a + b; }"
        "int first(int a, int b) { return get(a, b); }"
        "int main(void) { return first(1, 2) + second(3, 4); }",
        "static int v = 10;"
        "static int get(int a, int b) { return v * (a + b); }"
        "int second(int a, int b) { return get(a, b); }",
    };
    runtime::ExecutionContext ctx;
    const OneFileResult merged = oneFileFromSources(sources, ctx);
    EXPECT_GE(merged.renamedSymbols, 4);
    const Module module = compile(merged.merged, ctx);
    // first: 1 + 1 + 2 = 4; second: 10 * 7 = 70.
    EXPECT_EQ(execute(module, ctx).value, 74);
}

TEST(OneFile, LocalsShadowManagedStatics)
{
    // A local named like a static must not be renamed.
    const std::vector<std::string> sources = {
        "static int s = 5;"
        "int f(int a, int b) { int s = 100; return s + a + b; }"
        "int g(int a, int b) { return s + a + b; }"
        "int main(void) { return f(1, 1) + g(1, 1); }",
        "static int s = 7;"
        "int h(int a, int b) { return s + a; }",
    };
    runtime::ExecutionContext ctx;
    const OneFileResult merged = oneFileFromSources(sources, ctx);
    const Module module = compile(merged.merged, ctx);
    // f = 102 (local s), g = 7 (unit-0 static s).
    EXPECT_EQ(execute(module, ctx).value, 109);
}

TEST(OneFile, RejectsExternalCollisions)
{
    const std::vector<std::string> sources = {
        "int shared(int a, int b) { return a; }"
        "int main(void) { return 0; }",
        "int shared(int a, int b) { return b; }",
    };
    runtime::ExecutionContext ctx;
    EXPECT_THROW(oneFileFromSources(sources, ctx),
                 support::FatalError);
}

TEST(OneFile, RejectsMissingOrDuplicateMain)
{
    runtime::ExecutionContext ctx;
    EXPECT_THROW(
        oneFileFromSources({"int f(int a, int b) { return a; }"}, ctx),
        support::FatalError);
    EXPECT_THROW(oneFileFromSources({"int main(void) { return 0; }",
                                     "int main(void) { return 1; }"},
                                    ctx),
                 support::FatalError);
}

TEST(OneFile, MultiUnitGeneratorMergesAndRuns)
{
    ProgramConfig cfg;
    cfg.seed = 21;
    cfg.functions = 12;
    const auto sources = generateMultiUnitProgram(cfg, 4);
    ASSERT_EQ(sources.size(), 4u);
    runtime::ExecutionContext ctx;
    const OneFileResult merged = oneFileFromSources(sources, ctx);
    EXPECT_GT(merged.renamedSymbols, 0);
    const Module module = compile(merged.merged, ctx);
    EXPECT_NO_THROW(execute(module, ctx));
}

TEST(GccBenchmark, WorkloadSetMatchesPaper)
{
    GccBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 19u); // Table II: 19 workloads
    int onefile = 0;
    for (const auto &wl : w)
        onefile += wl.name.find("onefile") != std::string::npos;
    EXPECT_EQ(onefile, 3); // mcf, lbm, johnripper (Section IV-A)
}

TEST(GccBenchmark, RunsDeterministically)
{
    GccBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("gcc::lex"));
    EXPECT_TRUE(a.coverage.count("gcc::parse"));
    EXPECT_TRUE(a.coverage.count("gcc::codegen"));
    EXPECT_TRUE(a.coverage.count("gcc::vm_execute"));
}

} // namespace
