/** @file Tests for interval recording and phase analysis. */
#include <gtest/gtest.h>

#include "core/phases.h"
#include "support/check.h"
#include "support/rng.h"

namespace {

using namespace alberta;
using namespace alberta::core;

TEST(MachineIntervals, RecordsEqualSizedDeltas)
{
    topdown::Machine machine;
    machine.recordIntervals(1000);
    machine.setMethod(1, 512);
    for (int i = 0; i < 10; ++i)
        machine.ops(topdown::OpKind::IntAlu, 500);
    ASSERT_EQ(machine.intervals().size(), 5u);
    for (const auto &slots : machine.intervals())
        EXPECT_NEAR(slots.retiring, 1000.0, 1.0);
}

TEST(MachineIntervals, DeltasSumToTotals)
{
    topdown::Machine machine;
    machine.recordIntervals(2000);
    machine.setMethod(1, 2048);
    support::Rng rng(4);
    for (int i = 0; i < 9000; ++i) {
        machine.branch(1, rng() & 1);
        machine.load(rng() % (1 << 20));
    }
    topdown::SlotCounts sum;
    for (const auto &slots : machine.intervals())
        sum += slots;
    const auto totals = machine.totals();
    // Completed intervals cover all but the trailing partial one.
    EXPECT_LE(sum.total(), totals.total());
    EXPECT_GT(sum.total(), totals.total() * 0.7);
}

TEST(MachineIntervals, PhasedWorkloadShowsDistinctIntervals)
{
    topdown::Machine machine;
    machine.recordIntervals(5000);
    machine.setMethod(1, 512);
    // Phase 1: clean ALU. Phase 2: cache-hostile loads.
    machine.ops(topdown::OpKind::IntAlu, 15000);
    support::Rng rng(5);
    for (int i = 0; i < 15000; ++i)
        machine.load((rng() % (1 << 24)) & ~63ULL);
    const auto &iv = machine.intervals();
    ASSERT_GE(iv.size(), 4u);
    const double firstBackend =
        iv.front().backend / iv.front().total();
    const double lastBackend = iv.back().backend / iv.back().total();
    EXPECT_GT(lastBackend, firstBackend * 2);
}

TEST(MachineIntervals, BulkOpsCrossingSeveralBoundaries)
{
    // Regression: a single bulk ops() report spanning many interval
    // boundaries must emit one interval per boundary crossed, not one
    // interval for the whole report.
    topdown::Machine machine;
    machine.recordIntervals(1000);
    machine.setMethod(1, 512);
    machine.ops(topdown::OpKind::IntAlu, 5500);
    ASSERT_EQ(machine.intervals().size(), 5u);
    for (const auto &slots : machine.intervals())
        EXPECT_DOUBLE_EQ(slots.retiring, 1000.0);
    EXPECT_EQ(machine.retiredOps(), 5500u);
}

TEST(MachineIntervals, PhaseVectorsIndependentOfReportingStride)
{
    // The same uop stream reported in different chunk sizes must give
    // the same interval count and (up to FP accumulation order) the
    // same per-interval slot deltas.
    auto run = [](std::uint64_t chunk) {
        topdown::Machine machine;
        machine.recordIntervals(1000);
        machine.setMethod(1, 2048);
        for (std::uint64_t done = 0; done < 12000; done += chunk)
            machine.ops(topdown::OpKind::FpMul, chunk);
        return machine.intervals();
    };
    const auto bulk = run(12000);
    const auto mid = run(300);
    const auto fine = run(1);
    ASSERT_EQ(bulk.size(), 12u);
    ASSERT_EQ(mid.size(), 12u);
    ASSERT_EQ(fine.size(), 12u);
    for (std::size_t i = 0; i < bulk.size(); ++i) {
        EXPECT_DOUBLE_EQ(bulk[i].retiring, fine[i].retiring);
        EXPECT_NEAR(bulk[i].backend, fine[i].backend,
                    1e-9 * (1.0 + fine[i].backend));
        EXPECT_NEAR(bulk[i].frontend, fine[i].frontend,
                    1e-9 * (1.0 + fine[i].frontend));
        EXPECT_NEAR(mid[i].backend, fine[i].backend,
                    1e-9 * (1.0 + fine[i].backend));
    }
}

TEST(MachineIntervals, EnablingMidRunIsFatal)
{
    topdown::Machine machine;
    machine.setMethod(1, 512);
    machine.ops(topdown::OpKind::IntAlu, 10);
    EXPECT_THROW(machine.recordIntervals(100),
                 support::FatalError);
}

TEST(MachineIntervals, ResetClearsIntervals)
{
    topdown::Machine machine;
    machine.recordIntervals(100);
    machine.setMethod(1, 512);
    machine.ops(topdown::OpKind::IntAlu, 500);
    EXPECT_FALSE(machine.intervals().empty());
    machine.reset();
    EXPECT_TRUE(machine.intervals().empty());
}

TEST(PhaseAnalysis, KernelApproximatesOwnRun)
{
    const auto bm = makeBenchmark("557.xz_r");
    const auto w = runtime::findWorkload(*bm, "train");
    const PhaseAnalysis analysis = analyzePhases(*bm, w, 10);
    EXPECT_GE(analysis.intervalRatios.size(), 5u);
    EXPECT_LT(analysis.representative,
              analysis.intervalRatios.size());
    // A medoid interval of the same run should sit close to the
    // whole-run behaviour (L1 over 4 fractions; max possible 2.0).
    EXPECT_LT(analysis.selfError, 0.5);
}

TEST(PhaseAnalysis, BehaviourDistanceIsAMetricOnExamples)
{
    stats::TopdownRatios a{0.2, 0.5, 0.1, 0.2};
    stats::TopdownRatios b{0.1, 0.6, 0.1, 0.2};
    EXPECT_DOUBLE_EQ(behaviourDistance(a, a), 0.0);
    EXPECT_NEAR(behaviourDistance(a, b), 0.2, 1e-12);
    EXPECT_DOUBLE_EQ(behaviourDistance(a, b),
                     behaviourDistance(b, a));
}

TEST(PhaseAnalysis, TooFewIntervalsIsFatal)
{
    const auto bm = makeBenchmark("557.xz_r");
    const auto w = runtime::findWorkload(*bm, "test");
    EXPECT_THROW(analyzePhases(*bm, w, 1), support::FatalError);
}

} // namespace
