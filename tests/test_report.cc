/** @file Tests for the per-benchmark report renderer. */
#include <gtest/gtest.h>

#include "core/report.h"

namespace {

using namespace alberta;
using namespace alberta::core;

Characterization
characterizeMcf()
{
    static const Characterization cached = [] {
        const auto bm = makeBenchmark("505.mcf_r");
        RunRequest request;
        request.refrateRepetitions = 2;
        return characterize(*bm, request);
    }();
    return cached;
}

TEST(Report, ContainsAllSections)
{
    const std::string report = renderReport(characterizeMcf());
    EXPECT_NE(report.find("# 505.mcf_r"), std::string::npos);
    EXPECT_NE(report.find("## Per-workload top-down fractions"),
              std::string::npos);
    EXPECT_NE(report.find("## Method coverage"), std::string::npos);
    EXPECT_NE(report.find("## Section V summaries"),
              std::string::npos);
    EXPECT_NE(report.find("mu_g(V)"), std::string::npos);
    EXPECT_NE(report.find("mu_g(M)"), std::string::npos);
}

TEST(Report, ListsEveryWorkloadRow)
{
    const Characterization c = characterizeMcf();
    const std::string report = renderReport(c);
    for (const auto &name : c.workloadNames)
        EXPECT_NE(report.find("| " + name + " |"),
                  std::string::npos)
            << name;
}

TEST(Report, ListsCoverageMethods)
{
    const Characterization c = characterizeMcf();
    const std::string report = renderReport(c);
    for (const auto &method : c.coverage.methods)
        EXPECT_NE(report.find(method), std::string::npos) << method;
}

TEST(Report, FlagsSmallMeanPathology)
{
    // lbm has the near-zero bad-speculation mean; its report must
    // carry the Section V-B caveat. mcf's must not.
    const auto lbm = makeBenchmark("519.lbm_r");
    RunRequest request;
    request.refrateRepetitions = 1;
    const std::string lbmReport =
        renderReport(characterize(*lbm, request));
    EXPECT_NE(lbmReport.find("Caveat"), std::string::npos);

    const std::string mcfReport = renderReport(characterizeMcf());
    EXPECT_EQ(mcfReport.find("Caveat"), std::string::npos);
}

TEST(Report, RecordsRefrateRuns)
{
    const std::string report = renderReport(characterizeMcf());
    EXPECT_NE(report.find("mean of 2 runs"), std::string::npos);
}

} // namespace
