/** @file Tests for the core suite library (Table II pipeline). */
#include <gtest/gtest.h>

#include "core/suite.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::core;

TEST(Suite, AllBenchmarksPresent)
{
    const auto all = allBenchmarks();
    EXPECT_EQ(all.size(), 16u); // 15 Table II rows + 525.x264_r
    for (const auto &bm : all) {
        EXPECT_FALSE(bm->name().empty());
        EXPECT_FALSE(bm->area().empty());
        EXPECT_GE(bm->workloads().size(), 3u);
    }
}

TEST(Suite, Table2NamesAllResolvable)
{
    EXPECT_EQ(table2Names().size(), 15u);
    for (const auto &name : table2Names()) {
        const auto bm = makeBenchmark(name);
        EXPECT_EQ(bm->name(), name);
    }
}

TEST(Suite, UnknownBenchmarkIsFatal)
{
    EXPECT_THROW(makeBenchmark("999.bogus_r"), support::FatalError);
}

TEST(Suite, WorkloadCountsMatchTable2)
{
    // The per-benchmark workload counts reported in the paper's
    // Table II.
    const std::pair<const char *, std::size_t> expected[] = {
        {"502.gcc_r", 19},       {"505.mcf_r", 7},
        {"507.cactuBSSN_r", 11}, {"510.parest_r", 8},
        {"511.povray_r", 10},    {"519.lbm_r", 30},
        {"520.omnetpp_r", 10},   {"521.wrf_r", 16},
        {"523.xalancbmk_r", 8},  {"526.blender_r", 16},
        {"531.deepsjeng_r", 12}, {"541.leela_r", 12},
        {"544.nab_r", 11},       {"548.exchange2_r", 13},
        {"557.xz_r", 12},
    };
    for (const auto &[name, count] : expected)
        EXPECT_EQ(makeBenchmark(name)->workloads().size(), count)
            << name;
}

TEST(Suite, EveryBenchmarkHasRefrateAndTrain)
{
    for (const auto &bm : allBenchmarks()) {
        bool refrate = false, train = false;
        for (const auto &w : bm->workloads()) {
            refrate |= w.isRefrate();
            train |= w.name == "train";
        }
        EXPECT_TRUE(refrate) << bm->name();
        EXPECT_TRUE(train) << bm->name();
    }
}

TEST(Characterize, ProducesConsistentSummary)
{
    const auto bm = makeBenchmark("505.mcf_r");
    RunRequest request;
    request.refrateRepetitions = 2;
    const Characterization c = characterize(*bm, request);
    EXPECT_EQ(c.benchmark, "505.mcf_r");
    EXPECT_EQ(c.workloadNames.size(), 7u);
    EXPECT_EQ(c.topdownPerWorkload.size(), 7u);
    EXPECT_EQ(c.refrateRuns.size(), 2u);
    EXPECT_GT(c.refrateSeconds, 0.0);
    EXPECT_GT(c.topdown.muGV, 0.0);
    EXPECT_GT(c.coverage.muGM, 0.0);
    // Every per-workload top-down vector is normalized.
    for (const auto &r : c.topdownPerWorkload) {
        EXPECT_NEAR(r.frontend + r.backend + r.badspec + r.retiring,
                    1.0, 1e-9);
    }
}

TEST(Characterize, RowFormattingMatchesHeader)
{
    const auto bm = makeBenchmark("505.mcf_r");
    RunRequest request;
    request.refrateRepetitions = 1;
    const Characterization c = characterize(*bm, request);
    EXPECT_EQ(table2Row(c).size(), table2Header().size());
}

} // namespace
