/** @file Tests for the paper's summarization methodology (Eqs. 1-5). */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/summary.h"
#include "support/check.h"

namespace {

using namespace alberta::stats;

TEST(Descriptive, MeanAndStddev)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(Descriptive, MeanOfEmptyIsFatal)
{
    EXPECT_THROW(mean({}), alberta::support::FatalError);
}

TEST(GeometricMean, HandComputed)
{
    const std::vector<double> v = {2.0, 8.0};
    EXPECT_NEAR(geometricMean(v), 4.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive)
{
    EXPECT_THROW(geometricMean(std::vector<double>{1.0, 0.0}),
                 alberta::support::FatalError);
    EXPECT_THROW(geometricMean(std::vector<double>{-1.0}),
                 alberta::support::FatalError);
}

TEST(GeometricStddev, ConstantSeriesIsOne)
{
    const std::vector<double> v = {3.0, 3.0, 3.0, 3.0};
    EXPECT_NEAR(geometricStddev(v), 1.0, 1e-12);
}

TEST(GeometricStddev, HandComputed)
{
    // Eq. 2 on {e, 1/e}: mu_g = 1, deviations ln(e)=1 and ln(1/e)=-1,
    // mean square = 1, sigma_g = e.
    const std::vector<double> v = {std::exp(1.0), std::exp(-1.0)};
    EXPECT_NEAR(geometricStddev(v), std::exp(1.0), 1e-12);
}

TEST(GeometricStddev, IsScaleInvariant)
{
    const std::vector<double> v = {1.0, 2.0, 5.0};
    std::vector<double> scaled;
    for (double x : v)
        scaled.push_back(x * 37.0);
    EXPECT_NEAR(geometricStddev(v), geometricStddev(scaled), 1e-12);
}

TEST(Summarize, VariationOfConstantSeries)
{
    // Eq. 3: V = sigma_g / mu_g = 1 / value for a constant series.
    const std::vector<double> v = {0.25, 0.25, 0.25};
    const GeoSummary s = summarize(v);
    EXPECT_NEAR(s.mean, 0.25, 1e-12);
    EXPECT_NEAR(s.stddev, 1.0, 1e-12);
    EXPECT_NEAR(s.variation, 4.0, 1e-12);
}

/**
 * Eq. 4 consistency with the paper's Table II: the 502.gcc_r row reports
 * mu_g = {23.4%, 33.6%, 11.9%, 29.5%}, sigma_g = {1.2, 1.2, 1.2, 1.1},
 * and mu_g(V) = 5.1, which is exactly the geometric mean of
 * sigma_g / mu_g with ratios taken as fractions.
 */
TEST(TopdownSummary, MatchesPaperGccRowArithmetic)
{
    const double v[4] = {1.2 / 0.234, 1.2 / 0.336, 1.2 / 0.119,
                         1.1 / 0.295};
    const double muGV =
        std::pow(v[0] * v[1] * v[2] * v[3], 0.25);
    EXPECT_NEAR(muGV, 5.1, 0.05);
}

TEST(TopdownSummary, UniformWorkloadsGiveMinimalVariation)
{
    std::vector<TopdownRatios> w(5, TopdownRatios{0.2, 0.4, 0.1, 0.3});
    const TopdownSummary s = summarizeTopdown(w);
    EXPECT_NEAR(s.frontend.mean, 0.2, 1e-12);
    EXPECT_NEAR(s.backend.mean, 0.4, 1e-12);
    EXPECT_NEAR(s.badspec.mean, 0.1, 1e-12);
    EXPECT_NEAR(s.retiring.mean, 0.3, 1e-12);
    // With sigma_g = 1 for all categories, mu_g(V) = geomean of 1/mu_g.
    const double expected = std::pow(5.0 * 2.5 * 10.0 * (1 / 0.3), 0.25);
    EXPECT_NEAR(s.muGV, expected, 1e-9);
}

TEST(TopdownSummary, MoreVariableWorkloadsScoreHigher)
{
    std::vector<TopdownRatios> stable = {
        {0.20, 0.40, 0.10, 0.30},
        {0.21, 0.39, 0.10, 0.30},
        {0.19, 0.41, 0.10, 0.30},
    };
    std::vector<TopdownRatios> variable = {
        {0.10, 0.60, 0.05, 0.25},
        {0.30, 0.20, 0.20, 0.30},
        {0.20, 0.40, 0.10, 0.30},
    };
    EXPECT_GT(summarizeTopdown(variable).muGV,
              summarizeTopdown(stable).muGV);
}

/**
 * The 519.lbm_r pathology from Section V-B: a category whose geometric
 * mean is tiny (bad speculation ~0.4%) combined with high relative
 * spread inflates mu_g(V) even when the other categories are stable.
 */
TEST(TopdownSummary, SmallMeanCategoryInflatesMuGV)
{
    std::vector<TopdownRatios> lbmLike = {
        {0.02, 0.61, 0.002, 0.34},
        {0.02, 0.61, 0.012, 0.34},
        {0.02, 0.61, 0.001, 0.34},
    };
    std::vector<TopdownRatios> balanced = {
        {0.02, 0.60, 0.10, 0.34},
        {0.02, 0.62, 0.09, 0.33},
        {0.02, 0.61, 0.11, 0.34},
    };
    EXPECT_GT(summarizeTopdown(lbmLike).muGV,
              summarizeTopdown(balanced).muGV * 2.0);
}

TEST(TopdownSummary, ZeroRatiosAreFloored)
{
    std::vector<TopdownRatios> w = {
        {0.2, 0.5, 0.0, 0.3},
        {0.2, 0.5, 0.0, 0.3},
    };
    const TopdownSummary s = summarizeTopdown(w, 1e-4);
    EXPECT_NEAR(s.badspec.mean, 1e-4, 1e-12);
}

TEST(CoverageSummary, SingleStableMethod)
{
    std::vector<CoverageMap> w(3);
    for (auto &m : w)
        m["solve"] = 1.0;
    const CoverageSummary s = summarizeCoverage(w);
    ASSERT_EQ(s.methods.size(), 1u);
    EXPECT_EQ(s.methods[0], "solve");
    // Constant series: sigma_g = 1, mu_g = 100.01 percent.
    EXPECT_NEAR(s.perMethod[0].stddev, 1.0, 1e-12);
    EXPECT_NEAR(s.muGM, 1.0 / 100.01, 1e-9);
}

TEST(CoverageSummary, GroupsTinyMethodsIntoOthers)
{
    std::vector<CoverageMap> w(2);
    w[0]["hot"] = 0.999;
    w[0]["tiny1"] = 0.0004; // < 0.05% in all workloads -> grouped
    w[0]["tiny2"] = 0.0003;
    w[1]["hot"] = 0.9990;
    w[1]["tiny1"] = 0.0004;
    w[1]["tiny2"] = 0.0004;
    const CoverageSummary s = summarizeCoverage(w);
    ASSERT_EQ(s.methods.size(), 2u);
    EXPECT_EQ(s.methods[0], "hot");
    EXPECT_EQ(s.methods[1], "others");
    // The grouped bucket holds the sum of the tiny methods (in percent).
    EXPECT_NEAR(s.matrix[0][1], 0.07 + 0.01, 1e-9);
}

TEST(CoverageSummary, MethodAboveThresholdInOneWorkloadIsKept)
{
    std::vector<CoverageMap> w(2);
    w[0]["hot"] = 0.999;
    w[0]["phase"] = 0.0001;
    w[1]["hot"] = 0.899;
    w[1]["phase"] = 0.1000; // significant here -> kept everywhere
    const CoverageSummary s = summarizeCoverage(w);
    EXPECT_NE(std::find(s.methods.begin(), s.methods.end(), "phase"),
              s.methods.end());
}

TEST(CoverageSummary, ShiftingCoverageScoresHigherThanStable)
{
    std::vector<CoverageMap> stable(3), shifting(3);
    for (int i = 0; i < 3; ++i) {
        stable[i]["a"] = 0.5;
        stable[i]["b"] = 0.5;
    }
    shifting[0]["a"] = 0.9;
    shifting[0]["b"] = 0.1;
    shifting[1]["a"] = 0.1;
    shifting[1]["b"] = 0.9;
    shifting[2]["a"] = 0.5;
    shifting[2]["b"] = 0.5;
    EXPECT_GT(summarizeCoverage(shifting).muGM,
              summarizeCoverage(stable).muGM);
}

TEST(CoverageSummary, MissingMethodTreatedAsZero)
{
    std::vector<CoverageMap> w(2);
    w[0]["a"] = 1.0;
    w[1]["a"] = 0.5;
    w[1]["b"] = 0.5;
    const CoverageSummary s = summarizeCoverage(w);
    ASSERT_EQ(s.methods.size(), 2u);
    // "b" absent from workload 0 -> offset-only value 0.01 percent.
    const auto bIdx =
        std::find(s.methods.begin(), s.methods.end(), "b") -
        s.methods.begin();
    EXPECT_NEAR(s.matrix[0][bIdx], 0.01, 1e-12);
}

TEST(CoverageSummary, MethodsSortedByMeanCoverage)
{
    std::vector<CoverageMap> w(2);
    w[0]["small"] = 0.2;
    w[0]["big"] = 0.8;
    w[1]["small"] = 0.3;
    w[1]["big"] = 0.7;
    const CoverageSummary s = summarizeCoverage(w);
    ASSERT_EQ(s.methods.size(), 2u);
    EXPECT_EQ(s.methods[0], "big");
    EXPECT_EQ(s.methods[1], "small");
}

/** Property sweep: Eq. 1/2 invariants across sample shapes. */
class GeoProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(GeoProperty, MeanBetweenMinAndMax)
{
    const int n = GetParam();
    std::vector<double> v;
    double lo = 1e9, hi = 0.0;
    for (int i = 1; i <= n; ++i) {
        v.push_back(0.1 * i);
        lo = std::min(lo, v.back());
        hi = std::max(hi, v.back());
    }
    const double g = geometricMean(v);
    EXPECT_GE(g, lo - 1e-12);
    EXPECT_LE(g, hi + 1e-12);
    // AM-GM inequality.
    EXPECT_LE(g, mean(v) + 1e-12);
}

TEST_P(GeoProperty, StddevAtLeastOne)
{
    const int n = GetParam();
    std::vector<double> v;
    for (int i = 1; i <= n; ++i)
        v.push_back(1.0 + (i % 3));
    EXPECT_GE(geometricStddev(v), 1.0 - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeoProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 30));

} // namespace
