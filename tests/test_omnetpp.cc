/** @file Tests for the 520.omnetpp_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/omnetpp/benchmark.h"
#include "benchmarks/omnetpp/sim.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::omnetpp;

TEST(Topology, GeneratorsProduceExpectedShapes)
{
    EXPECT_EQ(makeLine(10).links.size(), 9u);
    EXPECT_EQ(makeRing(10).links.size(), 10u);
    EXPECT_EQ(makeStar(10).links.size(), 9u);
    EXPECT_EQ(makeTree(15).links.size(), 14u);
}

TEST(Topology, GeneratorsAreConnected)
{
    EXPECT_TRUE(makeLine(12).connected());
    EXPECT_TRUE(makeRing(12).connected());
    EXPECT_TRUE(makeStar(12).connected());
    EXPECT_TRUE(makeTree(12).connected());
    support::Rng rng(4);
    EXPECT_TRUE(makeRandom(10, 14, rng).connected());
}

TEST(Topology, RandomHasRequestedEdges)
{
    support::Rng rng(5);
    const Topology t = makeRandom(10, 18, rng);
    EXPECT_EQ(t.links.size(), 18u);
    EXPECT_EQ(t.nodes, 10);
}

TEST(Topology, SerializeParseRoundTrip)
{
    support::Rng rng(6);
    const Topology t = makeRandom(8, 12, rng);
    const Topology parsed = Topology::parse(t.serialize());
    EXPECT_EQ(parsed.nodes, t.nodes);
    ASSERT_EQ(parsed.links.size(), t.links.size());
    for (std::size_t i = 0; i < t.links.size(); ++i) {
        EXPECT_EQ(parsed.links[i].a, t.links[i].a);
        EXPECT_EQ(parsed.links[i].b, t.links[i].b);
        EXPECT_NEAR(parsed.links[i].delayUs, t.links[i].delayUs, 1e-6);
    }
}

TEST(Topology, ParseRejectsGarbage)
{
    EXPECT_THROW(Topology::parse("nonsense 1 2\n"),
                 support::FatalError);
    EXPECT_THROW(Topology::parse("network x\nnodes 2\nlink 0 5 1 1\n"),
                 support::FatalError);
    EXPECT_THROW(Topology::parse(""), support::FatalError);
}

TEST(Simulator, RoutesFollowShortestPaths)
{
    const Topology line = makeLine(5);
    Simulator sim(line, SimConfig{});
    EXPECT_EQ(sim.nextHop(0, 4), 1);
    EXPECT_EQ(sim.nextHop(4, 0), 3);
    EXPECT_EQ(sim.nextHop(2, 2), -1);
}

TEST(Simulator, StarRoutesThroughHub)
{
    const Topology star = makeStar(6);
    Simulator sim(star, SimConfig{});
    EXPECT_EQ(sim.nextHop(3, 5), 0);
    EXPECT_EQ(sim.nextHop(0, 5), 5);
}

TEST(Simulator, DeliversPackets)
{
    const Topology ring = makeRing(8);
    SimConfig cfg;
    cfg.simTimeUs = 5000;
    cfg.seed = 11;
    Simulator sim(ring, cfg);
    runtime::ExecutionContext ctx;
    const SimStats stats = sim.run(ctx);
    EXPECT_GT(stats.eventsProcessed, 100u);
    EXPECT_GT(stats.packetsDelivered, 0u);
    EXPECT_GT(stats.meanLatencyUs(), 0.0);
    // Conservation: everything sent is delivered, dropped, or in
    // flight at the horizon.
    EXPECT_GE(stats.packetsSent,
              stats.packetsDelivered + stats.packetsDropped);
}

TEST(Simulator, CongestionCausesDrops)
{
    const Topology star = makeStar(12);
    SimConfig busy;
    busy.simTimeUs = 20000;
    busy.meanInterarrivalUs = 4.0; // hammer the hub
    busy.queueLimit = 8;
    busy.seed = 12;
    Simulator sim(star, busy);
    runtime::ExecutionContext ctx;
    const SimStats stats = sim.run(ctx);
    EXPECT_GT(stats.packetsDropped, 0u);
}

TEST(Simulator, LongerHorizonProcessesMoreEvents)
{
    const Topology tree = makeTree(15);
    SimConfig shortCfg, longCfg;
    shortCfg.simTimeUs = 2000;
    longCfg.simTimeUs = 20000;
    runtime::ExecutionContext ctx;
    Simulator a(tree, shortCfg), b(tree, longCfg);
    EXPECT_GT(b.run(ctx).eventsProcessed * 1.0,
              a.run(ctx).eventsProcessed * 5.0);
}

TEST(Simulator, DisconnectedTopologyIsFatal)
{
    Topology t;
    t.name = "broken";
    t.nodes = 4;
    t.links.push_back({0, 1, 1.0, 100.0});
    EXPECT_THROW(Simulator(t, SimConfig{}), support::FatalError);
}

TEST(OmnetppBenchmark, WorkloadSetMatchesPaper)
{
    OmnetppBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 10u); // Table II: 10 workloads
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_EQ(alberta, 7); // line, ring, star, tree, random x3
}

TEST(OmnetppBenchmark, TrainAndRefShareTopology)
{
    OmnetppBenchmark bm;
    const auto ref = runtime::findWorkload(bm, "refrate");
    const auto train = runtime::findWorkload(bm, "train");
    EXPECT_EQ(ref.file("network.ned"), train.file("network.ned"));
    EXPECT_GT(ref.params.getDouble("sim_time_us"),
              train.params.getDouble("sim_time_us"));
}

TEST(OmnetppBenchmark, RunsDeterministically)
{
    OmnetppBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("omnetpp::handle_event"));
    EXPECT_TRUE(a.coverage.count("omnetpp::route"));
}

} // namespace
