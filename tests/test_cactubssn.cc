/** @file Tests for the 507.cactuBSSN_r mini-benchmark. */
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/cactubssn/benchmark.h"
#include "benchmarks/cactubssn/wave.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::cactubssn;

TEST(WaveConfig, SerializeParseRoundTrip)
{
    WaveConfig cfg;
    cfg.n = 24;
    cfg.steps = 7;
    cfg.cfl = 0.3;
    cfg.dissipation = 0.12;
    cfg.planeWaveInit = true;
    cfg.modes = 3;
    const WaveConfig parsed = WaveConfig::parse(cfg.serialize());
    EXPECT_EQ(parsed.n, 24);
    EXPECT_EQ(parsed.steps, 7);
    EXPECT_DOUBLE_EQ(parsed.cfl, 0.3);
    EXPECT_DOUBLE_EQ(parsed.dissipation, 0.12);
    EXPECT_TRUE(parsed.planeWaveInit);
    EXPECT_EQ(parsed.modes, 3);
}

TEST(WaveConfig, ParseRejectsBadInput)
{
    EXPECT_THROW(WaveConfig::parse("nonsense"), support::FatalError);
    EXPECT_THROW(WaveConfig::parse("mystery::knob = 3\n"),
                 support::FatalError);
    EXPECT_THROW(WaveConfig::parse("grid::n = 2\n"),
                 support::FatalError);
    EXPECT_THROW(
        WaveConfig::parse("grid::n = 16\nevolve::cfl = 0.9\n"),
        support::FatalError);
}

TEST(WaveSolver, EnergyApproximatelyConservedWithoutDissipation)
{
    WaveConfig cfg;
    cfg.n = 20;
    cfg.width = 0.3; // well-resolved pulse
    cfg.steps = 0;
    WaveSolver initial(cfg);
    runtime::ExecutionContext ctx;
    const double e0 = initial.run(ctx).energy;

    cfg.steps = 20;
    WaveSolver evolved(cfg);
    const double e1 = evolved.run(ctx).energy;
    EXPECT_NEAR(e1, e0, 0.05 * e0);
}

TEST(WaveSolver, DissipationDampsEnergy)
{
    WaveConfig clean, damped;
    clean.n = damped.n = 12;
    clean.steps = damped.steps = 24;
    damped.dissipation = 0.4;
    runtime::ExecutionContext ctx;
    const double eClean = WaveSolver(clean).run(ctx).energy;
    const double eDamped = WaveSolver(damped).run(ctx).energy;
    EXPECT_LT(eDamped, eClean);
}

TEST(WaveSolver, ConvergesToPlaneWaveSolution)
{
    // Fourth-order stencil: halving dx must shrink the error a lot.
    runtime::ExecutionContext ctx;
    WaveConfig coarse;
    coarse.planeWaveInit = true;
    coarse.n = 12;
    coarse.steps = 12;
    WaveConfig fine = coarse;
    fine.n = 24;
    fine.steps = 24; // same physical time (dt halves with dx)
    const double errCoarse =
        WaveSolver(coarse).run(ctx).l2ErrorVsExact;
    const double errFine = WaveSolver(fine).run(ctx).l2ErrorVsExact;
    EXPECT_LT(errFine, errCoarse / 6.0);
    EXPECT_LT(errFine, 0.05);
}

TEST(WaveSolver, StaysBoundedOverLongRuns)
{
    WaveConfig cfg;
    cfg.n = 10;
    cfg.steps = 60;
    cfg.dissipation = 0.1;
    runtime::ExecutionContext ctx;
    const WaveStats stats = WaveSolver(cfg).run(ctx);
    EXPECT_TRUE(std::isfinite(stats.maxU));
    EXPECT_LT(stats.maxU, 10.0);
}

TEST(CactuBenchmark, WorkloadSetMatchesPaper)
{
    CactuBssnBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 11u); // Table II: 11 workloads
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_GE(alberta, 7); // paper: seven suggested variations
}

TEST(CactuBenchmark, RunsDeterministically)
{
    CactuBssnBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("cactus::evolve"));
    // Dense FP stencil code: tiny bad-speculation share, like the
    // paper's 0.2% for 507.cactuBSSN_r.
    EXPECT_LT(a.topdown.badspec, 0.05);
}

} // namespace
