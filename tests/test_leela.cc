/** @file Tests for the 541.leela_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/leela/benchmark.h"
#include "benchmarks/leela/mcts.h"
#include "support/check.h"
#include "support/text.h"

namespace {

using namespace alberta;
using namespace alberta::leela;

TEST(GoBoard, RejectsBadSizes)
{
    EXPECT_THROW(GoBoard(8), support::FatalError);
    EXPECT_NO_THROW(GoBoard(9));
    EXPECT_NO_THROW(GoBoard(13));
    EXPECT_NO_THROW(GoBoard(19));
}

TEST(GoBoard, SimpleCapture)
{
    GoBoard b(9);
    // White stone at (4,4) surrounded by black on three sides, then
    // the fourth.
    b.play(b.point(4, 4), Color::White);
    b.play(b.point(3, 4), Color::Black);
    b.play(b.point(5, 4), Color::Black);
    b.play(b.point(4, 3), Color::Black);
    EXPECT_EQ(b.at(b.point(4, 4)), Color::White);
    const int captured = b.play(b.point(4, 5), Color::Black);
    EXPECT_EQ(captured, 1);
    EXPECT_EQ(b.at(b.point(4, 4)), Color::Empty);
}

TEST(GoBoard, GroupCapture)
{
    GoBoard b(9);
    // Two connected white stones on the edge.
    b.play(b.point(0, 0), Color::White);
    b.play(b.point(0, 1), Color::White);
    b.play(b.point(1, 0), Color::Black);
    b.play(b.point(1, 1), Color::Black);
    const int captured = b.play(b.point(0, 2), Color::Black);
    EXPECT_EQ(captured, 2);
    EXPECT_EQ(b.at(b.point(0, 0)), Color::Empty);
    EXPECT_EQ(b.at(b.point(0, 1)), Color::Empty);
}

TEST(GoBoard, SuicideIsIllegal)
{
    GoBoard b(9);
    b.play(b.point(0, 1), Color::Black);
    b.play(b.point(1, 0), Color::Black);
    // (0,0) is now a suicide point for white.
    EXPECT_FALSE(b.legal(b.point(0, 0), Color::White));
    EXPECT_TRUE(b.legal(b.point(0, 0), Color::Black));
}

TEST(GoBoard, CaptureBeatsSuicide)
{
    GoBoard b(9);
    // Black (0,1),(1,0); white (0,0) would be suicide, but if black
    // (0,1) is in atari white capturing it is legal.
    b.play(b.point(0, 1), Color::Black);
    b.play(b.point(1, 0), Color::Black);
    b.play(b.point(1, 1), Color::White);
    b.play(b.point(0, 2), Color::White);
    // Black (0,1) has liberty only at (0,0).
    EXPECT_TRUE(b.legal(b.point(0, 0), Color::White));
    const int captured = b.play(b.point(0, 0), Color::White);
    EXPECT_EQ(captured, 1);
}

TEST(GoBoard, SimpleKoForbidden)
{
    GoBoard b(9);
    // Standard ko shape around (4,4)/(4,5).
    b.play(b.point(3, 4), Color::Black);
    b.play(b.point(5, 4), Color::Black);
    b.play(b.point(4, 3), Color::Black);
    b.play(b.point(3, 5), Color::White);
    b.play(b.point(5, 5), Color::White);
    b.play(b.point(4, 6), Color::White);
    b.play(b.point(4, 4), Color::White);
    // Black captures the ko stone.
    const int captured = b.play(b.point(4, 5), Color::Black);
    EXPECT_EQ(captured, 1);
    // Immediate recapture at (4,4) is forbidden.
    EXPECT_FALSE(b.legal(b.point(4, 4), Color::White));
    // After a move elsewhere the ko opens again.
    b.play(b.point(8, 8), Color::White);
    EXPECT_TRUE(b.legal(b.point(4, 4), Color::White));
}

TEST(GoBoard, TrueEyeDetection)
{
    GoBoard b(9);
    // Black eye at (0,0): neighbours (0,1),(1,0) black + diagonal
    // (1,1) black.
    b.play(b.point(0, 1), Color::Black);
    b.play(b.point(1, 0), Color::Black);
    b.play(b.point(1, 1), Color::Black);
    EXPECT_TRUE(b.isTrueEye(b.point(0, 0), Color::Black));
    EXPECT_FALSE(b.isTrueEye(b.point(0, 0), Color::White));
}

TEST(GoBoard, AreaScoreCountsTerritory)
{
    GoBoard b(9);
    // A black wall splitting the board: column 4 all black.
    for (int r = 0; r < 9; ++r)
        b.play(b.point(r, 4), Color::Black);
    // All empty territory touches only black.
    EXPECT_EQ(b.areaScore(), 81);
    b.play(b.point(4, 6), Color::White);
    // White stone breaks the right territory.
    EXPECT_LT(b.areaScore(), 81);
}

TEST(GoBoard, PassesAccumulateAndReset)
{
    GoBoard b(9);
    b.play(kPass, Color::Black);
    EXPECT_EQ(b.passes(), 1);
    b.play(b.point(0, 0), Color::White);
    EXPECT_EQ(b.passes(), 0);
    b.play(kPass, Color::Black);
    b.play(kPass, Color::White);
    EXPECT_EQ(b.passes(), 2);
}

TEST(Sgf, SerializeParseRoundTrip)
{
    SgfGame game;
    game.boardSize = 9;
    game.moves = {0, 40, 80, kPass, 12};
    const SgfGame parsed = SgfGame::parse(game.serialize());
    EXPECT_EQ(parsed.boardSize, 9);
    EXPECT_EQ(parsed.moves, game.moves);
    EXPECT_EQ(parsed.firstColor, Color::Black);
}

TEST(Sgf, ParseRejectsGarbage)
{
    EXPECT_THROW(SgfGame::parse("not sgf"), support::FatalError);
    EXPECT_THROW(SgfGame::parse("(;SZ[9];B[zz])"),
                 support::FatalError);
}

TEST(Generator, GamesAreReplayable)
{
    support::Rng rng(5);
    const SgfGame game = generateGame(9, rng);
    EXPECT_GT(game.moves.size(), 20u);
    // Replaying must hit no illegal move.
    GoBoard board(9);
    Color toMove = Color::Black;
    for (const int move : game.moves) {
        if (move == kPass) {
            board.play(kPass, toMove);
        } else {
            const int p = board.point(move / 9, move % 9);
            ASSERT_TRUE(board.legal(p, toMove));
            board.play(p, toMove);
        }
        toMove = opponent(toMove);
    }
}

TEST(Generator, CullRemovesEndMoves)
{
    support::Rng rng(6);
    const SgfGame game = generateGame(9, rng);
    const SgfGame culled = cullEndMoves(game, 10);
    EXPECT_EQ(culled.moves.size(), game.moves.size() - 10);
    for (std::size_t i = 0; i < culled.moves.size(); ++i)
        EXPECT_EQ(culled.moves[i], game.moves[i]);
}

TEST(Mcts, ChoosesLegalMoves)
{
    GoBoard board(9);
    MctsConfig cfg;
    cfg.simulationsPerMove = 20;
    MctsEngine engine(cfg, 7);
    runtime::ExecutionContext ctx;
    const int move = engine.chooseMove(board, Color::Black, ctx);
    EXPECT_TRUE(move == kPass || board.legal(move, Color::Black));
}

TEST(Mcts, PlaysGameToCompletion)
{
    support::Rng rng(8);
    const SgfGame culled = cullEndMoves(generateGame(9, rng), 8);
    MctsConfig cfg;
    cfg.simulationsPerMove = 10;
    cfg.maxGameMoves = 20;
    MctsEngine engine(cfg, 9);
    runtime::ExecutionContext ctx;
    const GameStats stats = engine.playToEnd(culled, ctx);
    EXPECT_GT(stats.movesPlayed, 0);
    EXPECT_GT(stats.simulations, 0u);
    EXPECT_GT(stats.playoutMoves, 0u);
}

TEST(LeelaBenchmark, WorkloadSetMatchesPaper)
{
    LeelaBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 12u); // Table II: 12 workloads
    int alberta = 0;
    bool saw13 = false, saw19 = false;
    for (const auto &wl : w) {
        alberta += wl.isAlberta();
        if (wl.params.getInt("board_size") == 13)
            saw13 = true;
        if (wl.params.getInt("board_size") == 19)
            saw19 = true;
    }
    EXPECT_EQ(alberta, 9); // paper: nine additional workloads
    EXPECT_TRUE(saw13);    // "three board sizes to choose from"
    EXPECT_TRUE(saw19);
}

TEST(LeelaBenchmark, RunsDeterministically)
{
    LeelaBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("leela::playout"));
    EXPECT_TRUE(a.coverage.count("leela::uct_tree"));
}

} // namespace
