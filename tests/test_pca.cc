/** @file Tests for the PCA similarity substrate. */
#include <gtest/gtest.h>

#include <cmath>

#include "stats/pca.h"
#include "support/check.h"
#include "support/rng.h"

namespace {

using namespace alberta;
using namespace alberta::stats;

TEST(Standardize, ZeroMeanUnitVariance)
{
    const Matrix data = {{1, 10}, {2, 20}, {3, 30}, {4, 40}};
    const Matrix z = standardize(data);
    for (std::size_t d = 0; d < 2; ++d) {
        double mean = 0, var = 0;
        for (const auto &row : z)
            mean += row[d];
        mean /= z.size();
        for (const auto &row : z)
            var += (row[d] - mean) * (row[d] - mean);
        var /= z.size();
        EXPECT_NEAR(mean, 0.0, 1e-12);
        EXPECT_NEAR(var, 1.0, 1e-12);
    }
}

TEST(Standardize, ConstantColumnBecomesZero)
{
    const Matrix data = {{5, 1}, {5, 2}, {5, 3}};
    const Matrix z = standardize(data);
    for (const auto &row : z)
        EXPECT_DOUBLE_EQ(row[0], 0.0);
}

TEST(Standardize, RejectsRaggedOrEmpty)
{
    EXPECT_THROW(standardize({}), support::FatalError);
    EXPECT_THROW(standardize({{1, 2}, {3}}), support::FatalError);
}

TEST(Pca, FindsDominantDirectionOfAnisotropicCloud)
{
    // Points along y = 2x with small noise: PC1 ~ (1,2)/sqrt(5).
    support::Rng rng(9);
    Matrix data;
    for (int i = 0; i < 200; ++i) {
        const double t = rng.real(-1.0, 1.0);
        data.push_back(
            {t + 0.01 * rng.gaussian(), 2 * t + 0.01 * rng.gaussian()});
    }
    const PcaResult pca = principalComponents(data, 1);
    const auto &pc1 = pca.components[0];
    const double expected0 = 1.0 / std::sqrt(5.0);
    const double expected1 = 2.0 / std::sqrt(5.0);
    // Sign of the eigenvector is arbitrary.
    const double sign = pc1[0] > 0 ? 1.0 : -1.0;
    EXPECT_NEAR(sign * pc1[0], expected0, 0.02);
    EXPECT_NEAR(sign * pc1[1], expected1, 0.02);
    EXPECT_GT(pca.varianceExplained, 0.99);
}

TEST(Pca, ComponentsAreOrthonormal)
{
    support::Rng rng(11);
    Matrix data;
    for (int i = 0; i < 60; ++i)
        data.push_back({rng.gaussian(), rng.gaussian() * 2,
                        rng.gaussian() * 0.5, rng.gaussian()});
    const PcaResult pca = principalComponents(data, 3);
    for (std::size_t a = 0; a < 3; ++a) {
        double norm = 0.0;
        for (const double x : pca.components[a])
            norm += x * x;
        EXPECT_NEAR(norm, 1.0, 1e-6);
        for (std::size_t b = a + 1; b < 3; ++b) {
            double dot = 0.0;
            for (std::size_t d = 0; d < 4; ++d)
                dot += pca.components[a][d] * pca.components[b][d];
            EXPECT_NEAR(dot, 0.0, 1e-4);
        }
    }
}

TEST(Pca, EigenvaluesDecrease)
{
    support::Rng rng(13);
    Matrix data;
    for (int i = 0; i < 80; ++i)
        data.push_back({rng.gaussian() * 3, rng.gaussian() * 2,
                        rng.gaussian()});
    const PcaResult pca = principalComponents(data, 3);
    EXPECT_GE(pca.eigenvalues[0], pca.eigenvalues[1] - 1e-9);
    EXPECT_GE(pca.eigenvalues[1], pca.eigenvalues[2] - 1e-9);
    EXPECT_NEAR(pca.varianceExplained, 1.0, 1e-6);
}

TEST(Pca, ProjectionsSeparateDistinctGroups)
{
    // Two groups far apart project to distinct PC1 coordinates.
    Matrix data;
    for (int i = 0; i < 10; ++i) {
        data.push_back({0.0 + 0.01 * i, 0.0});
        data.push_back({10.0 + 0.01 * i, 1.0});
    }
    const PcaResult pca = principalComponents(data, 1);
    // Pairwise distance within a group is tiny vs across groups.
    const double within =
        pcaDistance(pca.projections[0], pca.projections[2]);
    const double across =
        pcaDistance(pca.projections[0], pca.projections[1]);
    EXPECT_LT(within * 20, across);
}

TEST(Pca, InvalidComponentCountIsFatal)
{
    const Matrix data = {{1, 2}, {3, 4}};
    EXPECT_THROW(principalComponents(data, 0),
                 support::FatalError);
    EXPECT_THROW(principalComponents(data, 3),
                 support::FatalError);
}

} // namespace
