/**
 * @file
 * Checkpoint-and-splice segment parallelism tests.
 *
 * The contract under test (see src/runtime/segment.h):
 *  - trace replay and the exact segment paths (K=1 spliced,
 *    snapshot/restore-chained K>1) are bit-identical to runOnce,
 *    including the coverage map;
 *  - the warm-up-approximated spliced path at K=4 stays within the
 *    pinned per-fraction bound of 1e-3 absolute against the full
 *    workload suite (an order of magnitude inside the 0.1-percentage-
 *    point target), with checksum and retired-uop counts exact;
 *  - segment and spliced cache keys never collide with the exact
 *    run's entries;
 *  - cut-point / warm-start planning and auto-K resolution behave as
 *    documented.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/suite.h"
#include "runtime/benchmark.h"
#include "runtime/executor.h"
#include "runtime/result_cache.h"
#include "runtime/segment.h"
#include "topdown/machine.h"
#include "topdown/trace.h"

namespace {

using namespace alberta;
using runtime::Benchmark;
using runtime::RunMeasurement;
using runtime::SegmentOptions;
using runtime::Workload;
using topdown::OpKind;
using topdown::UopTrace;

/** Expect two measurements' model outputs to be bit-identical. */
void
expectBitIdentical(const RunMeasurement &a, const RunMeasurement &b)
{
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
    EXPECT_EQ(a.simCycles, b.simCycles);
    EXPECT_EQ(a.topdown.frontend, b.topdown.frontend);
    EXPECT_EQ(a.topdown.backend, b.topdown.backend);
    EXPECT_EQ(a.topdown.badspec, b.topdown.badspec);
    EXPECT_EQ(a.topdown.retiring, b.topdown.retiring);
    ASSERT_EQ(a.coverage.size(), b.coverage.size());
    for (const auto &[name, fraction] : a.coverage) {
        const auto it = b.coverage.find(name);
        ASSERT_NE(it, b.coverage.end()) << "method " << name;
        EXPECT_EQ(fraction, it->second) << "method " << name;
    }
}

TEST(SegmentPlanning, CutPointsPartitionTheTrace)
{
    UopTrace trace;
    for (int i = 0; i < 10; ++i)
        trace.appendOps(OpKind::IntAlu, 10);
    EXPECT_EQ(trace.totalUops(), 100u);
    EXPECT_EQ(trace.records(), 10u);

    const std::vector<std::size_t> cuts = trace.cutPoints(4);
    ASSERT_EQ(cuts.size(), 5u);
    EXPECT_EQ(cuts.front(), 0u);
    EXPECT_EQ(cuts.back(), trace.records());
    for (std::size_t s = 1; s < cuts.size(); ++s)
        EXPECT_LE(cuts[s - 1], cuts[s]);

    // Every record lands in exactly one span.
    std::uint64_t uops = 0;
    for (std::size_t s = 0; s + 1 < cuts.size(); ++s)
        for (std::size_t i = cuts[s]; i < cuts[s + 1]; ++i)
            uops += trace.uopsOf(i);
    EXPECT_EQ(uops, trace.totalUops());

    // K=1 degenerates to the whole trace.
    const std::vector<std::size_t> one = trace.cutPoints(1);
    ASSERT_EQ(one.size(), 2u);
    EXPECT_EQ(one[0], 0u);
    EXPECT_EQ(one[1], trace.records());
}

TEST(SegmentPlanning, WarmStartCountsBackwardAndClamps)
{
    UopTrace trace;
    for (int i = 0; i < 10; ++i)
        trace.appendOps(OpKind::IntAlu, 10);
    // 25 uops of warm-up before record 10 needs records 7..9 (30 uops).
    EXPECT_EQ(trace.warmStart(10, 25), 7u);
    EXPECT_EQ(trace.warmStart(10, 30), 7u);
    EXPECT_EQ(trace.warmStart(10, 31), 6u);
    // More warm-up than trace prefix: clamp to the start.
    EXPECT_EQ(trace.warmStart(2, 1'000'000), 0u);
    EXPECT_EQ(trace.warmStart(0, 1), 0u);
}

TEST(SegmentPlanning, LastMethodAtFindsThePrecedingSwitch)
{
    UopTrace trace;
    trace.appendMethod(1, 4096, 1);          // record 0
    for (int i = 0; i < 4; ++i)
        trace.appendOps(OpKind::IntAlu, 5);  // records 1..4
    trace.appendMethod(2, 2048, 2);          // record 5
    trace.appendOps(OpKind::IntAlu, 5);      // record 6
    EXPECT_EQ(trace.lastMethodAt(0), 0u);
    EXPECT_EQ(trace.lastMethodAt(4), 0u);
    EXPECT_EQ(trace.lastMethodAt(5), 5u);
    EXPECT_EQ(trace.lastMethodAt(6), 5u);

    UopTrace bare;
    bare.appendOps(OpKind::IntAlu, 5);
    // No method switch precedes record 0: sentinel is records().
    EXPECT_EQ(bare.lastMethodAt(0), bare.records());
}

TEST(SegmentPlanning, ResolveSegmentsIsDeterministicAndClamped)
{
    using runtime::resolveSegments;
    // Explicit requests pass through untouched.
    EXPECT_EQ(resolveSegments(1, 0.0, 0, 0), 1);
    EXPECT_EQ(resolveSegments(7, 1e9, 1'000'000, 2), 7);
    // Auto: one segment per ~target uops, clamped to the pool.
    EXPECT_EQ(resolveSegments(0, 10e6, 1'000'000, 16), 10);
    EXPECT_EQ(resolveSegments(0, 10e6, 1'000'000, 4), 4);
    // Short workloads are not worth a record pass.
    EXPECT_EQ(resolveSegments(0, 1.5e6, 1'000'000, 8), 1);
    // Degenerate inputs fall back to the exact path.
    EXPECT_EQ(resolveSegments(0, 0.0, 1'000'000, 8), 1);
    EXPECT_EQ(resolveSegments(0, 10e6, 0, 8), 1);
    EXPECT_EQ(resolveSegments(0, 10e6, 1'000'000, 1), 1);
}

TEST(SegmentExact, ReplayMatchesDirectRunBitIdentically)
{
    const auto bench = core::makeBenchmark("505.mcf_r");
    const Workload wl = runtime::findWorkload(*bench, "test");
    const RunMeasurement direct = runtime::runOnce(*bench, wl);

    const runtime::SegmentPlan plan =
        runtime::recordSegments(*bench, wl, 1);
    EXPECT_EQ(plan.checksum, direct.checksum);
    EXPECT_EQ(plan.retiredOps, direct.retiredOps);
    expectBitIdentical(runtime::replaySegmentsExact(plan), direct);
}

TEST(SegmentExact, SnapshotHandoffAtK4MatchesDirectRun)
{
    const auto bench = core::makeBenchmark("505.mcf_r");
    const Workload wl = runtime::findWorkload(*bench, "test");
    const RunMeasurement direct = runtime::runOnce(*bench, wl);

    const runtime::SegmentPlan plan =
        runtime::recordSegments(*bench, wl, 4);
    expectBitIdentical(runtime::replaySegmentsExact(plan), direct);
}

TEST(SegmentExact, SplicedK1MatchesDirectRunBitIdentically)
{
    const auto bench = core::makeBenchmark("531.deepsjeng_r");
    const Workload wl = runtime::findWorkload(*bench, "test");
    const RunMeasurement direct = runtime::runOnce(*bench, wl);

    SegmentOptions options;
    options.segments = 1;
    expectBitIdentical(runtime::runSegmented(*bench, wl, options),
                       direct);
}

TEST(SegmentSpliced, DeterministicAcrossSerialAndParallelReplay)
{
    const auto bench = core::makeBenchmark("505.mcf_r");
    const Workload wl = runtime::findWorkload(*bench, "train");

    SegmentOptions serial;
    serial.segments = 4;
    const RunMeasurement a = runtime::runSegmented(*bench, wl, serial);

    runtime::Executor pool(4);
    SegmentOptions parallel;
    parallel.segments = 4;
    parallel.executor = &pool;
    const RunMeasurement b =
        runtime::runSegmented(*bench, wl, parallel);
    expectBitIdentical(a, b);
}

/**
 * The pinned accuracy bound of the warm-up-approximated spliced path:
 * across every workload of every Table II benchmark, each of the four
 * top-down fractions at K=4 stays within 1e-3 absolute of the exact
 * replay from the same plan (which other tests pin to runOnce), and
 * checksum / retired uops are exact. Tightening the model or the
 * warm-up window may shrink the observed error; it must never grow
 * past this bound.
 */
TEST(SegmentSpliced, FractionErrorWithinPinnedBoundAcrossSuite)
{
    constexpr double kBound = 1e-3;
    constexpr int kSegments = 4;
    double worst = 0.0;
    for (const std::string &name : core::table2Names()) {
        const auto bench = core::makeBenchmark(name);
        for (const Workload &wl : bench->workloads()) {
            const runtime::SegmentPlan plan =
                runtime::recordSegments(*bench, wl, kSegments);
            std::vector<runtime::SegmentDelta> deltas;
            deltas.reserve(kSegments);
            for (int s = 0; s < kSegments; ++s)
                deltas.push_back(runtime::replaySegment(plan, s));
            const RunMeasurement spliced =
                runtime::spliceSegments(plan, deltas);
            const RunMeasurement exact =
                runtime::replaySegmentsExact(plan);

            EXPECT_EQ(spliced.checksum, exact.checksum)
                << name << "/" << wl.name;
            EXPECT_EQ(spliced.retiredOps, exact.retiredOps)
                << name << "/" << wl.name;
            const double errors[] = {
                std::fabs(spliced.topdown.frontend -
                          exact.topdown.frontend),
                std::fabs(spliced.topdown.backend -
                          exact.topdown.backend),
                std::fabs(spliced.topdown.badspec -
                          exact.topdown.badspec),
                std::fabs(spliced.topdown.retiring -
                          exact.topdown.retiring),
            };
            for (const double e : errors) {
                EXPECT_LT(e, kBound) << name << "/" << wl.name;
                worst = std::max(worst, e);
            }
        }
    }
    std::cerr << "  worst spliced fraction error: " << worst << "\n";
}

TEST(SegmentCache, SplicedAndSegmentKeysNeverCollideWithExact)
{
    const auto bench = core::makeBenchmark("505.mcf_r");
    const Workload wl = runtime::findWorkload(*bench, "test");
    const Workload spliced = runtime::splicedWorkload(
        wl, 4, runtime::kDefaultSegmentWarmupUops);
    const Workload seg = runtime::segmentWorkload(
        wl, 4, runtime::kDefaultSegmentWarmupUops, 2);

    EXPECT_NE(spliced.name, wl.name);
    EXPECT_NE(seg.name, wl.name);
    EXPECT_NE(seg.name, spliced.name);
    // Different warm-up or K = different key.
    EXPECT_NE(runtime::splicedWorkload(wl, 2, 1000).name,
              spliced.name);
    // Content fingerprints differ too (belt and braces: a name
    // collision alone would still miss in the cache).
    const auto fp = [&](const Workload &w) {
        return runtime::ResultCache::fingerprint(*bench, w);
    };
    EXPECT_NE(fp(spliced), fp(wl));
    EXPECT_NE(fp(seg), fp(wl));
    EXPECT_NE(fp(seg), fp(spliced));
}

TEST(SegmentCache, SecondSegmentedRunIsServedFromCache)
{
    const auto bench = core::makeBenchmark("505.mcf_r");
    const Workload wl = runtime::findWorkload(*bench, "test");

    runtime::ResultCache cache;
    SegmentOptions options;
    options.segments = 3;
    options.cache = &cache;
    const RunMeasurement first =
        runtime::runSegmented(*bench, wl, options);
    // Spliced result + one entry per segment.
    EXPECT_EQ(cache.size(), 4u);

    const RunMeasurement second =
        runtime::runSegmented(*bench, wl, options);
    expectBitIdentical(first, second);
    EXPECT_EQ(cache.size(), 4u);

    // The exact run's entry is untouched by segmented keys.
    runtime::CachedRun cached;
    EXPECT_FALSE(cache.lookup(*bench, wl, &cached));
}

} // namespace
