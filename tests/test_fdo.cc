/** @file Tests for the FDO harness. */
#include <gtest/gtest.h>

#include "benchmarks/mcf/benchmark.h"
#include "benchmarks/xz/benchmark.h"
#include "fdo/fdo.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::fdo;

TEST(Profile, CollectsBranchSites)
{
    mcf::McfBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const Profile p = collectProfile(bm, w);
    EXPECT_FALSE(p.sites.empty());
    EXPECT_FALSE(p.methodHotness.empty());
    EXPECT_GT(p.retiredOps, 0u);
    // Site counts are consistent.
    for (const auto &[key, counts] : p.sites)
        EXPECT_LE(counts.taken, counts.total);
    // Hotness fractions sum to ~1.
    double sum = 0.0;
    for (const auto &[key, hotness] : p.methodHotness)
        sum += hotness;
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(Profile, MergeAccumulatesCounts)
{
    Profile a, b;
    a.sites[1] = {10, 20};
    a.methodHotness[7] = 1.0;
    a.retiredOps = 100;
    b.sites[1] = {5, 10};
    b.sites[2] = {1, 2};
    b.methodHotness[7] = 0.5;
    b.methodHotness[8] = 0.5;
    b.retiredOps = 100;
    a.merge(b);
    EXPECT_EQ(a.sites[1].taken, 15u);
    EXPECT_EQ(a.sites[1].total, 30u);
    EXPECT_EQ(a.sites[2].total, 2u);
    EXPECT_NEAR(a.methodHotness[7], 0.75, 1e-9);
    EXPECT_NEAR(a.methodHotness[8], 0.25, 1e-9);
}

TEST(Optimizer, HintsOnlyBiasedHotSites)
{
    Profile p;
    p.sites[1] = {98, 100};  // strongly taken -> hint true
    p.sites[2] = {2, 100};   // strongly not-taken -> hint false
    p.sites[3] = {50, 100};  // unbiased -> no hint
    p.sites[4] = {5, 5};     // too few samples -> no hint
    const Optimization opt = compileOptimization(p);
    EXPECT_EQ(opt.hintedSites, 2);
    EXPECT_TRUE(opt.hints.direction.at(1));
    EXPECT_FALSE(opt.hints.direction.at(2));
    EXPECT_EQ(opt.hints.direction.count(3), 0u);
    EXPECT_EQ(opt.hints.direction.count(4), 0u);
}

TEST(Optimizer, LaysOutHotMethods)
{
    Profile p;
    p.methodHotness[11] = 0.6;
    p.methodHotness[12] = 0.01; // cold
    const Optimization opt = compileOptimization(p);
    EXPECT_EQ(opt.hotMethods, 1);
    EXPECT_LT(opt.layout.scale.at(11), 1.0);
}

TEST(Fdo, OptimizationPreservesOutputAndHelpsSelf)
{
    // Training and evaluating on the same workload (the paper's
    // critique target) must give a speedup >= ~1.
    xz::XzBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const Profile p = collectProfile(bm, w);
    const Optimization opt = compileOptimization(p);
    const FdoMeasurement base = runOptimized(bm, w, nullptr);
    const FdoMeasurement tuned = runOptimized(bm, w, &opt);
    EXPECT_EQ(base.checksum, tuned.checksum);
    EXPECT_GT(base.cycles / tuned.cycles, 0.99);
}

TEST(Fdo, CrossValidationProducesFullReport)
{
    mcf::McfBenchmark bm;
    const CrossValidation cv = crossValidate(bm, "test");
    EXPECT_EQ(cv.benchmark, "505.mcf_r");
    EXPECT_EQ(cv.evalNames.size(), 6u); // 7 workloads minus train
    EXPECT_GT(cv.selfSpeedup, 0.9);
    EXPECT_GE(cv.maxCross, cv.minCross);
    EXPECT_GE(cv.maxCross, cv.meanCross);
    EXPECT_LE(cv.minCross, cv.meanCross + 1e-12);
}

TEST(Fdo, SpeedupHelperMatchesManualPath)
{
    mcf::McfBenchmark bm;
    const auto train = runtime::findWorkload(bm, "test");
    const auto eval = runtime::findWorkload(bm, "train");
    const double s = fdoSpeedup(bm, train, eval);
    EXPECT_GT(s, 0.8);
    EXPECT_LT(s, 2.0);
}

} // namespace
