/** @file Unit and property tests for the support module. */
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/check.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/text.h"

namespace {

using namespace alberta::support;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStreams)
{
    Rng parent(5);
    Rng c1 = parent.fork(1);
    Rng parent2(5);
    parent2();
    Rng c2 = parent2.fork(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += c1() == c2();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Mix64, IsInjectiveOnSmallDomain)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(Check, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom ", 42), FatalError);
    EXPECT_THROW(fatalIf(true, "x"), FatalError);
    EXPECT_NO_THROW(fatalIf(false, "x"));
}

TEST(Check, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_THROW(panicIf(true, "bug"), PanicError);
    EXPECT_NO_THROW(panicIf(false, "bug"));
}

TEST(Check, MessageIsStreamed)
{
    try {
        fatal("value=", 3, " name=", "abc");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value=3 name=abc");
    }
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"a", "bbbb"});
    t.addRow({"xxxxx", "y"});
    EXPECT_EQ(t.rows(), 1u);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("a      bbbb"), std::string::npos);
    EXPECT_NE(text.find("xxxxx  y"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, CsvQuotesSpecialCharacters)
{
    Table t({"name", "value"});
    t.addRow({"has,comma", "has\"quote"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,value\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Text, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Text, SplitWhitespaceDropsEmpty)
{
    const auto parts = splitWhitespace("  a\t b\n\nc  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Text, JoinRoundTripsSplit)
{
    const std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Text, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \n "), "");
}

TEST(Text, ParseIntAcceptsSignedValues)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt(" -7 "), -7);
    EXPECT_THROW(parseInt("4x"), FatalError);
    EXPECT_THROW(parseInt(""), FatalError);
}

TEST(Text, ParseDoubleAcceptsFloats)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5"), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("-1e3"), -1000.0);
    EXPECT_THROW(parseDouble("abc"), FatalError);
}

TEST(Text, ParsePositiveIntAcceptsOneThroughMax)
{
    EXPECT_EQ(parsePositiveInt("1", "n"), 1);
    EXPECT_EQ(parsePositiveInt("42", "n"), 42);
    EXPECT_EQ(parsePositiveInt("8", "k", 8), 8);
}

TEST(Text, ParsePositiveIntRejectsBadInput)
{
    EXPECT_THROW(parsePositiveInt("0", "n"), FatalError);
    EXPECT_THROW(parsePositiveInt("-3", "n"), FatalError);
    EXPECT_THROW(parsePositiveInt("9", "k", 8), FatalError);
    EXPECT_THROW(parsePositiveInt("4x", "n"), FatalError);
    EXPECT_THROW(parsePositiveInt("", "n"), FatalError);
    EXPECT_THROW(parsePositiveInt(" 5", "n"), FatalError);
}

TEST(Text, ParsePositiveIntNamesTheOffendingFlag)
{
    try {
        parsePositiveInt("huge", "--jobs", 1024);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("--jobs"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1024"),
                  std::string::npos);
    }
}

TEST(Text, StartsWith)
{
    EXPECT_TRUE(startsWith("alberta.city-1", "alberta."));
    EXPECT_FALSE(startsWith("ref", "refrate"));
}

} // namespace
