/** @file Unit and property tests for the support module. */
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/argparse.h"
#include "support/check.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/text.h"

namespace {

using namespace alberta::support;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.gaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStreams)
{
    Rng parent(5);
    Rng c1 = parent.fork(1);
    Rng parent2(5);
    parent2();
    Rng c2 = parent2.fork(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        equal += c1() == c2();
    EXPECT_LT(equal, 5);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Mix64, IsInjectiveOnSmallDomain)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        seen.insert(mix64(i));
    EXPECT_EQ(seen.size(), 10000u);
}

TEST(Check, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom ", 42), FatalError);
    EXPECT_THROW(fatalIf(true, "x"), FatalError);
    EXPECT_NO_THROW(fatalIf(false, "x"));
}

TEST(Check, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_THROW(panicIf(true, "bug"), PanicError);
    EXPECT_NO_THROW(panicIf(false, "bug"));
}

TEST(Check, MessageIsStreamed)
{
    try {
        fatal("value=", 3, " name=", "abc");
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: value=3 name=abc");
    }
}

TEST(Table, AlignsColumnsAndCountsRows)
{
    Table t({"a", "bbbb"});
    t.addRow({"xxxxx", "y"});
    EXPECT_EQ(t.rows(), 1u);
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("a      bbbb"), std::string::npos);
    EXPECT_NE(text.find("xxxxx  y"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, CsvQuotesSpecialCharacters)
{
    Table t({"name", "value"});
    t.addRow({"has,comma", "has\"quote"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,value\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Text, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
    EXPECT_EQ(parts[3], "");
}

TEST(Text, SplitWhitespaceDropsEmpty)
{
    const auto parts = splitWhitespace("  a\t b\n\nc  ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Text, JoinRoundTripsSplit)
{
    const std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, ","), "x,y,z");
    EXPECT_EQ(split(join(parts, ","), ','), parts);
}

TEST(Text, TrimRemovesSurroundingWhitespace)
{
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \n "), "");
}

TEST(Text, ParseIntAcceptsSignedValues)
{
    EXPECT_EQ(parseInt("42"), 42);
    EXPECT_EQ(parseInt(" -7 "), -7);
    EXPECT_THROW(parseInt("4x"), FatalError);
    EXPECT_THROW(parseInt(""), FatalError);
}

TEST(Text, ParseDoubleAcceptsFloats)
{
    EXPECT_DOUBLE_EQ(parseDouble("2.5"), 2.5);
    EXPECT_DOUBLE_EQ(parseDouble("-1e3"), -1000.0);
    EXPECT_THROW(parseDouble("abc"), FatalError);
}

TEST(Text, ParsePositiveIntAcceptsOneThroughMax)
{
    EXPECT_EQ(parsePositiveInt("1", "n"), 1);
    EXPECT_EQ(parsePositiveInt("42", "n"), 42);
    EXPECT_EQ(parsePositiveInt("8", "k", 8), 8);
}

TEST(Text, ParsePositiveIntRejectsBadInput)
{
    EXPECT_THROW(parsePositiveInt("0", "n"), FatalError);
    EXPECT_THROW(parsePositiveInt("-3", "n"), FatalError);
    EXPECT_THROW(parsePositiveInt("9", "k", 8), FatalError);
    EXPECT_THROW(parsePositiveInt("4x", "n"), FatalError);
    EXPECT_THROW(parsePositiveInt("", "n"), FatalError);
    EXPECT_THROW(parsePositiveInt(" 5", "n"), FatalError);
}

TEST(Text, ParsePositiveIntNamesTheOffendingFlag)
{
    try {
        parsePositiveInt("huge", "--jobs", 1024);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("--jobs"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("1024"),
                  std::string::npos);
    }
}

TEST(Text, StartsWith)
{
    EXPECT_TRUE(startsWith("alberta.city-1", "alberta."));
    EXPECT_FALSE(startsWith("ref", "refrate"));
}


TEST(Json, ParsesEveryScalarType)
{
    EXPECT_EQ(parseJson("null").type(), JsonValue::Type::Null);
    EXPECT_TRUE(parseJson("true").asBool());
    EXPECT_FALSE(parseJson("false").asBool());
    EXPECT_DOUBLE_EQ(parseJson("-12.5e2").asNumber(), -1250.0);
    EXPECT_EQ(parseJson("42").asUint(), 42u);
    EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedContainersInDocumentOrder)
{
    const JsonValue value = parseJson(
        "{\"b\": [1, 2, {\"c\": true}], \"a\": \"x\", \"n\": null}");
    const auto &object = value.asObject();
    ASSERT_EQ(object.size(), 3u);
    EXPECT_EQ(object[0].first, "b"); // document order, not sorted
    EXPECT_EQ(object[1].first, "a");
    const auto &array = value.at("b").asArray();
    ASSERT_EQ(array.size(), 3u);
    EXPECT_DOUBLE_EQ(array[1].asNumber(), 2.0);
    EXPECT_TRUE(array[2].at("c").asBool());
    EXPECT_EQ(value.find("missing"), nullptr);
    EXPECT_NE(value.find("n"), nullptr);
}

TEST(Json, DecodesEscapesIncludingUnicode)
{
    EXPECT_EQ(parseJson("\"a\\n\\t\\\"b\\\\\"").asString(),
              "a\n\t\"b\\");
    EXPECT_EQ(parseJson("\"\\u0041\\u00e9\"").asString(),
              "A\xc3\xa9");
    EXPECT_EQ(parseJson("\"\\u2603\"").asString(),
              "\xe2\x98\x83"); // snowman, 3-byte UTF-8
}

TEST(Json, RoundTripsTheSuitesOwnEncoders)
{
    // The parser must accept exactly what the repo's writers emit.
    const std::string text =
        "{\"name\":" + jsonQuote("he said \"hi\"\n") +
        ",\"v\":" + jsonNumber(0.1) + "}";
    const JsonValue value = parseJson(text);
    EXPECT_EQ(value.at("name").asString(), "he said \"hi\"\n");
    EXPECT_DOUBLE_EQ(value.at("v").asNumber(), 0.1);
}

TEST(Json, MalformedDocumentsAreFatalWithOffsets)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\" 1}", "tru", "\"unterminated",
          "01", "1.", "+1", "[1]]", "{\"a\":1,}", "\"\\q\"",
          "\"\\u12\""}) {
        EXPECT_THROW(parseJson(bad), FatalError) << bad;
    }
}

TEST(Json, TypeMismatchesAndMissingMembersAreFatal)
{
    const JsonValue value = parseJson("{\"a\": 1}");
    EXPECT_THROW(value.at("a").asString(), FatalError);
    EXPECT_THROW(value.at("a").asBool(), FatalError);
    EXPECT_THROW(value.at("b"), FatalError);
    EXPECT_THROW(parseJson("-1").asUint(), FatalError);
    EXPECT_THROW(parseJson("1.5").asUint(), FatalError);
    EXPECT_THROW(parseJson("100").asUint(10), FatalError);
}

TEST(Json, DepthIsBounded)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += "[";
    EXPECT_THROW(parseJson(deep), FatalError);
}

TEST(ArgParser, ParsesFlagsBeforeAndAfterPositionals)
{
    bool verbose = false;
    int jobs = 0;
    std::string trace;
    ArgParser parser("demo");
    parser.flag("--verbose", "talk", &verbose)
        .positiveInt("--jobs", "N", "workers", &jobs)
        .option("--trace", "FILE", "trace file", &trace);
    const char *argv[] = {"demo", "--jobs", "4",   "suite",
                          "extra", "--verbose", "--trace", "t.json"};
    const auto positionals =
        parser.parse(8, const_cast<char **>(argv));
    EXPECT_TRUE(verbose);
    EXPECT_EQ(jobs, 4);
    EXPECT_EQ(trace, "t.json");
    EXPECT_EQ(positionals,
              (std::vector<std::string>{"suite", "extra"}));
}

TEST(ArgParser, SeenFlagDistinguishesExplicitFromDefault)
{
    std::string dir;
    bool seen = false;
    ArgParser parser("demo");
    parser.option("--cache-dir", "DIR", "cache", &dir, &seen);
    {
        const char *argv[] = {"demo"};
        parser.parse(1, const_cast<char **>(argv));
        EXPECT_FALSE(seen);
    }
    {
        const char *argv[] = {"demo", "--cache-dir", "d"};
        parser.parse(3, const_cast<char **>(argv));
        EXPECT_TRUE(seen);
        EXPECT_EQ(dir, "d");
    }
}

TEST(ArgParser, UnknownFlagsAndMissingValuesAreFatal)
{
    int jobs = 0;
    ArgParser parser("demo");
    parser.positiveInt("--jobs", "N", "workers", &jobs);
    {
        const char *argv[] = {"demo", "--bogus"};
        EXPECT_THROW(parser.parse(2, const_cast<char **>(argv)),
                     FatalError);
    }
    {
        const char *argv[] = {"demo", "--jobs"};
        EXPECT_THROW(parser.parse(2, const_cast<char **>(argv)),
                     FatalError);
    }
    {
        const char *argv[] = {"demo", "--jobs", "zero"};
        EXPECT_THROW(parser.parse(3, const_cast<char **>(argv)),
                     FatalError);
    }
}

TEST(ArgParser, HelpStopsParsingAndListsEveryFlag)
{
    bool metrics = false;
    int jobs = 0;
    ArgParser parser("demo", "commands:\n  suite\n");
    parser.flag("--metrics", "print metrics", &metrics)
        .positiveInt("--jobs", "N", "workers", &jobs);
    const char *argv[] = {"demo", "--help", "--bogus"};
    parser.parse(3, const_cast<char **>(argv)); // --bogus unreached
    EXPECT_TRUE(parser.helpRequested());
    const std::string help = parser.help();
    EXPECT_NE(help.find("--metrics"), std::string::npos);
    EXPECT_NE(help.find("--jobs N"), std::string::npos);
    EXPECT_NE(help.find("commands:"), std::string::npos);
    EXPECT_NE(help.find("usage: demo"), std::string::npos);
}

} // namespace
