/**
 * @file
 * Parameterized property sweeps: the strongest invariants of the
 * numerically critical kernels, exercised across seed/size/shape
 * grids rather than single examples.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/deepsjeng/board.h"
#include "benchmarks/exchange2/sudoku.h"
#include "benchmarks/lbm/benchmark.h"
#include "benchmarks/mcf/generator.h"
#include "benchmarks/mcf/mincost.h"
#include "benchmarks/parest/solver.h"
#include "benchmarks/xz/generator.h"
#include "benchmarks/xz/lz77.h"
#include "support/rng.h"

namespace {

using namespace alberta;

// ---------------------------------------------------------------- xz

struct XzCase
{
    xz::ContentKind kind;
    std::size_t bytes;
};

class XzRoundTrip : public ::testing::TestWithParam<XzCase>
{
};

TEST_P(XzRoundTrip, CompressDecompressIsIdentity)
{
    const auto [kind, bytes] = GetParam();
    xz::FileConfig cfg;
    cfg.seed = 0xABC + static_cast<int>(kind) * 17 + bytes;
    cfg.kind = kind;
    cfg.bytes = bytes;
    const auto raw = xz::generateFile(cfg);
    runtime::ExecutionContext ctx;
    const auto packed = xz::compress(raw, {}, ctx);
    EXPECT_EQ(xz::decompress(packed, ctx), raw);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, XzRoundTrip,
    ::testing::Values(
        XzCase{xz::ContentKind::Text, 100},
        XzCase{xz::ContentKind::Text, 70000},
        XzCase{xz::ContentKind::Log, 4096},
        XzCase{xz::ContentKind::Log, 200000},
        XzCase{xz::ContentKind::Binary, 33000},
        XzCase{xz::ContentKind::Random, 100},
        XzCase{xz::ContentKind::Random, 90000},
        XzCase{xz::ContentKind::RepeatedFile, 50000}));

// ------------------------------------------------------------- chess

class ChessGame : public ::testing::TestWithParam<int>
{
};

TEST_P(ChessGame, MakeUnmakeIsExactThroughRandomPlay)
{
    // Play a seeded random game; at every ply, every legal move must
    // make/unmake back to the identical position and hash.
    support::Rng rng(GetParam());
    deepsjeng::Board board = deepsjeng::Board::initial();
    deepsjeng::Undo undo;
    for (int ply = 0; ply < 40; ++ply) {
        const auto legal = board.legalMoves();
        if (legal.empty())
            break;
        const std::string fen = board.toFen();
        const std::uint64_t hash = board.hash();
        for (const auto &move : legal) {
            ASSERT_TRUE(board.makeMove(move, undo));
            board.unmakeMove(undo);
            ASSERT_EQ(board.hash(), hash)
                << "ply " << ply << " move " << move.algebraic();
            ASSERT_EQ(board.toFen(), fen);
        }
        board.makeMove(legal[rng.below(legal.size())], undo);
    }
}

TEST_P(ChessGame, FenRoundTripsAtEveryPosition)
{
    support::Rng rng(GetParam() * 7919);
    deepsjeng::Board board = deepsjeng::Board::initial();
    deepsjeng::Undo undo;
    for (int ply = 0; ply < 30; ++ply) {
        const auto legal = board.legalMoves();
        if (legal.empty())
            break;
        board.makeMove(legal[rng.below(legal.size())], undo);
        const deepsjeng::Board reparsed =
            deepsjeng::Board::fromFen(board.toFen());
        ASSERT_EQ(reparsed.hash(), board.hash()) << "ply " << ply;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChessGame,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// --------------------------------------------------------------- lbm

struct LbmCase
{
    lbm::ObstacleShape shape;
    double size;
    lbm::CollisionModel model;
};

class LbmConservation : public ::testing::TestWithParam<LbmCase>
{
};

TEST_P(LbmConservation, MassIsConservedForAllGeometries)
{
    const auto [shape, size, model] = GetParam();
    lbm::GeometryConfig geo;
    geo.seed = 0x1B;
    geo.nx = geo.ny = 8;
    geo.nz = 16;
    geo.shape = shape;
    geo.sizeFraction = size;
    const auto geometry = lbm::generateGeometry(geo);

    lbm::LbmConfig cfg;
    cfg.nx = geometry.nx;
    cfg.ny = geometry.ny;
    cfg.nz = geometry.nz;
    cfg.steps = 12;
    cfg.model = model;
    lbm::Lattice lattice(geometry, cfg);
    runtime::ExecutionContext ctx;
    const auto stats = lattice.run(ctx);
    const double fluidCells = static_cast<double>(
        geometry.nx * geometry.ny * geometry.nz -
        geometry.solidCells());
    EXPECT_NEAR(stats.totalMass, fluidCells, 1e-6 * fluidCells);
    EXPECT_TRUE(std::isfinite(stats.kineticEnergy));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LbmConservation,
    ::testing::Values(
        LbmCase{lbm::ObstacleShape::Sphere, 0.3,
                lbm::CollisionModel::Bgk},
        LbmCase{lbm::ObstacleShape::Sphere, 0.6,
                lbm::CollisionModel::Trt},
        LbmCase{lbm::ObstacleShape::Box, 0.4,
                lbm::CollisionModel::Bgk},
        LbmCase{lbm::ObstacleShape::Cylinder, 0.5,
                lbm::CollisionModel::Trt},
        LbmCase{lbm::ObstacleShape::RandomBlobs, 0.4,
                lbm::CollisionModel::Bgk}));

// --------------------------------------------------------------- mcf

class McfOptimality : public ::testing::TestWithParam<int>
{
};

TEST_P(McfOptimality, GeneratedProblemsSolveToOptimality)
{
    mcf::CityConfig cfg;
    cfg.seed = GetParam();
    cfg.trips = 40 + GetParam() * 7;
    cfg.connectivity = 0.2 + 0.05 * (GetParam() % 4);
    const auto problem = mcf::generateCity(cfg);
    runtime::ExecutionContext ctx;
    mcf::Solver solver(problem.instance);
    const auto solution = solver.solve(ctx);
    ASSERT_TRUE(solution.feasible);
    EXPECT_TRUE(mcf::verifyOptimal(problem.instance, solution));
}

INSTANTIATE_TEST_SUITE_P(Seeds, McfOptimality,
                         ::testing::Values(21, 22, 23, 24, 25));

// ------------------------------------------------------------ parest

class CgConvergence : public ::testing::TestWithParam<int>
{
};

TEST_P(CgConvergence, PoissonSystemsConvergeAcrossSizes)
{
    const int n = GetParam();
    runtime::ExecutionContext ctx;
    const auto matrix = parest::assemble(n, 1, {1.3}, ctx);
    std::vector<double> rhs(static_cast<std::size_t>(n) * n, 1.0), x;
    const auto cg = parest::conjugateGradient(matrix, rhs, x, 1e-9,
                                              4 * n * n, ctx);
    ASSERT_TRUE(cg.converged) << "n=" << n;
    // CG on SPD systems converges within the dimension bound.
    EXPECT_LE(cg.iterations, n * n);
    // Residual check.
    std::vector<double> ax;
    matrix.multiply(x, ax, ctx);
    double err = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i)
        err = std::max(err, std::abs(ax[i] - rhs[i]));
    EXPECT_LT(err, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, CgConvergence,
                         ::testing::Values(6, 10, 16, 24));

// ---------------------------------------------------------- exchange2

class SudokuSymmetry : public ::testing::TestWithParam<int>
{
};

TEST_P(SudokuSymmetry, TransformsPreserveUniqueSolvability)
{
    runtime::ExecutionContext ctx;
    support::Rng seedRng(GetParam());
    const exchange2::Grid seed =
        exchange2::createSeedPuzzle(seedRng, 30, ctx);
    ASSERT_EQ(exchange2::solve(seed, ctx, 2).solutions, 1);
    support::Rng rng(GetParam() * 31);
    for (int i = 0; i < 4; ++i) {
        const exchange2::Grid t =
            exchange2::transformPuzzle(seed, rng);
        EXPECT_EQ(t.clues(), seed.clues());
        EXPECT_EQ(exchange2::solve(t, ctx, 2).solutions, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SudokuSymmetry,
                         ::testing::Values(41, 42, 43));

} // namespace
