/** @file Tests for the 523.xalancbmk_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/xalancbmk/benchmark.h"
#include "benchmarks/xalancbmk/xslt.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::xalancbmk;

std::unique_ptr<XmlNode>
parse(const std::string &text)
{
    runtime::ExecutionContext ctx;
    return parseXml(text, ctx);
}

TEST(Xml, ParsesElementsAttributesText)
{
    const auto root =
        parse("<a x=\"1\" y='two'><b>hello</b><c/>tail</a>");
    EXPECT_EQ(root->name(), "a");
    EXPECT_EQ(root->attribute("x"), "1");
    EXPECT_EQ(root->attribute("y"), "two");
    ASSERT_EQ(root->children().size(), 3u);
    EXPECT_EQ(root->children()[0]->name(), "b");
    EXPECT_EQ(root->children()[0]->textValue(), "hello");
    EXPECT_EQ(root->children()[1]->name(), "c");
    EXPECT_EQ(root->children()[2]->content(), "tail");
}

TEST(Xml, HandlesPrologAndComments)
{
    const auto root = parse(
        "<?xml version=\"1.0\"?>\n<!-- header -->\n"
        "<r><!-- inner --><x>1</x></r>");
    EXPECT_EQ(root->name(), "r");
    ASSERT_EQ(root->children().size(), 1u);
}

TEST(Xml, DecodesEntities)
{
    const auto root = parse("<t a=\"&lt;&amp;&gt;\">x &quot;y&quot;</t>");
    EXPECT_EQ(root->attribute("a"), "<&>");
    EXPECT_EQ(root->textValue(), "x \"y\"");
}

TEST(Xml, SerializeParseRoundTrip)
{
    const std::string text =
        "<a x=\"1\"><b>t&lt;xt</b><c k=\"v\"/></a>";
    const auto root = parse(text);
    const auto again = parse(root->serialize());
    EXPECT_EQ(again->serialize(), root->serialize());
}

TEST(Xml, RejectsMalformedDocuments)
{
    EXPECT_THROW(parse("<a><b></a></b>"), support::FatalError);
    EXPECT_THROW(parse("<a>"), support::FatalError);
    EXPECT_THROW(parse("<a></a><b></b>"), support::FatalError);
    EXPECT_THROW(parse("<a x=1></a>"), support::FatalError);
    EXPECT_THROW(parse("<a>&unknown;</a>"), support::FatalError);
}

TEST(Xml, FirstChildAndSubtreeSize)
{
    const auto root = parse("<a><b/><c/><b/></a>");
    ASSERT_NE(root->firstChild("b"), nullptr);
    EXPECT_EQ(root->firstChild("missing"), nullptr);
    EXPECT_EQ(root->subtreeSize(), 4u);
}

TEST(Xslt, ValueOfAndForEach)
{
    const auto sheet = parse(
        "<xsl:stylesheet>"
        "<xsl:template match=\"list\">"
        "<ul><xsl:for-each select=\"item\">"
        "<li><xsl:value-of select=\".\"/></li>"
        "</xsl:for-each></ul>"
        "</xsl:template></xsl:stylesheet>");
    const Stylesheet stylesheet(*sheet);
    const auto input =
        parse("<list><item>a</item><item>b</item></list>");
    runtime::ExecutionContext ctx;
    const auto out = stylesheet.transform(*input, ctx);
    EXPECT_EQ(out->serialize(),
              "<out><ul><li>a</li><li>b</li></ul></out>");
}

TEST(Xslt, AttributeSelectionAndIf)
{
    const auto sheet = parse(
        "<xsl:stylesheet>"
        "<xsl:template match=\"r\">"
        "<xsl:for-each select=\"x\">"
        "<xsl:if test=\"@keep='yes'\">"
        "<k><xsl:value-of select=\"@id\"/></k>"
        "</xsl:if>"
        "</xsl:for-each>"
        "</xsl:template></xsl:stylesheet>");
    const Stylesheet stylesheet(*sheet);
    const auto input = parse("<r><x id=\"1\" keep=\"yes\"/>"
                             "<x id=\"2\" keep=\"no\"/>"
                             "<x id=\"3\" keep=\"yes\"/></r>");
    runtime::ExecutionContext ctx;
    const auto out = stylesheet.transform(*input, ctx);
    EXPECT_EQ(out->serialize(), "<out><k>1</k><k>3</k></out>");
}

TEST(Xslt, ApplyTemplatesWithRules)
{
    const auto sheet = parse(
        "<xsl:stylesheet>"
        "<xsl:template match=\"doc\">"
        "<o><xsl:apply-templates select=\"sec\"/></o>"
        "</xsl:template>"
        "<xsl:template match=\"sec\">"
        "<s><xsl:value-of select=\"title\"/></s>"
        "</xsl:template></xsl:stylesheet>");
    const Stylesheet stylesheet(*sheet);
    const auto input = parse(
        "<doc><sec><title>one</title></sec>"
        "<sec><title>two</title></sec></doc>");
    runtime::ExecutionContext ctx;
    const auto out = stylesheet.transform(*input, ctx);
    EXPECT_EQ(out->serialize(), "<out><o><s>one</s><s>two</s></o></out>");
}

TEST(Xslt, PathSelection)
{
    const auto sheet = parse(
        "<xsl:stylesheet>"
        "<xsl:template match=\"a\">"
        "<xsl:for-each select=\"b/c\">"
        "<v><xsl:value-of select=\".\"/></v>"
        "</xsl:for-each>"
        "</xsl:template></xsl:stylesheet>");
    const Stylesheet stylesheet(*sheet);
    const auto input =
        parse("<a><b><c>1</c><c>2</c></b><b><c>3</c></b></a>");
    runtime::ExecutionContext ctx;
    const auto out = stylesheet.transform(*input, ctx);
    EXPECT_EQ(out->serialize(),
              "<out><v>1</v><v>2</v><v>3</v></out>");
}

TEST(Xslt, RejectsUnsupportedInstruction)
{
    const auto sheet = parse(
        "<xsl:stylesheet>"
        "<xsl:template match=\"a\"><xsl:sort/></xsl:template>"
        "</xsl:stylesheet>");
    const Stylesheet stylesheet(*sheet);
    const auto input = parse("<a/>");
    runtime::ExecutionContext ctx;
    EXPECT_THROW(stylesheet.transform(*input, ctx),
                 support::FatalError);
}

TEST(Generators, SalesXmlIsWellFormedAndSized)
{
    const std::string small = generateSalesXml(10, 1);
    const std::string large = generateSalesXml(100, 1);
    EXPECT_GT(large.size(), small.size() * 5);
    const auto root = parse(large);
    EXPECT_EQ(root->name(), "sales");
    EXPECT_EQ(root->children().size(), 100u);
}

TEST(Generators, AuctionXmlIsWellFormed)
{
    const auto root = parse(generateAuctionXml(20, 8, 2));
    EXPECT_EQ(root->name(), "site");
    ASSERT_NE(root->firstChild("items"), nullptr);
    EXPECT_EQ(root->firstChild("items")->children().size(), 20u);
}

TEST(Generators, StylesheetsCompile)
{
    {
        const auto doc = parse(salesStylesheet());
        EXPECT_GE(Stylesheet(*doc).templateCount(), 1u);
    }
    {
        const auto doc = parse(auctionStylesheet());
        EXPECT_GE(Stylesheet(*doc).templateCount(), 2u);
    }
}

TEST(XalancbmkBenchmark, WorkloadSetMatchesPaper)
{
    XalancbmkBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 8u); // Table II: 8 workloads
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_EQ(alberta, 5); // paper: five new workloads
}

TEST(XalancbmkBenchmark, RunsDeterministically)
{
    XalancbmkBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("xalanc::parse_element"));
    EXPECT_TRUE(a.coverage.count("xalanc::transform") ||
                a.coverage.count("xalanc::apply_templates"));
}

} // namespace
