/** @file Tests for workload clustering (k-medoids). */
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::core;

std::vector<std::vector<double>>
threeBlobs()
{
    // Three tight groups in 2D.
    return {
        {0.0, 0.0},  {0.1, 0.0},  {0.0, 0.1},  // blob A
        {5.0, 5.0},  {5.1, 5.0},  {5.0, 5.1},  // blob B
        {10.0, 0.0}, {10.1, 0.0}, {10.0, 0.1}, // blob C
    };
}

TEST(L1Distance, HandComputed)
{
    EXPECT_DOUBLE_EQ(l1Distance({1, 2, 3}, {2, 0, 3}), 3.0);
    EXPECT_DOUBLE_EQ(l1Distance({0.5}, {0.5}), 0.0);
}

TEST(KMedoids, RecoversWellSeparatedBlobs)
{
    const auto points = threeBlobs();
    const Clustering c = kMedoids(points, 3);
    ASSERT_EQ(c.medoids.size(), 3u);
    // Every blob's three points share an assignment.
    for (int blob = 0; blob < 3; ++blob) {
        const std::size_t expect = c.assignment[blob * 3];
        EXPECT_EQ(c.assignment[blob * 3 + 1], expect);
        EXPECT_EQ(c.assignment[blob * 3 + 2], expect);
    }
    // And the three blobs land in three distinct clusters.
    EXPECT_NE(c.assignment[0], c.assignment[3]);
    EXPECT_NE(c.assignment[3], c.assignment[6]);
    EXPECT_NE(c.assignment[0], c.assignment[6]);
    // Tight blobs: total cost is small.
    EXPECT_LT(c.cost, 2.0);
}

TEST(KMedoids, MedoidsAreClusterMembers)
{
    const auto points = threeBlobs();
    const Clustering c = kMedoids(points, 3);
    for (std::size_t cl = 0; cl < c.medoids.size(); ++cl)
        EXPECT_EQ(c.assignment[c.medoids[cl]], cl);
}

TEST(KMedoids, KEqualsNIsZeroCost)
{
    const auto points = threeBlobs();
    const Clustering c = kMedoids(points, points.size());
    EXPECT_DOUBLE_EQ(c.cost, 0.0);
}

TEST(KMedoids, SingleClusterPicksCentralMedoid)
{
    const std::vector<std::vector<double>> line = {
        {0.0}, {1.0}, {2.0}, {3.0}, {10.0}};
    const Clustering c = kMedoids(line, 1);
    // The 1-medoid minimizing total L1 distance is the median (2.0).
    EXPECT_EQ(c.medoids[0], 2u);
}

TEST(KMedoids, MoreClustersNeverIncreaseCost)
{
    const auto points = threeBlobs();
    double prev = 1e30;
    for (std::size_t k = 1; k <= 4; ++k) {
        const Clustering c = kMedoids(points, k);
        EXPECT_LE(c.cost, prev + 1e-12) << "k=" << k;
        prev = c.cost;
    }
}

TEST(KMedoids, InvalidKIsFatal)
{
    const auto points = threeBlobs();
    EXPECT_THROW(kMedoids(points, 0), support::FatalError);
    EXPECT_THROW(kMedoids(points, points.size() + 1),
                 support::FatalError);
}

TEST(KMedoids, Deterministic)
{
    const auto points = threeBlobs();
    const Clustering a = kMedoids(points, 2);
    const Clustering b = kMedoids(points, 2);
    EXPECT_EQ(a.medoids, b.medoids);
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(ClusterWorkloads, GroupsABenchmarkByBehaviour)
{
    const auto bm = makeBenchmark("557.xz_r");
    RunRequest request;
    request.refrateRepetitions = 1;
    const Characterization c = characterize(*bm, request);
    const Clustering clustering = clusterWorkloads(c, 3);
    ASSERT_EQ(clustering.assignment.size(),
              c.workloadNames.size());
    ASSERT_EQ(clustering.medoids.size(), 3u);
    // The assignment covers all three clusters.
    std::vector<int> seen(3, 0);
    for (const std::size_t a : clustering.assignment)
        ++seen[a];
    for (const int count : seen)
        EXPECT_GT(count, 0);
}

} // namespace
