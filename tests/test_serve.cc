/** @file
 * Tests for the serving layer: wire protocol round-trips, the
 * admission queue's fairness, and the daemon end to end — payload
 * byte-identity with the in-process request API, concurrent-client
 * FIFO ordering, graceful drain, and two daemons sharing a cache
 * directory.
 */
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/request.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "support/check.h"

namespace {

using namespace alberta;
namespace fs = std::filesystem;

std::string
freshPath(const std::string &tag)
{
    static int counter = 0;
    const fs::path path = fs::path(::testing::TempDir()) /
                          ("alberta-serve-" + tag + "-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(counter++));
    fs::remove_all(path);
    return path.string();
}

/** Line-oriented test client for the daemon's socket. */
class Client
{
  public:
    explicit Client(const std::string &socketPath)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        support::fatalIf(fd_ < 0, "socket(): ",
                         std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        support::fatalIf(socketPath.size() >= sizeof(addr.sun_path),
                         "socket path too long");
        std::memcpy(addr.sun_path, socketPath.c_str(),
                    socketPath.size() + 1);
        // The server thread may still be between bind and listen;
        // retry briefly.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (::connect(fd_,
                         reinterpret_cast<const sockaddr *>(&addr),
                         sizeof(addr)) != 0) {
            support::fatalIf(
                std::chrono::steady_clock::now() >= deadline,
                "connect(", socketPath,
                "): ", std::strerror(errno));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }

    ~Client()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    sendLine(const std::string &line)
    {
        std::string framed = line;
        framed.push_back('\n');
        std::size_t off = 0;
        while (off < framed.size()) {
            const ssize_t n =
                ::send(fd_, framed.data() + off,
                       framed.size() - off, MSG_NOSIGNAL);
            ASSERT_GT(n, 0) << std::strerror(errno);
            off += static_cast<std::size_t>(n);
        }
    }

    /** Next newline-terminated line; empty string at EOF. */
    std::string
    recvLine()
    {
        for (;;) {
            const std::size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0)
                return {};
            buffer_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** A Server running on its own thread, joined on destruction. */
class ServerFixture
{
  public:
    explicit ServerFixture(serve::ServerOptions options)
        : server_(std::move(options)),
          thread_([this] { server_.serve(); })
    {
    }

    ~ServerFixture()
    {
        server_.beginShutdown();
        thread_.join();
    }

    serve::Server &operator*() { return server_; }
    serve::Server *operator->() { return &server_; }

  private:
    serve::Server server_;
    std::thread thread_;
};

serve::ServerOptions
serverOptions(const std::string &socket,
              const std::string &cacheDir = "")
{
    serve::ServerOptions options;
    options.socketPath = socket;
    options.jobs = 2;
    options.cacheDir = cacheDir;
    options.cacheDirGiven = !cacheDir.empty();
    return options;
}

std::string
runLine(std::uint64_t id, const std::string &benchmark,
        const std::string &workload)
{
    core::RunRequest request;
    request.kind = "run";
    request.benchmark = benchmark;
    request.workload = workload;
    return "{\"op\":\"run\",\"id\":" + std::to_string(id) +
           ",\"run\":" + request.toJson() + "}";
}

// --- protocol ---------------------------------------------------------

TEST(Protocol, RequestLineRoundTrip)
{
    core::RunRequest request;
    request.kind = "characterize";
    request.benchmark = "505.mcf_r";
    request.segments = 4;
    request.batched = true;
    const std::string line = "{\"op\":\"run\",\"id\":41,\"run\":" +
                             request.toJson() + "}";
    const serve::WireRequest wire = serve::parseRequestLine(line);
    EXPECT_EQ(wire.op, "run");
    EXPECT_EQ(wire.id, 41u);
    EXPECT_EQ(wire.run.kind, "characterize");
    EXPECT_EQ(wire.run.benchmark, "505.mcf_r");
    EXPECT_EQ(wire.run.segments, 4);
    EXPECT_TRUE(wire.run.batched);
    // RunRequest round-trips through its own JSON.
    EXPECT_EQ(core::RunRequest::fromJsonText(request.toJson())
                  .toJson(),
              request.toJson());
}

TEST(Protocol, SlashShorthandAndControlOps)
{
    EXPECT_EQ(serve::parseRequestLine("/metrics").op, "metrics");
    EXPECT_EQ(serve::parseRequestLine("/metrics").run.kind,
              "metrics");
    EXPECT_EQ(serve::parseRequestLine("/ping").op, "ping");
    EXPECT_EQ(serve::parseRequestLine("/shutdown").op, "shutdown");
    EXPECT_EQ(
        serve::parseRequestLine("{\"op\":\"ping\",\"id\":3}").id,
        3u);
}

TEST(Protocol, MalformedLinesAreFatal)
{
    EXPECT_THROW(serve::parseRequestLine("not json"),
                 support::FatalError);
    EXPECT_THROW(serve::parseRequestLine("{\"op\":\"nope\"}"),
                 support::FatalError);
    EXPECT_THROW(serve::parseRequestLine("{\"op\":\"run\"}"),
                 support::FatalError);
    EXPECT_THROW(serve::parseRequestLine("/flush"),
                 support::FatalError);
    EXPECT_THROW(
        serve::parseRequestLine(
            "{\"op\":\"run\",\"run\":{\"kind\":\"bogus\"}}"),
        support::FatalError);
}

TEST(Protocol, ResponsePayloadIsRecoveredByteIdentically)
{
    // Unusual-but-valid spacing survives because the payload is
    // sliced out of the envelope, never re-encoded.
    core::RunResult result;
    result.kind = "suite";
    result.payload = "[{\"a\":  [1,\t2], \"b\": \"x}y\"}]";
    const std::string line = serve::renderResponse(9, result);
    const serve::WireResponse wire = serve::parseResponseLine(line);
    EXPECT_EQ(wire.id, 9u);
    EXPECT_TRUE(wire.result.ok);
    EXPECT_EQ(wire.result.kind, "suite");
    EXPECT_EQ(wire.result.payload, result.payload);
}

TEST(Protocol, ErrorResponsesCarryTheDiagnostic)
{
    const std::string line =
        serve::renderError(7, "run", "suite: unknown benchmark");
    const serve::WireResponse wire = serve::parseResponseLine(line);
    EXPECT_EQ(wire.id, 7u);
    EXPECT_FALSE(wire.result.ok);
    EXPECT_EQ(wire.result.error, "suite: unknown benchmark");
}

// --- admission queue --------------------------------------------------

serve::QueueJob
job(std::uint64_t client, std::uint64_t wireId)
{
    serve::QueueJob j;
    j.client = client;
    j.wireId = wireId;
    return j;
}

TEST(RequestQueue, PerClientFifoWithRoundRobinAcrossClients)
{
    serve::RequestQueue queue(16);
    // Client 1 pipelines three requests before client 2's two.
    ASSERT_TRUE(queue.push(job(1, 10)));
    ASSERT_TRUE(queue.push(job(1, 11)));
    ASSERT_TRUE(queue.push(job(1, 12)));
    ASSERT_TRUE(queue.push(job(2, 20)));
    ASSERT_TRUE(queue.push(job(2, 21)));

    // Round-robin interleaves the clients; within a client the order
    // is exactly the order pushed.
    std::vector<std::uint64_t> order;
    serve::QueueJob out;
    while (queue.size() > 0 && queue.pop(&out))
        order.push_back(out.wireId);
    EXPECT_EQ(order,
              (std::vector<std::uint64_t>{10, 20, 11, 21, 12}));
}

TEST(RequestQueue, FullQueueRejectsWithoutBlocking)
{
    serve::RequestQueue queue(2);
    EXPECT_TRUE(queue.push(job(1, 1)));
    EXPECT_TRUE(queue.push(job(1, 2)));
    EXPECT_FALSE(queue.push(job(1, 3)));
    EXPECT_EQ(queue.rejected(), 1u);
    EXPECT_EQ(queue.size(), 2u);
}

TEST(RequestQueue, CloseDrainsQueuedJobsThenStops)
{
    serve::RequestQueue queue(8);
    ASSERT_TRUE(queue.push(job(1, 1)));
    ASSERT_TRUE(queue.push(job(2, 2)));
    queue.close();
    EXPECT_FALSE(queue.push(job(1, 3))); // draining: rejected
    serve::QueueJob out;
    EXPECT_TRUE(queue.pop(&out));
    EXPECT_TRUE(queue.pop(&out));
    EXPECT_FALSE(queue.pop(&out)); // closed and drained
}

// --- the daemon end to end --------------------------------------------

TEST(Serve, RunPayloadMatchesInProcessExecution)
{
    const std::string socket = freshPath("run.sock");
    ServerFixture server(serverOptions(socket));

    core::RunRequest request;
    request.kind = "run";
    request.benchmark = "505.mcf_r";
    request.workload = "test";
    runtime::Engine local(1);
    const core::RunResult direct = core::execute(request, local);

    Client client(socket);
    client.sendLine("{\"op\":\"run\",\"id\":1,\"run\":" +
                    request.toJson() + "}");
    const serve::WireResponse served =
        serve::parseResponseLine(client.recvLine());
    ASSERT_TRUE(served.result.ok) << served.result.error;
    // Byte-identical: the daemon renders through the same
    // core::execute path and ships the payload verbatim.
    EXPECT_EQ(served.result.payload, direct.payload);
    EXPECT_EQ(server->requestsServed(), 1u);
}

TEST(Serve, CharacterizePayloadReplaysByteIdenticallyFromSharedCache)
{
    const std::string socket = freshPath("char.sock");
    const std::string cacheDir = freshPath("char-cache");
    core::RunRequest request;
    request.kind = "characterize";
    request.benchmark = "557.xz_r";
    request.refrateRepetitions = 1;

    std::string servedPayload;
    {
        ServerFixture server(serverOptions(socket, cacheDir));
        Client client(socket);
        client.sendLine("{\"op\":\"run\",\"id\":1,\"run\":" +
                        request.toJson() + "}");
        const serve::WireResponse served =
            serve::parseResponseLine(client.recvLine());
        ASSERT_TRUE(served.result.ok) << served.result.error;
        servedPayload = served.result.payload;
    }

    // A fresh engine on the same cache directory replays the
    // daemon's results — timed refrate repetitions included — so the
    // in-process payload is byte-identical to the served one.
    runtime::Engine warm = runtime::Engine::Builder()
                               .jobs(2)
                               .cacheDir(cacheDir)
                               .build();
    const core::RunResult direct = core::execute(request, warm);
    EXPECT_EQ(direct.payload, servedPayload);
    EXPECT_EQ(warm.stats().cacheMisses, 0u);
}

TEST(Serve, FourConcurrentClientsGetSerialAnswersInFifoOrder)
{
    const std::string socket = freshPath("fair.sock");
    ServerFixture server(serverOptions(socket));

    // Mixed single-workload requests, three per client.
    const std::vector<std::pair<std::string, std::string>> mix = {
        {"505.mcf_r", "test"},   {"557.xz_r", "test"},
        {"541.leela_r", "test"}, {"505.mcf_r", "train"},
        {"557.xz_r", "train"},   {"541.leela_r", "train"},
    };
    // Expected payloads via the in-process API (deterministic model
    // outputs; kind "run" has no wall-time fields).
    std::map<std::string, std::string> expected;
    runtime::Engine local(1);
    for (const auto &[bench, workload] : mix) {
        core::RunRequest request;
        request.kind = "run";
        request.benchmark = bench;
        request.workload = workload;
        expected[bench + "/" + workload] =
            core::execute(request, local).payload;
    }

    constexpr int kClients = 4;
    constexpr int kPerClient = 3;
    std::vector<std::thread> threads;
    std::vector<std::string> failures(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            Client client(socket);
            // Pipeline all requests up front, then read back: the
            // response ids must come back in send order (per-client
            // FIFO) with the serial payloads.
            for (int i = 0; i < kPerClient; ++i) {
                const auto &[bench, workload] =
                    mix[(c + i * kClients) % mix.size()];
                client.sendLine(runLine(
                    static_cast<std::uint64_t>(100 * c + i), bench,
                    workload));
            }
            for (int i = 0; i < kPerClient; ++i) {
                const auto &[bench, workload] =
                    mix[(c + i * kClients) % mix.size()];
                const std::string line = client.recvLine();
                if (line.empty()) {
                    failures[c] = "unexpected EOF";
                    return;
                }
                const serve::WireResponse wire =
                    serve::parseResponseLine(line);
                if (wire.id !=
                    static_cast<std::uint64_t>(100 * c + i)) {
                    failures[c] = "response out of order";
                    return;
                }
                if (!wire.result.ok ||
                    wire.result.payload !=
                        expected[bench + "/" + workload]) {
                    failures[c] = "payload mismatch: " +
                                  wire.result.error;
                    return;
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_EQ(failures[c], "") << "client " << c;
    EXPECT_EQ(server->requestsServed(),
              static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(Serve, ShutdownDrainsAdmittedRequestsBeforeExit)
{
    const std::string socket = freshPath("drain.sock");
    auto server = std::make_optional<serve::Server>(
        serverOptions(socket));
    std::thread thread([&] { server->serve(); });

    Client client(socket);
    constexpr int kRequests = 5;
    for (int i = 1; i <= kRequests; ++i)
        client.sendLine(runLine(static_cast<std::uint64_t>(i),
                                "505.mcf_r", "test"));
    // Wait for the first answer so work is demonstrably in flight,
    // then ask for shutdown mid-stream.
    const serve::WireResponse first =
        serve::parseResponseLine(client.recvLine());
    ASSERT_TRUE(first.result.ok);
    server->beginShutdown();

    // Every admitted request is still answered (ok, in FIFO order);
    // anything that arrived after the drain began is answered with a
    // rejection — nothing is silently dropped.
    std::map<std::uint64_t, bool> answered{{first.id, true}};
    std::uint64_t lastOkId = first.id;
    for (int i = 1; i < kRequests; ++i) {
        const std::string line = client.recvLine();
        ASSERT_FALSE(line.empty()) << "EOF before all responses";
        const serve::WireResponse wire =
            serve::parseResponseLine(line);
        answered[wire.id] = wire.result.ok;
        if (wire.result.ok) {
            EXPECT_GT(wire.id, lastOkId) << "FIFO order violated";
            lastOkId = wire.id;
        } else {
            EXPECT_NE(wire.result.error.find("draining"),
                      std::string::npos)
                << wire.result.error;
        }
    }
    EXPECT_EQ(answered.size(),
              static_cast<std::size_t>(kRequests));
    EXPECT_EQ(client.recvLine(), ""); // clean EOF after the drain
    thread.join();
    EXPECT_GE(server->requestsServed(), 1u);
    EXPECT_FALSE(fs::exists(socket)); // socket file removed
}

TEST(Serve, MetricsAnsweredOutOfBandFromTheRegistry)
{
    const std::string socket = freshPath("metrics.sock");
    ServerFixture server(serverOptions(socket));
    Client client(socket);
    client.sendLine(runLine(1, "505.mcf_r", "test"));
    ASSERT_TRUE(
        serve::parseResponseLine(client.recvLine()).result.ok);
    client.sendLine("/metrics");
    const serve::WireResponse metrics =
        serve::parseResponseLine(client.recvLine());
    ASSERT_TRUE(metrics.result.ok);
    EXPECT_EQ(metrics.result.kind, "metrics");
    EXPECT_NE(metrics.result.payload.find("serve.requests"),
              std::string::npos);
    EXPECT_NE(metrics.result.payload.find("serve.responses"),
              std::string::npos);
    EXPECT_NE(metrics.result.payload.find("executor.jobs"),
              std::string::npos);
}

TEST(Serve, InvalidRequestsAnsweredWithoutKillingTheConnection)
{
    const std::string socket = freshPath("invalid.sock");
    ServerFixture server(serverOptions(socket));
    Client client(socket);
    client.sendLine("this is not json");
    serve::WireResponse wire =
        serve::parseResponseLine(client.recvLine());
    EXPECT_FALSE(wire.result.ok);
    client.sendLine(runLine(2, "999.nope_r", "test"));
    wire = serve::parseResponseLine(client.recvLine());
    EXPECT_FALSE(wire.result.ok);
    EXPECT_NE(wire.result.error.find("unknown benchmark"),
              std::string::npos);
    // The connection still works.
    client.sendLine("/ping");
    EXPECT_TRUE(serve::parseResponseLine(client.recvLine())
                    .result.ok);
}

TEST(Serve, TwoDaemonsTolerateRacingOnOneCacheDirectory)
{
    const std::string cacheDir = freshPath("race-cache");
    const std::string socketA = freshPath("race-a.sock");
    const std::string socketB = freshPath("race-b.sock");
    ServerFixture a(serverOptions(socketA, cacheDir));
    ServerFixture b(serverOptions(socketB, cacheDir));

    // Both daemons characterize the same benchmark concurrently —
    // overlapping cache keys, racing disk writes.
    core::RunRequest request;
    request.kind = "run";
    request.benchmark = "541.leela_r";
    request.workload = "train";
    std::string payloadA, payloadB;
    std::thread ta([&] {
        Client client(socketA);
        client.sendLine("{\"op\":\"run\",\"id\":1,\"run\":" +
                        request.toJson() + "}");
        payloadA =
            serve::parseResponseLine(client.recvLine())
                .result.payload;
    });
    std::thread tb([&] {
        Client client(socketB);
        client.sendLine("{\"op\":\"run\",\"id\":1,\"run\":" +
                        request.toJson() + "}");
        payloadB =
            serve::parseResponseLine(client.recvLine())
                .result.payload;
    });
    ta.join();
    tb.join();
    ASSERT_FALSE(payloadA.empty());
    EXPECT_EQ(payloadA, payloadB); // deterministic: the race writes
                                   // identical bytes
    EXPECT_EQ(a->engine().disk()->writeFailures() +
                  b->engine().disk()->writeFailures(),
              0u);
}

TEST(Serve, SecondDaemonOnTheSameSocketIsRefused)
{
    const std::string socket = freshPath("exclusive.sock");
    ServerFixture server(serverOptions(socket));
    Client probe(socket); // ensure the first daemon is listening
    serve::Server second(serverOptions(socket));
    EXPECT_THROW(second.serve(), support::FatalError);
}

} // namespace
