/** @file Tests for the 505.mcf_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/mcf/benchmark.h"
#include "benchmarks/mcf/generator.h"
#include "benchmarks/mcf/mincost.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::mcf;

Solution
solveInstance(const Instance &inst)
{
    runtime::ExecutionContext ctx;
    Solver solver(inst);
    return solver.solve(ctx);
}

TEST(MinCost, TrivialSingleArc)
{
    Instance inst;
    inst.supplies = {5, -5};
    inst.arcs.push_back({0, 1, 0, 10, 3});
    const Solution s = solveInstance(inst);
    ASSERT_TRUE(s.feasible);
    EXPECT_EQ(s.totalCost, 15);
    EXPECT_EQ(s.flows[0], 5);
    EXPECT_TRUE(verifyOptimal(inst, s));
}

TEST(MinCost, PrefersCheaperParallelArc)
{
    Instance inst;
    inst.supplies = {4, -4};
    inst.arcs.push_back({0, 1, 0, 3, 10}); // expensive
    inst.arcs.push_back({0, 1, 0, 3, 1});  // cheap
    const Solution s = solveInstance(inst);
    ASSERT_TRUE(s.feasible);
    EXPECT_EQ(s.flows[1], 3);
    EXPECT_EQ(s.flows[0], 1);
    EXPECT_EQ(s.totalCost, 3 * 1 + 1 * 10);
    EXPECT_TRUE(verifyOptimal(inst, s));
}

TEST(MinCost, RespectsLowerBounds)
{
    Instance inst;
    inst.supplies = {2, 0, -2};
    inst.arcs.push_back({0, 1, 1, 2, 5}); // must carry >= 1
    inst.arcs.push_back({1, 2, 0, 2, 1});
    inst.arcs.push_back({0, 2, 0, 2, 1}); // cheaper bypass
    const Solution s = solveInstance(inst);
    ASSERT_TRUE(s.feasible);
    EXPECT_GE(s.flows[0], 1);
    EXPECT_TRUE(verifyOptimal(inst, s));
}

TEST(MinCost, DetectsInfeasibility)
{
    Instance inst;
    inst.supplies = {3, -3};
    inst.arcs.push_back({0, 1, 0, 2, 1}); // capacity below supply
    const Solution s = solveInstance(inst);
    EXPECT_FALSE(s.feasible);
}

TEST(MinCost, DiamondChoosesShortestRoute)
{
    // 0 -> {1,2} -> 3 with asymmetric costs.
    Instance inst;
    inst.supplies = {1, 0, 0, -1};
    inst.arcs.push_back({0, 1, 0, 1, 1});
    inst.arcs.push_back({0, 2, 0, 1, 5});
    inst.arcs.push_back({1, 3, 0, 1, 1});
    inst.arcs.push_back({2, 3, 0, 1, 1});
    const Solution s = solveInstance(inst);
    ASSERT_TRUE(s.feasible);
    EXPECT_EQ(s.totalCost, 2);
    EXPECT_EQ(s.flows[0], 1);
    EXPECT_EQ(s.flows[1], 0);
    EXPECT_TRUE(verifyOptimal(inst, s));
}

TEST(MinCost, SerializeParseRoundTrip)
{
    Instance inst;
    inst.supplies = {7, 0, -7};
    inst.arcs.push_back({0, 1, 1, 5, 3});
    inst.arcs.push_back({1, 2, 0, 9, 2});
    inst.arcs.push_back({0, 2, 2, 7, 1});
    runtime::ExecutionContext ctx;
    const Instance parsed = Instance::parse(inst.serialize(), ctx);
    ASSERT_EQ(parsed.nodes(), inst.nodes());
    ASSERT_EQ(parsed.arcs.size(), inst.arcs.size());
    EXPECT_EQ(parsed.supplies, inst.supplies);
    for (std::size_t i = 0; i < inst.arcs.size(); ++i) {
        EXPECT_EQ(parsed.arcs[i].from, inst.arcs[i].from);
        EXPECT_EQ(parsed.arcs[i].capacity, inst.arcs[i].capacity);
        EXPECT_EQ(parsed.arcs[i].cost, inst.arcs[i].cost);
    }
}

TEST(MinCost, ParseRejectsMalformedInput)
{
    runtime::ExecutionContext ctx;
    EXPECT_THROW(Instance::parse("p min 2 1\na 0 5 0 1 1\n", ctx),
                 support::FatalError);
    EXPECT_THROW(Instance::parse("p min 1 0\nn 0 3\n", ctx),
                 support::FatalError); // unbalanced supply
    EXPECT_THROW(Instance::parse("q min 1 0\n", ctx),
                 support::FatalError);
}

TEST(CityGenerator, DeterministicForSameSeed)
{
    CityConfig cfg;
    cfg.seed = 77;
    cfg.trips = 50;
    const VehicleProblem a = generateCity(cfg);
    const VehicleProblem b = generateCity(cfg);
    EXPECT_EQ(a.instance.serialize(), b.instance.serialize());
}

TEST(CityGenerator, DifferentSeedsDiffer)
{
    CityConfig a, b;
    a.seed = 1;
    b.seed = 2;
    a.trips = b.trips = 50;
    EXPECT_NE(generateCity(a).instance.serialize(),
              generateCity(b).instance.serialize());
}

TEST(CityGenerator, TripsAreTimeConsistent)
{
    CityConfig cfg;
    cfg.seed = 3;
    cfg.trips = 80;
    const VehicleProblem prob = generateCity(cfg);
    for (const Trip &t : prob.trips) {
        EXPECT_LT(t.startMinute, t.endMinute);
        EXPECT_NE(t.fromTerminal, t.toTerminal);
        EXPECT_LT(t.endMinute, cfg.dayMinutes + 200);
    }
}

TEST(CityGenerator, CircadianProfileHasRushPeaks)
{
    const int day = 1200;
    const double night = circadianWeight(0, day);
    const double amRush = circadianWeight(day / 4, day);
    const double midday = circadianWeight(day * 45 / 100, day);
    EXPECT_GT(amRush, night * 3);
    EXPECT_GT(amRush, midday);
}

TEST(CityGenerator, ConnectivityControlsDeadheads)
{
    CityConfig sparse, dense;
    sparse.seed = dense.seed = 9;
    sparse.trips = dense.trips = 100;
    sparse.connectivity = 0.1;
    dense.connectivity = 0.9;
    EXPECT_GT(generateCity(dense).deadheads,
              generateCity(sparse).deadheads * 3);
}

TEST(CityGenerator, GeneratedProblemsAreFeasibleAndOptimal)
{
    for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
        CityConfig cfg;
        cfg.seed = seed;
        cfg.trips = 60;
        const VehicleProblem prob = generateCity(cfg);
        const Solution s = solveInstance(prob.instance);
        ASSERT_TRUE(s.feasible) << "seed " << seed;
        EXPECT_TRUE(verifyOptimal(prob.instance, s)) << "seed " << seed;
    }
}

TEST(McfBenchmark, WorkloadSetMatchesPaper)
{
    McfBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 7u); // Table II: 7 workloads for 505.mcf_r
    EXPECT_EQ(w[0].name, "refrate");
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_GE(alberta, 3); // paper: three generated city problems
}

TEST(McfBenchmark, RunsDeterministically)
{
    McfBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_GT(a.retiredOps, 1000u);
    EXPECT_TRUE(a.coverage.count("mcf::shortest_path"));
}

TEST(McfBenchmark, DifferentWorkloadsGiveDifferentBehaviour)
{
    McfBenchmark bm;
    const auto a =
        runtime::runOnce(bm, runtime::findWorkload(bm, "test"));
    const auto b =
        runtime::runOnce(bm, runtime::findWorkload(bm, "alberta.city-1"));
    EXPECT_NE(a.checksum, b.checksum);
}

} // namespace
