/** @file Tests for the 526.blender_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/blender/benchmark.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::blender;

TEST(Mesh, CubeHasTwelveTriangles)
{
    const Mesh cube = makeMesh(MeshKind::Cube, 2);
    EXPECT_EQ(cube.vertices.size(), 8u);
    EXPECT_EQ(cube.triangles.size(), 12u);
}

TEST(Mesh, ResolutionScalesTriangleCount)
{
    const Mesh coarse = makeMesh(MeshKind::Sphere, 4);
    const Mesh fine = makeMesh(MeshKind::Sphere, 12);
    EXPECT_GT(fine.triangles.size(), coarse.triangles.size() * 4);
    const Mesh torus = makeMesh(MeshKind::Torus, 6);
    EXPECT_GT(torus.triangles.size(), 50u);
}

TEST(Mesh, TriangleIndicesAreValid)
{
    for (const auto kind : {MeshKind::Cube, MeshKind::Sphere,
                            MeshKind::Torus, MeshKind::Terrain}) {
        const Mesh mesh = makeMesh(kind, 6, 3);
        for (const auto &tri : mesh.triangles) {
            for (const int idx : tri) {
                ASSERT_GE(idx, 0);
                ASSERT_LT(idx,
                          static_cast<int>(mesh.vertices.size()));
            }
        }
    }
}

TEST(BlendScene, SerializeParseRoundTrip)
{
    const auto pool = makeScenePool(5, 7);
    const BlendScene &scene = pool[0];
    const BlendScene parsed = BlendScene::parse(scene.serialize());
    EXPECT_EQ(parsed.objects.size(), scene.objects.size());
    EXPECT_EQ(parsed.frameCount, scene.frameCount);
    EXPECT_EQ(parsed.renderable, scene.renderable);
}

TEST(BlendScene, ParseRejectsGarbage)
{
    EXPECT_THROW(BlendScene::parse("whatever 1"),
                 support::FatalError);
    EXPECT_THROW(
        BlendScene::parse("blend 64 48 0 4 1\nobject 9 8 0 0 0 1 0 "
                          "0\n"),
        support::FatalError); // unsupported object kind
}

TEST(Validate, RejectsResourceAndBrokenScenes)
{
    BlendScene resource;
    resource.renderable = false;
    resource.objects.push_back(SceneObject{});
    EXPECT_FALSE(validateScene(resource));

    BlendScene empty;
    EXPECT_FALSE(validateScene(empty));

    BlendScene broken;
    SceneObject bad;
    bad.resolution = 1;
    broken.objects.push_back(bad);
    EXPECT_FALSE(validateScene(broken));

    BlendScene good;
    good.objects.push_back(SceneObject{});
    EXPECT_TRUE(validateScene(good));
}

TEST(ScenePool, ContainsRenderableAndResourceFiles)
{
    const auto pool = makeScenePool(40, 11);
    int renderable = 0;
    for (const auto &scene : pool)
        renderable += validateScene(scene);
    EXPECT_GT(renderable, 10);
    EXPECT_LT(renderable, 40);
    // The selection script always lands on a renderable one.
    for (std::uint64_t seed : {1ULL, 2ULL, 3ULL})
        EXPECT_TRUE(validateScene(pickRenderableScene(pool, seed)));
}

TEST(Render, DrawsVisibleTriangles)
{
    BlendScene scene;
    SceneObject cube;
    cube.kind = MeshKind::Cube;
    cube.position = {0, 0, 1};
    scene.objects.push_back(cube);
    scene.width = 48;
    scene.height = 36;
    scene.frameCount = 2;
    runtime::ExecutionContext ctx;
    RenderStats stats;
    const auto frames = renderAnimation(scene, ctx, &stats);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_GT(stats.trianglesDrawn, 0u);
    EXPECT_GT(stats.trianglesCulled, 0u); // backfaces
    EXPECT_GT(stats.pixelsShaded, 0u);
    EXPECT_GT(stats.meanLuminance, 0.05); // brighter than background
}

TEST(Render, AnimationChangesFrames)
{
    BlendScene scene;
    SceneObject torus;
    torus.kind = MeshKind::Torus;
    torus.resolution = 6;
    torus.spinPerFrame = 0.5;
    torus.position = {0, 0, 1};
    scene.objects.push_back(torus);
    scene.width = 40;
    scene.height = 30;
    scene.frameCount = 3;
    runtime::ExecutionContext ctx;
    const auto frames = renderAnimation(scene, ctx);
    EXPECT_NE(frames[0], frames[1]);
}

TEST(Render, StartFrameShiftsAnimation)
{
    const auto pool = makeScenePool(10, 13);
    BlendScene scene = pickRenderableScene(pool, 5);
    scene.width = 32;
    scene.height = 24;
    scene.frameCount = 1;
    runtime::ExecutionContext ctx;
    scene.startFrame = 0;
    const auto early = renderAnimation(scene, ctx);
    scene.startFrame = 9;
    const auto late = renderAnimation(scene, ctx);
    EXPECT_NE(early[0], late[0]);
}

TEST(BlenderBenchmark, WorkloadSetMatchesPaper)
{
    BlenderBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 16u); // Table II: 16 workloads
    int alberta = 0;
    bool variedStart = false;
    for (const auto &wl : w) {
        alberta += wl.isAlberta();
        variedStart |= wl.params.getInt("start_frame") > 0;
    }
    EXPECT_EQ(alberta, 13); // paper: thirteen new workloads
    EXPECT_TRUE(variedStart);
}

TEST(BlenderBenchmark, RunsDeterministically)
{
    BlenderBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    bool anyRaster = false;
    for (const auto &[name, frac] : a.coverage)
        anyRaster |= name.rfind("blender::raster", 0) == 0;
    EXPECT_TRUE(anyRaster);
}

} // namespace
