/** @file Tests for the 548.exchange2_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/exchange2/benchmark.h"
#include "benchmarks/exchange2/sudoku.h"
#include "support/check.h"
#include "support/text.h"

namespace {

using namespace alberta;
using namespace alberta::exchange2;

// A classic easy puzzle and its unique solution.
const char *kEasy = "530070000"
                    "600195000"
                    "098000060"
                    "800060003"
                    "400803001"
                    "700020006"
                    "060000280"
                    "000419005"
                    "000080079";

TEST(Grid, ParseSerializeRoundTrip)
{
    const Grid g = Grid::parse(kEasy);
    EXPECT_EQ(g.serialize(), kEasy);
    EXPECT_EQ(g.clues(), 30);
    EXPECT_TRUE(g.consistent());
    EXPECT_FALSE(g.solved());
}

TEST(Grid, ParseAcceptsDotsForEmpty)
{
    std::string dotted(kEasy);
    for (auto &ch : dotted)
        if (ch == '0')
            ch = '.';
    EXPECT_EQ(Grid::parse(dotted).serialize(), kEasy);
}

TEST(Grid, ParseRejectsBadInput)
{
    EXPECT_THROW(Grid::parse("123"), support::FatalError);
    std::string bad(kEasy);
    bad[5] = 'x';
    EXPECT_THROW(Grid::parse(bad), support::FatalError);
    // Duplicate in a row is inconsistent.
    std::string dup(81, '0');
    dup[0] = dup[1] = '5';
    EXPECT_THROW(Grid::parse(dup), support::FatalError);
}

TEST(Solver, SolvesEasyPuzzleUniquely)
{
    runtime::ExecutionContext ctx;
    const SolveResult r = solve(Grid::parse(kEasy), ctx, 2);
    EXPECT_EQ(r.solutions, 1);
    EXPECT_TRUE(r.solution.solved());
    EXPECT_GT(r.nodes, 0u);
    // Clues are preserved in the solution.
    const Grid g = Grid::parse(kEasy);
    for (int i = 0; i < 81; ++i) {
        if (g.cells[i] != 0)
            EXPECT_EQ(r.solution.cells[i], g.cells[i]);
    }
}

TEST(Solver, DetectsMultipleSolutions)
{
    // An almost-empty grid has many solutions.
    std::string sparse(81, '0');
    sparse[0] = '1';
    runtime::ExecutionContext ctx;
    EXPECT_EQ(solve(Grid::parse(sparse), ctx, 2).solutions, 2);
}

TEST(Solver, DetectsUnsolvablePuzzle)
{
    // Row 0 holds 1..8 leaving only 9 for r0c8, but column 8 already
    // contains a 9 further down: consistent as given, yet unsolvable.
    std::string puzzle = "123456780" + std::string(72, '0');
    puzzle[4 * 9 + 8] = '9'; // r4c8 = 9 (outside row 0 and box 2)
    runtime::ExecutionContext ctx;
    EXPECT_EQ(solve(Grid::parse(puzzle), ctx, 2).solutions, 0);
}

TEST(Transform, PreservesCluePatternCardinality)
{
    const Grid seed = Grid::parse(kEasy);
    support::Rng rng(3);
    for (int i = 0; i < 20; ++i) {
        const Grid t = transformPuzzle(seed, rng);
        EXPECT_EQ(t.clues(), seed.clues());
        EXPECT_TRUE(t.consistent());
    }
}

TEST(Transform, PreservesUniqueSolvability)
{
    const Grid seed = Grid::parse(kEasy);
    support::Rng rng(5);
    runtime::ExecutionContext ctx;
    for (int i = 0; i < 5; ++i) {
        const Grid t = transformPuzzle(seed, rng);
        EXPECT_EQ(solve(t, ctx, 2).solutions, 1);
    }
}

TEST(Transform, ProducesDistinctPuzzles)
{
    const Grid seed = Grid::parse(kEasy);
    support::Rng rng(7);
    const Grid a = transformPuzzle(seed, rng);
    const Grid b = transformPuzzle(seed, rng);
    EXPECT_NE(a.serialize(), b.serialize());
}

TEST(SeedCreator, ProducesUniquePuzzlesNearTarget)
{
    runtime::ExecutionContext ctx;
    support::Rng rng(11);
    const Grid p = createSeedPuzzle(rng, 28, ctx);
    EXPECT_LE(p.clues(), 40);
    EXPECT_GE(p.clues(), 20);
    EXPECT_EQ(solve(p, ctx, 2).solutions, 1);
}

TEST(SeedCreator, FewerCluesMeansMoreSearchNodes)
{
    runtime::ExecutionContext ctx;
    support::Rng r1(13), r2(13);
    const Grid hard = createSeedPuzzle(r1, 24, ctx);
    const Grid easy = createSeedPuzzle(r2, 45, ctx);
    runtime::ExecutionContext fresh;
    const auto hardNodes = solve(hard, fresh, 1).nodes;
    const auto easyNodes = solve(easy, fresh, 1).nodes;
    EXPECT_GT(hardNodes, easyNodes);
}

TEST(Exchange2Benchmark, DistributedSeedsAreStable)
{
    const std::string a = Exchange2Benchmark::distributedSeeds();
    const std::string b = Exchange2Benchmark::distributedSeeds();
    EXPECT_EQ(a, b);
    const auto lines = support::splitWhitespace(a);
    EXPECT_EQ(lines.size(), 27u); // the benchmark's 27 seeds
    runtime::ExecutionContext ctx;
    for (const auto &line : {lines[0], lines[13], lines[26]}) {
        const Grid g = Grid::parse(line);
        EXPECT_EQ(solve(g, ctx, 2).solutions, 1);
    }
}

TEST(Exchange2Benchmark, WorkloadSetMatchesPaper)
{
    Exchange2Benchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 13u); // Table II: 13 workloads
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_EQ(alberta, 10); // paper: ten additional workloads
}

TEST(Exchange2Benchmark, RunsDeterministically)
{
    Exchange2Benchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("exchange2::solve"));
    EXPECT_TRUE(a.coverage.count("exchange2::transform"));
}

} // namespace
