/**
 * @file
 * Differential tests for the block-batched replay kernel: batched
 * replay must be bit-identical to scalar replay — same state digest,
 * same slot totals, same retired count — on arbitrary interleaved call
 * sequences, across block boundaries, mid-trace range splits, FDO
 * hints, profiling, and the ALBERTA_NO_BATCH / interval fallbacks.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "support/rng.h"
#include "topdown/branch.h"
#include "topdown/machine.h"
#include "topdown/trace.h"

namespace {

using namespace alberta::topdown;
using alberta::support::mix64;
using alberta::support::Rng;

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/** Emit one random Machine API call drawn from the full vocabulary. */
void
randomCall(Machine &m, Rng &rng)
{
    switch (rng.below(16)) {
    case 0:
    case 1:
    case 2:
        m.ops(static_cast<OpKind>(rng.below(kNumOpKinds)),
              1 + rng.below(100));
        break;
    case 3:
        // Bulk report: wraps the code footprint many times, the wrap
        // fast-forward's trigger condition.
        m.ops(static_cast<OpKind>(rng.below(kNumOpKinds)),
              1 + rng.below(50'000));
        break;
    case 4:
    case 5:
        m.load(0x10000000ULL + rng.below(1 << 18));
        break;
    case 6:
        m.store(0x20000000ULL + rng.below(1 << 16));
        break;
    case 7:
        m.stream(rng.chance(0.5) ? OpKind::Load : OpKind::Store,
                 0x40000000ULL + rng.below(1 << 22),
                 1 + rng.below(5000),
                 static_cast<std::uint32_t>(rng.below(65)));
        break;
    case 8:
    case 9:
    case 10:
        m.branch(static_cast<std::uint32_t>(rng.below(32)),
                 rng.chance(0.7));
        break;
    case 11:
    case 12:
        m.indirect(static_cast<std::uint32_t>(rng.below(8)),
                   rng.below(16));
        break;
    case 13:
        m.call();
        break;
    case 14:
        // Stable-keyed method with a small-to-medium footprint.
        m.setMethod(static_cast<std::uint32_t>(rng.below(10)),
                    64 + static_cast<std::uint32_t>(rng.below(8192)),
                    mix64(rng.below(10)));
        break;
    case 15:
        // Default stable key (= id); footprints up to ~40 KB exceed
        // the wrap fast-forward's L1I ceiling, forcing scalar walks.
        m.setMethod(static_cast<std::uint32_t>(rng.below(4)),
                    64 + static_cast<std::uint32_t>(rng.below(40'000)),
                    ~0ULL);
        break;
    }
}

/** Capture a random @p events -call trace seeded by @p seed. */
UopTrace
randomTrace(std::uint64_t seed, std::size_t events)
{
    UopTrace trace;
    Machine m;
    m.captureTo(&trace);
    Rng rng(seed);
    for (std::size_t i = 0; i < events; ++i)
        randomCall(m, rng);
    m.captureTo(nullptr);
    return trace;
}

/** Hints covering every site key the random generator can produce. */
BranchHints
coveringHints()
{
    BranchHints hints;
    for (std::uint64_t site = 0; site < 32; ++site) {
        // Initial method 0 (stableKey 0) and id-keyed methods 0-3.
        for (std::uint64_t stable = 0; stable < 4; ++stable)
            hints.direction[stable * kGolden + site] = (site & 1) != 0;
        // mix64-keyed methods 0-9.
        for (std::uint64_t k = 0; k < 10; ++k)
            hints.direction[mix64(k) * kGolden + site] = (site & 1) == 0;
    }
    return hints;
}

struct CaseConfig
{
    bool profiling = false;
    const BranchHints *hints = nullptr;
};

/** Replay @p trace scalar and batched into fresh machines and demand
 * bit-identical outcomes. Returns the common digest. */
std::uint64_t
expectEquivalent(const UopTrace &trace, const CaseConfig &cfg = {})
{
    Machine scalar;
    Machine batched;
    for (Machine *m : {&scalar, &batched}) {
        m->collectProfile(cfg.profiling);
        m->setHints(cfg.hints);
    }
    trace.replayAll(scalar);
    trace.replayAllBatched(batched);
    EXPECT_EQ(scalar.stateDigest(), batched.stateDigest());
    EXPECT_EQ(scalar.retiredOps(), batched.retiredOps());
    EXPECT_EQ(scalar.totals().frontend, batched.totals().frontend);
    EXPECT_EQ(scalar.totals().backend, batched.totals().backend);
    EXPECT_EQ(scalar.totals().badspec, batched.totals().badspec);
    EXPECT_EQ(scalar.totals().retiring, batched.totals().retiring);
    EXPECT_EQ(scalar.hierarchy().l1d().accesses(),
              batched.hierarchy().l1d().accesses());
    EXPECT_EQ(scalar.hierarchy().l1i().misses(),
              batched.hierarchy().l1i().misses());
    EXPECT_EQ(scalar.predictor().mispredicts(),
              batched.predictor().mispredicts());
    return batched.stateDigest();
}

TEST(BatchedReplay, RandomizedDifferential)
{
    const BranchHints hints = coveringHints();
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        CaseConfig cfg;
        cfg.profiling = seed % 3 == 0;
        cfg.hints = seed % 5 == 0 ? &hints : nullptr;
        const UopTrace trace =
            randomTrace(0xba7c4ed0 + seed, 1500 + seed * 37);
        expectEquivalent(trace, cfg);
    }
}

TEST(BatchedReplay, BlockBoundaryStraddles)
{
    // Trace lengths around the 256-record block size, built from
    // branches (every record exercises predictor + accounting).
    for (const std::size_t records :
         {std::size_t{1}, std::size_t{255}, std::size_t{256},
          std::size_t{257}, std::size_t{511}, std::size_t{512},
          std::size_t{513}}) {
        UopTrace trace;
        Machine rec;
        rec.captureTo(&trace);
        for (std::size_t i = 0; i < records; ++i)
            rec.branch(static_cast<std::uint32_t>(i % 7), (i & 3) != 0);
        rec.captureTo(nullptr);
        ASSERT_EQ(trace.records(), records);
        expectEquivalent(trace);
    }
}

TEST(BatchedReplay, DenseBranchBlocksAllConfigs)
{
    // Uniform all-branch blocks take the dense register-mirrored
    // gshare loop; installed hints or enabled profiling must reroute
    // them through the generic per-record path. All three
    // configurations must match the scalar replay bit for bit.
    UopTrace trace;
    Machine rec;
    rec.captureTo(&trace);
    rec.setMethod(2, 2048, mix64(3));
    Rng rng(0xdeb5);
    for (std::size_t i = 0; i < 5000; ++i)
        rec.branch(static_cast<std::uint32_t>(i % 31),
                   rng.chance(0.6) || (i & 15) == 0);
    rec.captureTo(nullptr);

    const BranchHints hints = coveringHints();
    for (int variant = 0; variant < 3; ++variant) {
        CaseConfig cfg;
        cfg.profiling = variant == 1;
        cfg.hints = variant == 2 ? &hints : nullptr;
        expectEquivalent(trace, cfg);
    }
}

TEST(BatchedReplay, MidTraceRangeSplits)
{
    const UopTrace trace = randomTrace(0x5eedc0de, 2000);
    const std::size_t n = trace.records();
    // Split replay at awkward offsets: the batched ranges start and
    // end off any block boundary, mid-method, mid-history.
    for (const std::size_t cut : {std::size_t{3}, std::size_t{100},
                                  n / 2 + 1, n - 5}) {
        Machine scalar;
        trace.replay(scalar, 0, n);
        Machine split;
        trace.replayBatched(split, 0, cut);
        trace.replayBatched(split, cut, n);
        EXPECT_EQ(scalar.stateDigest(), split.stateDigest());
    }
}

TEST(BatchedReplay, WrapFastForwardMatchesScalar)
{
    // Bulk advances through small footprints: millions of code bytes
    // over 64-4096-byte methods, with unaligned cursors in between.
    UopTrace trace;
    Machine rec;
    rec.captureTo(&trace);
    for (std::uint32_t footprint : {64u, 100u, 256u, 4096u, 32768u}) {
        rec.setMethod(1, footprint, mix64(footprint));
        rec.ops(OpKind::IntAlu, 1); // desync the cursor from the wrap
        rec.ops(OpKind::IntAlu, 1'000'000);
        rec.load(0x900000ULL + footprint);
        rec.ops(OpKind::FpMul, 500'000);
    }
    rec.captureTo(nullptr);
    expectEquivalent(trace);
}

TEST(BatchedReplay, CountsBlocksAndFallbacks)
{
    const UopTrace trace = randomTrace(0xc07a57, 600);
    const std::uint64_t blocksBefore = batchCounters().blocks.load();
    const std::uint64_t fallbacksBefore =
        batchCounters().fallbackBlocks.load();

    Machine fast;
    trace.replayAllBatched(fast);
    const std::uint64_t expectBlocks = (trace.records() + 255) / 256;
    EXPECT_EQ(batchCounters().blocks.load() - blocksBefore,
              expectBlocks);

    ::setenv("ALBERTA_NO_BATCH", "1", 1);
    Machine slow;
    trace.replayAllBatched(slow);
    ::unsetenv("ALBERTA_NO_BATCH");
    EXPECT_EQ(batchCounters().fallbackBlocks.load() - fallbacksBefore,
              expectBlocks);
    EXPECT_EQ(fast.stateDigest(), slow.stateDigest());
}

TEST(BatchedReplay, NoBatchEnvMatchesBatched)
{
    const UopTrace trace = randomTrace(0xe5ca9e, 1200);
    const std::uint64_t batchedDigest = expectEquivalent(trace);

    // "0" and empty do NOT disable batching; "1" does, and the
    // fallback still produces the identical digest.
    for (const char *value : {"", "0", "1"}) {
        ::setenv("ALBERTA_NO_BATCH", value, 1);
        Machine m;
        trace.replayAllBatched(m);
        EXPECT_EQ(m.stateDigest(), batchedDigest) << "env=" << value;
    }
    ::unsetenv("ALBERTA_NO_BATCH");
}

TEST(BatchedReplay, IntervalRecordingFallsBackExactly)
{
    const UopTrace trace = randomTrace(0x17e4a1, 1000);
    Machine scalar;
    scalar.recordIntervals(10'000);
    trace.replayAll(scalar);

    Machine viaBatched;
    viaBatched.recordIntervals(10'000);
    trace.replayAllBatched(viaBatched); // divert_ -> scalar fallback
    EXPECT_EQ(scalar.stateDigest(), viaBatched.stateDigest());
    EXPECT_FALSE(viaBatched.intervals().empty());
    EXPECT_EQ(scalar.intervals().size(), viaBatched.intervals().size());
}

TEST(BatchedReplay, EmptyRangeIsANoOp)
{
    const UopTrace trace = randomTrace(0xe09f, 300);
    Machine m;
    const std::uint64_t fresh = m.stateDigest();
    trace.replayBatched(m, 10, 10);
    EXPECT_EQ(m.stateDigest(), fresh);

    UopTrace empty;
    Machine m2;
    empty.replayAllBatched(m2);
    EXPECT_EQ(m2.stateDigest(), fresh);
}

} // namespace
