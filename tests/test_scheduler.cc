/**
 * @file
 * Tests for the suite-level scheduler and its cost ledger: the
 * bit-identity of suite-scheduled characterizations against the
 * per-benchmark serial path, longest-expected-first dispatch order,
 * the steals-avoided accounting, and ledger persistence (EMA updates,
 * TSV round-trip, malformed-file tolerance).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <unistd.h>

#include <bit>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/suite.h"
#include "runtime/cost_ledger.h"
#include "runtime/scheduler.h"

namespace {

using namespace alberta;
namespace fs = std::filesystem;

std::string
freshPath(const std::string &tag)
{
    static int counter = 0;
    const fs::path path = fs::path(::testing::TempDir()) /
                          ("alberta-" + tag + "-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(counter++));
    fs::remove_all(path);
    return path.string();
}

bool
bitIdentical(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

void
expectSameModelOutputs(const core::Characterization &a,
                       const core::Characterization &b)
{
    ASSERT_EQ(a.benchmark, b.benchmark);
    ASSERT_EQ(a.workloadNames, b.workloadNames);
    EXPECT_EQ(a.checksumPerWorkload, b.checksumPerWorkload);
    ASSERT_EQ(a.topdownPerWorkload.size(), b.topdownPerWorkload.size());
    for (std::size_t i = 0; i < a.topdownPerWorkload.size(); ++i) {
        const auto x = a.topdownPerWorkload[i].asArray();
        const auto y = b.topdownPerWorkload[i].asArray();
        for (std::size_t k = 0; k < x.size(); ++k)
            EXPECT_TRUE(bitIdentical(x[k], y[k]))
                << a.benchmark << " workload " << a.workloadNames[i]
                << " ratio " << k;
    }
    EXPECT_EQ(a.coveragePerWorkload, b.coveragePerWorkload);
    EXPECT_TRUE(bitIdentical(a.topdown.muGV, b.topdown.muGV));
    EXPECT_TRUE(bitIdentical(a.coverage.muGM, b.coverage.muGM));
}

TEST(CostLedger, RecordsAdoptsThenSmoothes)
{
    runtime::CostLedger ledger;
    EXPECT_EQ(ledger.expectedSeconds("a/refrate"), 0.0);
    ledger.record("a/refrate", 4.0); // unknown key: adopt directly
    EXPECT_EQ(ledger.expectedSeconds("a/refrate"), 4.0);
    ledger.record("a/refrate", 2.0); // known key: EMA, alpha 0.5
    EXPECT_EQ(ledger.expectedSeconds("a/refrate"), 3.0);
    // Garbage measurements never poison the ledger.
    ledger.record("a/refrate", -1.0);
    ledger.record("a/refrate", std::nan(""));
    EXPECT_EQ(ledger.expectedSeconds("a/refrate"), 3.0);
    EXPECT_EQ(ledger.size(), 1u);
}

TEST(CostLedger, RoundTripsThroughItsFile)
{
    const std::string path = freshPath("ledger") + ".tsv";
    {
        runtime::CostLedger ledger(path);
        ledger.record("505.mcf_r/refrate", 1.5);
        ledger.record("557.xz_r/train", 0.25);
        ledger.save();
    }
    runtime::CostLedger reloaded(path);
    EXPECT_EQ(reloaded.size(), 2u);
    EXPECT_EQ(reloaded.expectedSeconds("505.mcf_r/refrate"), 1.5);
    EXPECT_EQ(reloaded.expectedSeconds("557.xz_r/train"), 0.25);
    EXPECT_EQ(reloaded.expectedSeconds("unknown"), 0.0);
}

TEST(CostLedger, MalformedFileLoadsEmpty)
{
    const std::string path = freshPath("ledger-bad") + ".tsv";
    {
        std::ofstream out(path);
        out << "not\tanumber\nmissing-tab\nx\t1.0\textra\n";
    }
    runtime::CostLedger ledger(path);
    // Parseable lines survive, junk is dropped, nothing throws.
    EXPECT_LE(ledger.size(), 1u);
    EXPECT_EQ(ledger.expectedSeconds("not"), 0.0);
}

TEST(CostLedger, CalibrationRatePersistsWithTheEntries)
{
    const std::string path = freshPath("ledger-cal") + ".tsv";
    {
        runtime::CostLedger ledger(path);
        EXPECT_EQ(ledger.secondsPerUnit(), 0.0);
        ledger.recordCalibration(2.0, 1e6); // 2 s over 1M units
        EXPECT_DOUBLE_EQ(ledger.secondsPerUnit(), 2e-6);
        // Degenerate batches never poison the rate.
        ledger.recordCalibration(1.0, 0.0);
        ledger.recordCalibration(-1.0, 1e6);
        EXPECT_DOUBLE_EQ(ledger.secondsPerUnit(), 2e-6);
        ledger.save();
    }
    // The rate rides the normal entry persistence, under its
    // reserved key.
    runtime::CostLedger reloaded(path);
    EXPECT_DOUBLE_EQ(reloaded.secondsPerUnit(), 2e-6);
    EXPECT_DOUBLE_EQ(reloaded.expectedSeconds(
                         runtime::CostLedger::kCalibrationKey),
                     2e-6);
}

TEST(Scheduler, DispatchesLongestExpectedFirst)
{
    runtime::CostLedger ledger;
    ledger.record("short", 0.1);
    ledger.record("long", 0.5);
    ledger.record("medium", 0.2);

    runtime::Executor executor(1); // serial: dispatch order == run order
    runtime::Scheduler scheduler(&executor, &ledger);
    std::vector<std::string> ran;
    std::vector<runtime::SuiteTask> tasks;
    for (const char *key : {"short", "long", "medium", "unknown"}) {
        runtime::SuiteTask t;
        t.costKey = key;
        t.run = [&ran, key](obs::Span &) { ran.emplace_back(key); };
        tasks.push_back(std::move(t));
    }
    const auto stats = scheduler.run(std::move(tasks));

    // Known costs sort descending; unknown (0.0 s) keeps its
    // submission position at the back.
    const std::vector<std::string> expected = {"long", "medium",
                                               "short", "unknown"};
    EXPECT_EQ(ran, expected);
    EXPECT_EQ(stats.dispatched, 4u);
    // "long" (submitted 1) and "medium" (submitted 2) were both
    // promoted ahead of their submission position.
    EXPECT_EQ(stats.stealsAvoided, 2u);
    EXPECT_GE(stats.batchSeconds, 0.0);

    // The batch recorded fresh measurements for every key.
    EXPECT_GT(ledger.expectedSeconds("unknown"), 0.0);
}

TEST(Scheduler, ColdLedgerKeepsSubmissionOrder)
{
    runtime::Executor executor(1);
    runtime::Scheduler scheduler(&executor, nullptr);
    std::vector<int> ran;
    std::vector<runtime::SuiteTask> tasks;
    for (int i = 0; i < 5; ++i) {
        runtime::SuiteTask t;
        t.costKey = "task" + std::to_string(i);
        t.run = [&ran, i](obs::Span &) { ran.push_back(i); };
        tasks.push_back(std::move(t));
    }
    const auto stats = scheduler.run(std::move(tasks));
    EXPECT_EQ(ran, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(stats.stealsAvoided, 0u);
}

/** Satellite: a completely cold ledger still dispatches the biggest
 * estimated workloads first, because tasks carry uop-count hints that
 * the scheduler converts to expected seconds. */
TEST(Scheduler, ColdLedgerOrdersByCostHint)
{
    runtime::CostLedger ledger; // empty: no measured seconds at all
    runtime::Executor executor(1);
    runtime::Scheduler scheduler(&executor, &ledger);

    std::vector<std::string> ran;
    const auto task = [&ran](const char *key, double hint) {
        runtime::SuiteTask t;
        t.costKey = key;
        t.costHint = hint;
        t.run = [&ran, key](obs::Span &) { ran.emplace_back(key); };
        return t;
    };
    std::vector<runtime::SuiteTask> tasks;
    tasks.push_back(task("small", 1e6));
    tasks.push_back(task("huge", 100e6));
    tasks.push_back(task("hintless", 0.0));
    tasks.push_back(task("medium", 10e6));
    const auto stats = scheduler.run(std::move(tasks));

    const std::vector<std::string> expected = {"huge", "medium",
                                               "small", "hintless"};
    EXPECT_EQ(ran, expected);
    EXPECT_EQ(stats.waves, 1u);
    // The batch calibrated a seconds-per-unit rate from the hinted
    // tasks' measured times.
    EXPECT_GT(ledger.secondsPerUnit(), 0.0);
}

/** Measured ledger seconds always beat hint estimates: a key the
 * ledger knows is ordered by its history, not its hint. */
TEST(Scheduler, MeasuredSecondsOverrideHints)
{
    runtime::CostLedger ledger;
    ledger.record("was-slow", 5.0);
    runtime::Executor executor(1);
    runtime::Scheduler scheduler(&executor, &ledger);

    std::vector<std::string> ran;
    std::vector<runtime::SuiteTask> tasks;
    {
        runtime::SuiteTask t;
        t.costKey = "big-hint";
        t.costHint = 1e9; // ~10 s at the uncalibrated prior
        t.run = [&ran](obs::Span &) { ran.emplace_back("big-hint"); };
        tasks.push_back(std::move(t));
    }
    {
        runtime::SuiteTask t;
        t.costKey = "was-slow";
        t.costHint = 1.0; // tiny hint, but 5.0 measured seconds
        t.run = [&ran](obs::Span &) { ran.emplace_back("was-slow"); };
        tasks.push_back(std::move(t));
    }
    scheduler.run(std::move(tasks));
    // 1e9 units * 1e-8 s/unit = 10 s expected > 5 s measured.
    EXPECT_EQ(ran.front(), "big-hint");
    EXPECT_EQ(ran.back(), "was-slow");
}

/** Expansion waves: a task can return follow-up tasks which the
 * scheduler dispatches in the next wave, re-sorted longest-first
 * among themselves. */
TEST(Scheduler, ExpansionWavesRunFollowUpsLongestFirst)
{
    runtime::CostLedger ledger;
    runtime::Executor executor(1);
    runtime::Scheduler scheduler(&executor, &ledger);

    std::vector<std::string> ran;
    const auto leaf = [&ran](const std::string &key, double hint) {
        runtime::SuiteTask t;
        t.costKey = key;
        t.costHint = hint;
        t.run = [&ran, key](obs::Span &) { ran.push_back(key); };
        return t;
    };
    runtime::SuiteTask parent;
    parent.costKey = "parent";
    parent.costHint = 30e6;
    parent.expand = [&](obs::Span &) {
        ran.emplace_back("parent");
        std::vector<runtime::SuiteTask> follow;
        follow.push_back(leaf("child-small", 1e6));
        follow.push_back(leaf("child-big", 20e6));
        return follow;
    };
    std::vector<runtime::SuiteTask> tasks;
    tasks.push_back(std::move(parent));
    tasks.push_back(leaf("plain", 2e6));
    const auto stats = scheduler.run(std::move(tasks));

    // Wave 1 runs parent (30M) then plain (2M); wave 2 runs the
    // follow-ups re-sorted longest-first.
    const std::vector<std::string> expected = {
        "parent", "plain", "child-big", "child-small"};
    EXPECT_EQ(ran, expected);
    EXPECT_EQ(stats.waves, 2u);
    EXPECT_EQ(stats.expanded, 1u);
    EXPECT_EQ(stats.dispatched, 4u);
    // Follow-up keys were measured into the ledger like any task.
    EXPECT_GT(ledger.expectedSeconds("child-big"), 0.0);
}

/** The tentpole guarantee: one global longest-first batch across the
 * whole suite produces bit-identical results to characterizing each
 * benchmark serially on its own. */
TEST(SuiteScheduler, MatchesPerBenchmarkSerialBitForBit)
{
    const std::vector<std::string> names = {"505.mcf_r", "557.xz_r",
                                            "541.leela_r"};
    std::vector<std::unique_ptr<runtime::Benchmark>> benchmarks;
    for (const auto &name : names)
        benchmarks.push_back(core::makeBenchmark(name));

    core::RunRequest serialRequest;
    serialRequest.jobs = 1;
    serialRequest.refrateRepetitions = 1;
    std::vector<core::Characterization> serial;
    for (const auto &bm : benchmarks)
        serial.push_back(core::characterize(*bm, serialRequest));

    for (const int jobs : {1, 2, 8}) {
        runtime::Engine engine(jobs);
        core::RunRequest request;
        request.refrateRepetitions = 1;
        const auto suite =
            core::characterizeSuite(benchmarks, request, &engine);
        ASSERT_EQ(suite.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectSameModelOutputs(serial[i], suite[i]);

        // Scheduler counters surfaced through the engine's registry.
        EXPECT_GT(
            engine.metrics().counter("scheduler.dispatched").value(),
            0u);
        EXPECT_GT(engine.ledger().size(), 0u);
    }
}

/** A warm second suite pass replays memoized results (including the
 * refrate repetitions) and schedules only what is missing. */
TEST(SuiteScheduler, WarmRerunReplaysInsteadOfRescheduling)
{
    std::vector<std::unique_ptr<runtime::Benchmark>> benchmarks;
    benchmarks.push_back(core::makeBenchmark("557.xz_r"));

    runtime::Engine engine(2);
    core::RunRequest request;
    request.refrateRepetitions = 2;
    const auto cold =
        core::characterizeSuite(benchmarks, request, &engine);
    const std::uint64_t coldDispatched =
        engine.metrics().counter("scheduler.dispatched").value();
    EXPECT_GT(coldDispatched, 0u);

    const auto warm =
        core::characterizeSuite(benchmarks, request, &engine);
    expectSameModelOutputs(cold[0], warm[0]);
    EXPECT_EQ(cold[0].refrateRuns, warm[0].refrateRuns);
    // Refrate replayed from the cache: its repetitions were not
    // rescheduled, so the warm batch is strictly smaller.
    const std::uint64_t warmDispatched =
        engine.metrics().counter("scheduler.dispatched").value() -
        coldDispatched;
    EXPECT_LT(warmDispatched, coldDispatched);
    EXPECT_EQ(engine.stats().cacheMisses, cold[0].workloadNames.size());
}

/** The cost ledger persists next to the disk cache and orders the
 * next session's batch. */
TEST(SuiteScheduler, LedgerPersistsAcrossEngines)
{
    const std::string dir = freshPath("sched-cache");
    std::vector<std::unique_ptr<runtime::Benchmark>> benchmarks;
    benchmarks.push_back(core::makeBenchmark("505.mcf_r"));

    {
        runtime::Engine engine =
            runtime::Engine::Builder().jobs(2).cacheDir(dir).build();
        core::RunRequest request;
        request.refrateRepetitions = 1;
        core::characterizeSuite(benchmarks, request, &engine);
        EXPECT_GT(engine.ledger().size(), 0u);
    }
    EXPECT_TRUE(fs::exists(fs::path(dir) / "cost_ledger.tsv"));

    runtime::Engine second =
        runtime::Engine::Builder().jobs(2).cacheDir(dir).build();
    // The new session knows the old session's costs before running
    // anything.
    EXPECT_GT(second.ledger().size(), 0u);
    EXPECT_GT(second.ledger().expectedSeconds(
                  "505.mcf_r/" +
                  benchmarks[0]->workloads().front().name),
              0.0);
}

/** Segmented suite runs go through the scheduler's expansion waves
 * (record task -> replay tasks -> splice) and land within the pinned
 * splice tolerance of the exact serial pass; checksums and uop counts
 * stay exact. */
TEST(SuiteScheduler, SegmentedSuiteWithinSpliceBound)
{
    std::vector<std::unique_ptr<runtime::Benchmark>> benchmarks;
    benchmarks.push_back(core::makeBenchmark("544.nab_r"));

    core::RunRequest serialRequest;
    serialRequest.jobs = 1;
    serialRequest.refrateRepetitions = 1;
    const auto exact =
        core::characterize(*benchmarks[0], serialRequest);

    runtime::Engine engine(4);
    core::RunRequest request;
    request.refrateRepetitions = 1;
    request.segments = 4;
    const auto suite =
        core::characterizeSuite(benchmarks, request, &engine);
    ASSERT_EQ(suite.size(), 1u);
    const auto &spliced = suite[0];

    ASSERT_EQ(spliced.workloadNames, exact.workloadNames);
    // Checksums and retired-uop counts come from the record pass and
    // are exact by construction.
    EXPECT_EQ(spliced.checksumPerWorkload, exact.checksumPerWorkload);
    for (std::size_t i = 0; i < exact.topdownPerWorkload.size(); ++i) {
        const auto x = exact.topdownPerWorkload[i].asArray();
        const auto y = spliced.topdownPerWorkload[i].asArray();
        for (std::size_t k = 0; k < x.size(); ++k)
            EXPECT_NEAR(x[k], y[k], 1e-3)
                << exact.workloadNames[i] << " ratio " << k;
    }

    // The expansion machinery actually fired: at least one record
    // task returned replay follow-ups, taking a second wave.
    EXPECT_GE(engine.metrics().counter("scheduler.waves").value(),
              2u);
}

} // namespace
