/** @file Tests for the method-coverage profiler. */
#include <gtest/gtest.h>

#include "profile/coverage.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::profile;

TEST(MethodRegistry, InternIsStable)
{
    MethodRegistry reg;
    const auto a = reg.intern("foo", 512);
    const auto b = reg.intern("bar");
    EXPECT_NE(a, b);
    EXPECT_EQ(reg.intern("foo", 9999), a); // re-intern keeps first size
    EXPECT_EQ(reg.codeBytes(a), 512u);
    EXPECT_EQ(reg.name(b), "bar");
    EXPECT_EQ(reg.name(0), "<unattributed>");
}

TEST(MethodRegistry, OutOfRangeIdPanics)
{
    MethodRegistry reg;
    EXPECT_THROW(reg.name(99), support::PanicError);
}

struct ProfilerFixture : ::testing::Test
{
    topdown::Machine machine;
    MethodRegistry registry;
    CoverageProfiler profiler{machine};

    void
    SetUp() override
    {
        profiler.bindRegistry(registry);
    }
};

TEST_F(ProfilerFixture, AttributesWorkToActiveScope)
{
    const auto idA = registry.intern("a");
    const auto idB = registry.intern("b");
    {
        MethodScope s(profiler, idA);
        machine.ops(topdown::OpKind::IntAlu, 200000);
    }
    {
        MethodScope s(profiler, idB);
        machine.ops(topdown::OpKind::IntAlu, 600000);
    }
    const auto cov = profiler.coverage(registry);
    ASSERT_TRUE(cov.count("a"));
    ASSERT_TRUE(cov.count("b"));
    // Cold instruction-cache fills add a small constant per method, so
    // the ratio approaches 3 without hitting it exactly.
    EXPECT_NEAR(cov.at("b") / cov.at("a"), 3.0, 0.2);
}

TEST_F(ProfilerFixture, NestedScopesSelfTime)
{
    const auto outer = registry.intern("outer");
    const auto inner = registry.intern("inner");
    {
        MethodScope so(profiler, outer);
        machine.ops(topdown::OpKind::IntAlu, 400000);
        {
            MethodScope si(profiler, inner);
            machine.ops(topdown::OpKind::IntAlu, 400000);
        }
        machine.ops(topdown::OpKind::IntAlu, 400000);
    }
    const auto cov = profiler.coverage(registry);
    // Callee slots go to the callee only (self-time semantics).
    EXPECT_NEAR(cov.at("outer") / cov.at("inner"), 2.0, 0.1);
}

TEST_F(ProfilerFixture, CoverageSumsToOne)
{
    for (int i = 0; i < 5; ++i) {
        MethodScope s(profiler,
                      registry.intern("m" + std::to_string(i)));
        machine.ops(topdown::OpKind::IntAlu, 100 * (i + 1));
    }
    double sum = 0.0;
    for (const auto &[name, frac] : profiler.coverage(registry))
        sum += frac;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(ProfilerFixture, EmptyRunYieldsEmptyCoverage)
{
    EXPECT_TRUE(profiler.coverage(registry).empty());
}

TEST_F(ProfilerFixture, PopUnderflowPanics)
{
    EXPECT_THROW(profiler.pop(), support::PanicError);
}

TEST(Profiler, UnboundRegistryPanicsOnPush)
{
    topdown::Machine machine;
    CoverageProfiler profiler(machine);
    EXPECT_THROW(profiler.push(1), support::PanicError);
}

} // namespace
