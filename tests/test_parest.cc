/** @file Tests for the 510.parest_r mini-benchmark. */
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/parest/benchmark.h"
#include "benchmarks/parest/solver.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::parest;

CsrMatrix
identity3()
{
    CsrMatrix m;
    m.rows = 3;
    m.rowStart = {0, 1, 2, 3};
    m.column = {0, 1, 2};
    m.value = {1.0, 1.0, 1.0};
    return m;
}

TEST(Csr, MultiplyMatchesDense)
{
    // [2 1 0; 1 3 0; 0 0 4] * [1 2 3]
    CsrMatrix m;
    m.rows = 3;
    m.rowStart = {0, 2, 4, 5};
    m.column = {0, 1, 0, 1, 2};
    m.value = {2, 1, 1, 3, 4};
    runtime::ExecutionContext ctx;
    std::vector<double> y;
    m.multiply({1, 2, 3}, y, ctx);
    EXPECT_DOUBLE_EQ(y[0], 4.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(Cg, SolvesIdentityInstantly)
{
    runtime::ExecutionContext ctx;
    std::vector<double> x;
    const CgResult r = conjugateGradient(identity3(), {1, 2, 3}, x,
                                         1e-12, 10, ctx);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(x[0], 1.0, 1e-10);
    EXPECT_NEAR(x[2], 3.0, 1e-10);
}

TEST(Cg, SolvesAssembledPoissonSystem)
{
    runtime::ExecutionContext ctx;
    const int n = 12;
    const CsrMatrix a = assemble(n, 1, {1.0}, ctx);
    std::vector<double> rhs(n * n, 1.0), x;
    const CgResult r =
        conjugateGradient(a, rhs, x, 1e-10, 1000, ctx);
    ASSERT_TRUE(r.converged);
    // Verify the residual directly.
    std::vector<double> ax;
    a.multiply(x, ax, ctx);
    double err = 0.0;
    for (std::size_t i = 0; i < ax.size(); ++i)
        err = std::max(err, std::abs(ax[i] - rhs[i]));
    EXPECT_LT(err, 1e-7);
    // The Poisson solution with positive rhs is positive, max in the
    // interior.
    for (const double v : x)
        EXPECT_GT(v, 0.0);
}

TEST(Assemble, HigherCoefficientsReduceSolution)
{
    runtime::ExecutionContext ctx;
    const int n = 10;
    std::vector<double> x1, x2, rhs(n * n, 1.0);
    conjugateGradient(assemble(n, 1, {1.0}, ctx), rhs, x1, 1e-10,
                      1000, ctx);
    conjugateGradient(assemble(n, 1, {4.0}, ctx), rhs, x2, 1e-10,
                      1000, ctx);
    // Four-fold conductivity scales the solution down four-fold.
    EXPECT_NEAR(x2[n * n / 2] * 4.0, x1[n * n / 2], 1e-6);
}

TEST(Assemble, RejectsBadCoefficients)
{
    runtime::ExecutionContext ctx;
    EXPECT_THROW(assemble(8, 2, {1.0}, ctx), support::FatalError);
    EXPECT_THROW(assemble(8, 1, {0.0}, ctx), support::FatalError);
}

TEST(Problem, SerializeParseRoundTrip)
{
    runtime::ExecutionContext ctx;
    const EstimationProblem p = makeProblem(8, 2, 5, ctx);
    const EstimationProblem parsed =
        EstimationProblem::parse(p.serialize());
    EXPECT_EQ(parsed.n, 8);
    EXPECT_EQ(parsed.subdomains, 2);
    ASSERT_EQ(parsed.measurements.size(), p.measurements.size());
    EXPECT_NEAR(parsed.measurements[10], p.measurements[10], 1e-12);
}

TEST(Estimate, RecoversCoefficients)
{
    runtime::ExecutionContext ctx;
    EstimationProblem p = makeProblem(12, 2, 7, ctx);
    p.descentIterations = 8;
    const EstimationResult r = estimate(p, ctx);
    EXPECT_GT(r.forwardSolves, 5);
    // Coordinate descent should land near the truth.
    EXPECT_LT(r.coefficientError, 0.35);
}

TEST(Estimate, MoreDescentReducesMisfit)
{
    runtime::ExecutionContext ctx;
    EstimationProblem p = makeProblem(10, 2, 9, ctx);
    EstimationProblem shallow = p, deep = p;
    shallow.descentIterations = 1;
    deep.descentIterations = 8;
    EXPECT_LE(estimate(deep, ctx).misfit,
              estimate(shallow, ctx).misfit);
}

TEST(ParestBenchmark, WorkloadSetMatchesPaper)
{
    ParestBenchmark bm;
    EXPECT_EQ(bm.workloads().size(), 8u); // Table II: 8 workloads
}

TEST(ParestBenchmark, RunsDeterministically)
{
    ParestBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("parest::cg_solve"));
    EXPECT_TRUE(a.coverage.count("parest::assemble"));
}

} // namespace
