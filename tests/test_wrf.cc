/** @file Tests for the 521.wrf_r mini-benchmark. */
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/wrf/benchmark.h"
#include "benchmarks/wrf/model.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::wrf;

TEST(Namelist, SerializeParseRoundTrip)
{
    Namelist nl;
    nl.steps = 14;
    nl.dt = 15.0;
    nl.microphysics = 2;
    nl.longwaveRadiation = 2;
    nl.surfaceScheme = 0;
    nl.boundaryLayer = 2;
    const Namelist parsed = Namelist::parse(nl.serialize());
    EXPECT_EQ(parsed.steps, 14);
    EXPECT_DOUBLE_EQ(parsed.dt, 15.0);
    EXPECT_EQ(parsed.microphysics, 2);
    EXPECT_EQ(parsed.longwaveRadiation, 2);
    EXPECT_EQ(parsed.surfaceScheme, 0);
    EXPECT_EQ(parsed.boundaryLayer, 2);
}

TEST(Namelist, ParseRejectsGarbage)
{
    EXPECT_THROW(Namelist::parse("mystery = 1\n"),
                 support::FatalError);
    EXPECT_THROW(Namelist::parse("no equals here\n"),
                 support::FatalError);
}

TEST(InputFields, SerializeParseRoundTrip)
{
    const InputFields in = makeStorm(StormKind::Hurricane, 12, 10, 3);
    const InputFields parsed = InputFields::parse(in.serialize());
    EXPECT_EQ(parsed.nx, 12);
    EXPECT_EQ(parsed.ny, 10);
    ASSERT_EQ(parsed.height.size(), in.height.size());
    for (std::size_t i = 0; i < in.height.size(); ++i)
        ASSERT_NEAR(parsed.height[i], in.height[i], 1e-6);
}

TEST(InputFields, ParseRejectsTruncation)
{
    const InputFields in = makeStorm(StormKind::Typhoon, 8, 8, 4);
    std::string text = in.serialize();
    text.resize(text.size() / 2);
    EXPECT_THROW(InputFields::parse(text), support::FatalError);
}

TEST(Storm, HurricaneIsDeeperAndTighterThanTyphoon)
{
    const InputFields h = makeStorm(StormKind::Hurricane, 32, 32, 5);
    const InputFields t = makeStorm(StormKind::Typhoon, 32, 32, 5);
    double hMin = 1e9, tMin = 1e9;
    for (std::size_t i = 0; i < h.height.size(); ++i) {
        hMin = std::min(hMin, h.height[i]);
        tMin = std::min(tMin, t.height[i]);
    }
    EXPECT_LT(hMin, tMin); // deeper central depression
}

TEST(Storm, VortexWindsCirculate)
{
    const InputFields h = makeStorm(StormKind::Hurricane, 32, 32, 6);
    double maxWind = 0.0;
    for (std::size_t i = 0; i < h.u.size(); ++i)
        maxWind = std::max(maxWind,
                           std::hypot(h.u[i], h.v[i]));
    EXPECT_GT(maxWind, 5.0);
}

TEST(Model, MassApproximatelyConserved)
{
    const InputFields in = makeStorm(StormKind::Typhoon, 24, 24, 7);
    double before = 0.0;
    for (const double h : in.height)
        before += h;
    Namelist nl;
    nl.steps = 15;
    nl.microphysics = 0; // latent heating injects mass-proxy
    Model model(in, nl);
    runtime::ExecutionContext ctx;
    const ForecastStats stats = model.run(ctx);
    EXPECT_NEAR(stats.totalMass, before, 0.01 * before);
}

TEST(Model, MicrophysicsProducesPrecipitationInMoistStorms)
{
    const InputFields in =
        makeStorm(StormKind::Hurricane, 24, 24, 8);
    Namelist wet, dry;
    wet.steps = dry.steps = 10;
    wet.microphysics = 1;
    dry.microphysics = 0;
    runtime::ExecutionContext ctx;
    const auto wetStats = Model(in, wet).run(ctx);
    const auto dryStats = Model(in, dry).run(ctx);
    EXPECT_GT(wetStats.totalPrecipitation, 0.0);
    EXPECT_EQ(dryStats.totalPrecipitation, 0.0);
}

TEST(Model, StrongBoundaryLayerDampsWinds)
{
    const InputFields in =
        makeStorm(StormKind::Hurricane, 24, 24, 9);
    Namelist weak, strong;
    weak.steps = strong.steps = 12;
    weak.boundaryLayer = 1;
    strong.boundaryLayer = 2;
    runtime::ExecutionContext ctx;
    EXPECT_GT(Model(in, weak).run(ctx).maxWind,
              Model(in, strong).run(ctx).maxWind);
}

TEST(Model, ForecastStaysFinite)
{
    const InputFields in = makeStorm(StormKind::Front, 20, 20, 10);
    Namelist nl;
    nl.steps = 40;
    Model model(in, nl);
    runtime::ExecutionContext ctx;
    const ForecastStats stats = model.run(ctx);
    EXPECT_TRUE(std::isfinite(stats.maxWind));
    EXPECT_LT(stats.maxWind, 200.0);
}

TEST(WrfBenchmark, WorkloadSetMatchesPaper)
{
    WrfBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 16u); // Table II: 16 workloads
    int alberta = 0;
    bool katrina = false, rusa = false;
    for (const auto &wl : w) {
        alberta += wl.isAlberta();
        katrina |= wl.name.find("katrina") != std::string::npos;
        rusa |= wl.name.find("rusa") != std::string::npos;
    }
    EXPECT_GE(alberta, 12); // paper: twelve new workloads
    EXPECT_TRUE(katrina);   // two data sets per Section IV-B
    EXPECT_TRUE(rusa);
}

TEST(WrfBenchmark, RunsDeterministically)
{
    WrfBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("wrf::dynamics"));
    EXPECT_TRUE(a.coverage.count("wrf::mp_warm_rain") ||
                a.coverage.count("wrf::bl_weak_mixing"));
}

} // namespace
