/** @file Tests for the workload/benchmark runtime. */
#include <gtest/gtest.h>

#include "runtime/benchmark.h"
#include "support/check.h"
#include "support/rng.h"

namespace {

using namespace alberta;
using namespace alberta::runtime;

TEST(Params, TypedRoundTrip)
{
    Params p;
    p.set("n", 42LL).set("x", 2.5).set("s", "hello").set("flag", true);
    EXPECT_EQ(p.getInt("n"), 42);
    EXPECT_DOUBLE_EQ(p.getDouble("x"), 2.5);
    EXPECT_EQ(p.getString("s"), "hello");
    EXPECT_TRUE(p.getBool("flag"));
    EXPECT_TRUE(p.has("n"));
    EXPECT_FALSE(p.has("absent"));
}

TEST(Params, FallbacksWhenAbsent)
{
    Params p;
    EXPECT_EQ(p.getInt("k", 7), 7);
    EXPECT_DOUBLE_EQ(p.getDouble("k", 1.5), 1.5);
    EXPECT_EQ(p.getString("k", "d"), "d");
    EXPECT_TRUE(p.getBool("k", true));
}

TEST(Params, IntAccessibleAsDouble)
{
    Params p;
    p.set("n", 3LL);
    EXPECT_DOUBLE_EQ(p.getDouble("n"), 3.0);
}

TEST(Workload, NameClassification)
{
    Workload w;
    w.name = "refrate";
    EXPECT_TRUE(w.isRefrate());
    EXPECT_FALSE(w.isAlberta());
    w.name = "alberta.city-1";
    EXPECT_TRUE(w.isAlberta());
    EXPECT_FALSE(w.isRefrate());
}

TEST(Workload, MissingArtifactIsFatal)
{
    Workload w;
    w.name = "x";
    w.files["input"] = "data";
    EXPECT_EQ(w.file("input"), "data");
    EXPECT_THROW(w.file("absent"), support::FatalError);
}

TEST(Context, ChecksumFoldsValues)
{
    ExecutionContext a, b;
    a.consume(std::uint64_t{1});
    a.consume(std::uint64_t{2});
    b.consume(std::uint64_t{2});
    b.consume(std::uint64_t{1});
    EXPECT_NE(a.checksum(), 0u);
    EXPECT_NE(a.checksum(), b.checksum()); // order-sensitive
}

TEST(Context, DoubleConsumptionIsQuantized)
{
    ExecutionContext a, b;
    a.consume(1.0);
    b.consume(1.0 + 1e-9); // below quantum -> same checksum
    EXPECT_EQ(a.checksum(), b.checksum());
}

TEST(Context, ResetClearsState)
{
    ExecutionContext c;
    c.consume(std::uint64_t{5});
    c.machine().ops(topdown::OpKind::IntAlu, 10);
    c.reset();
    EXPECT_EQ(c.checksum(), 0u);
    EXPECT_EQ(c.machine().retiredOps(), 0u);
}

/** A tiny deterministic benchmark for runner tests. */
class ToyBenchmark : public Benchmark
{
  public:
    std::string name() const override { return "000.toy_r"; }
    std::string area() const override { return "Testing"; }

    std::vector<Workload>
    workloads() const override
    {
        Workload ref;
        ref.name = "refrate";
        ref.seed = 1;
        ref.params.set("iters", 20000LL);
        Workload alb;
        alb.name = "alberta.t-1";
        alb.seed = 2;
        alb.params.set("iters", 5000LL);
        return {ref, alb};
    }

    void
    run(const Workload &w, ExecutionContext &ctx) const override
    {
        auto scope = ctx.method("toy_kernel", 512);
        support::Rng rng(w.seed);
        const auto iters = w.params.getInt("iters");
        std::uint64_t acc = 0;
        for (long long i = 0; i < iters; ++i) {
            const auto r = rng();
            ctx.machine().branch(1, r & 1);
            ctx.machine().load(r % (1 << 16));
            ctx.machine().op(topdown::OpKind::IntAlu);
            acc += r & 0xff;
        }
        ctx.consume(acc);
    }
};

TEST(Runner, RunOnceProducesMeasurements)
{
    ToyBenchmark toy;
    const auto w = findWorkload(toy, "refrate");
    const auto m = runOnce(toy, w);
    EXPECT_GT(m.retiredOps, 0u);
    EXPECT_GT(m.simCycles, 0.0);
    EXPECT_NE(m.checksum, 0u);
    EXPECT_NEAR(m.topdown.frontend + m.topdown.backend +
                    m.topdown.badspec + m.topdown.retiring,
                1.0, 1e-9);
    ASSERT_TRUE(m.coverage.count("toy_kernel"));
    EXPECT_NEAR(m.coverage.at("toy_kernel"), 1.0, 1e-9);
}

TEST(Runner, ModelOutputsDeterministicAcrossRuns)
{
    ToyBenchmark toy;
    const auto w = findWorkload(toy, "alberta.t-1");
    const auto a = runOnce(toy, w);
    const auto b = runOnce(toy, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_DOUBLE_EQ(a.topdown.retiring, b.topdown.retiring);
    EXPECT_EQ(a.retiredOps, b.retiredOps);
}

TEST(Runner, RepeatedRunsAggregateTimes)
{
    ToyBenchmark toy;
    const auto w = findWorkload(toy, "refrate");
    const auto agg = runRepeated(toy, w, 3);
    EXPECT_EQ(agg.runSeconds.size(), 3u);
    EXPECT_GT(agg.meanSeconds, 0.0);
    EXPECT_EQ(agg.workload, "refrate");
}

TEST(Runner, DifferentWorkloadsDifferentChecksums)
{
    ToyBenchmark toy;
    const auto a = runOnce(toy, findWorkload(toy, "refrate"));
    const auto b = runOnce(toy, findWorkload(toy, "alberta.t-1"));
    EXPECT_NE(a.checksum, b.checksum);
}

TEST(Runner, FindWorkloadMissingIsFatal)
{
    ToyBenchmark toy;
    EXPECT_THROW(findWorkload(toy, "nope"), support::FatalError);
}

TEST(Runner, ZeroRepetitionsIsFatal)
{
    ToyBenchmark toy;
    const auto w = findWorkload(toy, "refrate");
    EXPECT_THROW(runRepeated(toy, w, 0), support::FatalError);
}

} // namespace
