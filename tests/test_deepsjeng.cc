/** @file Tests for the 531.deepsjeng_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/deepsjeng/benchmark.h"
#include "benchmarks/deepsjeng/search.h"
#include "support/check.h"
#include "support/text.h"

namespace {

using namespace alberta;
using namespace alberta::deepsjeng;

TEST(Board, InitialPositionFenRoundTrip)
{
    const Board b = Board::initial();
    EXPECT_EQ(b.toFen(),
              "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq - 0 1");
    EXPECT_EQ(Board::fromFen(b.toFen()).hash(), b.hash());
}

TEST(Board, FenRoundTripsComplexPosition)
{
    const std::string kiwipete =
        "r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/R3K2R w KQkq "
        "- 0 1";
    EXPECT_EQ(Board::fromFen(kiwipete).toFen(), kiwipete);
}

TEST(Board, RejectsBadFen)
{
    EXPECT_THROW(Board::fromFen("only two fields"),
                 support::FatalError);
    EXPECT_THROW(Board::fromFen("8/8/8/8/8/8/8/8 x - -"),
                 support::FatalError);
}

/** Standard perft counts: the strongest movegen correctness check. */
struct PerftCase
{
    const char *fen;
    int depth;
    std::uint64_t nodes;
};

class Perft : public ::testing::TestWithParam<PerftCase>
{
};

TEST_P(Perft, MatchesKnownCounts)
{
    const auto &[fen, depth, nodes] = GetParam();
    Board b = Board::fromFen(fen);
    EXPECT_EQ(b.perft(depth), nodes);
}

INSTANTIATE_TEST_SUITE_P(
    Known, Perft,
    ::testing::Values(
        PerftCase{"rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq "
                  "- 0 1",
                  1, 20},
        PerftCase{"rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq "
                  "- 0 1",
                  2, 400},
        PerftCase{"rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq "
                  "- 0 1",
                  3, 8902},
        PerftCase{"rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq "
                  "- 0 1",
                  4, 197281},
        // Kiwipete: exercises castling, promotions, en passant, pins.
        PerftCase{"r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/"
                  "R3K2R w KQkq - 0 1",
                  1, 48},
        PerftCase{"r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/"
                  "R3K2R w KQkq - 0 1",
                  2, 2039},
        PerftCase{"r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/2N2Q1p/PPPBBPPP/"
                  "R3K2R w KQkq - 0 1",
                  3, 97862},
        // Position 3 from the CPW perft suite: en-passant pins.
        PerftCase{"8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - - 0 1", 1, 14},
        PerftCase{"8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - - 0 1", 2, 191},
        PerftCase{"8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - - 0 1", 3,
                  2812},
        PerftCase{"8/2p5/3p4/KP5r/1R3p1k/8/4P1P1/8 w - - 0 1", 4,
                  43238}));

TEST(Board, MakeUnmakeRestoresHashAndFen)
{
    Board b = Board::fromFen("r3k2r/p1ppqpb1/bn2pnp1/3PN3/1p2P3/"
                             "2N2Q1p/PPPBBPPP/R3K2R w KQkq - 0 1");
    const std::string fen = b.toFen();
    const std::uint64_t hash = b.hash();
    Undo undo;
    for (const Move &m : b.legalMoves()) {
        ASSERT_TRUE(b.makeMove(m, undo));
        b.unmakeMove(undo);
        ASSERT_EQ(b.toFen(), fen) << m.algebraic();
        ASSERT_EQ(b.hash(), hash) << m.algebraic();
    }
}

TEST(Board, DetectsCheck)
{
    const Board b =
        Board::fromFen("rnb1kbnr/pppp1ppp/8/4p3/6Pq/5P2/PPPPP2P/"
                       "RNBQKBNR w KQkq - 1 3");
    EXPECT_TRUE(b.inCheck(Side::White));
    EXPECT_FALSE(b.inCheck(Side::Black));
}

TEST(Board, EvaluationIsAntisymmetric)
{
    const Board b = Board::fromFen(
        "r1bqkbnr/pppp1ppp/2n5/4p3/2B1P3/5N2/PPPP1PPP/RNBQK2R w KQkq "
        "- 4 4");
    EXPECT_EQ(b.evaluate(Side::White), -b.evaluate(Side::Black));
}

TEST(Board, MaterialAdvantageShowsInEval)
{
    // White is up a queen.
    const Board b = Board::fromFen(
        "rnb1kbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq - 0 1");
    EXPECT_GT(b.evaluate(Side::White), 800);
}

TEST(Search, FindsMateInOne)
{
    // Scholar's mate delivery: Qxf7#.
    Board b = Board::fromFen(
        "r1bqkbnr/pppp1ppp/2n5/4p3/2B1P3/5Q2/PPPP1PPP/RNB1K1NR w KQkq "
        "- 4 4");
    Engine engine;
    runtime::ExecutionContext ctx;
    const SearchResult r = engine.analyze(b, 3, ctx);
    EXPECT_EQ(r.bestMove.algebraic(), "f3f7");
    EXPECT_GT(r.score, 80000);
}

TEST(Search, PrefersCapturingHangingQueen)
{
    Board b = Board::fromFen(
        "rnb1kbnr/pppp1ppp/8/4p3/4q3/3P4/PPP1PPPP/RNBQKBNR w KQkq - 0 "
        "1");
    Engine engine;
    runtime::ExecutionContext ctx;
    const SearchResult r = engine.analyze(b, 3, ctx);
    EXPECT_EQ(r.bestMove.algebraic(), "d3e4");
}

TEST(Search, DeeperSearchVisitsMoreNodes)
{
    Board b = Board::initial();
    runtime::ExecutionContext ctx;
    Engine e1, e2;
    Board b1 = b, b2 = b;
    const auto shallow = e1.analyze(b1, 2, ctx);
    const auto deep = e2.analyze(b2, 4, ctx);
    EXPECT_GT(deep.nodes, shallow.nodes * 3);
}

TEST(Search, TranspositionTableProducesHits)
{
    Board b = Board::initial();
    Engine engine;
    runtime::ExecutionContext ctx;
    const auto r = engine.analyze(b, 4, ctx);
    EXPECT_GT(r.ttHits, 0u);
}

TEST(Search, StalemateScoresZero)
{
    // Classic stalemate: black to move, no legal moves, not in check.
    Board b = Board::fromFen("7k/5Q2/6K1/8/8/8/8/8 b - - 0 1");
    Engine engine;
    runtime::ExecutionContext ctx;
    const auto r = engine.analyze(b, 2, ctx);
    EXPECT_EQ(r.score, 0);
}

TEST(Suite, GeneratedPositionsAreLegalAndLive)
{
    const std::string suite = generatePositionSuite(20, 42);
    const auto lines = support::split(suite, '\n');
    int checked = 0;
    for (const auto &line : lines) {
        if (support::trim(line).empty())
            continue;
        const Board b = Board::fromFen(line);
        EXPECT_FALSE(b.legalMoves().empty());
        ++checked;
    }
    EXPECT_EQ(checked, 20);
}

TEST(Suite, SampleAttachesDepthsInRange)
{
    const std::string suite = generatePositionSuite(10, 43);
    support::Rng rng(7);
    const std::string sampled = samplePositions(suite, 8, 3, 5, rng);
    int count = 0;
    for (const auto &line : support::split(sampled, '\n')) {
        if (support::trim(line).empty())
            continue;
        const auto fields = support::splitWhitespace(line);
        const int depth = std::stoi(fields[0]);
        EXPECT_GE(depth, 3);
        EXPECT_LE(depth, 5);
        ++count;
    }
    EXPECT_EQ(count, 8);
}

TEST(DeepsjengBenchmark, WorkloadSetMatchesPaper)
{
    DeepsjengBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 12u); // Table II: 12 workloads
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_EQ(alberta, 9); // paper: nine new workloads
}

TEST(DeepsjengBenchmark, RunsDeterministically)
{
    DeepsjengBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("deepsjeng::search"));
    EXPECT_TRUE(a.coverage.count("deepsjeng::movegen"));
}

} // namespace
