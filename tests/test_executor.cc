/**
 * @file
 * Tests for the parallel execution engine: Executor correctness, the
 * headline serial-vs-parallel bit-identity guarantee of the
 * characterization pipeline, and ResultCache memoization.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "core/suite.h"
#include "runtime/engine.h"
#include "runtime/executor.h"
#include "runtime/result_cache.h"

namespace {

using namespace alberta;

TEST(Executor, ResolvesJobCounts)
{
    EXPECT_GE(runtime::Executor::defaultJobs(), 1);
    runtime::Executor serial(1);
    EXPECT_EQ(serial.jobs(), 1);
    runtime::Executor pool(4);
    EXPECT_EQ(pool.jobs(), 4);
    runtime::Executor automatic(0);
    EXPECT_GE(automatic.jobs(), 1);
}

TEST(Executor, DefaultJobsReadsEnvironment)
{
    ::setenv("ALBERTA_JOBS", "3", 1);
    EXPECT_EQ(runtime::Executor::defaultJobs(), 3);
    ::setenv("ALBERTA_JOBS", "garbage", 1);
    EXPECT_GE(runtime::Executor::defaultJobs(), 1);
    ::unsetenv("ALBERTA_JOBS");
}

TEST(Executor, ParallelForCoversEveryIndexOnce)
{
    for (const int jobs : {1, 2, 8}) {
        runtime::Executor executor(jobs);
        std::vector<std::atomic<int>> touched(100);
        executor.parallelFor(touched.size(), [&](std::size_t i) {
            touched[i].fetch_add(1);
        });
        for (const auto &count : touched)
            EXPECT_EQ(count.load(), 1);
        const auto stats = executor.stats();
        EXPECT_EQ(stats.tasksRun, 100u);
        EXPECT_GE(stats.runSeconds, 0.0);
    }
}

TEST(Executor, PropagatesBodyExceptions)
{
    runtime::Executor executor(4);
    EXPECT_THROW(executor.parallelFor(
                     16,
                     [](std::size_t i) {
                         if (i == 7)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
    // The pool survives a throwing batch.
    std::atomic<int> ran{0};
    executor.parallelFor(8, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 8);
}

TEST(Executor, NestedParallelForRunsInline)
{
    runtime::Executor executor(2);
    std::atomic<int> inner{0};
    executor.parallelFor(4, [&](std::size_t) {
        executor.parallelFor(4,
                             [&](std::size_t) { inner.fetch_add(1); });
    });
    EXPECT_EQ(inner.load(), 16);
}

bool
bitIdentical(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Everything deterministic must match bit-for-bit. */
void
expectSameModelOutputs(const core::Characterization &a,
                       const core::Characterization &b)
{
    ASSERT_EQ(a.workloadNames, b.workloadNames);
    EXPECT_EQ(a.checksumPerWorkload, b.checksumPerWorkload);
    ASSERT_EQ(a.topdownPerWorkload.size(), b.topdownPerWorkload.size());
    for (std::size_t i = 0; i < a.topdownPerWorkload.size(); ++i) {
        const auto x = a.topdownPerWorkload[i].asArray();
        const auto y = b.topdownPerWorkload[i].asArray();
        for (std::size_t k = 0; k < x.size(); ++k)
            EXPECT_TRUE(bitIdentical(x[k], y[k]))
                << a.benchmark << " workload " << a.workloadNames[i]
                << " ratio " << k;
    }
    EXPECT_EQ(a.coveragePerWorkload, b.coveragePerWorkload);
    EXPECT_TRUE(bitIdentical(a.topdown.muGV, b.topdown.muGV));
    EXPECT_TRUE(bitIdentical(a.coverage.muGM, b.coverage.muGM));
}

/** The headline guarantee: thread count never changes model outputs. */
TEST(ExecutorDeterminism, SerialAndParallelCharacterizationsMatch)
{
    for (const char *name :
         {"505.mcf_r", "523.xalancbmk_r", "511.povray_r"}) {
        const auto bm = core::makeBenchmark(name);
        core::RunRequest serial;
        serial.refrateRepetitions = 1;
        serial.jobs = 1;
        const auto base = core::characterize(*bm, serial);

        for (const int jobs : {1, 2, 8}) {
            runtime::Engine engine(jobs);
            core::RunRequest request;
            request.refrateRepetitions = 1;
            const auto parallel =
                core::characterize(*bm, request, &engine);
            expectSameModelOutputs(base, parallel);
        }
    }
}

TEST(ResultCache, FingerprintTracksWorkloadContent)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    auto workloads = bm->workloads();
    ASSERT_FALSE(workloads.empty());
    runtime::Workload w = workloads.front();

    const std::uint64_t original =
        runtime::ResultCache::fingerprint(*bm, w);
    EXPECT_EQ(runtime::ResultCache::fingerprint(*bm, w), original);

    runtime::Workload reseeded = w;
    reseeded.seed ^= 1;
    EXPECT_NE(runtime::ResultCache::fingerprint(*bm, reseeded),
              original);

    runtime::Workload reparam = w;
    reparam.params.set("extra_knob", static_cast<long long>(1));
    EXPECT_NE(runtime::ResultCache::fingerprint(*bm, reparam),
              original);
}

TEST(ResultCache, StaleEntryMissesAfterContentChange)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    runtime::Workload w = bm->workloads().front();
    runtime::ResultCache cache;

    const auto first = runtime::measureCached(*bm, w, &cache);
    EXPECT_EQ(cache.misses(), 1u);
    const auto again = runtime::measureCached(*bm, w, &cache);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(first.checksum, again.checksum);

    w.seed ^= 0xbeef;
    runtime::CachedRun out;
    EXPECT_FALSE(cache.lookup(*bm, w, &out));
}

TEST(ResultCache, RecharacterizationIsFullyMemoized)
{
    const auto bm = core::makeBenchmark("523.xalancbmk_r");
    runtime::Engine engine(2);
    core::RunRequest request;
    request.refrateRepetitions = 2;

    const auto cold = core::characterize(*bm, request, &engine);
    const auto &cache = engine.cache();
    const std::uint64_t coldMisses = cache.misses();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(coldMisses, cold.workloadNames.size());
    EXPECT_EQ(cache.size(), cold.workloadNames.size());

    const auto warm = core::characterize(*bm, request, &engine);
    EXPECT_EQ(cache.misses(), coldMisses); // no recomputation
    EXPECT_EQ(cache.hits(), warm.workloadNames.size());

    expectSameModelOutputs(cold, warm);
    // Memoized refrate timings are replayed, not re-measured.
    EXPECT_EQ(cold.refrateRuns, warm.refrateRuns);
    EXPECT_EQ(cold.refrateSeconds, warm.refrateSeconds);
}

TEST(RunRequest, StatsAccumulateAcrossRuns)
{
    const auto bm = core::makeBenchmark("511.povray_r");
    runtime::Engine engine(2);
    core::RunRequest request;
    request.refrateRepetitions = 1;

    const auto c = core::characterize(*bm, request, &engine);
    const auto &stats = engine.stats();
    // Refrate is timed on the calling thread, not as a pool task.
    EXPECT_EQ(stats.tasksRun, c.workloadNames.size() - 1);
    EXPECT_EQ(stats.cacheMisses, c.workloadNames.size());
    EXPECT_EQ(stats.cacheHits, 0u);

    core::characterize(*bm, request, &engine);
    EXPECT_EQ(stats.cacheHits, c.workloadNames.size());
}

} // namespace
