/**
 * @file
 * Cross-benchmark property suite: invariants every mini-benchmark
 * must satisfy, enforced uniformly over all 16 programs via
 * parameterized tests.
 */
#include <gtest/gtest.h>

#include <set>

#include "core/suite.h"
#include "support/check.h"

namespace {

using namespace alberta;

class SuiteProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<runtime::Benchmark>
    benchmark() const
    {
        return core::makeBenchmark(GetParam());
    }
};

TEST_P(SuiteProperty, WorkloadNamesAreUniqueAndComplete)
{
    const auto bm = benchmark();
    std::set<std::string> names;
    for (const auto &w : bm->workloads()) {
        EXPECT_TRUE(names.insert(w.name).second)
            << "duplicate workload " << w.name;
        EXPECT_FALSE(w.files.empty() && w.params.entries().empty())
            << w.name << " carries no inputs at all";
    }
    EXPECT_TRUE(names.count("refrate"));
    EXPECT_TRUE(names.count("train"));
    EXPECT_TRUE(names.count("test"));
}

TEST_P(SuiteProperty, WorkloadGenerationIsDeterministic)
{
    const auto bm = benchmark();
    const auto a = bm->workloads();
    const auto b = bm->workloads();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].files, b[i].files) << a[i].name;
    }
}

TEST_P(SuiteProperty, TestWorkloadRunsReproducibly)
{
    const auto bm = benchmark();
    const auto w = runtime::findWorkload(*bm, "test");
    const auto first = runtime::runOnce(*bm, w);
    const auto second = runtime::runOnce(*bm, w);
    EXPECT_EQ(first.checksum, second.checksum);
    EXPECT_EQ(first.retiredOps, second.retiredOps);
    EXPECT_DOUBLE_EQ(first.topdown.retiring,
                     second.topdown.retiring);
    EXPECT_EQ(first.coverage, second.coverage);
}

TEST_P(SuiteProperty, TopdownFractionsAreNormalized)
{
    const auto bm = benchmark();
    const auto m =
        runtime::runOnce(*bm, runtime::findWorkload(*bm, "test"));
    const auto &r = m.topdown;
    EXPECT_NEAR(r.frontend + r.backend + r.badspec + r.retiring, 1.0,
                1e-9);
    for (const double v :
         {r.frontend, r.backend, r.badspec, r.retiring}) {
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    EXPECT_GT(m.retiredOps, 100u) << "suspiciously tiny run";
}

TEST_P(SuiteProperty, CoverageFractionsSumToOne)
{
    const auto bm = benchmark();
    const auto m =
        runtime::runOnce(*bm, runtime::findWorkload(*bm, "test"));
    ASSERT_FALSE(m.coverage.empty());
    double sum = 0.0;
    for (const auto &[method, fraction] : m.coverage) {
        EXPECT_GE(fraction, 0.0) << method;
        EXPECT_LE(fraction, 1.0) << method;
        sum += fraction;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(SuiteProperty, DifferentWorkloadsProduceDifferentOutputs)
{
    const auto bm = benchmark();
    const auto a =
        runtime::runOnce(*bm, runtime::findWorkload(*bm, "test"));
    const auto b =
        runtime::runOnce(*bm, runtime::findWorkload(*bm, "train"));
    EXPECT_NE(a.checksum, b.checksum);
}

TEST_P(SuiteProperty, MissingArtifactIsFatal)
{
    const auto bm = benchmark();
    runtime::Workload broken =
        runtime::findWorkload(*bm, "test");
    if (broken.files.empty())
        GTEST_SKIP() << "benchmark takes no file artifacts";
    broken.files.clear();
    runtime::ExecutionContext ctx;
    EXPECT_THROW(bm->run(broken, ctx), support::FatalError);
}

TEST_P(SuiteProperty, CorruptArtifactIsRejected)
{
    const auto bm = benchmark();
    runtime::Workload broken =
        runtime::findWorkload(*bm, "test");
    if (broken.files.empty())
        GTEST_SKIP() << "benchmark takes no file artifacts";
    // Truncate every artifact to a junk prefix.
    for (auto &[name, content] : broken.files)
        content = "!corrupt";
    runtime::ExecutionContext ctx;
    EXPECT_THROW(bm->run(broken, ctx), std::exception);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteProperty,
    ::testing::Values("502.gcc_r", "505.mcf_r", "507.cactuBSSN_r",
                      "510.parest_r", "511.povray_r", "519.lbm_r",
                      "520.omnetpp_r", "521.wrf_r",
                      "523.xalancbmk_r", "525.x264_r",
                      "526.blender_r", "531.deepsjeng_r",
                      "541.leela_r", "544.nab_r", "548.exchange2_r",
                      "557.xz_r"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace
