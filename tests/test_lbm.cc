/** @file Tests for the 519.lbm_r mini-benchmark. */
#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/lbm/benchmark.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::lbm;

Geometry
emptyChannel(int nx = 8, int ny = 8, int nz = 16)
{
    GeometryConfig cfg;
    cfg.nx = nx;
    cfg.ny = ny;
    cfg.nz = nz;
    cfg.sizeFraction = 0.0;
    return generateGeometry(cfg);
}

TEST(Geometry, SerializeParseRoundTrip)
{
    GeometryConfig cfg;
    cfg.seed = 4;
    cfg.shape = ObstacleShape::RandomBlobs;
    cfg.sizeFraction = 0.4;
    const Geometry g = generateGeometry(cfg);
    const Geometry parsed = Geometry::parse(g.serialize());
    EXPECT_EQ(parsed.nx, g.nx);
    EXPECT_EQ(parsed.cells, g.cells);
}

TEST(Geometry, ParseRejectsGarbage)
{
    EXPECT_THROW(Geometry::parse("not a geometry"),
                 support::FatalError);
    EXPECT_THROW(Geometry::parse("4 4 4\n....\n..x.\n"),
                 support::FatalError);
}

TEST(Geometry, ShapeAndSizeControlSolidCells)
{
    GeometryConfig small, large;
    small.seed = large.seed = 5;
    small.sizeFraction = 0.2;
    large.sizeFraction = 0.7;
    EXPECT_GT(generateGeometry(large).solidCells(),
              generateGeometry(small).solidCells() * 3);
}

TEST(Geometry, DensityAddsScatteredCells)
{
    GeometryConfig clean, dusty;
    clean.seed = dusty.seed = 6;
    clean.sizeFraction = dusty.sizeFraction = 0.0;
    dusty.density = 0.05;
    EXPECT_EQ(generateGeometry(clean).solidCells(), 0u);
    EXPECT_GT(generateGeometry(dusty).solidCells(), 10u);
}

TEST(Lattice, ConservesMassInEmptyChannel)
{
    const Geometry g = emptyChannel();
    LbmConfig cfg;
    cfg.steps = 10;
    Lattice lattice(g, cfg);
    runtime::ExecutionContext ctx;
    const FlowStats stats = lattice.run(ctx);
    const double cells = 8.0 * 8.0 * 16.0;
    EXPECT_NEAR(stats.totalMass, cells, cells * 1e-6);
}

TEST(Lattice, BodyForceAcceleratesFlow)
{
    const Geometry g = emptyChannel();
    LbmConfig cfg;
    cfg.steps = 15;
    Lattice lattice(g, cfg);
    runtime::ExecutionContext ctx;
    const FlowStats stats = lattice.run(ctx);
    EXPECT_GT(stats.meanVelocityZ, 0.01);
}

TEST(Lattice, ObstacleSlowsMeanFlow)
{
    GeometryConfig blocked;
    blocked.seed = 7;
    blocked.nx = blocked.ny = 8;
    blocked.nz = 16;
    blocked.shape = ObstacleShape::Sphere;
    blocked.sizeFraction = 0.8;
    const Geometry obst = generateGeometry(blocked);
    ASSERT_GT(obst.solidCells(), 0u);

    LbmConfig cfg;
    cfg.steps = 15;
    runtime::ExecutionContext ctx;
    Lattice open(emptyChannel(), cfg);
    Lattice closed(obst, cfg);
    EXPECT_GT(open.run(ctx).meanVelocityZ,
              closed.run(ctx).meanVelocityZ);
}

TEST(Lattice, TrtAndBgkBothStable)
{
    GeometryConfig cfg;
    cfg.seed = 8;
    cfg.nx = cfg.ny = 8;
    cfg.nz = 16;
    cfg.sizeFraction = 0.3;
    const Geometry g = generateGeometry(cfg);
    runtime::ExecutionContext ctx;
    for (const auto model :
         {CollisionModel::Bgk, CollisionModel::Trt}) {
        LbmConfig sim;
        sim.steps = 12;
        sim.model = model;
        Lattice lattice(g, sim);
        const FlowStats stats = lattice.run(ctx);
        EXPECT_TRUE(std::isfinite(stats.kineticEnergy));
        EXPECT_GT(stats.totalMass, 0.0);
    }
}

TEST(Lattice, RejectsBadTau)
{
    LbmConfig cfg;
    cfg.tau = 0.5;
    EXPECT_THROW(Lattice(emptyChannel(), cfg),
                 support::FatalError);
}

TEST(LbmBenchmark, WorkloadSetMatchesPaper)
{
    LbmBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 30u); // Table II: 30 workloads
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_GE(alberta, 24); // paper: twenty-four new workloads
}

TEST(LbmBenchmark, RunsDeterministically)
{
    LbmBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("lbm::collide_stream"));
    // lbm is numerically dominated: almost no bad speculation, like
    // the paper's 0.4% geometric mean.
    EXPECT_LT(a.topdown.badspec, 0.05);
}

} // namespace
