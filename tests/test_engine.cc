/**
 * @file
 * Tests for the runtime::Engine facade: construction and builder
 * configuration, bit-identity of characterizations run through the
 * engine versus the bare serial path, bit-identity with tracing
 * enabled versus disabled, span coverage (at least one span per
 * workload), and the end-of-run metrics snapshot.
 */
#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/suite.h"

namespace {

using namespace alberta;

bool
bitIdentical(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

/** Everything deterministic must match bit-for-bit. */
void
expectSameModelOutputs(const core::Characterization &a,
                       const core::Characterization &b)
{
    ASSERT_EQ(a.workloadNames, b.workloadNames);
    EXPECT_EQ(a.checksumPerWorkload, b.checksumPerWorkload);
    ASSERT_EQ(a.topdownPerWorkload.size(),
              b.topdownPerWorkload.size());
    for (std::size_t i = 0; i < a.topdownPerWorkload.size(); ++i) {
        const auto x = a.topdownPerWorkload[i].asArray();
        const auto y = b.topdownPerWorkload[i].asArray();
        for (std::size_t k = 0; k < x.size(); ++k)
            EXPECT_TRUE(bitIdentical(x[k], y[k]))
                << a.benchmark << " workload " << a.workloadNames[i]
                << " ratio " << k;
    }
    EXPECT_EQ(a.coveragePerWorkload, b.coveragePerWorkload);
    EXPECT_TRUE(bitIdentical(a.topdown.muGV, b.topdown.muGV));
    EXPECT_TRUE(bitIdentical(a.coverage.muGM, b.coverage.muGM));
}

TEST(Engine, ConstructionAndBuilder)
{
    runtime::Engine plain;
    EXPECT_GE(plain.jobs(), 1);
    EXPECT_FALSE(plain.tracing());
    EXPECT_TRUE(plain.tracePath().empty());

    runtime::Engine sized(3);
    EXPECT_EQ(sized.jobs(), 3);

    runtime::Engine built = runtime::Engine::Builder().jobs(2).build();
    EXPECT_EQ(built.jobs(), 2);
    EXPECT_FALSE(built.tracing());
    built.flushTrace(); // null sink: must be a safe no-op
}

TEST(Engine, BuilderCustomSinkEnablesTracing)
{
    std::ostringstream out;
    runtime::Engine engine =
        runtime::Engine::Builder()
            .jobs(2)
            .traceSink(std::make_unique<obs::JsonLinesSink>(out))
            .build();
    EXPECT_TRUE(engine.tracing());
    {
        obs::Span span(&engine.tracer(), "probe", "test");
        EXPECT_TRUE(span.active());
    }
    engine.flushTrace();
    EXPECT_NE(out.str().find("\"probe\""), std::string::npos);
}

/** The facade and the bare serial path must be one code path:
 * characterizations through either are bit-identical, and two
 * identically-configured sessions see identical work. */
TEST(Engine, MatchesBareSerialPathBitForBit)
{
    const auto bm = core::makeBenchmark("505.mcf_r");

    runtime::Engine engine(2);
    core::RunRequest request;
    request.refrateRepetitions = 2;
    const auto a = core::characterize(*bm, request, &engine);

    core::RunRequest bare;
    bare.jobs = 1;
    bare.refrateRepetitions = 2;
    const auto b = core::characterize(*bm, bare);

    expectSameModelOutputs(a, b);

    runtime::Engine twin(2);
    const auto c = core::characterize(*bm, request, &twin);
    expectSameModelOutputs(a, c);
    EXPECT_EQ(engine.stats().tasksRun, twin.stats().tasksRun);
    EXPECT_EQ(engine.stats().cacheMisses, twin.stats().cacheMisses);
    EXPECT_EQ(engine.stats().uopsRetired, twin.stats().uopsRetired);
}

/** The headline guarantee: tracing never changes model outputs. */
TEST(Engine, TracedCharacterizationIsBitIdentical)
{
    const auto bm = core::makeBenchmark("523.xalancbmk_r");

    runtime::Engine untraced(2);
    core::RunRequest request;
    request.refrateRepetitions = 1;
    const auto base = core::characterize(*bm, request, &untraced);

    std::ostringstream out;
    runtime::Engine traced =
        runtime::Engine::Builder()
            .jobs(2)
            .traceSink(std::make_unique<obs::JsonLinesSink>(out))
            .build();
    const auto withTrace = core::characterize(*bm, request, &traced);
    traced.flushTrace();

    expectSameModelOutputs(base, withTrace);

    // Span coverage: at least one span per workload (model_run spans
    // for the pool batch, refrate_rep spans for the timed runs).
    const std::string trace = out.str();
    std::size_t spans = 0;
    for (std::size_t pos = trace.find("\"cat\":");
         pos != std::string::npos;
         pos = trace.find("\"cat\":", pos + 1))
        ++spans;
    EXPECT_GE(spans, base.workloadNames.size());
    EXPECT_NE(trace.find("\"cat\":\"model_run\""), std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"refrate_rep\""),
              std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"cache_probe\""),
              std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"summarize\""), std::string::npos);
    EXPECT_NE(trace.find("\"cat\":\"characterize\""),
              std::string::npos);
}

TEST(Engine, MetricsSnapshotCoversSessionActivity)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    runtime::Engine engine(2);
    core::RunRequest request;
    request.refrateRepetitions = 1;
    core::characterize(*bm, request, &engine);
    core::characterize(*bm, request, &engine); // warm: cache hits

    const auto snapshot = engine.metricsSnapshot();
    const auto value = [&](const std::string &name) -> double {
        for (const auto &s : snapshot) {
            if (s.name == name)
                return s.value;
        }
        ADD_FAILURE() << "metric missing: " << name;
        return -1.0;
    };
    EXPECT_EQ(value("characterize.calls"), 2.0);
    EXPECT_GT(value("executor.batches"), 0.0);
    EXPECT_GT(value("executor.tasks"), 0.0);
    EXPECT_GT(value("cache.misses"), 0.0);
    EXPECT_GT(value("cache.hits"), 0.0);
    EXPECT_GT(value("cache.entries"), 0.0);
    EXPECT_EQ(value("executor.jobs"), 2.0);
    EXPECT_GT(value("session.uops_retired"), 0.0);

    // Sorted by name, no duplicates.
    for (std::size_t i = 1; i < snapshot.size(); ++i)
        EXPECT_LT(snapshot[i - 1].name, snapshot[i].name);
}

} // namespace
