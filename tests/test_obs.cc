/**
 * @file
 * Tests for the observability layer: metric primitives, registry
 * snapshots, span nesting and parenting, the null-sink fast path,
 * counter aggregation across executor worker threads, and the
 * well-formedness of the JSON-lines trace output.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "runtime/executor.h"

namespace {

using namespace alberta;

/** Sink collecting raw SpanRecords for structural assertions. */
class CollectSink : public obs::TraceSink
{
  public:
    void
    record(const obs::SpanRecord &span) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spans_.push_back(span);
    }

    std::vector<obs::SpanRecord>
    spans() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return spans_;
    }

    const obs::SpanRecord *
    find(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &s : spans_) {
            if (s.name == name)
                return &s;
        }
        return nullptr;
    }

  private:
    mutable std::mutex mutex_;
    std::vector<obs::SpanRecord> spans_;
};

TEST(Metrics, CounterGaugeHistogramBasics)
{
    obs::Counter c;
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    obs::Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(2.5);
    EXPECT_EQ(g.value(), 2.5);
    g.set(-1.0);
    EXPECT_EQ(g.value(), -1.0);

    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    h.record(2.0);
    h.record(6.0);
    h.record(4.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 12.0);
    EXPECT_EQ(h.min(), 2.0);
    EXPECT_EQ(h.max(), 6.0);
    EXPECT_EQ(h.mean(), 4.0);
}

TEST(Metrics, RegistryReturnsStableReferencesAndSortedSnapshot)
{
    obs::Registry registry;
    obs::Counter &c1 = registry.counter("zeta.count");
    obs::Counter &c2 = registry.counter("zeta.count");
    EXPECT_EQ(&c1, &c2); // same name -> same metric
    c1.add(7);

    registry.gauge("alpha.gauge").set(1.5);
    registry.histogram("mid.hist").record(3.0);

    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 3u);
    EXPECT_EQ(snapshot[0].name, "alpha.gauge");
    EXPECT_EQ(snapshot[0].kind, "gauge");
    EXPECT_EQ(snapshot[0].value, 1.5);
    EXPECT_EQ(snapshot[1].name, "mid.hist");
    EXPECT_EQ(snapshot[1].kind, "histogram");
    EXPECT_EQ(snapshot[1].count, 1u);
    EXPECT_EQ(snapshot[2].name, "zeta.count");
    EXPECT_EQ(snapshot[2].kind, "counter");
    EXPECT_EQ(snapshot[2].value, 7.0);
}

TEST(Metrics, CountersAggregateAcrossExecutorThreads)
{
    obs::Registry registry;
    obs::Counter &tasks = registry.counter("test.tasks");
    runtime::Executor executor(4);
    executor.parallelFor(1000, [&](std::size_t) { tasks.add(); });
    EXPECT_EQ(tasks.value(), 1000u);

    // The executor's own hook counts batches and tasks the same way.
    obs::Tracer tracer;
    executor.attachObservability(&tracer, &registry);
    executor.parallelFor(64, [](std::size_t) {});
    executor.parallelFor(36, [](std::size_t) {});
    EXPECT_EQ(registry.counter("executor.batches").value(), 2u);
    EXPECT_EQ(registry.counter("executor.tasks").value(), 100u);
}

TEST(Span, InactiveAgainstNullOrDisabledTracer)
{
    obs::Span null(nullptr, "x", "y");
    EXPECT_FALSE(null.active());
    EXPECT_EQ(null.id(), 0u);
    null.note("k", std::uint64_t{1}); // all no-ops
    null.finish();

    obs::Tracer sinkless; // the null sink
    obs::Span disabled(&sinkless, "x", "y");
    EXPECT_FALSE(disabled.active());
    EXPECT_EQ(disabled.id(), 0u);
}

TEST(Span, NestingInfersParentOnOneThread)
{
    CollectSink sink;
    obs::Tracer tracer(&sink);
    {
        obs::Span outer(&tracer, "outer", "test");
        EXPECT_TRUE(outer.active());
        {
            obs::Span inner(&tracer, "inner", "test");
            obs::Span innermost(&tracer, "innermost", "test");
            EXPECT_NE(inner.id(), outer.id());
            EXPECT_NE(innermost.id(), inner.id());
        }
        obs::Span sibling(&tracer, "sibling", "test");
        (void)sibling;
    }
    const auto *outer = sink.find("outer");
    const auto *inner = sink.find("inner");
    const auto *innermost = sink.find("innermost");
    const auto *sibling = sink.find("sibling");
    ASSERT_TRUE(outer && inner && innermost && sibling);
    EXPECT_EQ(outer->parent, obs::Span::kNoParent);
    EXPECT_EQ(inner->parent, outer->id);
    EXPECT_EQ(innermost->parent, inner->id);
    EXPECT_EQ(sibling->parent, outer->id); // inner already closed
    EXPECT_GE(outer->durationSeconds, inner->durationSeconds);
}

TEST(Span, ExplicitParentCrossesThreads)
{
    CollectSink sink;
    obs::Tracer tracer(&sink);
    std::uint64_t rootId = 0;
    {
        obs::Span root(&tracer, "root", "test");
        rootId = root.id();
        runtime::Executor executor(4);
        executor.parallelFor(8, [&](std::size_t i) {
            std::string name = "task";
            name += std::to_string(i);
            obs::Span task(&tracer, name, "test", rootId);
            task.note("index", static_cast<std::uint64_t>(i));
        });
    }
    const auto spans = sink.spans();
    ASSERT_EQ(spans.size(), 9u);
    int tasks = 0;
    for (const auto &s : spans) {
        if (s.name == "root")
            continue;
        EXPECT_EQ(s.parent, rootId) << s.name;
        ++tasks;
    }
    EXPECT_EQ(tasks, 8);
}

TEST(Span, FinishIsIdempotentAndEager)
{
    CollectSink sink;
    obs::Tracer tracer(&sink);
    obs::Span span(&tracer, "once", "test");
    span.finish();
    span.finish(); // second finish must not double-record
    EXPECT_EQ(sink.spans().size(), 1u);
    span.note("late", std::uint64_t{1}); // ignored after finish
    EXPECT_TRUE(sink.spans().front().attrs.empty());
}

// --- JSON-lines well-formedness ------------------------------------
//
// A deliberately tiny recursive-descent JSON parser: enough to verify
// every trace line is a standalone, syntactically valid JSON object.

class MiniJson
{
  public:
    explicit MiniJson(const std::string &text) : text_(text) {}

    bool
    parseObject()
    {
        skipWs();
        if (peek() != '{' || !object())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

    /** Top-level keys seen while parsing. */
    const std::vector<std::string> &
    keys() const
    {
        return keys_;
    }

  private:
    bool
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string(nullptr);
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object()
    {
        ++depth_;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            if (depth_ == 1)
                keys_.push_back(key);
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                --depth_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string *out)
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(esc) ==
                           std::string::npos) {
                    return false;
                }
                ++pos_;
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // control chars must be escaped
            if (out)
                out->push_back(c);
            ++pos_;
        }
        return false;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                return false;
            ++pos_;
        }
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t'))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::vector<std::string> keys_;
};

TEST(JsonLinesSink, EveryLineIsAWellFormedObject)
{
    std::ostringstream out;
    obs::JsonLinesSink sink(out);
    obs::Tracer tracer(&sink);
    {
        obs::Span root(&tracer, "root \"quoted\\name\"", "test");
        root.note("text", std::string_view("value with \"quotes\""));
        root.note("count", std::uint64_t{42});
        root.note("ratio", 0.25);
        obs::Span child(&tracer, "child\nwith newline", "test");
        (void)child;
    }
    sink.flush();
    EXPECT_EQ(sink.spansWritten(), 2u);

    std::istringstream lines(out.str());
    std::string line;
    int parsed = 0;
    while (std::getline(lines, line)) {
        MiniJson json(line);
        ASSERT_TRUE(json.parseObject()) << "bad JSON line: " << line;
        const auto &keys = json.keys();
        for (const char *required :
             {"id", "parent", "name", "cat", "start_s", "dur_s"}) {
            EXPECT_NE(std::find(keys.begin(), keys.end(), required),
                      keys.end())
                << "line missing key '" << required << "': " << line;
        }
        ++parsed;
    }
    EXPECT_EQ(parsed, 2);
}

TEST(JsonLinesSink, ConcurrentSpansProduceUnbrokenLines)
{
    std::ostringstream out;
    obs::JsonLinesSink sink(out);
    obs::Tracer tracer(&sink);
    runtime::Executor executor(8);
    executor.parallelFor(200, [&](std::size_t i) {
        std::string name = "w";
        name += std::to_string(i);
        obs::Span span(&tracer, name, "test", obs::Span::kNoParent);
        span.note("i", static_cast<std::uint64_t>(i));
    });
    sink.flush();
    EXPECT_EQ(sink.spansWritten(), 200u);

    std::istringstream lines(out.str());
    std::string line;
    int parsed = 0;
    while (std::getline(lines, line)) {
        MiniJson json(line);
        ASSERT_TRUE(json.parseObject()) << "bad JSON line: " << line;
        ++parsed;
    }
    EXPECT_EQ(parsed, 200);
}

} // namespace
