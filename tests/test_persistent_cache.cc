/**
 * @file
 * Tests for runtime::PersistentCache, the on-disk store behind the
 * result cache: bit-exact round-trips, model-version rejection,
 * corruption tolerance (truncated and bit-flipped entries must be
 * misses, never crashes), concurrent writers on one directory, and
 * the disk-warm second-engine path end to end.
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/suite.h"
#include "runtime/persistent_cache.h"
#include "support/check.h"

namespace {

using namespace alberta;
namespace fs = std::filesystem;

/** Fresh private directory under the gtest temp root. */
std::string
freshDir(const std::string &tag)
{
    static int counter = 0;
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("alberta-" + tag + "-" +
                          std::to_string(::getpid()) + "-" +
                          std::to_string(counter++));
    fs::remove_all(dir);
    return dir.string();
}

bool
bitIdentical(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) ==
           std::bit_cast<std::uint64_t>(b);
}

void
expectSameRun(const runtime::CachedRun &a, const runtime::CachedRun &b)
{
    EXPECT_TRUE(bitIdentical(a.measurement.seconds,
                             b.measurement.seconds));
    EXPECT_TRUE(bitIdentical(a.measurement.simCycles,
                             b.measurement.simCycles));
    EXPECT_EQ(a.measurement.retiredOps, b.measurement.retiredOps);
    EXPECT_EQ(a.measurement.checksum, b.measurement.checksum);
    const auto x = a.measurement.topdown.asArray();
    const auto y = b.measurement.topdown.asArray();
    for (std::size_t k = 0; k < x.size(); ++k)
        EXPECT_TRUE(bitIdentical(x[k], y[k])) << "ratio " << k;
    EXPECT_EQ(a.measurement.coverage, b.measurement.coverage);
    ASSERT_EQ(a.timedSeconds.size(), b.timedSeconds.size());
    for (std::size_t i = 0; i < a.timedSeconds.size(); ++i)
        EXPECT_TRUE(bitIdentical(a.timedSeconds[i], b.timedSeconds[i]));
}

TEST(PersistentCache, RoundTripsARunBitExactly)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    const runtime::Workload w = bm->workloads().front();
    runtime::CachedRun run;
    run.measurement = runtime::runOnce(*bm, w);
    run.timedSeconds = {1.25, 0.5, 1e-9};

    runtime::PersistentCache cache(freshDir("roundtrip"));
    cache.store(*bm, w, run);
    EXPECT_EQ(cache.writes(), 1u);
    EXPECT_EQ(cache.writeFailures(), 0u);

    runtime::CachedRun loaded;
    ASSERT_TRUE(cache.load(*bm, w, &loaded));
    EXPECT_EQ(cache.hits(), 1u);
    expectSameRun(run, loaded);
}

TEST(PersistentCache, AbsentEntryIsAPlainMiss)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    const runtime::Workload w = bm->workloads().front();
    runtime::PersistentCache cache(freshDir("absent"));
    runtime::CachedRun out;
    EXPECT_FALSE(cache.load(*bm, w, &out));
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.corrupt(), 0u);
}

TEST(PersistentCache, RejectsEntriesFromADifferentModelVersion)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    const runtime::Workload w = bm->workloads().front();
    runtime::CachedRun run;
    run.measurement = runtime::runOnce(*bm, w);

    const std::string dir = freshDir("version");
    runtime::PersistentCache writer(dir, /*modelVersion=*/1);
    writer.store(*bm, w, run);
    ASSERT_TRUE(writer.load(*bm, w, nullptr));

    // Same directory, different model semantics: a silent miss, not a
    // corruption event.
    runtime::PersistentCache reader(dir, /*modelVersion=*/2);
    runtime::CachedRun out;
    EXPECT_FALSE(reader.load(*bm, w, &out));
    EXPECT_EQ(reader.misses(), 1u);
    EXPECT_EQ(reader.corrupt(), 0u);
}

TEST(PersistentCache, TruncatedEntryIsACorruptMissNotACrash)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    const runtime::Workload w = bm->workloads().front();
    runtime::CachedRun run;
    run.measurement = runtime::runOnce(*bm, w);

    runtime::PersistentCache cache(freshDir("truncate"));
    cache.store(*bm, w, run);
    const std::string path = cache.entryPath(*bm, w);
    const auto fullSize = fs::file_size(path);
    for (const std::uintmax_t size :
         {fullSize / 2, std::uintmax_t{3}, std::uintmax_t{0}}) {
        fs::resize_file(path, size);
        runtime::CachedRun out;
        EXPECT_FALSE(cache.load(*bm, w, &out)) << "size " << size;
    }
    EXPECT_EQ(cache.corrupt(), 3u);
}

TEST(PersistentCache, BitFlippedEntryIsACorruptMissNotACrash)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    const runtime::Workload w = bm->workloads().front();
    runtime::CachedRun run;
    run.measurement = runtime::runOnce(*bm, w);

    runtime::PersistentCache cache(freshDir("bitflip"));
    cache.store(*bm, w, run);
    const std::string path = cache.entryPath(*bm, w);

    // Flip one bit of the trailing payload checksum: the entry stays
    // well-formed but can no longer verify.
    std::fstream file(path, std::ios::in | std::ios::out |
                                std::ios::binary | std::ios::ate);
    ASSERT_TRUE(file.good());
    const auto size = static_cast<std::streamoff>(file.tellg());
    file.seekg(size - 1);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(size - 1);
    file.write(&byte, 1);
    file.close();

    runtime::CachedRun out;
    EXPECT_FALSE(cache.load(*bm, w, &out));
    EXPECT_EQ(cache.corrupt(), 1u);

    // A clean rewrite recovers the entry.
    cache.store(*bm, w, run);
    EXPECT_TRUE(cache.load(*bm, w, &out));
    expectSameRun(run, out);
}

TEST(PersistentCache, GarbageFileIsACorruptMiss)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    const runtime::Workload w = bm->workloads().front();
    runtime::PersistentCache cache(freshDir("garbage"));
    {
        std::ofstream out(cache.entryPath(*bm, w), std::ios::binary);
        out << "this is not a cache entry at all";
    }
    runtime::CachedRun out;
    EXPECT_FALSE(cache.load(*bm, w, &out));
    EXPECT_EQ(cache.corrupt(), 1u);
}

TEST(PersistentCache, FatalsOnUnusableDirectory)
{
    EXPECT_THROW(runtime::PersistentCache(""), support::FatalError);
    // A path whose parent is a regular file can never be a directory.
    const std::string dir = freshDir("blocked");
    fs::create_directories(dir);
    const std::string file = dir + "/occupied";
    { std::ofstream(file) << "x"; }
    EXPECT_THROW(runtime::PersistentCache(file + "/sub"),
                 support::FatalError);
}

TEST(PersistentCache, ConcurrentWritersNeverTearAnEntry)
{
    const auto bm = core::makeBenchmark("505.mcf_r");
    const runtime::Workload w = bm->workloads().front();
    const std::string dir = freshDir("concurrent");

    // Two stores on one directory (two "engines"), racing writes to
    // the same entry. Atomic rename means every subsequent load sees
    // one writer's complete entry — never a torn mix.
    runtime::PersistentCache a(dir);
    runtime::PersistentCache b(dir);
    runtime::CachedRun runA;
    runA.measurement = runtime::runOnce(*bm, w);
    runA.timedSeconds = {1.0};
    runtime::CachedRun runB = runA;
    runB.timedSeconds = {2.0};

    constexpr int kRounds = 64;
    std::thread ta([&] {
        for (int i = 0; i < kRounds; ++i)
            a.store(*bm, w, runA);
    });
    std::thread tb([&] {
        for (int i = 0; i < kRounds; ++i) {
            b.store(*bm, w, runB);
            runtime::CachedRun seen;
            if (b.load(*bm, w, &seen)) {
                ASSERT_EQ(seen.timedSeconds.size(), 1u);
                EXPECT_TRUE(seen.timedSeconds[0] == 1.0 ||
                            seen.timedSeconds[0] == 2.0);
            }
        }
    });
    ta.join();
    tb.join();
    EXPECT_EQ(a.writeFailures() + b.writeFailures(), 0u);

    runtime::PersistentCache reader(dir);
    runtime::CachedRun final;
    ASSERT_TRUE(reader.load(*bm, w, &final));
    EXPECT_EQ(reader.corrupt(), 0u);
    ASSERT_EQ(final.timedSeconds.size(), 1u);
    EXPECT_TRUE(final.timedSeconds[0] == 1.0 ||
                final.timedSeconds[0] == 2.0);
}

/** End to end: a second engine on the same directory starts warm. */
TEST(PersistentCache, SecondEngineOnSameDirectoryServesFromDisk)
{
    const std::string dir = freshDir("second-engine");
    const auto bm = core::makeBenchmark("557.xz_r");

    runtime::Engine first =
        runtime::Engine::Builder().jobs(2).cacheDir(dir).build();
    core::RunRequest request;
    request.refrateRepetitions = 2;
    const auto cold = core::characterize(*bm, request, &first);
    ASSERT_NE(first.disk(), nullptr);
    EXPECT_EQ(first.disk()->writes(), cold.workloadNames.size());

    // Fresh engine, fresh (empty) memory cache, same directory: every
    // model run is served from disk and outputs are bit-identical.
    runtime::Engine second =
        runtime::Engine::Builder().jobs(2).cacheDir(dir).build();
    const auto warm = core::characterize(*bm, request, &second);

    ASSERT_EQ(cold.workloadNames, warm.workloadNames);
    EXPECT_EQ(cold.checksumPerWorkload, warm.checksumPerWorkload);
    EXPECT_TRUE(bitIdentical(cold.topdown.muGV, warm.topdown.muGV));
    EXPECT_TRUE(bitIdentical(cold.coverage.muGM, warm.coverage.muGM));
    EXPECT_EQ(cold.refrateRuns, warm.refrateRuns);
    EXPECT_EQ(second.disk()->hits(), warm.workloadNames.size());
    EXPECT_EQ(second.stats().cacheHits, warm.workloadNames.size());
    EXPECT_EQ(second.stats().cacheMisses, 0u);

    // The disk counters surface in the metrics snapshot.
    bool sawDiskHits = false;
    for (const auto &s : second.metricsSnapshot()) {
        if (s.name == "cache.disk_hits") {
            sawDiskHits = true;
            EXPECT_EQ(s.count, warm.workloadNames.size());
        }
    }
    EXPECT_TRUE(sawDiskHits);
}

/** Two live engines racing whole characterizations of overlapping
 * workloads on one cache directory (the two-daemons case): results
 * never tear, outputs are bit-identical, and both sessions leave the
 * directory warm for a third. */
TEST(PersistentCache, ConcurrentEnginesRacingOverlappingWorkloads)
{
    const std::string dir = freshDir("racing-engines");
    core::RunRequest request;
    request.refrateRepetitions = 1;

    runtime::Engine a =
        runtime::Engine::Builder().jobs(2).cacheDir(dir).build();
    runtime::Engine b =
        runtime::Engine::Builder().jobs(2).cacheDir(dir).build();
    core::Characterization fromA, fromB;
    std::thread ta([&] {
        const auto bm = core::makeBenchmark("557.xz_r");
        fromA = core::characterize(*bm, request, &a);
    });
    std::thread tb([&] {
        const auto bm = core::makeBenchmark("557.xz_r");
        fromB = core::characterize(*bm, request, &b);
    });
    ta.join();
    tb.join();

    // Model outputs are deterministic, so however the disk race
    // lands, both sessions computed identical results...
    ASSERT_EQ(fromA.workloadNames, fromB.workloadNames);
    EXPECT_EQ(fromA.checksumPerWorkload, fromB.checksumPerWorkload);
    EXPECT_TRUE(bitIdentical(fromA.topdown.muGV, fromB.topdown.muGV));
    EXPECT_TRUE(
        bitIdentical(fromA.coverage.muGM, fromB.coverage.muGM));
    // ...and nothing tore on disk.
    EXPECT_EQ(a.disk()->writeFailures() + b.disk()->writeFailures(),
              0u);
    EXPECT_EQ(a.disk()->corrupt() + b.disk()->corrupt(), 0u);

    // A third engine starts fully warm from the shared directory.
    runtime::Engine third =
        runtime::Engine::Builder().jobs(2).cacheDir(dir).build();
    const auto bm = core::makeBenchmark("557.xz_r");
    const auto warm = core::characterize(*bm, request, &third);
    EXPECT_EQ(third.stats().cacheMisses, 0u);
    EXPECT_EQ(warm.checksumPerWorkload, fromA.checksumPerWorkload);
}

/** The hoisted --cache-dir / ALBERTA_CACHE_DIR precedence every
 * binary now gets from Engine::Builder::cacheDirOption. */
TEST(EngineBuilder, CacheDirOptionPrecedence)
{
    const std::string envDir = freshDir("env-cache");
    const std::string flagDir = freshDir("flag-cache");

    ::setenv("ALBERTA_CACHE_DIR", envDir.c_str(), 1);
    {
        runtime::Engine engine = runtime::Engine::Builder()
                                     .jobs(1)
                                     .cacheDirOption("", false)
                                     .build();
        EXPECT_EQ(engine.cacheDir(), envDir); // env fills in
    }
    {
        runtime::Engine engine =
            runtime::Engine::Builder()
                .jobs(1)
                .cacheDirOption(flagDir, true)
                .build();
        EXPECT_EQ(engine.cacheDir(), flagDir); // explicit flag wins
    }
    // An explicitly empty --cache-dir is a usage error, not "off".
    EXPECT_THROW(runtime::Engine::Builder().cacheDirOption("", true),
                 support::FatalError);
    ::unsetenv("ALBERTA_CACHE_DIR");
    {
        runtime::Engine engine = runtime::Engine::Builder()
                                     .jobs(1)
                                     .cacheDirOption("", false)
                                     .build();
        EXPECT_EQ(engine.cacheDir(), ""); // no flag, no env: off
        EXPECT_EQ(engine.disk(), nullptr);
    }
}

} // namespace
