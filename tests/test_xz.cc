/** @file Tests for the 557.xz_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/xz/benchmark.h"
#include "benchmarks/xz/generator.h"
#include "benchmarks/xz/lz77.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::xz;

std::vector<std::uint8_t>
roundTrip(const std::vector<std::uint8_t> &raw,
          const CodecConfig &cfg = {})
{
    runtime::ExecutionContext ctx;
    return decompress(compress(raw, cfg, ctx), ctx);
}

TEST(Lz77, RoundTripsEmptyInput)
{
    EXPECT_EQ(roundTrip({}), std::vector<std::uint8_t>{});
}

TEST(Lz77, RoundTripsShortLiteral)
{
    const std::vector<std::uint8_t> raw = {'a', 'b', 'c'};
    EXPECT_EQ(roundTrip(raw), raw);
}

TEST(Lz77, RoundTripsRepetitiveData)
{
    std::vector<std::uint8_t> raw;
    for (int i = 0; i < 5000; ++i)
        raw.push_back("abcabcab"[i % 8]);
    EXPECT_EQ(roundTrip(raw), raw);
}

TEST(Lz77, CompressesRedundantDataWell)
{
    FileConfig cfg;
    cfg.kind = ContentKind::RepeatedFile;
    cfg.repeatUnit = 1024;
    cfg.bytes = 64 * 1024;
    const auto raw = generateFile(cfg);
    runtime::ExecutionContext ctx;
    const auto packed = compress(raw, {}, ctx);
    EXPECT_LT(packed.size(), raw.size() / 10);
}

TEST(Lz77, RandomDataBarelyCompresses)
{
    FileConfig cfg;
    cfg.kind = ContentKind::Random;
    cfg.bytes = 64 * 1024;
    const auto raw = generateFile(cfg);
    runtime::ExecutionContext ctx;
    const auto packed = compress(raw, {}, ctx);
    EXPECT_GT(packed.size(), raw.size() * 95 / 100);
    EXPECT_EQ(roundTrip(raw), raw);
}

TEST(Lz77, MatchesNeverExceedDictionary)
{
    // A repeat distance beyond the window must not produce far matches;
    // the stream itself must stay decodable and bounded.
    CodecConfig cfg;
    cfg.dictionaryBytes = 4096;
    FileConfig file;
    file.kind = ContentKind::RepeatedFile;
    file.repeatUnit = 16 * 1024; // unit >> window
    file.bytes = 64 * 1024;
    const auto raw = generateFile(file);
    runtime::ExecutionContext ctx;
    const auto packed = compress(raw, cfg, ctx);
    EXPECT_EQ(decompress(packed, ctx), raw);
}

TEST(Lz77, SmallWindowCompressesWorseThanLarge)
{
    FileConfig file;
    file.seed = 4;
    file.kind = ContentKind::RepeatedFile;
    file.repeatUnit = 8 * 1024;
    file.bytes = 128 * 1024;
    const auto raw = generateFile(file);
    runtime::ExecutionContext ctx;
    CodecConfig small, large;
    small.dictionaryBytes = 4096; // smaller than the repeat unit
    large.dictionaryBytes = 64 * 1024;
    const auto packedSmall = compress(raw, small, ctx);
    const auto packedLarge = compress(raw, large, ctx);
    EXPECT_GT(packedSmall.size(), packedLarge.size() * 2);
}

TEST(Lz77, RepeatedUnitInsideDictSpendsTimeInLookups)
{
    // The paper's 557.xz_r observation: a short file repeated within
    // the dictionary skews work from literal compression to
    // dictionary lookups (long matches, deep chains).
    FileConfig inDict, beyond;
    inDict.seed = beyond.seed = 5;
    inDict.kind = beyond.kind = ContentKind::RepeatedFile;
    inDict.repeatUnit = 4 * 1024;
    beyond.repeatUnit = 192 * 1024;
    inDict.bytes = beyond.bytes = 384 * 1024;

    runtime::ExecutionContext ctx;
    CompressStats sIn, sBeyond;
    compress(generateFile(inDict), {}, ctx, &sIn);
    compress(generateFile(beyond), {}, ctx, &sBeyond);
    // Within-dictionary repetition: nearly everything matches.
    EXPECT_GT(static_cast<double>(sIn.matchedBytes),
              0.95 * (sIn.matchedBytes + sIn.literals));
    EXPECT_LT(sIn.literals, sBeyond.literals);
}

TEST(Lz77, DecompressRejectsCorruptStreams)
{
    runtime::ExecutionContext ctx;
    EXPECT_THROW(decompress({0x00, 0x01, 0x02}, ctx),
                 support::FatalError);
    // Valid magic, truncated payload.
    std::vector<std::uint8_t> raw(100, 'x');
    auto packed = compress(raw, {}, ctx);
    packed.resize(packed.size() - 2);
    EXPECT_THROW(decompress(packed, ctx), support::FatalError);
}

TEST(Lz77, DecompressRejectsBadDistance)
{
    // Hand-craft: magic, dict=16, rawSize=4, then a match token with
    // distance 9 > available output.
    std::vector<std::uint8_t> stream = {0xA7, 0x5A, 16, 4};
    stream.push_back((4 << 1) | 1); // match length 4
    stream.push_back(9);            // distance 9 into empty history
    runtime::ExecutionContext ctx;
    EXPECT_THROW(decompress(stream, ctx), support::FatalError);
}

TEST(Generator, DeterministicPerSeed)
{
    FileConfig cfg;
    cfg.seed = 9;
    cfg.bytes = 10000;
    EXPECT_EQ(generateFile(cfg), generateFile(cfg));
    cfg.seed = 10;
    EXPECT_NE(generateFile(FileConfig{}), generateFile(cfg));
}

TEST(Generator, ProducesExactSize)
{
    for (auto kind : {ContentKind::Text, ContentKind::Log,
                      ContentKind::Binary, ContentKind::Random,
                      ContentKind::RepeatedFile}) {
        FileConfig cfg;
        cfg.kind = kind;
        cfg.bytes = 12345;
        EXPECT_EQ(generateFile(cfg).size(), 12345u);
    }
}

TEST(Generator, RepeatedFileActuallyRepeats)
{
    FileConfig cfg;
    cfg.kind = ContentKind::RepeatedFile;
    cfg.repeatUnit = 512;
    cfg.bytes = 4096;
    const auto data = generateFile(cfg);
    for (std::size_t i = 512; i < data.size(); ++i)
        ASSERT_EQ(data[i], data[i - 512]);
}

TEST(XzBenchmark, WorkloadSetMatchesPaper)
{
    XzBenchmark bm;
    const auto w = bm.workloads();
    EXPECT_EQ(w.size(), 12u); // Table II: 12 workloads for 557.xz_r
    int alberta = 0;
    for (const auto &wl : w)
        alberta += wl.isAlberta();
    EXPECT_GE(alberta, 8); // paper: eight new workloads (+1 repeat demo)
}

TEST(XzBenchmark, TestWorkloadRunsAndVerifies)
{
    XzBenchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("xz::find_match"));
    EXPECT_TRUE(a.coverage.count("xz::decompress"));
}

TEST(XzBenchmark, CoverageShiftsWithWorkload)
{
    XzBenchmark bm;
    const auto inDict = runtime::runOnce(
        bm, runtime::findWorkload(bm, "alberta.repeat-in-dict"));
    const auto random = runtime::runOnce(
        bm, runtime::findWorkload(bm, "alberta.random-small"));
    // Dictionary-resident repetition shifts time into match finding.
    EXPECT_GT(inDict.coverage.at("xz::find_match"), 0.0);
    ASSERT_TRUE(random.coverage.count("xz::emit_literals"));
    EXPECT_GT(random.coverage.at("xz::emit_literals"),
              inDict.coverage.count("xz::emit_literals")
                  ? inDict.coverage.at("xz::emit_literals")
                  : 0.0);
}

} // namespace
