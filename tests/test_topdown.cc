/** @file Tests for the top-down pipeline model substrate. */
#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"
#include "topdown/branch.h"
#include "topdown/cache.h"
#include "topdown/machine.h"

namespace {

using namespace alberta::topdown;

TEST(Cache, HitsAfterFill)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(63));  // same line
    EXPECT_FALSE(c.access(64)); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsOldestWay)
{
    // 2-way, 64B lines, 1024B -> 8 sets. Lines 0, 8, 16 map to set 0.
    Cache c(1024, 2, 64);
    c.access(0 << 6);
    c.access(8 << 6);
    c.access(0 << 6);      // refresh line 0
    c.access(16 << 6);     // evicts line 8 (LRU)
    EXPECT_TRUE(c.access(0 << 6));
    EXPECT_FALSE(c.access(8 << 6));
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes)
{
    Cache c(1024, 2, 64);
    const int lines = 64; // 4 KiB working set in a 1 KiB cache
    for (int pass = 0; pass < 3; ++pass)
        for (int i = 0; i < lines; ++i)
            c.access(static_cast<std::uint64_t>(i) << 6);
    EXPECT_GT(static_cast<double>(c.misses()) / c.accesses(), 0.9);
}

TEST(Cache, SmallWorkingSetFitsAfterWarmup)
{
    Cache c(32 * 1024, 8, 64);
    for (int pass = 0; pass < 10; ++pass)
        for (int i = 0; i < 64; ++i)
            c.access(static_cast<std::uint64_t>(i) << 6);
    EXPECT_EQ(c.misses(), 64u);
}

TEST(Cache, ResetForgetsContents)
{
    Cache c(1024, 2, 64);
    c.access(0);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(0));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(1000, 2, 64), alberta::support::FatalError);
}

TEST(Hierarchy, MissLatencyGrowsWithDistance)
{
    MemoryHierarchy h;
    const double first = h.data(0);
    const double second = h.data(0);
    EXPECT_GT(first, 0.0);   // cold miss reaches memory
    EXPECT_EQ(second, 0.0);  // L1 hit
}

TEST(Hierarchy, L2HitCheaperThanMemory)
{
    MemoryHierarchy h;
    const double cold = h.data(1 << 20);
    // Evict from L1 (32 KiB, 8-way) but not from L2 by touching 64 KiB.
    for (int i = 1; i <= 1024; ++i)
        h.data((1 << 20) + static_cast<std::uint64_t>(i) * 64);
    const double l2Hit = h.data(1 << 20);
    EXPECT_GT(l2Hit, 0.0);
    EXPECT_LT(l2Hit, cold);
}

TEST(Branch, LearnsStableDirection)
{
    BranchPredictor p;
    for (int i = 0; i < 1000; ++i)
        p.conditional(7, true);
    EXPECT_LT(p.mispredicts(), 5u);
}

TEST(Branch, RandomDirectionMispredictsOften)
{
    BranchPredictor p;
    std::uint64_t state = 123;
    for (int i = 0; i < 4000; ++i)
        p.conditional(7, alberta::support::splitmix64(state) & 1);
    const double rate =
        static_cast<double>(p.mispredicts()) / p.conditionals();
    EXPECT_GT(rate, 0.3);
}

TEST(Branch, LearnsAlternatingPatternViaHistory)
{
    BranchPredictor p;
    for (int i = 0; i < 4000; ++i)
        p.conditional(9, i % 2 == 0);
    const double rate =
        static_cast<double>(p.mispredicts()) / p.conditionals();
    EXPECT_LT(rate, 0.05);
}

TEST(Branch, HintsBypassDynamicPrediction)
{
    BranchHints hints;
    hints.direction[42] = true;
    BranchPredictor p;
    p.setHints(&hints);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(p.conditional(42, true));
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(p.conditional(42, false));
    EXPECT_EQ(p.mispredicts(), 100u);
}

TEST(Branch, IndirectLearnsRepeatingTargetSequences)
{
    // A repeating dispatch pattern (like an interpreter loop) should
    // become nearly perfectly predictable via target history.
    BranchPredictor p;
    const std::uint64_t pattern[4] = {100, 200, 100, 300};
    for (int warm = 0; warm < 64; ++warm)
        for (const auto target : pattern)
            p.indirect(1, target);
    const auto before = p.mispredicts();
    for (int i = 0; i < 64; ++i)
        for (const auto target : pattern)
            p.indirect(1, target);
    EXPECT_EQ(p.mispredicts(), before);
}

TEST(Branch, IndirectRandomTargetsMispredict)
{
    BranchPredictor p;
    std::uint64_t state = 3;
    int misses = 0;
    const auto before = p.mispredicts();
    for (int i = 0; i < 2000; ++i)
        p.indirect(7, alberta::support::splitmix64(state) % 64);
    misses = static_cast<int>(p.mispredicts() - before);
    EXPECT_GT(misses, 1000);
}

TEST(Machine, RetiringDominatesCleanAluStream)
{
    Machine m;
    m.setMethod(1, 256);
    m.ops(OpKind::IntAlu, 100000);
    const auto r = m.ratios();
    EXPECT_GT(r.retiring, 0.7);
    EXPECT_NEAR(r.frontend + r.backend + r.badspec + r.retiring, 1.0,
                1e-9);
}

TEST(Machine, DivisionHeavyStreamIsBackendBound)
{
    Machine m;
    m.setMethod(1, 256);
    m.ops(OpKind::IntDiv, 100000);
    const auto r = m.ratios();
    EXPECT_GT(r.backend, 0.8);
}

TEST(Machine, RandomBranchesRaiseBadSpeculation)
{
    Machine clean, noisy;
    clean.setMethod(1, 256);
    noisy.setMethod(1, 256);
    std::uint64_t state = 7;
    for (int i = 0; i < 20000; ++i) {
        clean.branch(1, true);
        noisy.branch(1, alberta::support::splitmix64(state) & 1);
        clean.ops(OpKind::IntAlu, 4);
        noisy.ops(OpKind::IntAlu, 4);
    }
    EXPECT_GT(noisy.ratios().badspec, clean.ratios().badspec * 5.0);
}

TEST(Machine, BigWorkingSetRaisesBackendBound)
{
    Machine small, big;
    small.setMethod(1, 256);
    big.setMethod(1, 256);
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t i = 0; i < 20000; ++i) {
            small.load((i % 128) * 64);
            big.load((i * 97 % 1000000) * 64);
        }
    }
    EXPECT_GT(big.ratios().backend, small.ratios().backend * 1.5);
}

TEST(Machine, LargeCodeFootprintRaisesFrontendBound)
{
    Machine smallCode, bigCode;
    smallCode.setMethod(1, 512);
    bigCode.setMethod(1, 512 * 1024);
    smallCode.ops(OpKind::IntAlu, 400000);
    bigCode.ops(OpKind::IntAlu, 400000);
    EXPECT_GT(bigCode.ratios().frontend,
              smallCode.ratios().frontend * 3.0);
}

TEST(Machine, PerMethodAttribution)
{
    Machine m;
    m.setMethod(1, 256);
    m.ops(OpKind::IntAlu, 1000);
    m.setMethod(2, 256);
    m.ops(OpKind::IntAlu, 3000);
    const auto &pm = m.perMethod();
    ASSERT_GE(pm.size(), 3u);
    EXPECT_NEAR(pm[2].retiring / pm[1].retiring, 3.0, 1e-9);
}

TEST(Machine, ProfileCollectionCountsDirections)
{
    Machine m;
    m.collectProfile(true);
    m.setMethod(3, 256);
    for (int i = 0; i < 10; ++i)
        m.branch(5, i < 7);
    const auto &profiles = m.siteProfiles();
    // Stable site key: stable_key * golden + site (default key = id).
    const auto it =
        profiles.find(std::uint64_t(3) * 0x9e3779b97f4a7c15ULL + 5);
    ASSERT_NE(it, profiles.end());
    EXPECT_EQ(it->second.total, 10u);
    EXPECT_EQ(it->second.taken, 7u);
}

TEST(Machine, LayoutScaleShrinksCodeFootprint)
{
    CodeLayout layout;
    layout.scale[1] = 0.125;
    Machine plain, optimized;
    optimized.setLayout(&layout);
    plain.setMethod(1, 64 * 1024);
    optimized.setMethod(1, 64 * 1024);
    plain.ops(OpKind::IntAlu, 200000);
    optimized.ops(OpKind::IntAlu, 200000);
    EXPECT_LT(optimized.ratios().frontend, plain.ratios().frontend);
}

TEST(Machine, ResetClearsEverything)
{
    Machine m;
    m.setMethod(1, 256);
    m.ops(OpKind::IntAlu, 100);
    m.reset();
    EXPECT_EQ(m.retiredOps(), 0u);
    EXPECT_EQ(m.totals().total(), 0.0);
}

TEST(Machine, StreamTouchesEachLineOnce)
{
    Machine m;
    m.setMethod(1, 256);
    m.stream(OpKind::Load, 0, 1024, 8); // 8 KiB = 128 lines
    EXPECT_EQ(m.hierarchy().l1d().accesses(), 128u);
    EXPECT_EQ(m.retiredOps(), 1024u);
}

TEST(Machine, DeterministicAcrossInstances)
{
    auto run = [] {
        Machine m;
        m.setMethod(1, 2048);
        std::uint64_t state = 99;
        for (int i = 0; i < 50000; ++i) {
            const auto r = alberta::support::splitmix64(state);
            m.branch(1, r & 1);
            m.load((r >> 1) % (1 << 22));
            m.ops(OpKind::IntAlu, 3);
        }
        return m.ratios();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_DOUBLE_EQ(a.frontend, b.frontend);
    EXPECT_DOUBLE_EQ(a.backend, b.backend);
    EXPECT_DOUBLE_EQ(a.badspec, b.badspec);
    EXPECT_DOUBLE_EQ(a.retiring, b.retiring);
}

/** Parameterized issue-width sweep: fractions stay normalized. */
class MachineWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(MachineWidth, FractionsAlwaysNormalized)
{
    MachineConfig cfg;
    cfg.issueWidth = GetParam();
    Machine m(cfg);
    m.setMethod(1, 1024);
    std::uint64_t state = 5;
    for (int i = 0; i < 10000; ++i) {
        m.branch(1, alberta::support::splitmix64(state) & 3);
        m.load((state >> 3) % (1 << 20));
        m.ops(OpKind::FpMul, 2);
    }
    const auto r = m.ratios();
    EXPECT_NEAR(r.frontend + r.backend + r.badspec + r.retiring, 1.0,
                1e-9);
    EXPECT_GE(r.frontend, 0.0);
    EXPECT_GE(r.backend, 0.0);
    EXPECT_GE(r.badspec, 0.0);
    EXPECT_GE(r.retiring, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, MachineWidth,
                         ::testing::Values(1, 2, 4, 6, 8));

} // namespace
