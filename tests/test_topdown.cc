/** @file Tests for the top-down pipeline model substrate. */
#include <gtest/gtest.h>

#include "machine_scenarios.h"
#include "support/check.h"
#include "support/rng.h"
#include "topdown/branch.h"
#include "topdown/cache.h"
#include "topdown/machine.h"
#include "topdown/trace.h"

namespace {

using namespace alberta::topdown;

TEST(Cache, HitsAfterFill)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(0));
    EXPECT_TRUE(c.access(0));
    EXPECT_TRUE(c.access(63));  // same line
    EXPECT_FALSE(c.access(64)); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
}

TEST(Cache, LruEvictsOldestWay)
{
    // 2-way, 64B lines, 1024B -> 8 sets. Lines 0, 8, 16 map to set 0.
    Cache c(1024, 2, 64);
    c.access(0 << 6);
    c.access(8 << 6);
    c.access(0 << 6);      // refresh line 0
    c.access(16 << 6);     // evicts line 8 (LRU)
    EXPECT_TRUE(c.access(0 << 6));
    EXPECT_FALSE(c.access(8 << 6));
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes)
{
    Cache c(1024, 2, 64);
    const int lines = 64; // 4 KiB working set in a 1 KiB cache
    for (int pass = 0; pass < 3; ++pass)
        for (int i = 0; i < lines; ++i)
            c.access(static_cast<std::uint64_t>(i) << 6);
    EXPECT_GT(static_cast<double>(c.misses()) / c.accesses(), 0.9);
}

TEST(Cache, SmallWorkingSetFitsAfterWarmup)
{
    Cache c(32 * 1024, 8, 64);
    for (int pass = 0; pass < 10; ++pass)
        for (int i = 0; i < 64; ++i)
            c.access(static_cast<std::uint64_t>(i) << 6);
    EXPECT_EQ(c.misses(), 64u);
}

TEST(Cache, ResetForgetsContents)
{
    Cache c(1024, 2, 64);
    c.access(0);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_FALSE(c.access(0));
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache(1000, 2, 64), alberta::support::FatalError);
}

TEST(Hierarchy, MissLatencyGrowsWithDistance)
{
    MemoryHierarchy h;
    const double first = h.data(0);
    const double second = h.data(0);
    EXPECT_GT(first, 0.0);   // cold miss reaches memory
    EXPECT_EQ(second, 0.0);  // L1 hit
}

TEST(Hierarchy, L2HitCheaperThanMemory)
{
    MemoryHierarchy h;
    const double cold = h.data(1 << 20);
    // Evict from L1 (32 KiB, 8-way) but not from L2 by touching 64 KiB.
    for (int i = 1; i <= 1024; ++i)
        h.data((1 << 20) + static_cast<std::uint64_t>(i) * 64);
    const double l2Hit = h.data(1 << 20);
    EXPECT_GT(l2Hit, 0.0);
    EXPECT_LT(l2Hit, cold);
}

TEST(Branch, LearnsStableDirection)
{
    BranchPredictor p;
    for (int i = 0; i < 1000; ++i)
        p.conditional(7, true);
    EXPECT_LT(p.mispredicts(), 5u);
}

TEST(Branch, RandomDirectionMispredictsOften)
{
    BranchPredictor p;
    std::uint64_t state = 123;
    for (int i = 0; i < 4000; ++i)
        p.conditional(7, alberta::support::splitmix64(state) & 1);
    const double rate =
        static_cast<double>(p.mispredicts()) / p.conditionals();
    EXPECT_GT(rate, 0.3);
}

TEST(Branch, LearnsAlternatingPatternViaHistory)
{
    BranchPredictor p;
    for (int i = 0; i < 4000; ++i)
        p.conditional(9, i % 2 == 0);
    const double rate =
        static_cast<double>(p.mispredicts()) / p.conditionals();
    EXPECT_LT(rate, 0.05);
}

TEST(Branch, HintsBypassDynamicPrediction)
{
    BranchHints hints;
    hints.direction[42] = true;
    BranchPredictor p;
    p.setHints(&hints);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(p.conditional(42, true));
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(p.conditional(42, false));
    EXPECT_EQ(p.mispredicts(), 100u);
}

TEST(Branch, IndirectLearnsRepeatingTargetSequences)
{
    // A repeating dispatch pattern (like an interpreter loop) should
    // become nearly perfectly predictable via target history.
    BranchPredictor p;
    const std::uint64_t pattern[4] = {100, 200, 100, 300};
    for (int warm = 0; warm < 64; ++warm)
        for (const auto target : pattern)
            p.indirect(1, target);
    const auto before = p.mispredicts();
    for (int i = 0; i < 64; ++i)
        for (const auto target : pattern)
            p.indirect(1, target);
    EXPECT_EQ(p.mispredicts(), before);
}

TEST(Branch, IndirectRandomTargetsMispredict)
{
    BranchPredictor p;
    std::uint64_t state = 3;
    int misses = 0;
    const auto before = p.mispredicts();
    for (int i = 0; i < 2000; ++i)
        p.indirect(7, alberta::support::splitmix64(state) % 64);
    misses = static_cast<int>(p.mispredicts() - before);
    EXPECT_GT(misses, 1000);
}

TEST(Machine, RetiringDominatesCleanAluStream)
{
    Machine m;
    m.setMethod(1, 256);
    m.ops(OpKind::IntAlu, 100000);
    const auto r = m.ratios();
    EXPECT_GT(r.retiring, 0.7);
    EXPECT_NEAR(r.frontend + r.backend + r.badspec + r.retiring, 1.0,
                1e-9);
}

TEST(Machine, DivisionHeavyStreamIsBackendBound)
{
    Machine m;
    m.setMethod(1, 256);
    m.ops(OpKind::IntDiv, 100000);
    const auto r = m.ratios();
    EXPECT_GT(r.backend, 0.8);
}

TEST(Machine, RandomBranchesRaiseBadSpeculation)
{
    Machine clean, noisy;
    clean.setMethod(1, 256);
    noisy.setMethod(1, 256);
    std::uint64_t state = 7;
    for (int i = 0; i < 20000; ++i) {
        clean.branch(1, true);
        noisy.branch(1, alberta::support::splitmix64(state) & 1);
        clean.ops(OpKind::IntAlu, 4);
        noisy.ops(OpKind::IntAlu, 4);
    }
    EXPECT_GT(noisy.ratios().badspec, clean.ratios().badspec * 5.0);
}

TEST(Machine, BigWorkingSetRaisesBackendBound)
{
    Machine small, big;
    small.setMethod(1, 256);
    big.setMethod(1, 256);
    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t i = 0; i < 20000; ++i) {
            small.load((i % 128) * 64);
            big.load((i * 97 % 1000000) * 64);
        }
    }
    EXPECT_GT(big.ratios().backend, small.ratios().backend * 1.5);
}

TEST(Machine, LargeCodeFootprintRaisesFrontendBound)
{
    Machine smallCode, bigCode;
    smallCode.setMethod(1, 512);
    bigCode.setMethod(1, 512 * 1024);
    smallCode.ops(OpKind::IntAlu, 400000);
    bigCode.ops(OpKind::IntAlu, 400000);
    EXPECT_GT(bigCode.ratios().frontend,
              smallCode.ratios().frontend * 3.0);
}

TEST(Machine, PerMethodAttribution)
{
    Machine m;
    m.setMethod(1, 256);
    m.ops(OpKind::IntAlu, 1000);
    m.setMethod(2, 256);
    m.ops(OpKind::IntAlu, 3000);
    const auto &pm = m.perMethod();
    ASSERT_GE(pm.size(), 3u);
    EXPECT_NEAR(pm[2].retiring / pm[1].retiring, 3.0, 1e-9);
}

TEST(Machine, ProfileCollectionCountsDirections)
{
    Machine m;
    m.collectProfile(true);
    m.setMethod(3, 256);
    for (int i = 0; i < 10; ++i)
        m.branch(5, i < 7);
    const auto &profiles = m.siteProfiles();
    // Stable site key: stable_key * golden + site (default key = id).
    const auto it =
        profiles.find(std::uint64_t(3) * 0x9e3779b97f4a7c15ULL + 5);
    ASSERT_NE(it, profiles.end());
    EXPECT_EQ(it->second.total, 10u);
    EXPECT_EQ(it->second.taken, 7u);
}

TEST(Machine, LayoutScaleShrinksCodeFootprint)
{
    CodeLayout layout;
    layout.scale[1] = 0.125;
    Machine plain, optimized;
    optimized.setLayout(&layout);
    plain.setMethod(1, 64 * 1024);
    optimized.setMethod(1, 64 * 1024);
    plain.ops(OpKind::IntAlu, 200000);
    optimized.ops(OpKind::IntAlu, 200000);
    EXPECT_LT(optimized.ratios().frontend, plain.ratios().frontend);
}

TEST(Machine, ResetClearsEverything)
{
    Machine m;
    m.setMethod(1, 256);
    m.ops(OpKind::IntAlu, 100);
    m.reset();
    EXPECT_EQ(m.retiredOps(), 0u);
    EXPECT_EQ(m.totals().total(), 0.0);
}

TEST(Machine, StreamTouchesEachLineOnce)
{
    Machine m;
    m.setMethod(1, 256);
    m.stream(OpKind::Load, 0, 1024, 8); // 8 KiB = 128 lines
    EXPECT_EQ(m.hierarchy().l1d().accesses(), 128u);
    EXPECT_EQ(m.retiredOps(), 1024u);
}

TEST(Machine, DeterministicAcrossInstances)
{
    auto run = [] {
        Machine m;
        m.setMethod(1, 2048);
        std::uint64_t state = 99;
        for (int i = 0; i < 50000; ++i) {
            const auto r = alberta::support::splitmix64(state);
            m.branch(1, r & 1);
            m.load((r >> 1) % (1 << 22));
            m.ops(OpKind::IntAlu, 3);
        }
        return m.ratios();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_DOUBLE_EQ(a.frontend, b.frontend);
    EXPECT_DOUBLE_EQ(a.backend, b.backend);
    EXPECT_DOUBLE_EQ(a.badspec, b.badspec);
    EXPECT_DOUBLE_EQ(a.retiring, b.retiring);
}

/**
 * Reference true-LRU set-associative cache: the straightforward scan
 * the optimized Cache must stay decision-identical to.
 */
class ReferenceLru
{
  public:
    ReferenceLru(std::uint64_t bytes, int ways, int line_bytes)
        : ways_(ways), lineBytes_(line_bytes),
          sets_(bytes / line_bytes / ways)
    {
        tags_.assign(sets_ * ways_, ~0ULL);
        stamps_.assign(sets_ * ways_, 0);
    }

    bool
    access(std::uint64_t addr)
    {
        ++now_;
        const std::uint64_t line = addr / lineBytes_;
        const std::size_t base = (line % sets_) * ways_;
        std::size_t victim = base;
        std::uint64_t oldest = ~0ULL;
        for (int w = 0; w < ways_; ++w) {
            if (tags_[base + w] == line) {
                stamps_[base + w] = now_;
                return true;
            }
            if (stamps_[base + w] < oldest) {
                oldest = stamps_[base + w];
                victim = base + w;
            }
        }
        tags_[victim] = line;
        stamps_[victim] = now_;
        return false;
    }

  private:
    int ways_;
    int lineBytes_;
    std::size_t sets_;
    std::uint64_t now_ = 0;
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> stamps_;
};

TEST(Cache, MruFastPathMatchesReferenceLruOnRandomSequences)
{
    // Mix of repeat hits (exercising the MRU memo), set conflicts, and
    // cold lines; every access must agree with the reference scan.
    Cache fast(4096, 4, 64);
    ReferenceLru ref(4096, 4, 64);
    alberta::support::Rng rng(0x10ca1);
    std::uint64_t last = 0;
    for (int i = 0; i < 200000; ++i) {
        std::uint64_t addr;
        const auto mode = rng.below(4);
        if (mode == 0)
            addr = rng.below(64) * 64;          // small hot set
        else if (mode == 1)
            addr = rng.below(16) * 4096;        // one-set conflicts
        else if (mode == 2)
            addr = last;                         // repeat (MRU hit)
        else
            addr = rng.below(1 << 20);           // cold-ish
        last = addr;
        ASSERT_EQ(fast.access(addr), ref.access(addr))
            << "divergence at access " << i << ", addr " << addr;
    }
}

TEST(Cache, EvictionOrderSurvivesMruHits)
{
    // 2-way set: refresh the older way via the MRU fast path must not
    // disturb which way is the LRU victim.
    Cache c(1024, 2, 64);
    c.access(0 << 6);  // way A <- line 0
    c.access(8 << 6);  // way B <- line 8 (MRU)
    c.access(8 << 6);  // MRU fast-path hit on B
    c.access(8 << 6);  // and again
    c.access(16 << 6); // must evict line 0 (A is LRU despite B's hits)
    EXPECT_TRUE(c.access(8 << 6));
    EXPECT_FALSE(c.access(0 << 6));
}

TEST(Cache, ResetRestoresColdStateIncludingMruMemo)
{
    Cache c(1024, 2, 64);
    for (int i = 0; i < 100; ++i)
        c.access(static_cast<std::uint64_t>(i % 10) << 6);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    // First access after reset must miss even at the previous MRU line.
    EXPECT_FALSE(c.access(9 << 6));
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Machine, StreamWideStrideTouchesEverySpannedLine)
{
    // stride 256 > line size: the span [0, 16*256) covers 64 lines,
    // and every one is accessed even though elements skip lines.
    Machine m;
    m.setMethod(1, 256);
    m.stream(OpKind::Load, 0, 16, 256);
    EXPECT_EQ(m.hierarchy().l1d().accesses(), 64u);
    EXPECT_EQ(m.retiredOps(), 16u);
}

TEST(Machine, StreamZeroStrideTouchesOneLine)
{
    Machine m;
    m.setMethod(1, 256);
    m.stream(OpKind::Store, 4096, 1000, 0);
    EXPECT_EQ(m.hierarchy().l1d().accesses(), 1u);
    EXPECT_EQ(m.retiredOps(), 1000u);
}

TEST(Machine, StreamUnalignedSpanCoversBothEdgeLines)
{
    // 100 elements x 8B from 0x1f8: spans [0x1f8, 0x518) = lines 7..20.
    Machine m;
    m.setMethod(1, 256);
    m.stream(OpKind::Load, 0x1f8, 100, 8);
    EXPECT_EQ(m.hierarchy().l1d().accesses(), 14u);
}

TEST(Machine, StreamMatchesPerElementLoads)
{
    // The batched stream accounting must reach the same cache state
    // and slot totals as per-element loads over the same span.
    auto runStream = [] {
        Machine m;
        m.setMethod(1, 256);
        m.stream(OpKind::Load, 0x8000, 4096, 64);
        return m;
    };
    auto runLoads = [] {
        Machine m;
        m.setMethod(1, 256);
        for (std::uint64_t i = 0; i < 4096; ++i)
            m.load(0x8000 + i * 64);
        return m;
    };
    const Machine a = runStream();
    const Machine b = runLoads();
    EXPECT_EQ(a.hierarchy().l1d().accesses(),
              b.hierarchy().l1d().accesses());
    EXPECT_EQ(a.hierarchy().l1d().misses(),
              b.hierarchy().l1d().misses());
    EXPECT_EQ(a.retiredOps(), b.retiredOps());
    EXPECT_NEAR(a.totals().backend, b.totals().backend,
                1e-9 * b.totals().backend);
}

TEST(Machine, CodeFetchCountIndependentOfReportingGranularity)
{
    // The I-cache fast path skips re-fetches of the current line; the
    // modelled fetch stream must not depend on whether uops arrive one
    // at a time or in bulk.
    auto fetches = [](std::uint64_t chunk) {
        Machine m;
        m.setMethod(1, 8192);
        for (std::uint64_t done = 0; done < 60000; done += chunk)
            m.ops(OpKind::IntAlu, chunk);
        return m.hierarchy().l1i().accesses();
    };
    const auto one = fetches(1);
    EXPECT_EQ(one, fetches(3));
    EXPECT_EQ(one, fetches(16));
    EXPECT_EQ(one, fetches(60000));
    // 60000 uops * 4B / 64B per line = 3750 line fetches through the
    // 8 KiB footprint; each line is fetched once per wrap, never more.
    EXPECT_EQ(one, 3750u);
}

TEST(Machine, RunningTotalsMatchPerMethodSums)
{
    Machine m;
    alberta::support::Rng rng(0x707a1);
    for (int i = 0; i < 30000; ++i) {
        m.setMethod(1 + static_cast<std::uint32_t>(rng.below(5)), 2048);
        m.branch(static_cast<std::uint32_t>(rng.below(3)), rng() & 1);
        m.load(rng.below(1 << 22));
        m.ops(OpKind::FpAdd, rng.below(7));
    }
    SlotCounts sum;
    for (const auto &slots : m.perMethod())
        sum += slots;
    const auto &t = m.totals();
    EXPECT_NEAR(t.frontend, sum.frontend, 1e-9 * sum.frontend);
    EXPECT_NEAR(t.backend, sum.backend, 1e-9 * sum.backend);
    EXPECT_NEAR(t.badspec, sum.badspec, 1e-9 * sum.badspec);
    EXPECT_NEAR(t.retiring, sum.retiring, 1e-9 * sum.retiring);
}

TEST(Machine, ProfileTableSurvivesGrowthAcrossManySites)
{
    // More distinct sites than the flat table's initial capacity, so
    // site profiles survive at least one rehash intact.
    Machine m;
    m.collectProfile(true);
    m.setMethod(2, 256);
    const int kSites = 3000;
    for (int round = 0; round < 3; ++round) {
        for (int s = 0; s < kSites; ++s)
            m.branch(static_cast<std::uint32_t>(s), s % 2 == 0);
    }
    const auto profiles = m.siteProfiles();
    ASSERT_EQ(profiles.size(), static_cast<std::size_t>(kSites));
    for (int s = 0; s < kSites; ++s) {
        const auto it = profiles.find(
            std::uint64_t(2) * 0x9e3779b97f4a7c15ULL + s);
        ASSERT_NE(it, profiles.end()) << "site " << s;
        EXPECT_EQ(it->second.total, 3u) << "site " << s;
        EXPECT_EQ(it->second.taken, s % 2 == 0 ? 3u : 0u);
    }
}

/** Parameterized issue-width sweep: fractions stay normalized. */
class MachineWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(MachineWidth, FractionsAlwaysNormalized)
{
    MachineConfig cfg;
    cfg.issueWidth = GetParam();
    Machine m(cfg);
    m.setMethod(1, 1024);
    std::uint64_t state = 5;
    for (int i = 0; i < 10000; ++i) {
        m.branch(1, alberta::support::splitmix64(state) & 3);
        m.load((state >> 3) % (1 << 20));
        m.ops(OpKind::FpMul, 2);
    }
    const auto r = m.ratios();
    EXPECT_NEAR(r.frontend + r.backend + r.badspec + r.retiring, 1.0,
                1e-9);
    EXPECT_GE(r.frontend, 0.0);
    EXPECT_GE(r.backend, 0.0);
    EXPECT_GE(r.badspec, 0.0);
    EXPECT_GE(r.retiring, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, MachineWidth,
                         ::testing::Values(1, 2, 4, 6, 8));

// ---------------------------------------------------------------------
// Architectural-state completeness: reset, snapshot/restore, and trace
// capture/replay, each exercised across all five bench_machine
// scenarios (the canonical mix of every machine fast path). The state
// digest covers everything snapshot() copies, so these tests fail if a
// new piece of machine state is added without extending reset/snapshot.

/** Every scenario leaves distinctive state; reset must erase all of
 * it, leaving the machine digest-identical to a fresh instance. */
TEST(MachineState, ResetIsBitIdenticalToFreshAcrossAllScenarios)
{
    const Machine fresh;
    const std::uint64_t freshDigest = fresh.stateDigest();
    for (const auto &scenario : alberta::bench::kMachineScenarios) {
        Machine m;
        m.setMethod(1, 4096, alberta::support::mix64(1));
        scenario.run(m, 1, nullptr, 0);
        EXPECT_NE(m.stateDigest(), freshDigest) << scenario.name;
        m.reset();
        EXPECT_EQ(m.stateDigest(), freshDigest) << scenario.name;
    }
}

/** Restoring a snapshot into a fresh machine reproduces the source
 * machine's complete state, and the two machines stay digest-identical
 * through further identical activity. */
TEST(MachineState, SnapshotRestoreRoundTripsAcrossAllScenarios)
{
    for (const auto &scenario : alberta::bench::kMachineScenarios) {
        Machine source;
        source.setMethod(1, 4096, alberta::support::mix64(1));
        scenario.run(source, 1, nullptr, 0);

        Machine copy;
        copy.restore(source.snapshot());
        EXPECT_EQ(copy.stateDigest(), source.stateDigest())
            << scenario.name;

        // Equal digests must mean equal future behaviour: drive both
        // machines through another scenario and compare again.
        alberta::bench::scenarioMixed(source, 1, nullptr, 0);
        alberta::bench::scenarioMixed(copy, 1, nullptr, 0);
        EXPECT_EQ(copy.stateDigest(), source.stateDigest())
            << scenario.name;
        EXPECT_EQ(copy.retiredOps(), source.retiredOps())
            << scenario.name;
    }
}

/** Capturing a scenario to a trace and replaying it into a fresh
 * machine reproduces the direct run's complete state bit-identically. */
TEST(MachineState, TraceReplayIsBitIdenticalAcrossAllScenarios)
{
    for (const auto &scenario : alberta::bench::kMachineScenarios) {
        Machine direct;
        direct.setMethod(1, 4096, alberta::support::mix64(1));
        scenario.run(direct, 1, nullptr, 0);

        UopTrace trace;
        Machine recorder;
        recorder.captureTo(&trace);
        recorder.setMethod(1, 4096, alberta::support::mix64(1));
        scenario.run(recorder, 1, nullptr, 0);
        EXPECT_EQ(recorder.retiredOps(), direct.retiredOps())
            << scenario.name;
        EXPECT_EQ(trace.totalUops(), direct.retiredOps())
            << scenario.name;

        Machine replayed;
        trace.replayAll(replayed);
        EXPECT_EQ(replayed.stateDigest(), direct.stateDigest())
            << scenario.name;
    }
}

/** Splitting a replay at an arbitrary record and handing state across
 * the cut via snapshot/restore matches an unsplit replay. */
TEST(MachineState, SplitReplayWithHandoffMatchesUnsplitReplay)
{
    UopTrace trace;
    Machine recorder;
    recorder.captureTo(&trace);
    recorder.setMethod(1, 4096, alberta::support::mix64(1));
    alberta::bench::scenarioMixed(recorder, 1, nullptr, 0);

    Machine whole;
    trace.replayAll(whole);

    const std::size_t cut = trace.records() / 3;
    Machine first;
    trace.replay(first, 0, cut);
    Machine second;
    second.restore(first.snapshot());
    trace.replay(second, cut, trace.records());
    EXPECT_EQ(second.stateDigest(), whole.stateDigest());
}

} // namespace
