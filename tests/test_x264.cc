/** @file Tests for the 525.x264_r mini-benchmark. */
#include <gtest/gtest.h>

#include "benchmarks/x264/benchmark.h"
#include "benchmarks/x264/codec.h"
#include "support/check.h"

namespace {

using namespace alberta;
using namespace alberta::x264;

TEST(Video, GeneratorIsDeterministicAndSized)
{
    VideoConfig cfg;
    cfg.seed = 3;
    cfg.frames = 5;
    const auto a = generateVideo(cfg);
    const auto b = generateVideo(cfg);
    ASSERT_EQ(a.size(), 5u);
    EXPECT_EQ(a[2].samples, b[2].samples);
    EXPECT_EQ(a[0].width, cfg.width);
}

TEST(Video, RejectsNonMacroblockDimensions)
{
    VideoConfig cfg;
    cfg.width = 100; // not a multiple of 16
    EXPECT_THROW(generateVideo(cfg), support::FatalError);
}

TEST(Video, PsnrIdentityIsHuge)
{
    VideoConfig cfg;
    cfg.frames = 1;
    const auto clip = generateVideo(cfg);
    EXPECT_GE(psnr(clip[0], clip[0]), 99.0);
}

TEST(Dct, ForwardInverseRoundTripsExactly)
{
    std::int32_t block[64], coeffs[64], back[64];
    for (int i = 0; i < 64; ++i)
        block[i] = (i * 7919) % 255 - 127;
    forwardDct(block, coeffs);
    inverseDct(coeffs, back);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(back[i], block[i]) << "index " << i;
}

TEST(Dct, ConcentratesEnergyForFlatBlocks)
{
    std::int32_t block[64], coeffs[64];
    for (int i = 0; i < 64; ++i)
        block[i] = 50;
    forwardDct(block, coeffs);
    EXPECT_EQ(coeffs[0], 50 * 64);
    for (int i = 1; i < 64; ++i)
        ASSERT_EQ(coeffs[i], 0);
}

TEST(Codec, EncodeDecodeRoundTripsAtQp1)
{
    // qp=1 is lossless for our integer transform.
    VideoConfig cfg;
    cfg.seed = 5;
    cfg.frames = 4;
    cfg.width = 96;
    cfg.height = 64;
    const auto clip = generateVideo(cfg);
    runtime::ExecutionContext ctx;
    CodecConfig codec;
    codec.qp = 1;
    const auto stream = encode(clip, codec, ctx);
    const auto decoded = decode(stream, ctx);
    ASSERT_EQ(decoded.size(), clip.size());
    for (std::size_t f = 0; f < clip.size(); ++f)
        EXPECT_GE(psnr(decoded[f], clip[f]), 99.0) << "frame " << f;
}

TEST(Codec, HigherQpSmallerStreamLowerQuality)
{
    VideoConfig cfg;
    cfg.seed = 6;
    cfg.frames = 6;
    cfg.width = 96;
    cfg.height = 64;
    const auto clip = generateVideo(cfg);
    runtime::ExecutionContext ctx;
    CodecConfig fine, coarse;
    fine.qp = 2;
    coarse.qp = 16;
    EncodeStats fineStats, coarseStats;
    const auto fineStream = encode(clip, fine, ctx, &fineStats);
    const auto coarseStream = encode(clip, coarse, ctx, &coarseStats);
    EXPECT_LT(coarseStream.size(), fineStream.size());
    EXPECT_LT(coarseStats.meanPsnr, fineStats.meanPsnr);
    EXPECT_GT(coarseStats.meanPsnr, 20.0);
}

TEST(Codec, MotionSearchHelpsMovingContent)
{
    VideoConfig cfg;
    cfg.seed = 7;
    cfg.frames = 6;
    cfg.width = 96;
    cfg.height = 64;
    cfg.style = VideoStyle::MovingBlocks;
    const auto clip = generateVideo(cfg);
    runtime::ExecutionContext ctx;
    CodecConfig wide, none;
    wide.searchRange = 12;
    none.searchRange = 0;
    EncodeStats wideStats, noneStats;
    const auto wideStream = encode(clip, wide, ctx, &wideStats);
    const auto noneStream = encode(clip, none, ctx, &noneStats);
    EXPECT_LE(wideStream.size(), noneStream.size());
}

TEST(Codec, NoiseIsHarderThanMotion)
{
    VideoConfig moving, noise;
    moving.seed = noise.seed = 8;
    moving.frames = noise.frames = 4;
    moving.width = noise.width = 96;
    moving.height = noise.height = 64;
    noise.style = VideoStyle::Noise;
    runtime::ExecutionContext ctx;
    const auto movingStream =
        encode(generateVideo(moving), {}, ctx);
    const auto noiseStream = encode(generateVideo(noise), {}, ctx);
    EXPECT_GT(noiseStream.size(), movingStream.size() * 2);
}

TEST(Codec, TwoPassRateControlRoundTrips)
{
    // A clip with one violent scene change: rate control must raise
    // that frame's quantizer without breaking decodability.
    VideoConfig calm;
    calm.seed = 21;
    calm.frames = 6;
    calm.width = 96;
    calm.height = 64;
    calm.style = VideoStyle::Talking;
    auto clip = generateVideo(calm);
    VideoConfig burst = calm;
    burst.style = VideoStyle::Noise;
    burst.frames = 1;
    clip[3] = generateVideo(burst)[0]; // scene cut

    runtime::ExecutionContext ctx;
    CodecConfig onePass, twoPass;
    onePass.qp = twoPass.qp = 6;
    twoPass.twoPass = true;
    EncodeStats s1, s2;
    const auto stream1 = encode(clip, onePass, ctx, &s1);
    const auto stream2 = encode(clip, twoPass, ctx, &s2);

    // Both decode to the right frame count.
    const auto decoded1 = decode(stream1, ctx);
    const auto decoded2 = decode(stream2, ctx);
    ASSERT_EQ(decoded1.size(), clip.size());
    ASSERT_EQ(decoded2.size(), clip.size());
    // The first pass did extra motion work...
    EXPECT_GT(s2.sadEvaluations, s1.sadEvaluations);
    // ...and the adapted quantizers change the emitted stream.
    EXPECT_NE(stream1, stream2);
    // Rate control spends finer quantization on the calm frames, so
    // their reconstruction quality improves.
    EXPECT_GT(psnr(decoded2[1], clip[1]),
              psnr(decoded1[1], clip[1]));
}

TEST(Codec, DecodeRejectsCorruptStream)
{
    runtime::ExecutionContext ctx;
    EXPECT_THROW(decode({0x00, 0x01}, ctx), support::FatalError);
    VideoConfig cfg;
    cfg.frames = 2;
    cfg.width = 32;
    cfg.height = 32;
    auto stream = encode(generateVideo(cfg), {}, ctx);
    stream.resize(stream.size() / 2);
    EXPECT_THROW(decode(stream, ctx), support::FatalError);
}

TEST(Codec, ValidateFlagsQualityFloor)
{
    VideoConfig cfg;
    cfg.frames = 3;
    cfg.width = 32;
    cfg.height = 32;
    const auto clip = generateVideo(cfg);
    runtime::ExecutionContext ctx;
    CodecConfig codec;
    codec.qp = 1;
    const auto decoded = decode(encode(clip, codec, ctx), ctx);
    EXPECT_GE(validate(decoded, clip, 1, 40.0, ctx), 99.0);
    // An impossible floor trips the validator.
    EXPECT_THROW(validate(decoded, clip, 1, 100.0, ctx),
                 support::FatalError);
}

TEST(X264Benchmark, WorkloadsIncludeTwoPassAndRanges)
{
    X264Benchmark bm;
    const auto w = bm.workloads();
    EXPECT_GE(w.size(), 8u);
    bool twoPass = false, midClip = false;
    for (const auto &wl : w) {
        twoPass |= wl.params.getBool("two_pass");
        midClip |= wl.params.getInt("start_frame") > 0;
    }
    EXPECT_TRUE(twoPass); // script encodes "in one and in two passes"
    EXPECT_TRUE(midClip); // "the video frame where encoding starts"
}

TEST(X264Benchmark, RunsDeterministically)
{
    X264Benchmark bm;
    const auto w = runtime::findWorkload(bm, "test");
    const auto a = runtime::runOnce(bm, w);
    const auto b = runtime::runOnce(bm, w);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_TRUE(a.coverage.count("x264::motion_search"));
    EXPECT_TRUE(a.coverage.count("x264::decode"));
    EXPECT_TRUE(a.coverage.count("x264::imagevalidate"));
}

} // namespace
