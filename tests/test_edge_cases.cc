/** @file Edge-case sweep across modules: rarely-hit code paths. */
#include <gtest/gtest.h>

#include "benchmarks/gcc/codegen.h"
#include "benchmarks/gcc/parser.h"
#include "benchmarks/leela/goboard.h"
#include "benchmarks/mcf/mincost.h"
#include "benchmarks/povray/tracer.h"
#include "benchmarks/xz/generator.h"
#include "benchmarks/xz/lz77.h"
#include "support/check.h"

namespace {

using namespace alberta;

TEST(McfEdge, CommentLinesAreIgnored)
{
    runtime::ExecutionContext ctx;
    const auto inst = mcf::Instance::parse(
        "c a DIMACS comment\np min 2 1\nc another\nn 0 3\nn 1 -3\n"
        "a 0 1 0 5 1\n",
        ctx);
    EXPECT_EQ(inst.nodes(), 2);
    EXPECT_EQ(inst.arcs.size(), 1u);
}

TEST(McfEdge, ZeroSupplyInstanceSolvesTrivially)
{
    mcf::Instance inst;
    inst.supplies = {0, 0};
    inst.arcs.push_back({0, 1, 0, 5, 2});
    runtime::ExecutionContext ctx;
    mcf::Solver solver(inst);
    const auto sol = solver.solve(ctx);
    EXPECT_TRUE(sol.feasible);
    EXPECT_EQ(sol.totalCost, 0);
    EXPECT_EQ(sol.flows[0], 0);
}

TEST(GccEdge, DeepRecursionOverflowsCallStack)
{
    // Direct infinite recursion trips the VM's frame guard before the
    // instruction budget.
    const char *src = "int f(int a, int b) { return f(a, b); }"
                      "int main(void) { return f(1, 2); }";
    runtime::ExecutionContext ctx;
    gcc::Program p = gcc::parseSource(src, ctx);
    const gcc::Module module = gcc::compile(p, ctx);
    try {
        gcc::execute(module, ctx);
        FAIL() << "expected an overflow";
    } catch (const support::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("stack"),
                  std::string::npos);
    }
}

TEST(GccEdge, DuplicateFunctionIsRejected)
{
    const char *src = "int f(int a, int b) { return a; }"
                      "int f(int a, int b) { return b; }"
                      "int main(void) { return 0; }";
    runtime::ExecutionContext ctx;
    gcc::Program p = gcc::parseSource(src, ctx);
    EXPECT_THROW(gcc::compile(p, ctx), support::FatalError);
}

TEST(GccEdge, WrongArityCallIsRejected)
{
    const char *src = "int f(int a, int b) { return a; }"
                      "int main(void) { return f(1); }";
    runtime::ExecutionContext ctx;
    gcc::Program p = gcc::parseSource(src, ctx);
    EXPECT_THROW(gcc::compile(p, ctx), support::FatalError);
}

TEST(GccEdge, EmptyFunctionReturnsZero)
{
    runtime::ExecutionContext ctx;
    gcc::Program p =
        gcc::parseSource("int main(void) { }", ctx);
    const gcc::Module module = gcc::compile(p, ctx);
    EXPECT_EQ(gcc::execute(module, ctx).value, 0);
}

TEST(GccEdge, ErrorMessagesCarryLineNumbers)
{
    runtime::ExecutionContext ctx;
    try {
        gcc::parseSource("int main(void)\n{\n  return @;\n}", ctx);
        FAIL() << "expected a lex error";
    } catch (const support::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
    }
}

TEST(LeelaEdge, LargerBoardsPlayLegally)
{
    for (const int size : {13, 19}) {
        leela::GoBoard board(size);
        EXPECT_EQ(board.area(), size * size);
        board.play(board.point(0, 0), leela::Color::Black);
        board.play(board.point(size - 1, size - 1),
                   leela::Color::White);
        EXPECT_EQ(board.stones(leela::Color::Black), 1);
        EXPECT_EQ(board.stones(leela::Color::White), 1);
    }
}

TEST(LeelaEdge, SgfWithOnlyPassesParses)
{
    const auto game = leela::SgfGame::parse("(;SZ[9];B[];W[])");
    ASSERT_EQ(game.moves.size(), 2u);
    EXPECT_EQ(game.moves[0], leela::kPass);
    EXPECT_EQ(game.moves[1], leela::kPass);
}

TEST(PovrayEdge, SceneCommentsAndEmptyLines)
{
    const std::string text =
        "# a scene file\n\nrender 16 12 2 1\n"
        "camera 0 1 -4 0 0 0 60 0 4\n"
        "# lights\nlight 0 5 -2 0 0 0 -1 1\n"
        "sphere 0 0 0 0 0 0 1 0.5 0 0 1.5 0\n";
    const povray::Scene scene = povray::Scene::parse(text);
    EXPECT_EQ(scene.shapes.size(), 1u);
    EXPECT_EQ(scene.lights.size(), 1u);
    runtime::ExecutionContext ctx;
    EXPECT_NO_THROW(povray::render(scene, ctx));
}

TEST(PovrayEdge, SceneWithNoLightsIsAmbientOnly)
{
    povray::Scene scene;
    povray::Shape ball;
    ball.kind = povray::ShapeKind::Sphere;
    ball.center = {0, 0, 0};
    ball.radius = 1.0;
    scene.shapes.push_back(ball);
    scene.width = 8;
    scene.height = 8;
    runtime::ExecutionContext ctx;
    const auto image = povray::render(scene, ctx);
    for (const double v : image)
        EXPECT_LE(v, 0.3); // ambient + sky only
}

TEST(XzEdge, ZeroByteFileIsRejectedByGenerator)
{
    xz::FileConfig cfg;
    cfg.bytes = 0;
    EXPECT_THROW(xz::generateFile(cfg), support::FatalError);
}

TEST(XzEdge, SingleByteRoundTrip)
{
    runtime::ExecutionContext ctx;
    const std::vector<std::uint8_t> raw = {42};
    const auto packed = xz::compress(raw, {}, ctx);
    EXPECT_EQ(xz::decompress(packed, ctx), raw);
}

} // namespace
