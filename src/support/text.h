/**
 * @file
 * Small string and file-content helpers shared by the workload parsers
 * and generators.
 */
#ifndef ALBERTA_SUPPORT_TEXT_H
#define ALBERTA_SUPPORT_TEXT_H

#include <string>
#include <string_view>
#include <vector>

namespace alberta::support {

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** Split @p text on any whitespace, dropping empty fields. */
std::vector<std::string> splitWhitespace(std::string_view text);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/** Remove leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** True if @p text begins with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** Parse a signed integer; raises FatalError on malformed input. */
long long parseInt(std::string_view text);

/**
 * Parse a positive decimal integer in [1, @p max] with no trailing
 * junk — the validation every numeric CLI argument shares (`--jobs`,
 * cluster `k`, `run` repetitions). Raises FatalError naming @p what
 * on anything else: "--jobs abc" must be rejected, not silently
 * parsed as zero.
 */
long long parsePositiveInt(std::string_view text, std::string_view what,
                           long long max = 1000000);

/** Parse a floating-point value; raises FatalError on malformed input. */
double parseDouble(std::string_view text);

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_TEXT_H
