/**
 * @file
 * Shared command-line flag parsing for the suite's binaries.
 *
 * `alberta_cli` grew an ad-hoc flag loop; `alberta_serve` needs the
 * same flags (jobs, cache dir, trace) plus its own. ArgParser is that
 * loop extracted: declarative flag registration, value validation
 * through the same `parsePositiveInt` every numeric argument already
 * used, consistent `--help` output, and FatalError diagnostics that
 * both binaries render identically ("<prog>: fatal: ...").
 *
 * Flags may appear before or after positional arguments (the CLI's
 * historical behavior); everything that is not a registered flag is
 * returned as a positional. Registration order is help order.
 */
#ifndef ALBERTA_SUPPORT_ARGPARSE_H
#define ALBERTA_SUPPORT_ARGPARSE_H

#include <functional>
#include <string>
#include <vector>

namespace alberta::support {

/** Declarative flag parser (see file comment). */
class ArgParser
{
  public:
    /**
     * @param program  binary name used in help output
     * @param usageTail rendered after the flags in help, e.g. the
     *                  subcommand list
     */
    explicit ArgParser(std::string program,
                       std::string usageTail = "");

    /** Boolean flag (`--metrics`): presence sets @p out true. */
    ArgParser &flag(const std::string &name, const std::string &help,
                    bool *out);

    /**
     * String-valued flag (`--trace FILE`). @p seen, when given, is
     * set when the flag appears — callers that must distinguish an
     * explicit value from a default (e.g. `--cache-dir`) use it.
     */
    ArgParser &option(const std::string &name,
                      const std::string &valueName,
                      const std::string &help, std::string *out,
                      bool *seen = nullptr);

    /**
     * Positive-integer flag (`--jobs N`), validated through
     * parsePositiveInt against [1, @p max] — malformed or
     * out-of-range values are fatal, naming the flag.
     */
    ArgParser &positiveInt(const std::string &name,
                           const std::string &valueName,
                           const std::string &help, int *out,
                           long long max = 1024);

    /**
     * Custom-validated flag (`--segments {auto,K}`): @p apply
     * receives the raw value and may raise FatalError.
     */
    ArgParser &custom(const std::string &name,
                      const std::string &valueName,
                      const std::string &help,
                      std::function<void(const std::string &)> apply);

    /**
     * Parse argv. Registered flags are applied in command-line
     * order; every other argument is returned as a positional, in
     * order. `--help`/`-h` sets helpRequested() and stops parsing.
     * Raises FatalError on an unknown `--flag` or a missing value.
     */
    std::vector<std::string> parse(int argc, char **argv);

    /** True when parse() saw `--help` or `-h`. */
    bool helpRequested() const { return helpRequested_; }

    /** The formatted flag table plus the usage tail. */
    std::string help() const;

  private:
    struct Spec
    {
        std::string name;      //!< e.g. "--jobs"
        std::string valueName; //!< "" for boolean flags
        std::string help;
        std::function<void(const std::string &)> apply;
        bool takesValue = false;
    };

    const Spec *findSpec(const std::string &name) const;

    std::string program_;
    std::string usageTail_;
    std::vector<Spec> specs_;
    bool helpRequested_ = false;
};

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_ARGPARSE_H
