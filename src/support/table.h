/**
 * @file
 * ASCII table and CSV rendering used by the bench harnesses to print the
 * rows of the paper's tables and the series behind its figures.
 */
#ifndef ALBERTA_SUPPORT_TABLE_H
#define ALBERTA_SUPPORT_TABLE_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace alberta::support {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Benchmark", "mu_g(V)", "mu_g(M)"});
 *   t.addRow({"502.gcc_r", "5.1", "25"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Number of data rows added so far. */
    std::size_t rows() const { return rows_.size(); }

    /** Render with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Render as CSV (comma-separated, minimal quoting). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of decimal places. */
std::string formatFixed(double value, int decimals);

/** Format a fraction (0..1) as a percentage with given decimals. */
std::string formatPercent(double fraction, int decimals);

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_TABLE_H
