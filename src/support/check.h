/**
 * @file
 * Error-reporting helpers shared across the suite.
 *
 * Following the gem5 convention: `fatal` conditions are the user's fault
 * (bad workload file, inconsistent parameters) and raise a catchable
 * exception; `panic` conditions are internal invariant violations.
 */
#ifndef ALBERTA_SUPPORT_CHECK_H
#define ALBERTA_SUPPORT_CHECK_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace alberta::support {

/** Exception thrown for user-correctable errors (bad inputs, config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what) : std::runtime_error(what) {}
};

/** Exception thrown for internal invariant violations. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what) : std::logic_error(what) {}
};

namespace detail {

template <typename Error, typename... Args>
[[noreturn]] void
raise(const char *prefix, Args &&...args)
{
    std::ostringstream os;
    os << prefix;
    (os << ... << args);
    throw Error(os.str());
}

} // namespace detail

/** Raise a FatalError with a streamed message. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::raise<FatalError>("fatal: ", std::forward<Args>(args)...);
}

/** Raise a PanicError with a streamed message. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::raise<PanicError>("panic: ", std::forward<Args>(args)...);
}

/** Raise a FatalError unless the user-dependent condition holds. */
template <typename... Args>
void
fatalIf(bool condition, Args &&...args)
{
    if (condition)
        detail::raise<FatalError>("fatal: ", std::forward<Args>(args)...);
}

/** Raise a PanicError if the internal invariant is violated. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        detail::raise<PanicError>("panic: ", std::forward<Args>(args)...);
}

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_CHECK_H
