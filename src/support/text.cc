#include "support/text.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

#include "support/check.h"

namespace alberta::support {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string>
splitWhitespace(std::string_view text)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        std::size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        if (i > start)
            out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string_view
trim(std::string_view text)
{
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())))
        text.remove_prefix(1);
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.back())))
        text.remove_suffix(1);
    return text;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

long long
parseInt(std::string_view text)
{
    text = trim(text);
    long long value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    fatalIf(ec != std::errc() || ptr != text.data() + text.size(),
            "malformed integer: '", std::string(text), "'");
    return value;
}

long long
parsePositiveInt(std::string_view text, std::string_view what,
                 long long max)
{
    long long value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    fatalIf(ec != std::errc() || ptr != text.data() + text.size() ||
                value <= 0 || value > max,
            what, " expects a positive integer (1..", max, "), got '",
            std::string(text), "'");
    return value;
}

double
parseDouble(std::string_view text)
{
    text = trim(text);
    fatalIf(text.empty(), "malformed number: empty string");
    // std::from_chars for doubles is missing on some libstdc++ versions;
    // strtod on a bounded copy is portable and adequate here.
    std::string copy(text);
    char *end = nullptr;
    const double value = std::strtod(copy.c_str(), &end);
    fatalIf(end != copy.c_str() + copy.size(), "malformed number: '", copy,
            "'");
    return value;
}

} // namespace alberta::support
