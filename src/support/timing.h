/**
 * @file
 * Thread CPU-time measurement. Model runs and segment replays are
 * pure CPU work; charging them thread CPU seconds instead of wall
 * seconds keeps per-run costs meaningful when a pool oversubscribes
 * the cores — wall time would charge a task for every deschedule
 * while its siblings ran. Wall-clock timing stays the right tool for
 * end-to-end latencies (refrate repetitions, batch seconds).
 */
#ifndef ALBERTA_SUPPORT_TIMING_H
#define ALBERTA_SUPPORT_TIMING_H

#include <ctime>

#include <chrono>

namespace alberta::support {

/** CPU seconds consumed by the calling thread, monotone within the
 * thread. Falls back to steady wall time where the per-thread clock
 * is unavailable. */
inline double
threadCpuSeconds()
{
    ::timespec ts{};
    if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_TIMING_H
