#include "support/argparse.h"

#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::support {

ArgParser::ArgParser(std::string program, std::string usageTail)
    : program_(std::move(program)), usageTail_(std::move(usageTail))
{
}

ArgParser &
ArgParser::flag(const std::string &name, const std::string &help,
                bool *out)
{
    Spec spec;
    spec.name = name;
    spec.help = help;
    spec.takesValue = false;
    spec.apply = [out](const std::string &) { *out = true; };
    specs_.push_back(std::move(spec));
    return *this;
}

ArgParser &
ArgParser::option(const std::string &name,
                  const std::string &valueName,
                  const std::string &help, std::string *out,
                  bool *seen)
{
    Spec spec;
    spec.name = name;
    spec.valueName = valueName;
    spec.help = help;
    spec.takesValue = true;
    spec.apply = [out, seen](const std::string &value) {
        *out = value;
        if (seen)
            *seen = true;
    };
    specs_.push_back(std::move(spec));
    return *this;
}

ArgParser &
ArgParser::positiveInt(const std::string &name,
                       const std::string &valueName,
                       const std::string &help, int *out,
                       long long max)
{
    Spec spec;
    spec.name = name;
    spec.valueName = valueName;
    spec.help = help;
    spec.takesValue = true;
    spec.apply = [out, name, max](const std::string &value) {
        *out = static_cast<int>(parsePositiveInt(value, name, max));
    };
    specs_.push_back(std::move(spec));
    return *this;
}

ArgParser &
ArgParser::custom(const std::string &name,
                  const std::string &valueName,
                  const std::string &help,
                  std::function<void(const std::string &)> apply)
{
    Spec spec;
    spec.name = name;
    spec.valueName = valueName;
    spec.help = help;
    spec.takesValue = true;
    spec.apply = std::move(apply);
    specs_.push_back(std::move(spec));
    return *this;
}

const ArgParser::Spec *
ArgParser::findSpec(const std::string &name) const
{
    for (const Spec &spec : specs_) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

std::vector<std::string>
ArgParser::parse(int argc, char **argv)
{
    std::vector<std::string> positionals;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested_ = true;
            return positionals;
        }
        const Spec *spec = findSpec(arg);
        if (!spec) {
            fatalIf(arg.size() >= 2 && arg[0] == '-' && arg[1] == '-',
                    "unknown flag '", arg, "' (see --help)");
            positionals.push_back(arg);
            continue;
        }
        std::string value;
        if (spec->takesValue) {
            fatalIf(i + 1 >= argc, spec->name,
                    " requires an argument");
            value = argv[++i];
        }
        spec->apply(value);
    }
    return positionals;
}

std::string
ArgParser::help() const
{
    std::ostringstream os;
    os << "usage: " << program_ << " [flags]";
    if (!usageTail_.empty())
        os << " <command>";
    os << "\n\nflags:\n";
    std::size_t width = 0;
    std::vector<std::string> labels;
    for (const Spec &spec : specs_) {
        std::string label = spec.name;
        if (spec.takesValue) {
            label += ' ';
            label += spec.valueName;
        }
        width = std::max(width, label.size());
        labels.push_back(std::move(label));
    }
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        os << "  " << labels[i]
           << std::string(width - labels[i].size() + 2, ' ')
           << specs_[i].help << '\n';
    }
    if (!usageTail_.empty())
        os << '\n' << usageTail_;
    return os.str();
}

} // namespace alberta::support
