/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every workload generator in the suite derives its randomness from an
 * explicit 64-bit seed through these generators, so a (benchmark, seed)
 * pair always produces bit-identical workloads across runs and platforms.
 */
#ifndef ALBERTA_SUPPORT_RNG_H
#define ALBERTA_SUPPORT_RNG_H

#include <cstdint>
#include <limits>

namespace alberta::support {

/** SplitMix64 step; used to seed and to hash small integer tuples. */
constexpr std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of a single value (SplitMix64 finalizer). */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t s = x;
    return splitmix64(s);
}

/**
 * xoshiro256** generator: fast, high-quality, fully deterministic.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can be used
 * with \<random\> distributions, although the suite prefers the built-in
 * helpers below for cross-platform determinism.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a seed; any 64-bit value (including 0) is valid. */
    explicit constexpr Rng(std::uint64_t seed = 0x414c424552544100ULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit value. */
    constexpr result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    constexpr std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias is
        // irrelevant for workload synthesis and keeps results portable.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    constexpr std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    constexpr double
    real()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    constexpr double
    real(double lo, double hi)
    {
        return lo + (hi - lo) * real();
    }

    /** Bernoulli draw with probability p of returning true. */
    constexpr bool chance(double p) { return real() < p; }

    /**
     * Approximately normal deviate (mean 0, stddev 1) via the sum of
     * uniform draws; adequate for workload shaping and fully portable.
     */
    constexpr double
    gaussian()
    {
        double sum = 0.0;
        for (int i = 0; i < 12; ++i)
            sum += real();
        return sum - 6.0;
    }

    /** Derive an independent child generator for a named sub-stream. */
    constexpr Rng
    fork(std::uint64_t stream)
    {
        return Rng(operator()() ^ mix64(stream));
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_RNG_H
