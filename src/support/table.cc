#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace alberta::support {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    fatalIf(header_.empty(), "table requires at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    fatalIf(row.size() != header_.size(), "table row has ", row.size(),
            " cells; expected ", header_.size());
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ") << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            const bool quote =
                row[c].find_first_of(",\"\n") != std::string::npos;
            if (!quote) {
                os << row[c];
                continue;
            }
            os << '"';
            for (char ch : row[c]) {
                if (ch == '"')
                    os << '"';
                os << ch;
            }
            os << '"';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatFixed(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
formatPercent(double fraction, int decimals)
{
    return formatFixed(fraction * 100.0, decimals);
}

} // namespace alberta::support
