#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace alberta::support {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonQuote(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    out += jsonEscape(text);
    out += '"';
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        value = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g",
                  std::numeric_limits<double>::max_digits10, value);
    return buf;
}

} // namespace alberta::support
