#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "support/check.h"

namespace alberta::support {

std::string
jsonEscape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonQuote(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out += '"';
    out += jsonEscape(text);
    out += '"';
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        value = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g",
                  std::numeric_limits<double>::max_digits10, value);
    return buf;
}

bool
JsonValue::asBool() const
{
    fatalIf(type_ != Type::Bool, "json: expected a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    fatalIf(type_ != Type::Number, "json: expected a number");
    return number_;
}

std::uint64_t
JsonValue::asUint(std::uint64_t max) const
{
    const double v = asNumber();
    fatalIf(v < 0.0 || v != std::floor(v) ||
                v > static_cast<double>(max),
            "json: expected an integer in [0, ", max, "], got ",
            jsonNumber(v));
    return static_cast<std::uint64_t>(v);
}

const std::string &
JsonValue::asString() const
{
    fatalIf(type_ != Type::String, "json: expected a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    fatalIf(type_ != Type::Array, "json: expected an array");
    return array_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::asObject() const
{
    fatalIf(type_ != Type::Object, "json: expected an object");
    return object_;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    const JsonValue *found = nullptr;
    for (const auto &[k, v] : asObject()) {
        if (k == key)
            found = &v; // duplicate keys: last occurrence wins
    }
    return found;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    const JsonValue *found = find(key);
    fatalIf(!found, "json: missing key '", std::string(key), "'");
    return *found;
}

/** Recursive-descent parser over a string_view (fatal on error). */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue(0);
        skipWhitespace();
        fatalIf(pos_ != text_.size(),
                "json: trailing garbage at offset ", pos_);
        return value;
    }

  private:
    /** Nesting guard: protocol objects are shallow; a hostile or
     * corrupt request must not overflow the stack. */
    static constexpr int kMaxDepth = 64;

    [[noreturn]] void
    error(const char *what)
    {
        fatal("json: ", what, " at offset ", pos_);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            error("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c, const char *what)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            error(what);
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            error("invalid literal");
        pos_ += word.size();
    }

    std::string
    parseString()
    {
        expect('"', "expected '\"'");
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                error("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                error("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                error("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    error("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        error("invalid \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are passed through as two three-byte sequences;
                // our own encoder never emits them).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
            }
            default:
                error("invalid escape");
            }
        }
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > kMaxDepth)
            error("nesting too deep");
        skipWhitespace();
        JsonValue value;
        switch (peek()) {
        case '{': {
            ++pos_;
            value.type_ = JsonValue::Type::Object;
            skipWhitespace();
            if (consume('}'))
                return value;
            for (;;) {
                skipWhitespace();
                std::string key = parseString();
                skipWhitespace();
                expect(':', "expected ':'");
                value.object_.emplace_back(std::move(key),
                                           parseValue(depth + 1));
                skipWhitespace();
                if (consume(','))
                    continue;
                expect('}', "expected ',' or '}'");
                return value;
            }
        }
        case '[': {
            ++pos_;
            value.type_ = JsonValue::Type::Array;
            skipWhitespace();
            if (consume(']'))
                return value;
            for (;;) {
                value.array_.push_back(parseValue(depth + 1));
                skipWhitespace();
                if (consume(','))
                    continue;
                expect(']', "expected ',' or ']'");
                return value;
            }
        }
        case '"':
            value.type_ = JsonValue::Type::String;
            value.string_ = parseString();
            return value;
        case 't':
            literal("true");
            value.type_ = JsonValue::Type::Bool;
            value.bool_ = true;
            return value;
        case 'f':
            literal("false");
            value.type_ = JsonValue::Type::Bool;
            value.bool_ = false;
            return value;
        case 'n':
            literal("null");
            return value;
        default: {
            // Number: validate the JSON grammar by hand, convert
            // with strtod on the validated slice.
            const std::size_t start = pos_;
            consume('-');
            if (!consume('0')) {
                if (pos_ >= text_.size() || text_[pos_] < '1' ||
                    text_[pos_] > '9')
                    error("invalid value");
                while (pos_ < text_.size() && text_[pos_] >= '0' &&
                       text_[pos_] <= '9')
                    ++pos_;
            }
            if (consume('.')) {
                if (pos_ >= text_.size() || text_[pos_] < '0' ||
                    text_[pos_] > '9')
                    error("digits required after '.'");
                while (pos_ < text_.size() && text_[pos_] >= '0' &&
                       text_[pos_] <= '9')
                    ++pos_;
            }
            if (pos_ < text_.size() &&
                (text_[pos_] == 'e' || text_[pos_] == 'E')) {
                ++pos_;
                if (pos_ < text_.size() &&
                    (text_[pos_] == '+' || text_[pos_] == '-'))
                    ++pos_;
                if (pos_ >= text_.size() || text_[pos_] < '0' ||
                    text_[pos_] > '9')
                    error("digits required in exponent");
                while (pos_ < text_.size() && text_[pos_] >= '0' &&
                       text_[pos_] <= '9')
                    ++pos_;
            }
            const std::string slice(text_.substr(start, pos_ - start));
            value.type_ = JsonValue::Type::Number;
            value.number_ = std::strtod(slice.c_str(), nullptr);
            return value;
        }
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

JsonValue
parseJson(std::string_view text)
{
    return JsonParser(text).parseDocument();
}

} // namespace alberta::support
