/**
 * @file
 * Minimal JSON helpers shared by the trace sink, the report writer,
 * the bench harnesses' machine-readable output, and the serving
 * layer's request protocol.
 *
 * Encoding is a handful of free functions; decoding is a small
 * recursive-descent parser into @ref JsonValue, enough for the
 * line-delimited request/response objects `alberta_serve` exchanges
 * and for round-tripping `core::RunRequest`. Malformed input raises
 * support::FatalError with the byte offset, so protocol errors carry
 * a usable diagnostic back to the client.
 */
#ifndef ALBERTA_SUPPORT_JSON_H
#define ALBERTA_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alberta::support {

/** Escape @p text for use inside a JSON string (no quotes added). */
std::string jsonEscape(std::string_view text);

/** @p text as a quoted, escaped JSON string literal. */
std::string jsonQuote(std::string_view text);

/**
 * @p value as a JSON number. Round-trips doubles (max_digits10);
 * non-finite values, which JSON cannot represent, encode as 0.
 */
std::string jsonNumber(double value);

/**
 * One parsed JSON value. Objects keep their members in document
 * order (duplicate keys keep the last occurrence on lookup, like
 * every mainstream parser).
 */
class JsonValue
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Value accessors; fatal when the type does not match. */
    bool asBool() const;
    double asNumber() const;
    /** asNumber() checked to be a non-negative integer <= @p max. */
    std::uint64_t asUint(std::uint64_t max = ~0ULL >> 11) const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::vector<std::pair<std::string, JsonValue>> &
    asObject() const;

    /** Object member lookup (nullptr when absent; fatal non-object). */
    const JsonValue *find(std::string_view key) const;
    /** Object member lookup, fatal when @p key is absent. */
    const JsonValue &at(std::string_view key) const;

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/**
 * Parse one complete JSON document from @p text (trailing whitespace
 * allowed, anything else is fatal). Raises support::FatalError with
 * the byte offset on malformed input.
 */
JsonValue parseJson(std::string_view text);

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_JSON_H
