/**
 * @file
 * Minimal JSON encoding helpers shared by the trace sink, the report
 * writer, and the bench harnesses' machine-readable output.
 */
#ifndef ALBERTA_SUPPORT_JSON_H
#define ALBERTA_SUPPORT_JSON_H

#include <string>
#include <string_view>

namespace alberta::support {

/** Escape @p text for use inside a JSON string (no quotes added). */
std::string jsonEscape(std::string_view text);

/** @p text as a quoted, escaped JSON string literal. */
std::string jsonQuote(std::string_view text);

/**
 * @p value as a JSON number. Round-trips doubles (max_digits10);
 * non-finite values, which JSON cannot represent, encode as 0.
 */
std::string jsonNumber(double value);

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_JSON_H
