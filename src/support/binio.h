/**
 * @file
 * Minimal binary serialization helpers for on-disk artifacts (the
 * persistent result cache, cost ledger snapshots).
 *
 * The format is little-endian, length-prefixed, and self-delimiting:
 * integers are fixed-width, doubles are bit-cast to 64-bit words so
 * they round-trip bit-exactly, and strings/blobs carry a 64-bit length
 * prefix. ByteReader never throws on malformed input — every `read*`
 * returns false once the buffer under-runs, and `ok()` latches the
 * failure — so a truncated or corrupted file degrades to "no data",
 * not a crash.
 */
#ifndef ALBERTA_SUPPORT_BINIO_H
#define ALBERTA_SUPPORT_BINIO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace alberta::support {

/** Append-only builder for a binary payload. */
class ByteWriter
{
  public:
    void
    writeU32(std::uint32_t value)
    {
        appendRaw(&value, sizeof value);
    }

    void
    writeU64(std::uint64_t value)
    {
        appendRaw(&value, sizeof value);
    }

    /** Bit-exact double encoding (no decimal round-trip loss). */
    void
    writeDouble(double value)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &value, sizeof bits);
        writeU64(bits);
    }

    /** Length-prefixed string. */
    void
    writeString(std::string_view value)
    {
        writeU64(value.size());
        appendRaw(value.data(), value.size());
    }

    const std::string &bytes() const { return bytes_; }

  private:
    void
    appendRaw(const void *data, std::size_t size)
    {
        bytes_.append(static_cast<const char *>(data), size);
    }

    std::string bytes_;
};

/**
 * Bounds-checked reader over a byte buffer. All reads fail (return
 * false, latch `ok() == false`) instead of reading past the end.
 */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view bytes) : bytes_(bytes) {}

    bool
    readU32(std::uint32_t *out)
    {
        return readRaw(out, sizeof *out);
    }

    bool
    readU64(std::uint64_t *out)
    {
        return readRaw(out, sizeof *out);
    }

    bool
    readDouble(double *out)
    {
        std::uint64_t bits;
        if (!readU64(&bits))
            return false;
        std::memcpy(out, &bits, sizeof *out);
        return true;
    }

    bool
    readString(std::string *out)
    {
        std::uint64_t size;
        if (!readU64(&size) || size > remaining()) {
            ok_ = false;
            return false;
        }
        out->assign(bytes_.data() + pos_,
                    static_cast<std::size_t>(size));
        pos_ += static_cast<std::size_t>(size);
        return true;
    }

    /** True until any read under-runs the buffer. */
    bool ok() const { return ok_; }

    /** True when the whole buffer has been consumed. */
    bool atEnd() const { return pos_ == bytes_.size(); }

    std::size_t remaining() const { return bytes_.size() - pos_; }

  private:
    bool
    readRaw(void *out, std::size_t size)
    {
        if (!ok_ || size > remaining()) {
            ok_ = false;
            return false;
        }
        std::memcpy(out, bytes_.data() + pos_, size);
        pos_ += size;
        return true;
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** FNV-1a over a byte buffer (payload checksums). */
std::uint64_t fnv1a(std::string_view bytes);

} // namespace alberta::support

#endif // ALBERTA_SUPPORT_BINIO_H
