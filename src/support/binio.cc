#include "support/binio.h"

namespace alberta::support {

std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace alberta::support
