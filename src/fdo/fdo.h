/**
 * @file
 * Feedback-Directed Optimization harness: the methodology substrate
 * the paper's motivation (Sections I, II, VII) calls for.
 *
 * Profiles are collected from an instrumented training run (branch
 * biases per site + method hotness), compiled into static branch
 * hints and hot/cold code layout, and evaluated on other workloads.
 * The cross-validation driver quantifies how much a single
 * train-workload experiment overstates (or misstates) FDO benefit —
 * the paper's central methodological claim.
 */
#ifndef ALBERTA_FDO_FDO_H
#define ALBERTA_FDO_FDO_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/benchmark.h"
#include "runtime/engine.h"
#include "topdown/machine.h"

namespace alberta::fdo {

/** A training profile: branch biases and method hotness. */
struct Profile
{
    /** Site key -> (taken, total) counts. */
    std::unordered_map<std::uint64_t, topdown::SiteProfile> sites;
    /** Stable method key -> fraction of total slots. */
    std::unordered_map<std::uint64_t, double> methodHotness;
    std::uint64_t retiredOps = 0;

    /** Merge another profile into this one (combined profiling). */
    void merge(const Profile &other);
};

/** Compiled FDO artifacts (must outlive the optimized run). */
struct Optimization
{
    topdown::BranchHints hints;
    topdown::CodeLayout layout;
    int hintedSites = 0;
    int hotMethods = 0;
};

/** Optimizer thresholds. */
struct OptimizerConfig
{
    double hintBias = 0.85;      //!< min taken/not-taken bias to hint
    std::uint64_t minSamples = 16; //!< ignore colder sites
    double hotCoverage = 0.05;   //!< method-hotness layout threshold
    double hotScale = 0.55;      //!< code-footprint scale for hot code
};

/** Run @p workload once with profiling enabled; returns the profile. */
Profile collectProfile(const runtime::Benchmark &benchmark,
                       const runtime::Workload &workload);

/** Compile a profile into branch hints + code layout. */
Optimization compileOptimization(const Profile &profile,
                                 const OptimizerConfig &config = {});

/** One measured run (cycles are the modelled metric of merit). */
struct FdoMeasurement
{
    double cycles = 0.0;
    stats::TopdownRatios topdown;
    std::uint64_t checksum = 0;
};

/**
 * Run @p workload with (or without, pass nullptr) an optimization.
 *
 * Baseline runs (no optimization installed) are plain deterministic
 * model runs, so they are memoized in @p cache when one is given;
 * optimized runs depend on the installed artifacts and always execute.
 */
FdoMeasurement runOptimized(const runtime::Benchmark &benchmark,
                            const runtime::Workload &workload,
                            const Optimization *optimization,
                            runtime::ResultCache *cache = nullptr);

/** Speedup of train-on-@p trainName applied to eval-on-@p evalName. */
double fdoSpeedup(const runtime::Benchmark &benchmark,
                  const runtime::Workload &train,
                  const runtime::Workload &eval,
                  runtime::ResultCache *cache = nullptr);

/** Outcome of the cross-validation methodology for one benchmark. */
struct CrossValidation
{
    std::string benchmark;
    std::string trainWorkload;
    /** Speedup when evaluating on the training workload itself. */
    double selfSpeedup = 1.0;
    /** Speedup on the classic single eval workload ("refrate"). */
    double refSpeedup = 1.0;
    /** Speedups across all other workloads (leave-one-in). */
    std::vector<std::string> evalNames;
    std::vector<double> evalSpeedups;
    double meanCross = 1.0; //!< geometric mean over evalSpeedups
    double minCross = 1.0;
    double maxCross = 1.0;
};

/** Execution options for @ref crossValidate. */
struct CrossValidateOptions
{
    /** Worker threads for the per-workload evaluations (1 = serial,
     * 0 = runtime::Executor::defaultJobs()); ignored when @ref
     * engine is set. */
    int jobs = 1;
    /** The run-session facade (pool + cache + tracing). The
     * historical executor/cache raw-pointer pair has been removed;
     * sessions are configured exclusively through here. */
    runtime::Engine *engine = nullptr;
};

/**
 * The paper's prescribed experiment: train on "train", report both
 * the classic train->refrate number and the distribution across all
 * available (Alberta) workloads. Per-workload evaluations are
 * independent model runs, so they may execute in parallel; results
 * are gathered in workload order and are bit-identical to the serial
 * path.
 */
CrossValidation crossValidate(const runtime::Benchmark &benchmark,
                              const std::string &trainName = "train",
                              const CrossValidateOptions &options = {});

} // namespace alberta::fdo

#endif // ALBERTA_FDO_FDO_H
