#include "fdo/fdo.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "profile/coverage.h"
#include "support/check.h"

namespace alberta::fdo {

void
Profile::merge(const Profile &other)
{
    for (const auto &[key, counts] : other.sites) {
        auto &mine = sites[key];
        mine.taken += counts.taken;
        mine.total += counts.total;
    }
    const double selfWeight =
        retiredOps + other.retiredOps > 0
            ? static_cast<double>(retiredOps) /
                  (retiredOps + other.retiredOps)
            : 0.5;
    for (auto &[key, hotness] : methodHotness)
        hotness *= selfWeight;
    for (const auto &[key, hotness] : other.methodHotness)
        methodHotness[key] += hotness * (1.0 - selfWeight);
    retiredOps += other.retiredOps;
}

Profile
collectProfile(const runtime::Benchmark &benchmark,
               const runtime::Workload &workload)
{
    runtime::ExecutionContext context;
    context.machine().collectProfile(true);
    benchmark.run(workload, context);

    Profile profile;
    profile.sites = context.machine().siteProfiles();
    profile.retiredOps = context.machine().retiredOps();

    // Method hotness via stable keys.
    const auto &perMethod = context.machine().perMethod();
    double total = 0.0;
    for (const auto &slots : perMethod)
        total += slots.total();
    // Re-derive stable keys through the coverage map: names are the
    // stable identity, so hash them the same way the profiler does.
    for (const auto &[name, fraction] : context.coverage()) {
        profile.methodHotness[std::hash<std::string>{}(name)] =
            fraction;
    }
    (void)total;
    return profile;
}

Optimization
compileOptimization(const Profile &profile,
                    const OptimizerConfig &config)
{
    Optimization opt;
    for (const auto &[key, counts] : profile.sites) {
        if (counts.total < config.minSamples)
            continue;
        const double bias = static_cast<double>(counts.taken) /
                            static_cast<double>(counts.total);
        if (bias >= config.hintBias) {
            opt.hints.direction[key] = true;
            ++opt.hintedSites;
        } else if (bias <= 1.0 - config.hintBias) {
            opt.hints.direction[key] = false;
            ++opt.hintedSites;
        }
    }
    for (const auto &[key, hotness] : profile.methodHotness) {
        if (hotness >= config.hotCoverage) {
            opt.layout.scale[key] = config.hotScale;
            ++opt.hotMethods;
        }
    }
    return opt;
}

FdoMeasurement
runOptimized(const runtime::Benchmark &benchmark,
             const runtime::Workload &workload,
             const Optimization *optimization,
             runtime::ResultCache *cache)
{
    FdoMeasurement m;
    if (!optimization) {
        // A baseline run is exactly the deterministic model run the
        // characterization pipeline memoizes; share its cache.
        const runtime::RunMeasurement run =
            runtime::measureCached(benchmark, workload, cache);
        m.cycles = run.simCycles;
        m.topdown = run.topdown;
        m.checksum = run.checksum;
        return m;
    }
    runtime::ExecutionContext context;
    context.installOptimization(&optimization->hints,
                                &optimization->layout);
    benchmark.run(workload, context);
    m.cycles = context.machine().cycles();
    m.topdown = context.machine().ratios();
    m.checksum = context.checksum();
    return m;
}

double
fdoSpeedup(const runtime::Benchmark &benchmark,
           const runtime::Workload &train,
           const runtime::Workload &eval,
           runtime::ResultCache *cache)
{
    const Profile profile = collectProfile(benchmark, train);
    const Optimization opt = compileOptimization(profile);
    const FdoMeasurement base =
        runOptimized(benchmark, eval, nullptr, cache);
    const FdoMeasurement tuned = runOptimized(benchmark, eval, &opt);
    support::panicIf(base.checksum != tuned.checksum,
                     "fdo: optimization changed program output");
    return base.cycles / tuned.cycles;
}

CrossValidation
crossValidate(const runtime::Benchmark &benchmark,
              const std::string &trainName,
              const CrossValidateOptions &options)
{
    const auto workloads = benchmark.workloads();
    const runtime::Workload train =
        runtime::findWorkload(benchmark, trainName);

    // The engine supplies the shared pool, baseline-run cache, and
    // tracing: one root span per cross-validation, one child span per
    // evaluated workload.
    runtime::Engine *engine = options.engine;
    runtime::Executor *executor =
        engine ? &engine->executor() : nullptr;
    runtime::ResultCache *cache = engine ? &engine->cache() : nullptr;
    obs::Tracer *tracer = engine ? &engine->tracer() : nullptr;

    obs::Span root(tracer, benchmark.name(), "crossvalidate");
    root.note("train", trainName);

    const Profile profile = [&] {
        obs::Span span(tracer, "collect_profile", "fdo_train",
                       root.id());
        return collectProfile(benchmark, train);
    }();
    const Optimization opt = compileOptimization(profile);

    CrossValidation cv;
    cv.benchmark = benchmark.name();
    cv.trainWorkload = trainName;

    const std::uint64_t rootId = root.id();
    const auto speedupOn = [&](const runtime::Workload &w) {
        obs::Span eval(tracer, w.name, "fdo_eval", rootId);
        const FdoMeasurement base =
            runOptimized(benchmark, w, nullptr, cache);
        const FdoMeasurement tuned = runOptimized(benchmark, w, &opt);
        const double speedup = base.cycles / tuned.cycles;
        eval.note("speedup", speedup);
        return speedup;
    };

    std::vector<const runtime::Workload *> evals;
    for (const auto &w : workloads) {
        if (w.name != trainName)
            evals.push_back(&w);
    }
    support::fatalIf(evals.empty(),
                     "fdo: benchmark has no evaluation workloads");

    // Every evaluation (and the self-evaluation) is an independent
    // pair of model runs; fan them out and gather in workload order.
    std::optional<runtime::Executor> local;
    if (!executor) {
        local.emplace(options.jobs);
        executor = &*local;
    }
    std::vector<double> speedups(evals.size());
    executor->parallelFor(
        evals.size() + 1, [&](std::size_t task) {
            if (task == evals.size())
                cv.selfSpeedup = speedupOn(train);
            else
                speedups[task] = speedupOn(*evals[task]);
        });
    if (engine)
        engine->metrics().counter("fdo.evaluations")
            .add(evals.size() + 1);

    double logSum = 0.0;
    cv.minCross = 1e30;
    cv.maxCross = -1e30;
    for (std::size_t i = 0; i < evals.size(); ++i) {
        const runtime::Workload &w = *evals[i];
        const double speedup = speedups[i];
        if (w.isRefrate())
            cv.refSpeedup = speedup;
        cv.evalNames.push_back(w.name);
        cv.evalSpeedups.push_back(speedup);
        logSum += std::log(speedup);
        cv.minCross = std::min(cv.minCross, speedup);
        cv.maxCross = std::max(cv.maxCross, speedup);
    }
    cv.meanCross =
        std::exp(logSum / static_cast<double>(evals.size()));
    return cv;
}

} // namespace alberta::fdo
