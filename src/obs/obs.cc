#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <ostream>

#include "support/check.h"
#include "support/json.h"

namespace alberta::obs {

// --------------------------------------------------------------------
// Metrics

void
Gauge::set(double value)
{
    bits_.store(std::bit_cast<std::uint64_t>(value),
                std::memory_order_relaxed);
}

double
Gauge::value() const
{
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void
Histogram::record(double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    sum_ += value;
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

double
Histogram::mean() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<MetricSample>
Registry::snapshot() const
{
    std::vector<MetricSample> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_) {
        MetricSample s;
        s.name = name;
        s.kind = "counter";
        s.count = counter->value();
        s.value = static_cast<double>(s.count);
        out.push_back(std::move(s));
    }
    for (const auto &[name, gauge] : gauges_) {
        MetricSample s;
        s.name = name;
        s.kind = "gauge";
        s.value = gauge->value();
        out.push_back(std::move(s));
    }
    for (const auto &[name, histogram] : histograms_) {
        MetricSample s;
        s.name = name;
        s.kind = "histogram";
        s.count = histogram->count();
        s.sum = histogram->sum();
        s.min = histogram->min();
        s.max = histogram->max();
        s.value = histogram->mean();
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

// --------------------------------------------------------------------
// JSON-lines sink

JsonLinesSink::JsonLinesSink(const std::string &path)
{
    auto file = std::make_unique<std::ofstream>(path);
    support::fatalIf(!*file, "obs: cannot open trace file '", path,
                     "'");
    os_ = file.get();
    owned_ = std::move(file);
}

JsonLinesSink::JsonLinesSink(std::ostream &os) : os_(&os) {}

JsonLinesSink::~JsonLinesSink() = default;

void
JsonLinesSink::record(const SpanRecord &span)
{
    using support::jsonNumber;
    using support::jsonQuote;
    std::string line;
    line.reserve(128);
    line += "{\"id\":";
    line += std::to_string(span.id);
    line += ",\"parent\":";
    line += std::to_string(span.parent);
    line += ",\"name\":";
    line += jsonQuote(span.name);
    line += ",\"cat\":";
    line += jsonQuote(span.category);
    line += ",\"start_s\":";
    line += jsonNumber(span.startSeconds);
    line += ",\"dur_s\":";
    line += jsonNumber(span.durationSeconds);
    for (const auto &[key, value] : span.attrs) {
        line += ',';
        line += jsonQuote(key);
        line += ':';
        line += value; // pre-encoded JSON value (see Span::note)
    }
    line += "}\n";
    std::lock_guard<std::mutex> lock(mutex_);
    *os_ << line;
    spans_.fetch_add(1, std::memory_order_relaxed);
}

void
JsonLinesSink::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    os_->flush();
}

// --------------------------------------------------------------------
// Tracer + Span

double
Tracer::sinceEpoch() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

namespace {

/** Innermost active span per (thread, tracer): implicit parenting. */
struct ThreadSpanStack
{
    std::vector<std::pair<const Tracer *, std::uint64_t>> frames;
};

thread_local ThreadSpanStack tlSpans;

} // namespace

Span::Span(Tracer *tracer, std::string_view name,
           std::string_view category, std::uint64_t parent)
{
    if (!tracer || !tracer->enabled())
        return;
    tracer_ = tracer;
    record_.id = tracer->nextId();
    if (parent == kInheritParent) {
        record_.parent = 0;
        for (auto it = tlSpans.frames.rbegin();
             it != tlSpans.frames.rend(); ++it) {
            if (it->first == tracer) {
                record_.parent = it->second;
                break;
            }
        }
    } else {
        record_.parent = parent;
    }
    record_.name.assign(name);
    record_.category.assign(category);
    record_.startSeconds = tracer->sinceEpoch();
    tlSpans.frames.emplace_back(tracer, record_.id);
}

void
Span::note(std::string_view key, std::string_view value)
{
    if (!tracer_)
        return;
    record_.attrs.emplace_back(std::string(key),
                               support::jsonQuote(value));
}

void
Span::note(std::string_view key, std::uint64_t value)
{
    if (!tracer_)
        return;
    record_.attrs.emplace_back(std::string(key),
                               std::to_string(value));
}

void
Span::note(std::string_view key, double value)
{
    if (!tracer_)
        return;
    record_.attrs.emplace_back(std::string(key),
                               support::jsonNumber(value));
}

void
Span::finish()
{
    if (!tracer_)
        return;
    record_.durationSeconds =
        tracer_->sinceEpoch() - record_.startSeconds;
    // Pop this span's frame. Spans normally finish LIFO per thread;
    // out-of-order finishes just search down the stack.
    auto &frames = tlSpans.frames;
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
        if (it->first == tracer_ && it->second == record_.id) {
            frames.erase(std::next(it).base());
            break;
        }
    }
    if (TraceSink *sink = tracer_->sink())
        sink->record(record_);
    tracer_ = nullptr;
}

} // namespace alberta::obs
