/**
 * @file
 * Run-session observability: metrics and span tracing for the
 * characterization pipeline.
 *
 * The layer has three parts:
 *
 *   - a Registry of named Counters, Gauges, and Histograms that the
 *     engine components (executor, result cache, characterization
 *     driver) bump as they work;
 *   - span-style tracing: one Span per model run, refrate repetition,
 *     cache-probe batch, and summarization stage, with parent/child
 *     nesting and steady-clock durations; and
 *   - pluggable TraceSinks. The shipped sink writes JSON lines; a
 *     Tracer with no sink is the null sink, and every Span entry point
 *     collapses to a single branch in that case.
 *
 * Observability is strictly read-only with respect to the model: spans
 * and counters record what happened, they never feed back into it, so
 * model outputs are bit-identical with tracing on or off.
 */
#ifndef ALBERTA_OBS_OBS_H
#define ALBERTA_OBS_OBS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace alberta::obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double value);
    double value() const;

  private:
    std::atomic<std::uint64_t> bits_{0}; //!< bit-cast double
};

/** Running count/sum/min/max over recorded samples. */
class Histogram
{
  public:
    void record(double value);

    std::uint64_t count() const;
    double sum() const;
    double min() const; //!< 0 when empty
    double max() const; //!< 0 when empty
    double mean() const; //!< 0 when empty

  private:
    mutable std::mutex mutex_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** One row of a metrics snapshot (see Registry::snapshot). */
struct MetricSample
{
    std::string name;
    std::string kind; //!< "counter" | "gauge" | "histogram"
    double value = 0.0; //!< counter/gauge value; histogram mean
    std::uint64_t count = 0; //!< histogram sample count
    double sum = 0.0;  //!< histogram only
    double min = 0.0;  //!< histogram only
    double max = 0.0;  //!< histogram only
};

/**
 * Named metrics, created on first use and stable for the registry's
 * lifetime (references returned here never dangle or move). Creation
 * takes a lock; bumping an already-obtained metric is lock-free for
 * counters and gauges.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** All metrics, sorted by name. */
    std::vector<MetricSample> snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** One finished span, as delivered to a TraceSink. */
struct SpanRecord
{
    std::uint64_t id = 0;
    std::uint64_t parent = 0; //!< 0 = root
    std::string name;
    std::string category;
    double startSeconds = 0.0;    //!< offset from the tracer's epoch
    double durationSeconds = 0.0; //!< steady-clock span duration
    /** Attributes; values are pre-encoded JSON scalars (strings carry
     * their quotes), so sinks can splice them into output verbatim. */
    std::vector<std::pair<std::string, std::string>> attrs;
};

/** Destination for finished spans. Implementations must be
 * thread-safe: spans finish on executor workers concurrently. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void record(const SpanRecord &span) = 0;
    virtual void flush() {}
};

/**
 * JSON-lines trace sink: one JSON object per finished span, written in
 * completion order. Construct with a path (fatal on open failure) or
 * with a caller-owned stream (tests).
 */
class JsonLinesSink : public TraceSink
{
  public:
    explicit JsonLinesSink(const std::string &path);
    explicit JsonLinesSink(std::ostream &os);
    ~JsonLinesSink() override;

    void record(const SpanRecord &span) override;
    void flush() override;

    std::uint64_t spansWritten() const { return spans_.load(); }

  private:
    std::mutex mutex_;
    std::unique_ptr<std::ostream> owned_;
    std::ostream *os_ = nullptr;
    std::atomic<std::uint64_t> spans_{0};
};

/**
 * Span factory. A default-constructed (or sink-less) Tracer is the
 * null sink: Spans opened against it are inactive and cost one branch.
 *
 * Span ids are process-unique per tracer; the implicit parent of a new
 * span is the innermost active span previously opened *on the same
 * thread* against the same tracer, so work fanned out to executor
 * workers must pass the parent id explicitly (see Span).
 */
class Tracer
{
  public:
    Tracer() = default;
    explicit Tracer(TraceSink *sink) : sink_(sink) {}

    bool enabled() const { return sink_ != nullptr; }
    TraceSink *sink() const { return sink_; }

    /** Replace the sink (null disables tracing). */
    void
    setSink(TraceSink *sink)
    {
        sink_ = sink;
    }

    /** Seconds elapsed on the steady clock since the tracer's epoch. */
    double sinceEpoch() const;

  private:
    friend class Span;

    std::uint64_t
    nextId()
    {
        return nextId_.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    TraceSink *sink_ = nullptr;
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    std::atomic<std::uint64_t> nextId_{0};
};

/**
 * RAII span. Opening against a null/disabled tracer yields an inactive
 * span: every member function short-circuits on one branch, so hot
 * paths can open spans unconditionally.
 *
 * Parent selection: by default a span inherits the innermost active
 * span opened on the same thread (kInheritParent); pass an explicit id
 * (e.g. the root span's, captured before fanning work out to a pool)
 * or kNoParent to override.
 */
class Span
{
  public:
    /** Inherit the calling thread's innermost active span. */
    static constexpr std::uint64_t kInheritParent = ~0ULL;
    /** Force a root span. */
    static constexpr std::uint64_t kNoParent = 0;

    Span() = default; //!< inactive
    Span(Tracer *tracer, std::string_view name,
         std::string_view category,
         std::uint64_t parent = kInheritParent);
    ~Span() { finish(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    bool active() const { return tracer_ != nullptr; }
    /** This span's id (0 when inactive) — pass as an explicit parent. */
    std::uint64_t id() const { return record_.id; }

    /** Attach a key/value attribute (no-op when inactive). */
    void note(std::string_view key, std::string_view value);
    void note(std::string_view key, std::uint64_t value);
    void note(std::string_view key, double value);

    /** Close the span now and deliver it to the sink (idempotent). */
    void finish();

  private:
    Tracer *tracer_ = nullptr;
    SpanRecord record_;
};

} // namespace alberta::obs

#endif // ALBERTA_OBS_OBS_H
