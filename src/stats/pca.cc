#include "stats/pca.h"

#include <cmath>

#include "support/check.h"
#include "support/rng.h"

namespace alberta::stats {

Matrix
standardize(const Matrix &data)
{
    support::fatalIf(data.empty(), "pca: empty matrix");
    const std::size_t n = data.size();
    const std::size_t dims = data[0].size();
    for (const auto &row : data)
        support::fatalIf(row.size() != dims, "pca: ragged matrix");

    Matrix out(n, std::vector<double>(dims, 0.0));
    for (std::size_t d = 0; d < dims; ++d) {
        double mean = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            mean += data[i][d];
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            var += (data[i][d] - mean) * (data[i][d] - mean);
        var /= static_cast<double>(n);
        const double sd = std::sqrt(var);
        for (std::size_t i = 0; i < n; ++i)
            out[i][d] = sd > 1e-12 ? (data[i][d] - mean) / sd : 0.0;
    }
    return out;
}

namespace {

/** Covariance matrix of row-major data (population normalization). */
Matrix
covariance(const Matrix &data)
{
    const std::size_t n = data.size();
    const std::size_t dims = data[0].size();
    std::vector<double> mean(dims, 0.0);
    for (const auto &row : data)
        for (std::size_t d = 0; d < dims; ++d)
            mean[d] += row[d];
    for (auto &m : mean)
        m /= static_cast<double>(n);

    Matrix cov(dims, std::vector<double>(dims, 0.0));
    for (const auto &row : data) {
        for (std::size_t a = 0; a < dims; ++a) {
            for (std::size_t b = a; b < dims; ++b) {
                cov[a][b] +=
                    (row[a] - mean[a]) * (row[b] - mean[b]);
            }
        }
    }
    for (std::size_t a = 0; a < dims; ++a)
        for (std::size_t b = a; b < dims; ++b) {
            cov[a][b] /= static_cast<double>(n);
            cov[b][a] = cov[a][b];
        }
    return cov;
}

/** Largest eigenpair of a symmetric matrix by power iteration. */
std::pair<std::vector<double>, double>
powerIteration(const Matrix &m)
{
    const std::size_t dims = m.size();
    support::Rng rng(0xEC4A);
    std::vector<double> v(dims);
    for (auto &x : v)
        x = rng.real(-1.0, 1.0);

    double eigenvalue = 0.0;
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<double> next(dims, 0.0);
        for (std::size_t a = 0; a < dims; ++a)
            for (std::size_t b = 0; b < dims; ++b)
                next[a] += m[a][b] * v[b];
        double norm = 0.0;
        for (const double x : next)
            norm += x * x;
        norm = std::sqrt(norm);
        if (norm < 1e-14)
            return {std::vector<double>(dims, 0.0), 0.0};
        for (auto &x : next)
            x /= norm;
        // Rayleigh quotient.
        double quotient = 0.0;
        for (std::size_t a = 0; a < dims; ++a) {
            double row = 0.0;
            for (std::size_t b = 0; b < dims; ++b)
                row += m[a][b] * next[b];
            quotient += next[a] * row;
        }
        const double delta = std::abs(quotient - eigenvalue);
        eigenvalue = quotient;
        v = next;
        if (delta < 1e-13)
            break;
    }
    return {v, eigenvalue};
}

} // namespace

PcaResult
principalComponents(const Matrix &data, std::size_t k)
{
    support::fatalIf(data.empty(), "pca: empty matrix");
    const std::size_t dims = data[0].size();
    support::fatalIf(k == 0 || k > dims, "pca: invalid component "
                                         "count ", k);

    Matrix cov = covariance(data);
    double totalVariance = 0.0;
    for (std::size_t d = 0; d < dims; ++d)
        totalVariance += cov[d][d];

    PcaResult result;
    for (std::size_t c = 0; c < k; ++c) {
        auto [vec, eigenvalue] = powerIteration(cov);
        result.components.push_back(vec);
        result.eigenvalues.push_back(eigenvalue);
        // Deflate: cov -= lambda * v v^T.
        for (std::size_t a = 0; a < dims; ++a)
            for (std::size_t b = 0; b < dims; ++b)
                cov[a][b] -= eigenvalue * vec[a] * vec[b];
    }

    // Project observations (centred on the data mean).
    std::vector<double> mean(dims, 0.0);
    for (const auto &row : data)
        for (std::size_t d = 0; d < dims; ++d)
            mean[d] += row[d];
    for (auto &m : mean)
        m /= static_cast<double>(data.size());
    for (const auto &row : data) {
        std::vector<double> proj(k, 0.0);
        for (std::size_t c = 0; c < k; ++c)
            for (std::size_t d = 0; d < dims; ++d)
                proj[c] +=
                    (row[d] - mean[d]) * result.components[c][d];
        result.projections.push_back(std::move(proj));
    }

    double captured = 0.0;
    for (const double e : result.eigenvalues)
        captured += e;
    result.varianceExplained =
        totalVariance > 1e-12 ? captured / totalVariance : 1.0;
    return result;
}

double
pcaDistance(const std::vector<double> &a, const std::vector<double> &b)
{
    support::panicIf(a.size() != b.size(), "pca: dimension mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(sum);
}

} // namespace alberta::stats
