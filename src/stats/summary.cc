#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/check.h"

namespace alberta::stats {

double
mean(std::span<const double> values)
{
    support::fatalIf(values.empty(), "mean of empty sample");
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(std::span<const double> values)
{
    const double mu = mean(values);
    double acc = 0.0;
    for (double v : values)
        acc += (v - mu) * (v - mu);
    return std::sqrt(acc / static_cast<double>(values.size()));
}

double
geometricMean(std::span<const double> values)
{
    support::fatalIf(values.empty(), "geometric mean of empty sample");
    double logSum = 0.0;
    for (double v : values) {
        support::fatalIf(v <= 0.0, "geometric mean requires positive "
                                   "values; got ", v);
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
geometricStddev(std::span<const double> values)
{
    const double mu = geometricMean(values);
    double acc = 0.0;
    for (double v : values) {
        const double d = std::log(v / mu);
        acc += d * d;
    }
    return std::exp(std::sqrt(acc / static_cast<double>(values.size())));
}

GeoSummary
summarize(std::span<const double> values)
{
    GeoSummary s;
    s.mean = geometricMean(values);
    s.stddev = geometricStddev(values);
    s.variation = s.stddev / s.mean;
    return s;
}

TopdownSummary
summarizeTopdown(std::span<const TopdownRatios> workloads, double floor)
{
    support::fatalIf(workloads.empty(), "top-down summary of zero "
                                        "workloads");
    std::array<std::vector<double>, 4> series;
    for (auto &s : series)
        s.reserve(workloads.size());
    for (const auto &w : workloads) {
        const auto ratios = w.asArray();
        for (std::size_t k = 0; k < 4; ++k)
            series[k].push_back(std::max(ratios[k], floor));
    }

    TopdownSummary out;
    out.frontend = summarize(series[0]);
    out.backend = summarize(series[1]);
    out.badspec = summarize(series[2]);
    out.retiring = summarize(series[3]);

    const std::array<double, 4> variations = {
        out.frontend.variation, out.backend.variation,
        out.badspec.variation, out.retiring.variation};
    out.muGV = geometricMean(variations);
    return out;
}

CoverageSummary
summarizeCoverage(std::span<const CoverageMap> workloads,
                  double groupThresholdPercent, double offsetPercent)
{
    support::fatalIf(workloads.empty(), "coverage summary of zero "
                                        "workloads");

    // Collect the union of method names across workloads.
    std::set<std::string> names;
    for (const auto &w : workloads)
        for (const auto &[name, frac] : w)
            names.insert(name);

    // A method survives grouping if it reaches the threshold in at least
    // one workload; everything else is summed into "others".
    std::vector<std::string> kept;
    for (const auto &name : names) {
        bool significant = false;
        for (const auto &w : workloads) {
            const auto it = w.find(name);
            const double pct = it == w.end() ? 0.0 : it->second * 100.0;
            if (pct >= groupThresholdPercent) {
                significant = true;
                break;
            }
        }
        if (significant)
            kept.push_back(name);
    }
    const bool haveOthers = kept.size() < names.size();

    CoverageSummary out;
    out.methods = kept;
    if (haveOthers)
        out.methods.push_back("others");

    // Build the percent-unit matrix with the paper's +0.01 offset.
    out.matrix.resize(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        auto &row = out.matrix[i];
        row.assign(out.methods.size(), 0.0);
        double grouped = 0.0;
        double keptSum = 0.0;
        for (std::size_t j = 0; j < kept.size(); ++j) {
            const auto it = workloads[i].find(kept[j]);
            const double pct =
                (it == workloads[i].end() ? 0.0 : it->second * 100.0);
            row[j] = pct + offsetPercent;
            keptSum += pct;
        }
        for (const auto &[name, frac] : workloads[i])
            grouped += frac * 100.0;
        grouped -= keptSum;
        if (haveOthers)
            row.back() = std::max(grouped, 0.0) + offsetPercent;
    }

    // Eqs. 1-3 per method, Eq. 5 across methods.
    std::vector<double> variations;
    variations.reserve(out.methods.size());
    for (std::size_t j = 0; j < out.methods.size(); ++j) {
        std::vector<double> series;
        series.reserve(workloads.size());
        for (std::size_t i = 0; i < workloads.size(); ++i)
            series.push_back(out.matrix[i][j]);
        out.perMethod.push_back(summarize(series));
        variations.push_back(out.perMethod.back().variation);
    }
    out.muGM = geometricMean(variations);

    // Present methods in declining mean-coverage order ("others" last).
    std::vector<std::size_t> order(out.methods.size());
    for (std::size_t j = 0; j < order.size(); ++j)
        order[j] = j;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         const bool aOthers =
                             haveOthers && a + 1 == out.methods.size();
                         const bool bOthers =
                             haveOthers && b + 1 == out.methods.size();
                         if (aOthers != bOthers)
                             return bOthers;
                         return out.perMethod[a].mean >
                                out.perMethod[b].mean;
                     });
    CoverageSummary sorted;
    sorted.muGM = out.muGM;
    sorted.matrix.resize(out.matrix.size());
    for (std::size_t j : order) {
        sorted.methods.push_back(out.methods[j]);
        sorted.perMethod.push_back(out.perMethod[j]);
    }
    for (std::size_t i = 0; i < out.matrix.size(); ++i)
        for (std::size_t j : order)
            sorted.matrix[i].push_back(out.matrix[i][j]);
    return sorted;
}

} // namespace alberta::stats
