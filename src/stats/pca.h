/**
 * @file
 * Principal-component analysis for program-similarity studies — the
 * Eeckhout / Phansalkar methodology the paper discusses in Section
 * VI: standardize per-benchmark feature vectors, extract the leading
 * principal components by power iteration with deflation, and project
 * the benchmarks into a low-dimensional similarity space.
 */
#ifndef ALBERTA_STATS_PCA_H
#define ALBERTA_STATS_PCA_H

#include <cstddef>
#include <vector>

namespace alberta::stats {

/** Row-major data matrix: one row per observation (benchmark). */
using Matrix = std::vector<std::vector<double>>;

/** Result of a PCA decomposition. */
struct PcaResult
{
    /** Principal directions (unit vectors), size k x dims. */
    Matrix components;
    /** Variance captured by each component (eigenvalues). */
    std::vector<double> eigenvalues;
    /** Projected observations, size n x k. */
    Matrix projections;
    /** Fraction of total variance captured by the k components. */
    double varianceExplained = 0.0;
};

/**
 * Standardize columns of @p data to zero mean and unit variance.
 * Constant columns become all-zero instead of dividing by zero.
 */
Matrix standardize(const Matrix &data);

/**
 * PCA via power iteration + deflation on the covariance matrix of
 * (already standardized or raw) @p data.
 *
 * @param k number of components (1 <= k <= dims)
 * @throws support::FatalError on an empty or ragged matrix
 */
PcaResult principalComponents(const Matrix &data, std::size_t k);

/** Euclidean distance between two projected observations. */
double pcaDistance(const std::vector<double> &a,
                   const std::vector<double> &b);

} // namespace alberta::stats

#endif // ALBERTA_STATS_PCA_H
