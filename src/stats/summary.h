/**
 * @file
 * The paper's behaviour-summarization methodology (Section V, Eqs. 1-5).
 *
 * Given per-workload observations of a set of ratios — the four Intel
 * top-down categories, or the per-method time-coverage fractions — the
 * methodology condenses them into a single per-benchmark sensitivity
 * scalar:
 *
 *  - Eq. 1: geometric mean mu_g of each ratio across workloads.
 *  - Eq. 2: geometric standard deviation sigma_g of each ratio.
 *  - Eq. 3: proportional variation V = sigma_g / mu_g.
 *  - Eq. 4: mu_g(V) = geometric mean of V over the four top-down ratios.
 *  - Eq. 5: mu_g(M) = geometric mean of V over the methods of a program.
 *
 * Scale conventions (chosen to reproduce the magnitudes of the paper's
 * Table II): top-down ratios are fractions in [0, 1]; method-coverage
 * values are percentages in [0, 100] with the paper's +0.01 offset added
 * and with methods below 0.05% in every workload grouped into "others".
 */
#ifndef ALBERTA_STATS_SUMMARY_H
#define ALBERTA_STATS_SUMMARY_H

#include <array>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace alberta::stats {

/** Arithmetic mean of @p values; values must be non-empty. */
double mean(std::span<const double> values);

/** Population standard deviation of @p values. */
double stddev(std::span<const double> values);

/** Eq. 1: geometric mean; every value must be positive. */
double geometricMean(std::span<const double> values);

/** Eq. 2: geometric standard deviation; every value must be positive. */
double geometricStddev(std::span<const double> values);

/** Per-ratio summary across workloads. */
struct GeoSummary
{
    double mean = 0.0;      //!< Eq. 1, mu_g
    double stddev = 1.0;    //!< Eq. 2, sigma_g (dimensionless, >= 1)
    double variation = 0.0; //!< Eq. 3, V = sigma_g / mu_g
};

/** Compute mu_g, sigma_g, and V for one ratio across workloads. */
GeoSummary summarize(std::span<const double> values);

/** One workload's top-down outcome: fractions summing to ~1. */
struct TopdownRatios
{
    double frontend = 0.0;  //!< f: front-end bound
    double backend = 0.0;   //!< b: back-end bound
    double badspec = 0.0;   //!< s: bad speculation
    double retiring = 0.0;  //!< r: retiring

    /** The four ratios in the paper's (f, b, s, r) order. */
    std::array<double, 4> asArray() const
    {
        return {frontend, backend, badspec, retiring};
    }
};

/** Per-benchmark summary of top-down behaviour across workloads. */
struct TopdownSummary
{
    GeoSummary frontend;
    GeoSummary backend;
    GeoSummary badspec;
    GeoSummary retiring;
    double muGV = 0.0; //!< Eq. 4: geomean of the four V values
};

/**
 * Summarize top-down ratios across workloads (Eqs. 1-4).
 *
 * Ratios of exactly zero are clamped to @p floor before taking
 * logarithms, mirroring the counter-sampling noise floor of the
 * measurements in the paper.
 */
TopdownSummary summarizeTopdown(std::span<const TopdownRatios> workloads,
                                double floor = 1e-4);

/** Method-coverage observations: method name -> fraction of time [0,1]. */
using CoverageMap = std::map<std::string, double>;

/** Per-benchmark summary of method coverage across workloads (Eq. 5). */
struct CoverageSummary
{
    /** Method names after "others" grouping, in declining mean order. */
    std::vector<std::string> methods;
    /** Per-method summary, parallel to @ref methods (percent units). */
    std::vector<GeoSummary> perMethod;
    /** Coverage matrix [workload][method] in percent, after grouping. */
    std::vector<std::vector<double>> matrix;
    /** Eq. 5: mu_g(M), the coverage-variation scalar. */
    double muGM = 0.0;
};

/**
 * Summarize method coverage across workloads using the paper's recipe:
 * group methods below @p groupThresholdPercent in every workload into an
 * "others" category, add @p offsetPercent to every value, then apply
 * Eqs. 1-3 per method and Eq. 5 across methods.
 */
CoverageSummary
summarizeCoverage(std::span<const CoverageMap> workloads,
                  double groupThresholdPercent = 0.05,
                  double offsetPercent = 0.01);

} // namespace alberta::stats

#endif // ALBERTA_STATS_SUMMARY_H
