/**
 * @file
 * Recursive ray tracer for the 511.povray_r mini-benchmark: spheres,
 * boxes, and checkered planes; point and spot lights; reflection,
 * refraction, and camera-lens aperture — the rendering techniques the
 * three Alberta workload families (collection / lumpy / primitive)
 * stress.
 */
#ifndef ALBERTA_BENCHMARKS_POVRAY_TRACER_H
#define ALBERTA_BENCHMARKS_POVRAY_TRACER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace alberta::povray {

/** A 3-vector. */
struct Vec3
{
    double x = 0, y = 0, z = 0;

    Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y,
                                                  z + o.z}; }
    Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y,
                                                  z - o.z}; }
    Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    double dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }
    Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z,
                x * o.y - y * o.x};
    }
    double length() const;
    Vec3 normalized() const;
};

/** Surface material (grayscale shading). */
struct Material
{
    double shade = 0.8;      //!< base reflectance in [0, 1]
    double reflectivity = 0; //!< mirror component
    double transparency = 0; //!< refractive component
    double ior = 1.5;        //!< index of refraction
    bool checker = false;    //!< checkerboard modulation (planes)
};

/** Object kinds. */
enum class ShapeKind
{
    Sphere,
    Plane, //!< horizontal plane y = height
    Box,
};

/** One scene object. */
struct Shape
{
    ShapeKind kind = ShapeKind::Sphere;
    Vec3 center;        //!< sphere center / box min corner
    Vec3 extent;        //!< box max corner
    double radius = 1;  //!< sphere radius / plane height (center.y)
    Material material;
};

/** Light kinds. */
struct Light
{
    Vec3 position;
    Vec3 direction;     //!< spotlights only
    double cosAngle = -1.0; //!< spot cutoff; -1 = point light
    double intensity = 1.0;
};

/** A camera. */
struct Camera
{
    Vec3 position{0, 1, -4};
    Vec3 lookAt{0, 0, 0};
    double fov = 60.0;       //!< degrees
    double aperture = 0.0;   //!< lens radius (0 = pinhole)
    double focalDistance = 4.0;
};

/** The scene plus render settings. */
struct Scene
{
    Camera camera;
    std::vector<Shape> shapes;
    std::vector<Light> lights;
    int width = 64;
    int height = 48;
    int maxDepth = 4;
    int samples = 1; //!< rays per pixel (aperture/antialias)

    /** Serialize to the scene text format. */
    std::string serialize() const;

    /** Parse the scene text format. */
    static Scene parse(const std::string &text);
};

/** Render statistics. */
struct RenderStats
{
    std::uint64_t primaryRays = 0;
    std::uint64_t shadowRays = 0;
    std::uint64_t reflectionRays = 0;
    std::uint64_t refractionRays = 0;
    double meanLuminance = 0.0;
};

/** Render the scene; returns width*height luminance values. */
std::vector<double> render(const Scene &scene,
                           runtime::ExecutionContext &ctx,
                           RenderStats *stats = nullptr);

} // namespace alberta::povray

#endif // ALBERTA_BENCHMARKS_POVRAY_TRACER_H
