/**
 * @file
 * The 511.povray_r mini-benchmark: ray-traced renders across the
 * three Alberta workload families (collection, lumpy, primitive).
 */
#ifndef ALBERTA_BENCHMARKS_POVRAY_BENCHMARK_H
#define ALBERTA_BENCHMARKS_POVRAY_BENCHMARK_H

#include "benchmarks/povray/tracer.h"
#include "runtime/benchmark.h"

namespace alberta::povray {

/** Real-world-ish scene: many simple primitives (collection). */
Scene makeCollectionScene(std::uint64_t seed, int objects);

/** One lumpy object over a checkered plane lit by two spotlights. */
Scene makeLumpyScene(std::uint64_t seed, int lumps);

/** Primitive-technique stress: reflection/refraction/aperture. */
Scene makePrimitiveScene(std::uint64_t seed, bool refract,
                         double aperture);

/** See file comment. */
class PovrayBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "511.povray_r"; }
    std::string area() const override { return "Ray tracing"; }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::povray

#endif // ALBERTA_BENCHMARKS_POVRAY_BENCHMARK_H
