#include "benchmarks/povray/benchmark.h"

#include "support/check.h"
#include "support/rng.h"

namespace alberta::povray {

Scene
makeCollectionScene(std::uint64_t seed, int objects)
{
    support::Rng rng(seed);
    Scene scene;
    scene.camera.position = {0, 2.5, -7};
    scene.camera.lookAt = {0, 0.8, 0};
    Shape ground;
    ground.kind = ShapeKind::Plane;
    ground.radius = 0.0;
    ground.material.shade = 0.7;
    ground.material.checker = false;
    scene.shapes.push_back(ground);

    for (int i = 0; i < objects; ++i) {
        Shape s;
        if (rng.chance(0.6)) {
            s.kind = ShapeKind::Sphere;
            s.radius = rng.real(0.2, 0.7);
            s.center = {rng.real(-4, 4), s.radius, rng.real(-3, 5)};
        } else {
            s.kind = ShapeKind::Box;
            const Vec3 lo{rng.real(-4, 4), 0.0, rng.real(-3, 5)};
            s.center = lo;
            s.extent = lo + Vec3{rng.real(0.3, 1.0),
                                 rng.real(0.3, 1.2),
                                 rng.real(0.3, 1.0)};
        }
        s.material.shade = rng.real(0.3, 0.95);
        s.material.reflectivity = rng.chance(0.25) ? 0.4 : 0.0;
        scene.shapes.push_back(s);
    }
    Light sun;
    sun.position = {6, 10, -4};
    sun.intensity = 1.2;
    scene.lights.push_back(sun);
    Light fill;
    fill.position = {-5, 6, -6};
    fill.intensity = 0.5;
    scene.lights.push_back(fill);
    return scene;
}

Scene
makeLumpyScene(std::uint64_t seed, int lumps)
{
    support::Rng rng(seed);
    Scene scene;
    scene.camera.position = {0, 2, -5};
    scene.camera.lookAt = {0, 1, 0};

    Shape plane;
    plane.kind = ShapeKind::Plane;
    plane.radius = 0.0;
    plane.material.shade = 0.9;
    plane.material.checker = true;
    scene.shapes.push_back(plane);

    // The lumpy object: overlapping spheres around a center.
    for (int i = 0; i < lumps; ++i) {
        Shape s;
        s.kind = ShapeKind::Sphere;
        s.radius = rng.real(0.4, 0.8);
        s.center = {rng.real(-0.8, 0.8), 1.0 + rng.real(-0.5, 0.5),
                    rng.real(-0.8, 0.8)};
        s.material.shade = 0.85;
        scene.shapes.push_back(s);
    }

    // Two spotlights aimed at the object.
    for (int i = 0; i < 2; ++i) {
        Light spot;
        spot.position = {i == 0 ? 4.0 : -4.0, 6.0, -3.0};
        spot.direction =
            (Vec3{0, 1, 0} - spot.position).normalized();
        spot.cosAngle = 0.85;
        spot.intensity = 1.4;
        scene.lights.push_back(spot);
    }
    return scene;
}

Scene
makePrimitiveScene(std::uint64_t seed, bool refract, double aperture)
{
    support::Rng rng(seed);
    Scene scene;
    scene.camera.position = {0, 1.5, -6};
    scene.camera.lookAt = {0, 1, 0};
    scene.camera.aperture = aperture;
    scene.camera.focalDistance = 6.0;
    scene.samples = aperture > 0 ? 4 : 1;

    Shape plane;
    plane.kind = ShapeKind::Plane;
    plane.radius = 0.0;
    plane.material.shade = 0.8;
    plane.material.checker = true;
    scene.shapes.push_back(plane);

    Shape mirror;
    mirror.kind = ShapeKind::Sphere;
    mirror.center = {-1.4, 1.0, 0.5};
    mirror.radius = 1.0;
    mirror.material.shade = 0.2;
    mirror.material.reflectivity = 0.85;
    scene.shapes.push_back(mirror);

    Shape glassOrMatte;
    glassOrMatte.kind = ShapeKind::Sphere;
    glassOrMatte.center = {1.4, 1.0, -0.5 + rng.real(-0.2, 0.2)};
    glassOrMatte.radius = 1.0;
    if (refract) {
        glassOrMatte.material.shade = 0.1;
        glassOrMatte.material.transparency = 0.9;
        glassOrMatte.material.ior = 1.5;
    } else {
        glassOrMatte.material.shade = 0.9;
    }
    scene.shapes.push_back(glassOrMatte);

    Light key;
    key.position = {3, 8, -5};
    key.intensity = 1.3;
    scene.lights.push_back(key);
    return scene;
}

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed,
             Scene scene, int width, int height)
{
    scene.width = width;
    scene.height = height;
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.files["scene.pov"] = scene.serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
PovrayBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;
    out.push_back(makeWorkload("refrate", 0x511F,
                               makeCollectionScene(0x511F, 40), 224,
                               168));
    out.push_back(makeWorkload("train", 0x5111,
                               makeCollectionScene(0x5111, 10), 64,
                               48));
    out.push_back(makeWorkload("test", 0x5112,
                               makeLumpyScene(0x5112, 2), 32, 24));

    // Seven Alberta workloads in the three families.
    out.push_back(makeWorkload("alberta.collection-1", 0x11A1,
                               makeCollectionScene(0x11A1, 20), 80,
                               60));
    out.push_back(makeWorkload("alberta.collection-2", 0x11A2,
                               makeCollectionScene(0x11A2, 40), 64,
                               48));
    out.push_back(makeWorkload("alberta.lumpy-1", 0x11A3,
                               makeLumpyScene(0x11A3, 6), 80, 60));
    out.push_back(makeWorkload("alberta.lumpy-2", 0x11A4,
                               makeLumpyScene(0x11A4, 12), 64, 48));
    out.push_back(
        makeWorkload("alberta.primitive-reflect", 0x11A5,
                     makePrimitiveScene(0x11A5, false, 0.0), 80, 60));
    out.push_back(
        makeWorkload("alberta.primitive-refract", 0x11A6,
                     makePrimitiveScene(0x11A6, true, 0.0), 80, 60));
    out.push_back(makeWorkload(
        "alberta.primitive-aperture", 0x11A7,
        makePrimitiveScene(0x11A7, true, 0.25), 56, 42));
    return out;
}

void
PovrayBenchmark::run(const runtime::Workload &workload,
                     runtime::ExecutionContext &context) const
{
    Scene scene;
    {
        auto scope = context.method("povray::parse_scene", 1800);
        scene = Scene::parse(workload.file("scene.pov"));
    }
    RenderStats stats;
    const auto image = render(scene, context, &stats);
    support::fatalIf(image.empty(), "povray: empty image");
    support::fatalIf(stats.meanLuminance <= 0.0,
                     "povray: black render on '", workload.name, "'");
    context.consume(stats.reflectionRays);
    context.consume(stats.refractionRays);
}

double
PovrayBenchmark::costHint(const runtime::Workload &workload) const
{
    // Scene complexity lives in the named scene definitions: refrate
    // renders the big scene, the collection scenes are mid-size, and
    // the lumpy/primitive studies are small single-object renders.
    if (workload.isRefrate())
        return 16.7e6;
    if (workload.name.rfind("alberta.collection", 0) == 0)
        return 1.3e6;
    return 0.4e6;
}

} // namespace alberta::povray
