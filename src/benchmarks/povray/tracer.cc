#include "benchmarks/povray/tracer.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "support/check.h"
#include "support/rng.h"
#include "support/text.h"

namespace alberta::povray {

double
Vec3::length() const
{
    return std::sqrt(dot(*this));
}

Vec3
Vec3::normalized() const
{
    const double len = length();
    support::panicIf(len < 1e-12, "povray: normalizing zero vector");
    return {x / len, y / len, z / len};
}

namespace {

struct Hit
{
    double t = 1e30;
    Vec3 point;
    Vec3 normal;
    const Shape *shape = nullptr;
};

bool
intersectSphere(const Shape &s, const Vec3 &origin, const Vec3 &dir,
                Hit &hit)
{
    const Vec3 oc = origin - s.center;
    const double b = oc.dot(dir);
    const double c = oc.dot(oc) - s.radius * s.radius;
    const double disc = b * b - c;
    if (disc < 0)
        return false;
    const double sq = std::sqrt(disc);
    double t = -b - sq;
    if (t < 1e-4)
        t = -b + sq;
    if (t < 1e-4 || t >= hit.t)
        return false;
    hit.t = t;
    hit.point = origin + dir * t;
    hit.normal = (hit.point - s.center).normalized();
    hit.shape = &s;
    return true;
}

bool
intersectPlane(const Shape &s, const Vec3 &origin, const Vec3 &dir,
               Hit &hit)
{
    if (std::abs(dir.y) < 1e-9)
        return false;
    const double t = (s.radius - origin.y) / dir.y;
    if (t < 1e-4 || t >= hit.t)
        return false;
    hit.t = t;
    hit.point = origin + dir * t;
    hit.normal = {0, dir.y > 0 ? -1.0 : 1.0, 0};
    hit.shape = &s;
    return true;
}

bool
intersectBox(const Shape &s, const Vec3 &origin, const Vec3 &dir,
             Hit &hit)
{
    double tmin = -1e30, tmax = 1e30;
    int axisMin = 0;
    const double o[3] = {origin.x, origin.y, origin.z};
    const double d[3] = {dir.x, dir.y, dir.z};
    const double lo[3] = {s.center.x, s.center.y, s.center.z};
    const double hi[3] = {s.extent.x, s.extent.y, s.extent.z};
    for (int a = 0; a < 3; ++a) {
        if (std::abs(d[a]) < 1e-12) {
            if (o[a] < lo[a] || o[a] > hi[a])
                return false;
            continue;
        }
        double t0 = (lo[a] - o[a]) / d[a];
        double t1 = (hi[a] - o[a]) / d[a];
        if (t0 > t1)
            std::swap(t0, t1);
        if (t0 > tmin) {
            tmin = t0;
            axisMin = a;
        }
        tmax = std::min(tmax, t1);
        if (tmin > tmax)
            return false;
    }
    const double t = tmin > 1e-4 ? tmin : tmax;
    if (t < 1e-4 || t >= hit.t)
        return false;
    hit.t = t;
    hit.point = origin + dir * t;
    Vec3 n{0, 0, 0};
    const double mid[3] = {(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2,
                           (lo[2] + hi[2]) / 2};
    const double p[3] = {hit.point.x, hit.point.y, hit.point.z};
    if (axisMin == 0)
        n.x = p[0] > mid[0] ? 1 : -1;
    else if (axisMin == 1)
        n.y = p[1] > mid[1] ? 1 : -1;
    else
        n.z = p[2] > mid[2] ? 1 : -1;
    hit.normal = n;
    hit.shape = &s;
    return true;
}

class Tracer
{
  public:
    Tracer(const Scene &scene, runtime::ExecutionContext &ctx,
           RenderStats &stats)
        : scene_(scene), ctx_(ctx), m_(ctx.machine()), stats_(stats),
          rng_(0x511AA)
    {
    }

    std::vector<double>
    renderImage()
    {
        const Camera &cam = scene_.camera;
        const Vec3 forward = (cam.lookAt - cam.position).normalized();
        const Vec3 right =
            forward.cross(Vec3{0, 1, 0}).normalized();
        const Vec3 up = right.cross(forward);
        const double tanFov =
            std::tan(cam.fov * std::numbers::pi / 360.0);
        const double aspect = static_cast<double>(scene_.width) /
                              scene_.height;

        std::vector<double> image(
            static_cast<std::size_t>(scene_.width) * scene_.height,
            0.0);
        for (int py = 0; py < scene_.height; ++py) {
            auto scope = ctx_.method("povray::trace_ray", 4800);
            for (int px = 0; px < scene_.width; ++px) {
                double sum = 0.0;
                for (int s = 0; s < scene_.samples; ++s) {
                    const double jx =
                        scene_.samples > 1 ? rng_.real() : 0.5;
                    const double jy =
                        scene_.samples > 1 ? rng_.real() : 0.5;
                    const double u =
                        (2.0 * (px + jx) / scene_.width - 1.0) *
                        tanFov * aspect;
                    const double v =
                        (1.0 - 2.0 * (py + jy) / scene_.height) *
                        tanFov;
                    Vec3 origin = cam.position;
                    Vec3 dir = (forward + right * u + up * v)
                                   .normalized();
                    if (cam.aperture > 0.0) {
                        // Depth of field: jitter the lens position,
                        // keep the focal point fixed.
                        auto lensScope = ctx_.method(
                            "povray::lens_sample", 1200);
                        const Vec3 focal =
                            origin + dir * cam.focalDistance;
                        const double a1 = rng_.real(-1.0, 1.0) *
                                          cam.aperture;
                        const double a2 = rng_.real(-1.0, 1.0) *
                                          cam.aperture;
                        origin = origin + right * a1 + up * a2;
                        dir = (focal - origin).normalized();
                        m_.ops(topdown::OpKind::FpMul, 12);
                    }
                    ++stats_.primaryRays;
                    sum += trace(origin, dir, scene_.maxDepth, 1.0);
                }
                image[py * static_cast<std::size_t>(scene_.width) +
                      px] = sum / scene_.samples;
                m_.store(0x1100000000ULL +
                         (py * static_cast<std::uint64_t>(
                                   scene_.width) +
                          px) *
                             8);
            }
        }
        double total = 0.0;
        for (const double v : image)
            total += v;
        stats_.meanLuminance = total / image.size();
        return image;
    }

  private:
    bool
    intersect(const Vec3 &origin, const Vec3 &dir, Hit &hit) const
    {
        std::uint64_t shapeIndex = 0;
        for (const Shape &s : scene_.shapes) {
            m_.load(0x1200000000ULL + (shapeIndex++) * 128);
            switch (s.kind) {
              case ShapeKind::Sphere:
                intersectSphere(s, origin, dir, hit);
                break;
              case ShapeKind::Plane:
                intersectPlane(s, origin, dir, hit);
                break;
              case ShapeKind::Box:
                intersectBox(s, origin, dir, hit);
                break;
            }
            m_.ops(topdown::OpKind::FpMul, 9);
        }
        return hit.shape != nullptr;
    }

    double
    shade(const Hit &hit, const Vec3 &dir, int depth)
    {
        const Material &mat = hit.shape->material;
        double base = mat.shade;
        if (mat.checker) {
            const int cx = static_cast<int>(
                std::floor(hit.point.x));
            const int cz = static_cast<int>(
                std::floor(hit.point.z));
            if (((cx + cz) & 1) != 0)
                base *= 0.2;
            m_.branch(1, ((cx + cz) & 1) != 0);
        }

        // Direct lighting with shadow rays.
        double light = 0.08; // ambient
        for (const Light &l : scene_.lights) {
            const Vec3 toLight = l.position - hit.point;
            const double dist = toLight.length();
            const Vec3 ldir = toLight * (1.0 / dist);
            const double ndotl = hit.normal.dot(ldir);
            m_.ops(topdown::OpKind::FpMul, 10);
            if (m_.branch(2, ndotl <= 0))
                continue;
            if (l.cosAngle > -1.0) {
                // Spotlight cone check.
                const double cosToPoint =
                    l.direction.dot(ldir * -1.0);
                if (m_.branch(3, cosToPoint < l.cosAngle))
                    continue;
            }
            ++stats_.shadowRays;
            auto shadowScope =
                ctx_.method("povray::shadow_test", 2100);
            Hit shadow;
            shadow.t = dist - 1e-4;
            bool blocked = false;
            for (const Shape &s : scene_.shapes) {
                Hit h;
                h.t = dist - 1e-4;
                const Vec3 so = hit.point + hit.normal * 1e-4;
                bool hitSomething = false;
                switch (s.kind) {
                  case ShapeKind::Sphere:
                    hitSomething = intersectSphere(s, so, ldir, h);
                    break;
                  case ShapeKind::Plane:
                    hitSomething = intersectPlane(s, so, ldir, h);
                    break;
                  case ShapeKind::Box:
                    hitSomething = intersectBox(s, so, ldir, h);
                    break;
                }
                if (hitSomething) {
                    blocked = true;
                    break;
                }
            }
            if (!m_.branch(4, blocked))
                light += l.intensity * ndotl /
                         (1.0 + 0.02 * dist * dist);
        }
        double color = base * std::min(light, 1.5);

        // Reflection.
        if (mat.reflectivity > 0 && depth > 0) {
            ++stats_.reflectionRays;
            auto reflectScope =
                ctx_.method("povray::reflect", 1900);
            const Vec3 refl =
                dir - hit.normal * (2.0 * dir.dot(hit.normal));
            m_.call();
            color = color * (1.0 - mat.reflectivity) +
                    mat.reflectivity *
                        trace(hit.point + hit.normal * 1e-4,
                              refl.normalized(), depth - 1, 1.0);
        }

        // Refraction.
        if (mat.transparency > 0 && depth > 0) {
            ++stats_.refractionRays;
            auto refractScope =
                ctx_.method("povray::refract", 2300);
            const bool entering = dir.dot(hit.normal) < 0;
            const double eta =
                entering ? 1.0 / mat.ior : mat.ior;
            const Vec3 n = entering ? hit.normal
                                    : hit.normal * -1.0;
            const double cosi = -dir.dot(n);
            const double k = 1.0 - eta * eta * (1.0 - cosi * cosi);
            m_.ops(topdown::OpKind::FpDiv, 2);
            if (m_.branch(5, k >= 0)) {
                const Vec3 refr =
                    (dir * eta +
                     n * (eta * cosi - std::sqrt(k)))
                        .normalized();
                m_.call();
                color = color * (1.0 - mat.transparency) +
                        mat.transparency *
                            trace(hit.point - n * 1e-4, refr,
                                  depth - 1, 1.0);
            }
        }
        return color;
    }

    double
    trace(const Vec3 &origin, const Vec3 &dir, int depth,
          double weight)
    {
        (void)weight;
        Hit hit;
        if (!intersect(origin, dir, hit)) {
            // Sky gradient.
            return 0.15 + 0.1 * std::max(0.0, dir.y);
        }
        return shade(hit, dir, depth);
    }

    const Scene &scene_;
    runtime::ExecutionContext &ctx_;
    topdown::Machine &m_;
    RenderStats &stats_;
    support::Rng rng_;
};

} // namespace

std::string
Scene::serialize() const
{
    std::ostringstream os;
    os.precision(12);
    os << "render " << width << ' ' << height << ' ' << maxDepth
       << ' ' << samples << '\n';
    os << "camera " << camera.position.x << ' ' << camera.position.y
       << ' ' << camera.position.z << ' ' << camera.lookAt.x << ' '
       << camera.lookAt.y << ' ' << camera.lookAt.z << ' '
       << camera.fov << ' ' << camera.aperture << ' '
       << camera.focalDistance << '\n';
    for (const Light &l : lights) {
        os << "light " << l.position.x << ' ' << l.position.y << ' '
           << l.position.z << ' ' << l.direction.x << ' '
           << l.direction.y << ' ' << l.direction.z << ' '
           << l.cosAngle << ' ' << l.intensity << '\n';
    }
    for (const Shape &s : shapes) {
        os << (s.kind == ShapeKind::Sphere  ? "sphere"
               : s.kind == ShapeKind::Plane ? "plane"
                                            : "box")
           << ' ' << s.center.x << ' ' << s.center.y << ' '
           << s.center.z << ' ' << s.extent.x << ' ' << s.extent.y
           << ' ' << s.extent.z << ' ' << s.radius << ' '
           << s.material.shade << ' ' << s.material.reflectivity
           << ' ' << s.material.transparency << ' ' << s.material.ior
           << ' ' << (s.material.checker ? 1 : 0) << '\n';
    }
    return os.str();
}

Scene
Scene::parse(const std::string &text)
{
    Scene scene;
    scene.lights.clear();
    scene.shapes.clear();
    bool sawRender = false, sawCamera = false;
    for (const auto &line : support::split(text, '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        const auto f = support::splitWhitespace(trimmed);
        const auto num = [&](std::size_t i) {
            support::fatalIf(i >= f.size(),
                             "scene: missing field in '",
                             std::string(trimmed), "'");
            return support::parseDouble(f[i]);
        };
        if (f[0] == "render") {
            scene.width = static_cast<int>(num(1));
            scene.height = static_cast<int>(num(2));
            scene.maxDepth = static_cast<int>(num(3));
            scene.samples = static_cast<int>(num(4));
            support::fatalIf(scene.width < 4 || scene.height < 4 ||
                                 scene.samples < 1,
                             "scene: bad render settings");
            sawRender = true;
        } else if (f[0] == "camera") {
            scene.camera.position = {num(1), num(2), num(3)};
            scene.camera.lookAt = {num(4), num(5), num(6)};
            scene.camera.fov = num(7);
            scene.camera.aperture = num(8);
            scene.camera.focalDistance = num(9);
            sawCamera = true;
        } else if (f[0] == "light") {
            Light l;
            l.position = {num(1), num(2), num(3)};
            l.direction = {num(4), num(5), num(6)};
            if (l.direction.length() > 1e-9)
                l.direction = l.direction.normalized();
            l.cosAngle = num(7);
            l.intensity = num(8);
            scene.lights.push_back(l);
        } else if (f[0] == "sphere" || f[0] == "plane" ||
                   f[0] == "box") {
            Shape s;
            s.kind = f[0] == "sphere"  ? ShapeKind::Sphere
                     : f[0] == "plane" ? ShapeKind::Plane
                                       : ShapeKind::Box;
            s.center = {num(1), num(2), num(3)};
            s.extent = {num(4), num(5), num(6)};
            s.radius = num(7);
            s.material.shade = num(8);
            s.material.reflectivity = num(9);
            s.material.transparency = num(10);
            s.material.ior = num(11);
            s.material.checker = num(12) != 0;
            scene.shapes.push_back(s);
        } else {
            support::fatal("scene: unknown directive '", f[0], "'");
        }
    }
    support::fatalIf(!sawRender || !sawCamera,
                     "scene: missing render/camera directives");
    support::fatalIf(scene.shapes.empty(), "scene: no objects");
    return scene;
}

std::vector<double>
render(const Scene &scene, runtime::ExecutionContext &ctx,
       RenderStats *stats)
{
    RenderStats local;
    Tracer tracer(scene, ctx, local);
    auto image = tracer.renderImage();
    if (stats)
        *stats = local;
    ctx.consume(local.meanLuminance);
    ctx.consume(local.primaryRays + local.shadowRays);
    return image;
}

} // namespace alberta::povray
