#include "benchmarks/blender/render.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::blender {

Mesh
makeMesh(MeshKind kind, int resolution, std::uint64_t seed)
{
    support::fatalIf(resolution < 2, "blender: resolution too small");
    Mesh mesh;
    const double pi = std::numbers::pi;

    switch (kind) {
      case MeshKind::Cube: {
        const double v = 0.5;
        mesh.vertices = {{-v, -v, -v}, {v, -v, -v}, {v, v, -v},
                         {-v, v, -v}, {-v, -v, v}, {v, -v, v},
                         {v, v, v},   {-v, v, v}};
        mesh.triangles = {{0, 2, 1}, {0, 3, 2}, {4, 5, 6}, {4, 6, 7},
                          {0, 1, 5}, {0, 5, 4}, {2, 3, 7}, {2, 7, 6},
                          {1, 2, 6}, {1, 6, 5}, {0, 4, 7}, {0, 7, 3}};
        break;
      }
      case MeshKind::Sphere: {
        // UV sphere: resolution stacks x 2*resolution sectors.
        const int stacks = resolution, sectors = 2 * resolution;
        for (int st = 0; st <= stacks; ++st) {
            const double phi = pi * st / stacks;
            for (int se = 0; se <= sectors; ++se) {
                const double theta = 2 * pi * se / sectors;
                mesh.vertices.push_back(
                    {0.5 * std::sin(phi) * std::cos(theta),
                     0.5 * std::cos(phi),
                     0.5 * std::sin(phi) * std::sin(theta)});
            }
        }
        const int cols = sectors + 1;
        for (int st = 0; st < stacks; ++st) {
            for (int se = 0; se < sectors; ++se) {
                const int a = st * cols + se;
                mesh.triangles.push_back({a, a + 1, a + cols});
                mesh.triangles.push_back(
                    {a + 1, a + cols + 1, a + cols});
            }
        }
        break;
      }
      case MeshKind::Torus: {
        const int major = 2 * resolution, minor = resolution;
        const double R = 0.4, r = 0.15;
        for (int i = 0; i <= major; ++i) {
            const double u = 2 * pi * i / major;
            for (int j = 0; j <= minor; ++j) {
                const double v = 2 * pi * j / minor;
                mesh.vertices.push_back(
                    {(R + r * std::cos(v)) * std::cos(u),
                     r * std::sin(v),
                     (R + r * std::cos(v)) * std::sin(u)});
            }
        }
        const int cols = minor + 1;
        for (int i = 0; i < major; ++i) {
            for (int j = 0; j < minor; ++j) {
                const int a = i * cols + j;
                mesh.triangles.push_back({a, a + cols, a + 1});
                mesh.triangles.push_back(
                    {a + 1, a + cols, a + cols + 1});
            }
        }
        break;
      }
      case MeshKind::Terrain: {
        support::Rng rng(seed ^ 0x526);
        const int n = resolution;
        for (int z = 0; z <= n; ++z) {
            for (int x = 0; x <= n; ++x) {
                const double h = 0.08 * rng.gaussian();
                mesh.vertices.push_back(
                    {static_cast<double>(x) / n - 0.5, h,
                     static_cast<double>(z) / n - 0.5});
            }
        }
        const int cols = n + 1;
        for (int z = 0; z < n; ++z) {
            for (int x = 0; x < n; ++x) {
                const int a = z * cols + x;
                mesh.triangles.push_back({a, a + cols, a + 1});
                mesh.triangles.push_back(
                    {a + 1, a + cols, a + cols + 1});
            }
        }
        break;
      }
    }
    return mesh;
}

std::string
BlendScene::serialize() const
{
    std::ostringstream os;
    os.precision(12);
    os << "blend " << width << ' ' << height << ' ' << startFrame
       << ' ' << frameCount << ' ' << (renderable ? 1 : 0) << '\n';
    os << "camera " << cameraStart[0] << ' ' << cameraStart[1] << ' '
       << cameraStart[2] << ' ' << cameraDrift[0] << ' '
       << cameraDrift[1] << ' ' << cameraDrift[2] << '\n';
    for (const SceneObject &o : objects) {
        os << "object " << static_cast<int>(o.kind) << ' '
           << o.resolution << ' ' << o.position[0] << ' '
           << o.position[1] << ' ' << o.position[2] << ' ' << o.scale
           << ' ' << o.spinPerFrame << ' ' << o.seed << '\n';
    }
    return os.str();
}

BlendScene
BlendScene::parse(const std::string &text)
{
    BlendScene scene;
    scene.objects.clear();
    bool sawHeader = false;
    for (const auto &line : support::split(text, '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty())
            continue;
        const auto f = support::splitWhitespace(trimmed);
        if (f[0] == "blend") {
            support::fatalIf(f.size() != 6, "blend: bad header");
            scene.width = static_cast<int>(support::parseInt(f[1]));
            scene.height = static_cast<int>(support::parseInt(f[2]));
            scene.startFrame =
                static_cast<int>(support::parseInt(f[3]));
            scene.frameCount =
                static_cast<int>(support::parseInt(f[4]));
            scene.renderable = support::parseInt(f[5]) != 0;
            sawHeader = true;
        } else if (f[0] == "camera") {
            support::fatalIf(f.size() != 7, "blend: bad camera");
            for (int i = 0; i < 3; ++i) {
                scene.cameraStart[i] =
                    support::parseDouble(f[1 + i]);
                scene.cameraDrift[i] =
                    support::parseDouble(f[4 + i]);
            }
        } else if (f[0] == "object") {
            support::fatalIf(f.size() != 9, "blend: bad object");
            SceneObject o;
            const int kind =
                static_cast<int>(support::parseInt(f[1]));
            support::fatalIf(kind < 0 || kind > 3,
                             "blend: unsupported object kind ", kind);
            o.kind = static_cast<MeshKind>(kind);
            o.resolution =
                static_cast<int>(support::parseInt(f[2]));
            for (int i = 0; i < 3; ++i)
                o.position[i] = support::parseDouble(f[3 + i]);
            o.scale = support::parseDouble(f[6]);
            o.spinPerFrame = support::parseDouble(f[7]);
            o.seed = static_cast<std::uint64_t>(
                support::parseInt(f[8]));
            scene.objects.push_back(o);
        } else {
            support::fatal("blend: unknown directive '", f[0], "'");
        }
    }
    support::fatalIf(!sawHeader, "blend: missing header");
    return scene;
}

bool
validateScene(const BlendScene &scene)
{
    if (!scene.renderable)
        return false; // a resource file, not meant to be rendered
    if (scene.objects.empty() || scene.frameCount < 1)
        return false;
    for (const SceneObject &o : scene.objects) {
        if (o.resolution < 2 || o.resolution > 128 || o.scale <= 0)
            return false;
    }
    return true;
}

std::vector<double>
renderAnimation(const BlendScene &scene, runtime::ExecutionContext &ctx,
                RenderStats *statsOut)
{
    support::fatalIf(!validateScene(scene),
                     "blender: scene fails validation");
    auto &m = ctx.machine();
    RenderStats stats;

    // Pre-build meshes once (like Blender's depsgraph).
    std::vector<Mesh> meshes;
    {
        auto scope = ctx.method("blender::build_meshes", 2600);
        for (const SceneObject &o : scene.objects) {
            meshes.push_back(makeMesh(o.kind, o.resolution, o.seed));
            m.ops(topdown::OpKind::FpMul,
                  meshes.back().vertices.size() * 4);
        }
    }

    const double lightDir[3] = {0.4, 0.8, -0.45};
    std::vector<double> frameLuminance;
    std::vector<double> zbuffer;
    std::vector<double> image;

    for (int f = 0; f < scene.frameCount; ++f) {
        const int frame = scene.startFrame + f;
        image.assign(
            static_cast<std::size_t>(scene.width) * scene.height,
            0.05);
        zbuffer.assign(image.size(), 1e30);
        const double camX =
            scene.cameraStart[0] + frame * scene.cameraDrift[0];
        const double camY =
            scene.cameraStart[1] + frame * scene.cameraDrift[1];
        const double camZ =
            scene.cameraStart[2] + frame * scene.cameraDrift[2];

        auto scope = ctx.method("blender::rasterize", 5200);
        for (std::size_t obj = 0; obj < scene.objects.size(); ++obj) {
            const SceneObject &o = scene.objects[obj];
            const Mesh &mesh = meshes[obj];
            // Per-kind rasterization paths, like Blender's per-type
            // draw routines; scene composition shifts coverage.
            static const char *kKindMethod[4] = {
                "blender::raster_cube", "blender::raster_sphere",
                "blender::raster_torus", "blender::raster_terrain"};
            auto kindScope = ctx.method(
                kKindMethod[static_cast<int>(o.kind)], 2800);
            const double angle = o.spinPerFrame * frame;
            const double ca = std::cos(angle), sa = std::sin(angle);

            for (const auto &tri : mesh.triangles) {
                // Transform the three vertices to camera space.
                double sx[3], sy[3], sz[3];
                bool behind = false;
                double world[3][3] = {};
                for (int k = 0; k < 3; ++k) {
                    const auto &v = mesh.vertices[tri[k]];
                    // Y-rotation, scale, translate.
                    const double rx = ca * v[0] + sa * v[2];
                    const double rz = -sa * v[0] + ca * v[2];
                    world[k][0] = o.scale * rx + o.position[0] - camX;
                    world[k][1] =
                        o.scale * v[1] + o.position[1] - camY;
                    world[k][2] = o.scale * rz + o.position[2] - camZ;
                    if (world[k][2] < 0.1) {
                        behind = true;
                        break;
                    }
                    // Perspective projection.
                    sx[k] = scene.width / 2.0 +
                            scene.width * 0.8 * world[k][0] /
                                world[k][2];
                    sy[k] = scene.height / 2.0 -
                            scene.width * 0.8 * world[k][1] /
                                world[k][2];
                    sz[k] = world[k][2];
                }
                m.ops(topdown::OpKind::FpMul, 30);
                if (m.branch(1, behind)) {
                    ++stats.trianglesCulled;
                    continue;
                }

                // Backface culling via the world-space normal.
                const double e1[3] = {world[1][0] - world[0][0],
                                      world[1][1] - world[0][1],
                                      world[1][2] - world[0][2]};
                const double e2[3] = {world[2][0] - world[0][0],
                                      world[2][1] - world[0][1],
                                      world[2][2] - world[0][2]};
                double n[3] = {e1[1] * e2[2] - e1[2] * e2[1],
                               e1[2] * e2[0] - e1[0] * e2[2],
                               e1[0] * e2[1] - e1[1] * e2[0]};
                const double facing = n[0] * world[0][0] +
                                      n[1] * world[0][1] +
                                      n[2] * world[0][2];
                if (m.branch(2, facing >= 0)) {
                    ++stats.trianglesCulled;
                    continue;
                }
                ++stats.trianglesDrawn;

                const double nLen =
                    std::sqrt(n[0] * n[0] + n[1] * n[1] +
                              n[2] * n[2]);
                double shade = 0.15;
                if (nLen > 1e-12) {
                    const double ndotl =
                        -(n[0] * lightDir[0] + n[1] * lightDir[1] +
                          n[2] * lightDir[2]) /
                        nLen;
                    shade = 0.15 + 0.85 * std::max(0.0, ndotl);
                }

                // Bounding-box rasterization with barycentric tests.
                const int x0 = std::max(
                    0, static_cast<int>(std::floor(
                           std::min({sx[0], sx[1], sx[2]}))));
                const int x1 = std::min(
                    scene.width - 1,
                    static_cast<int>(std::ceil(
                        std::max({sx[0], sx[1], sx[2]}))));
                const int y0 = std::max(
                    0, static_cast<int>(std::floor(
                           std::min({sy[0], sy[1], sy[2]}))));
                const int y1 = std::min(
                    scene.height - 1,
                    static_cast<int>(std::ceil(
                        std::max({sy[0], sy[1], sy[2]}))));
                const double denom =
                    (sy[1] - sy[2]) * (sx[0] - sx[2]) +
                    (sx[2] - sx[1]) * (sy[0] - sy[2]);
                if (std::abs(denom) < 1e-12)
                    continue;
                for (int py = y0; py <= y1; ++py) {
                    for (int px = x0; px <= x1; ++px) {
                        const double w0 =
                            ((sy[1] - sy[2]) * (px - sx[2]) +
                             (sx[2] - sx[1]) * (py - sy[2])) /
                            denom;
                        const double w1 =
                            ((sy[2] - sy[0]) * (px - sx[2]) +
                             (sx[0] - sx[2]) * (py - sy[2])) /
                            denom;
                        const double w2 = 1.0 - w0 - w1;
                        if (m.branch(3, w0 < 0 || w1 < 0 || w2 < 0))
                            continue;
                        const double depth = w0 * sz[0] +
                                             w1 * sz[1] +
                                             w2 * sz[2];
                        const std::size_t idx =
                            py * static_cast<std::size_t>(
                                     scene.width) +
                            px;
                        m.load(0x1300000000ULL + idx * 8);
                        if (m.branch(4, depth < zbuffer[idx])) {
                            zbuffer[idx] = depth;
                            image[idx] = shade;
                            ++stats.pixelsShaded;
                            m.store(0x1300000000ULL + idx * 8);
                        }
                    }
                }
            }
        }
        double total = 0.0;
        for (const double v : image)
            total += v;
        frameLuminance.push_back(total);
        ctx.consume(total);
    }

    double lumSum = 0.0;
    for (const double v : frameLuminance)
        lumSum += v;
    stats.meanLuminance =
        lumSum / (frameLuminance.size() *
                  static_cast<double>(image.size()));
    if (statsOut)
        *statsOut = stats;
    ctx.consume(stats.trianglesDrawn);
    return frameLuminance;
}

} // namespace alberta::blender
