#include "benchmarks/blender/benchmark.h"

#include <algorithm>

#include "support/check.h"

namespace alberta::blender {

std::vector<BlendScene>
makeScenePool(int count, std::uint64_t seed)
{
    support::Rng rng(seed);
    std::vector<BlendScene> pool;
    for (int i = 0; i < count; ++i) {
        BlendScene scene;
        scene.renderable = !rng.chance(0.25); // some resource files
        const int objects = 1 + static_cast<int>(rng.below(4));
        for (int o = 0; o < objects; ++o) {
            SceneObject obj;
            obj.kind = static_cast<MeshKind>(rng.below(4));
            obj.resolution = 4 + static_cast<int>(rng.below(10));
            obj.position = {rng.real(-1.5, 1.5), rng.real(-0.5, 1.0),
                            rng.real(-0.5, 2.0)};
            obj.scale = rng.real(0.5, 1.6);
            obj.spinPerFrame = rng.real(-0.3, 0.3);
            obj.seed = rng() >> 1; // keep within signed-parse range
            scene.objects.push_back(obj);
        }
        scene.cameraDrift = {rng.real(-0.05, 0.05), 0.0,
                             rng.real(-0.02, 0.02)};
        scene.frameCount = 2 + static_cast<int>(rng.below(5));
        pool.push_back(scene);
    }
    return pool;
}

BlendScene
pickRenderableScene(const std::vector<BlendScene> &pool,
                    std::uint64_t seed)
{
    support::fatalIf(pool.empty(), "blender: empty scene pool");
    support::Rng rng(seed);
    const std::size_t start = rng.below(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        const BlendScene &candidate =
            pool[(start + i) % pool.size()];
        if (validateScene(candidate))
            return candidate;
    }
    support::fatal("blender: no renderable scene in the pool");
}

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed,
             BlendScene scene, int width, int height, int startFrame,
             int frameCount)
{
    scene.width = width;
    scene.height = height;
    scene.startFrame = startFrame;
    scene.frameCount = frameCount;
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.params.set("start_frame", static_cast<long long>(startFrame));
    w.params.set("frames", static_cast<long long>(frameCount));
    w.files["scene.blend"] = scene.serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
BlenderBenchmark::workloads() const
{
    const auto pool = makeScenePool(40, 0x526B00);
    std::vector<runtime::Workload> out;
    BlendScene refScene = pickRenderableScene(pool, 0x526F);
    for (auto &obj : refScene.objects)
        obj.resolution = std::min(64, obj.resolution * 4);
    out.push_back(makeWorkload("refrate", 0x526F, refScene, 192, 144,
                               0, 12));
    out.push_back(makeWorkload("train", 0x5261,
                               pickRenderableScene(pool, 0x5261), 64,
                               48, 0, 3));
    out.push_back(makeWorkload("test", 0x5262,
                               pickRenderableScene(pool, 0x5262), 32,
                               24, 0, 1));

    // Thirteen Alberta workloads: randomly selected scenes with
    // varying start frames, frame counts, and resolutions (the
    // maximum-runtime-memory proxy).
    for (int i = 0; i < 13; ++i) {
        const int width = 48 + (i % 4) * 16;
        const int height = width * 3 / 4;
        const int start = (i % 5) * 7;
        const int frames = 2 + (i % 3) * 2;
        out.push_back(makeWorkload(
            "alberta.scene-" + std::to_string(i + 1), 0x5260A0 + i,
            pickRenderableScene(pool, 0x5260A0 + i), width, height,
            start, frames));
    }
    return out;
}

void
BlenderBenchmark::run(const runtime::Workload &workload,
                      runtime::ExecutionContext &context) const
{
    BlendScene scene;
    {
        auto scope = context.method("blender::parse_blend", 1600);
        scene = BlendScene::parse(workload.file("scene.blend"));
    }
    RenderStats stats;
    const auto frames = renderAnimation(scene, context, &stats);
    support::fatalIf(frames.empty(), "blender: no frames rendered");
    support::fatalIf(stats.trianglesDrawn == 0,
                     "blender: nothing visible in '", workload.name,
                     "'");
    context.consume(stats.pixelsShaded);
}

double
BlenderBenchmark::costHint(const runtime::Workload &workload) const
{
    // Refrate renders the dense scene; the Alberta scenes sample a
    // much lighter animation whose per-frame cost varies with scene
    // content, so frames is the only usable signal.
    if (workload.isRefrate())
        return 2.3e6;
    return 15e3 *
           static_cast<double>(workload.params.getInt("frames", 0));
}

} // namespace alberta::blender
