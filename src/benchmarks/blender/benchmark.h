/**
 * @file
 * The 526.blender_r mini-benchmark: render frame ranges from
 * .blend-like scene files, with the Alberta checker and
 * random-selection scripts.
 */
#ifndef ALBERTA_BENCHMARKS_BLENDER_BENCHMARK_H
#define ALBERTA_BENCHMARKS_BLENDER_BENCHMARK_H

#include "benchmarks/blender/render.h"
#include "runtime/benchmark.h"

namespace alberta::blender {

/**
 * Generate a pool of candidate scene files (some renderable, some
 * resource-only), the stand-in for the Crazy Glue / Elephants Dream
 * .blend collections.
 */
std::vector<BlendScene> makeScenePool(int count, std::uint64_t seed);

/**
 * The Alberta random-selection script: pick the first renderable
 * scene from the pool, scanning from a seeded random offset.
 */
BlendScene pickRenderableScene(const std::vector<BlendScene> &pool,
                               std::uint64_t seed);

/** See file comment. */
class BlenderBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "526.blender_r"; }
    std::string area() const override
    {
        return "3D rendering and animation";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::blender

#endif // ALBERTA_BENCHMARKS_BLENDER_BENCHMARK_H
