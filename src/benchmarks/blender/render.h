/**
 * @file
 * 3D mesh renderer for the 526.blender_r mini-benchmark: procedural
 * meshes, keyframed object/camera animation, perspective projection,
 * and a z-buffered scanline rasterizer with flat shading.
 */
#ifndef ALBERTA_BENCHMARKS_BLENDER_RENDER_H
#define ALBERTA_BENCHMARKS_BLENDER_RENDER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"
#include "support/rng.h"

namespace alberta::blender {

/** A triangle mesh. */
struct Mesh
{
    std::vector<std::array<double, 3>> vertices;
    std::vector<std::array<int, 3>> triangles;
};

/** Procedural mesh kinds. */
enum class MeshKind
{
    Cube,
    Sphere,
    Torus,
    Terrain,
};

/** Build a procedural mesh; @p resolution controls triangle count. */
Mesh makeMesh(MeshKind kind, int resolution, std::uint64_t seed = 0);

/** One animated object in a scene. */
struct SceneObject
{
    MeshKind kind = MeshKind::Cube;
    int resolution = 8;
    std::array<double, 3> position = {0, 0, 0};
    double scale = 1.0;
    double spinPerFrame = 0.1; //!< radians of Y rotation per frame
    std::uint64_t seed = 0;    //!< terrain noise seed
};

/** A .blend-like scene description. */
struct BlendScene
{
    std::vector<SceneObject> objects;
    std::array<double, 3> cameraStart = {0, 1.5, -6};
    std::array<double, 3> cameraDrift = {0, 0, 0}; //!< per frame
    int width = 64;
    int height = 48;
    int startFrame = 0;
    int frameCount = 4;
    bool renderable = true; //!< resource-only files are not

    std::string serialize() const;
    static BlendScene parse(const std::string &text);
};

/**
 * The Alberta checker script: true when the scene uses only supported
 * features and is meant to be rendered (not a resource file).
 */
bool validateScene(const BlendScene &scene);

/** Render statistics. */
struct RenderStats
{
    std::uint64_t trianglesDrawn = 0;
    std::uint64_t trianglesCulled = 0;
    std::uint64_t pixelsShaded = 0;
    double meanLuminance = 0.0;
};

/** Render the scene's frame range; returns per-frame luminance sums. */
std::vector<double> renderAnimation(const BlendScene &scene,
                                    runtime::ExecutionContext &ctx,
                                    RenderStats *stats = nullptr);

} // namespace alberta::blender

#endif // ALBERTA_BENCHMARKS_BLENDER_RENDER_H
