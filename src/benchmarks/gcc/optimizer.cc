#include "benchmarks/gcc/optimizer.h"

#include "support/check.h"

namespace alberta::gcc {

std::int64_t
evalOp(Op op, std::int64_t lhs, std::int64_t rhs)
{
    switch (op) {
      case Op::Add: return lhs + rhs;
      case Op::Sub: return lhs - rhs;
      case Op::Mul: return lhs * rhs;
      case Op::Div:
        support::fatalIf(rhs == 0, "eval: division by zero");
        return lhs / rhs;
      case Op::Mod:
        support::fatalIf(rhs == 0, "eval: modulo by zero");
        return lhs % rhs;
      case Op::And: return lhs & rhs;
      case Op::Or: return lhs | rhs;
      case Op::Xor: return lhs ^ rhs;
      case Op::Shl: return lhs << (rhs & 63);
      case Op::Shr: return lhs >> (rhs & 63);
      case Op::Lt: return lhs < rhs;
      case Op::Gt: return lhs > rhs;
      case Op::Le: return lhs <= rhs;
      case Op::Ge: return lhs >= rhs;
      case Op::Eq: return lhs == rhs;
      case Op::Ne: return lhs != rhs;
      case Op::LogAnd: return (lhs != 0) && (rhs != 0);
      case Op::LogOr: return (lhs != 0) || (rhs != 0);
      case Op::Neg: return -lhs;
      case Op::Not: return lhs == 0;
    }
    support::panic("eval: unknown operator");
}

namespace {

class Optimizer
{
  public:
    Optimizer(runtime::ExecutionContext &ctx)
        : ctx_(ctx), m_(ctx.machine())
    {
    }

    OptStats stats;

    void
    run(Program &program)
    {
        for (Function &f : program.functions)
            optimizeStmt(f.body);
    }

  private:
    bool
    isNumber(const ExprPtr &e, std::int64_t value) const
    {
        return e && e->kind == Expr::Kind::Number &&
               e->number == value;
    }

    void
    optimizeExpr(ExprPtr &e)
    {
        if (!e)
            return;
        m_.load(0x720000000ULL + (visited_++ % (1 << 19)) * 8);
        optimizeExpr(e->lhs);
        optimizeExpr(e->rhs);
        for (auto &arg : e->args)
            optimizeExpr(arg);

        if (e->kind == Expr::Kind::Binary) {
            const bool bothConst =
                e->lhs->kind == Expr::Kind::Number &&
                e->rhs->kind == Expr::Kind::Number;
            if (m_.branch(1, bothConst)) {
                // Fold; division by zero stays for runtime diagnosis.
                if ((e->op == Op::Div || e->op == Op::Mod) &&
                    e->rhs->number == 0)
                    return;
                const std::int64_t value =
                    evalOp(e->op, e->lhs->number, e->rhs->number);
                e = Expr::makeNumber(value);
                ++stats.foldedExprs;
                m_.ops(topdown::OpKind::IntAlu, 3);
                return;
            }
            // Algebraic identities: x+0, x*1, x*0, x-0, x/1.
            if (m_.branch(2, e->op == Op::Add &&
                                 (isNumber(e->rhs, 0) ||
                                  isNumber(e->lhs, 0)))) {
                e = isNumber(e->rhs, 0) ? std::move(e->lhs)
                                        : std::move(e->rhs);
                ++stats.simplified;
                return;
            }
            if (m_.branch(3, e->op == Op::Mul &&
                                 (isNumber(e->rhs, 1) ||
                                  isNumber(e->lhs, 1)))) {
                e = isNumber(e->rhs, 1) ? std::move(e->lhs)
                                        : std::move(e->rhs);
                ++stats.simplified;
                return;
            }
            if (m_.branch(4, (e->op == Op::Sub || e->op == Op::Shl ||
                              e->op == Op::Shr) &&
                                 isNumber(e->rhs, 0))) {
                e = std::move(e->lhs);
                ++stats.simplified;
                return;
            }
            if (m_.branch(5, e->op == Op::Div && isNumber(e->rhs, 1))) {
                e = std::move(e->lhs);
                ++stats.simplified;
                return;
            }
        } else if (e->kind == Expr::Kind::Unary &&
                   e->lhs->kind == Expr::Kind::Number) {
            e = Expr::makeNumber(evalOp(e->op, e->lhs->number, 0));
            ++stats.foldedExprs;
        }
    }

    void
    optimizeStmt(StmtPtr &s)
    {
        if (!s)
            return;
        for (auto &child : s->body)
            optimizeStmt(child);
        optimizeExpr(s->cond);
        optimizeStmt(s->thenBranch);
        optimizeStmt(s->elseBranch);
        optimizeStmt(s->loopBody);
        optimizeExpr(s->init);
        optimizeExpr(s->step);
        optimizeExpr(s->expr);

        if (s->kind == Stmt::Kind::If && s->cond &&
            s->cond->kind == Expr::Kind::Number) {
            // Dead-branch elimination on constant conditions.
            ++stats.deadBranches;
            if (s->cond->number != 0) {
                s = std::move(s->thenBranch);
            } else if (s->elseBranch) {
                s = std::move(s->elseBranch);
            } else {
                s = Stmt::makeBlock({});
            }
        } else if (s->kind == Stmt::Kind::While && s->cond &&
                   s->cond->kind == Expr::Kind::Number &&
                   s->cond->number == 0) {
            ++stats.deadBranches;
            s = Stmt::makeBlock({});
        }
    }

    runtime::ExecutionContext &ctx_;
    topdown::Machine &m_;
    std::uint64_t visited_ = 0;
};

} // namespace

OptStats
optimize(Program &program, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("gcc::optimize", 6400);
    Optimizer optimizer(ctx);
    optimizer.run(program);
    ctx.consume(optimizer.stats.foldedExprs);
    ctx.consume(optimizer.stats.deadBranches);
    return optimizer.stats;
}

} // namespace alberta::gcc
