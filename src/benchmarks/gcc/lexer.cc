#include "benchmarks/gcc/lexer.h"

#include <cctype>
#include <unordered_map>

#include "support/check.h"

namespace alberta::gcc {

std::vector<Token>
tokenize(const std::string &source, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("gcc::lex", 6000);
    auto &m = ctx.machine();

    static const std::unordered_map<std::string, TokenKind> keywords = {
        {"int", TokenKind::KwInt},       {"void", TokenKind::KwVoid},
        {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
        {"while", TokenKind::KwWhile},   {"for", TokenKind::KwFor},
        {"return", TokenKind::KwReturn}, {"static", TokenKind::KwStatic},
    };

    std::vector<Token> tokens;
    std::size_t i = 0;
    int line = 1;
    const auto push = [&](TokenKind kind, std::string text) {
        tokens.push_back({kind, std::move(text), 0, line});
    };

    while (i < source.size()) {
        const char ch = source[i];
        m.load(0x700000000ULL + i);
        if (m.branch(1, std::isspace(static_cast<unsigned char>(ch)))) {
            if (ch == '\n')
                ++line;
            ++i;
            continue;
        }
        // Comments.
        if (ch == '/' && i + 1 < source.size()) {
            if (source[i + 1] == '/') {
                while (i < source.size() && source[i] != '\n')
                    ++i;
                continue;
            }
            if (source[i + 1] == '*') {
                const std::size_t close = source.find("*/", i + 2);
                support::fatalIf(close == std::string::npos,
                                 "lex: unterminated comment at line ",
                                 line);
                for (std::size_t j = i; j < close; ++j)
                    line += source[j] == '\n';
                i = close + 2;
                continue;
            }
        }
        if (m.branch(2,
                     std::isalpha(static_cast<unsigned char>(ch)) ||
                         ch == '_')) {
            std::string ident;
            while (i < source.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(source[i])) ||
                    source[i] == '_'))
                ident += source[i++];
            const auto it = keywords.find(ident);
            m.ops(topdown::OpKind::IntAlu, 4 + ident.size() / 2);
            if (it != keywords.end())
                push(it->second, ident);
            else
                push(TokenKind::Identifier, ident);
            continue;
        }
        if (m.branch(3, std::isdigit(static_cast<unsigned char>(ch)))) {
            std::int64_t value = 0;
            std::string text;
            while (i < source.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(source[i]))) {
                value = value * 10 + (source[i] - '0');
                text += source[i++];
            }
            tokens.push_back({TokenKind::Number, text, value, line});
            m.ops(topdown::OpKind::IntMul, text.size());
            continue;
        }

        // Operators and punctuation.
        const auto two = source.substr(i, 2);
        TokenKind kind;
        std::size_t len = 2;
        if (two == "<<") kind = TokenKind::Shl;
        else if (two == ">>") kind = TokenKind::Shr;
        else if (two == "&&") kind = TokenKind::AmpAmp;
        else if (two == "||") kind = TokenKind::PipePipe;
        else if (two == "<=") kind = TokenKind::Le;
        else if (two == ">=") kind = TokenKind::Ge;
        else if (two == "==") kind = TokenKind::EqEq;
        else if (two == "!=") kind = TokenKind::NotEq;
        else {
            len = 1;
            switch (ch) {
              case '(': kind = TokenKind::LParen; break;
              case ')': kind = TokenKind::RParen; break;
              case '{': kind = TokenKind::LBrace; break;
              case '}': kind = TokenKind::RBrace; break;
              case ';': kind = TokenKind::Semicolon; break;
              case ',': kind = TokenKind::Comma; break;
              case '=': kind = TokenKind::Assign; break;
              case '+': kind = TokenKind::Plus; break;
              case '-': kind = TokenKind::Minus; break;
              case '*': kind = TokenKind::Star; break;
              case '/': kind = TokenKind::Slash; break;
              case '%': kind = TokenKind::Percent; break;
              case '&': kind = TokenKind::Amp; break;
              case '|': kind = TokenKind::Pipe; break;
              case '^': kind = TokenKind::Caret; break;
              case '!': kind = TokenKind::Bang; break;
              case '<': kind = TokenKind::Lt; break;
              case '>': kind = TokenKind::Gt; break;
              default:
                support::fatal("lex: unexpected character '", ch,
                               "' at line ", line);
            }
        }
        push(kind, source.substr(i, len));
        i += len;
    }
    push(TokenKind::End, "");
    ctx.consume(static_cast<std::uint64_t>(tokens.size()));
    return tokens;
}

} // namespace alberta::gcc
