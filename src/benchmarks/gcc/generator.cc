#include "benchmarks/gcc/generator.h"

#include <sstream>
#include <unordered_map>

#include "support/check.h"
#include "support/rng.h"

namespace alberta::gcc {

namespace {

/**
 * Emits random mini-C text directly; expressions only reference names
 * in scope and divisions are always by nonzero constants, so generated
 * programs always compile and run. Every function carries an estimated
 * dynamic cost, and call sites only target functions cheap enough to
 * keep total execution bounded (no exponential call-in-loop blowup).
 */
class ProgramWriter
{
  public:
    /** Callable-cost ceiling: keeps whole-program work ~millions. */
    static constexpr std::uint64_t kMaxCalleeCost = 30'000;
    static constexpr std::uint64_t kMaxFunctionCost = 120'000;

    ProgramWriter(const ProgramConfig &config, support::Rng rng,
                  std::string symbolPrefix)
        : config_(config), rng_(rng), prefix_(std::move(symbolPrefix))
    {
    }

    std::vector<std::string>
    emitHelpers(std::ostream &os, int count, bool asStatic)
    {
        std::vector<std::string> names;
        for (int i = 0; i < count; ++i) {
            const std::string name =
                prefix_ + "fn" + std::to_string(i);
            emitFunction(os, name, asStatic, names);
            names.push_back(name);
        }
        return names;
    }

    void
    emitMain(std::ostream &os,
             const std::vector<std::string> &callables)
    {
        os << "int main(void)\n{\n  int acc = " << rng_.below(100)
           << ";\n";
        for (const std::string &name : callables) {
            os << "  acc = acc + " << name << "("
               << rng_.below(50) << ", " << (1 + rng_.below(30))
               << ");\n";
        }
        os << "  return acc & 1048575;\n}\n";
    }

    std::vector<std::string>
    emitGlobals(std::ostream &os, int count, bool asStatic)
    {
        std::vector<std::string> names;
        for (int i = 0; i < count; ++i) {
            const std::string name =
                prefix_ + "g" + std::to_string(i);
            os << (asStatic ? "static " : "") << "int " << name
               << " = " << rng_.below(1000) << ";\n";
            names.push_back(name);
        }
        globals_ = names;
        return names;
    }

    /** Estimated dynamic cost of a generated function. */
    std::uint64_t
    costOf(const std::string &name) const
    {
        const auto it = costs_.find(name);
        return it == costs_.end() ? kMaxCalleeCost : it->second;
    }

  private:
    std::string
    scopedVar()
    {
        const std::size_t total = vars_.size() + globals_.size();
        const std::size_t pick = rng_.below(total);
        return pick < vars_.size()
                   ? vars_[pick]
                   : globals_[pick - vars_.size()];
    }

    /** An assignable variable: never a live loop counter (assigning
     * one could turn a bounded loop unbounded). */
    std::string
    writableVar()
    {
        const std::size_t safe = vars_.size() - loopVars_;
        const std::size_t total = safe + globals_.size();
        const std::size_t pick = rng_.below(total);
        return pick < safe ? vars_[pick] : globals_[pick - safe];
    }

    /** Random expression; adds its estimated cost to @p cost. */
    std::string
    expr(int depth, std::uint64_t &cost)
    {
        cost += 2;
        if (depth <= 0 || rng_.chance(0.3)) {
            if (rng_.chance(0.45))
                return std::to_string(rng_.below(1000));
            if (!callables_.empty() && rng_.chance(callBias_)) {
                const std::string &callee =
                    callables_[rng_.below(callables_.size())];
                cost += costOf(callee);
                return callee + "(" + expr(0, cost) + ", " +
                       expr(0, cost) + ")";
            }
            return scopedVar();
        }
        static const char *ops[] = {"+", "-", "*", "&", "|", "^",
                                    "<<", ">>"};
        const std::string op = ops[rng_.below(8)];
        if (rng_.chance(0.12)) {
            return "(" + expr(depth - 1, cost) + " / " +
                   std::to_string(1 + rng_.below(97)) + ")";
        }
        std::string lhs = expr(depth - 1, cost);
        std::string rhs = (op == "<<" || op == ">>")
                              ? std::to_string(rng_.below(12))
                              : expr(depth - 1, cost);
        return "(" + lhs + " " + op + " " + rhs + ")";
    }

    std::string
    condition(std::uint64_t &cost)
    {
        static const char *rel[] = {"<", ">", "<=", ">=", "==", "!="};
        return "(" + expr(1, cost) + " " + rel[rng_.below(6)] + " " +
               std::to_string(rng_.below(500)) + ")";
    }

    /** Emit one statement; returns its estimated dynamic cost. */
    std::uint64_t
    statement(std::ostream &os, int indent, int depth,
              std::uint64_t budget)
    {
        const std::string pad(indent * 2, ' ');
        double loopP = 0.22, branchP = 0.28;
        switch (config_.style) {
          case ProgramStyle::LoopHeavy: loopP = 0.45; break;
          case ProgramStyle::BranchHeavy: branchP = 0.55; break;
          case ProgramStyle::Arithmetic: loopP = 0.10;
                                         branchP = 0.10; break;
          default: break;
        }

        const double roll = rng_.real();
        if (depth > 0 && budget > 500 && roll < loopP) {
            const std::string iv =
                "i" + std::to_string(loopVars_);
            const int trip = 2 + static_cast<int>(rng_.below(
                                     config_.maxLoopTrip));
            os << pad << "int " << iv << " = 0;\n";
            os << pad << "for (" << iv << " = 0; " << iv << " < "
               << trip << "; " << iv << " = " << iv << " + 1)\n";
            os << pad << "{\n";
            vars_.push_back(iv);
            ++loopVars_;
            std::uint64_t inner =
                statement(os, indent + 1, depth - 1, budget / trip);
            if (rng_.chance(0.5))
                inner += statement(os, indent + 1, depth - 1,
                                   budget / trip);
            vars_.pop_back();
            --loopVars_;
            os << pad << "}\n";
            return 3 + inner * trip;
        }
        if (depth > 0 && roll < loopP + branchP) {
            std::uint64_t cost = 0;
            os << pad << "if " << condition(cost) << "\n"
               << pad << "{\n";
            cost += statement(os, indent + 1, depth - 1, budget);
            os << pad << "}\n";
            if (rng_.chance(0.4)) {
                os << pad << "else\n" << pad << "{\n";
                cost += statement(os, indent + 1, depth - 1, budget);
                os << pad << "}\n";
            }
            return cost + 2;
        }
        const int exprDepth =
            config_.style == ProgramStyle::Arithmetic ? 5 : 3;
        std::uint64_t cost = 0;
        os << pad << writableVar() << " = " << expr(exprDepth, cost)
           << ";\n";
        return cost + 1;
    }

    void
    emitFunction(std::ostream &os, const std::string &name,
                 bool asStatic,
                 const std::vector<std::string> &earlier)
    {
        callables_.clear();
        callBias_ =
            config_.style == ProgramStyle::CallHeavy ? 0.35 : 0.12;
        const std::size_t reach =
            config_.style == ProgramStyle::CallHeavy ? 8 : 3;
        for (std::size_t i = earlier.size() > reach
                                 ? earlier.size() - reach
                                 : 0;
             i < earlier.size(); ++i) {
            if (costOf(earlier[i]) <= kMaxCalleeCost)
                callables_.push_back(earlier[i]);
        }

        vars_ = {"a", "b", "t0", "t1"};
        loopVars_ = 0;
        os << (asStatic ? "static " : "") << "int " << name
           << "(int a, int b)\n{\n";
        os << "  int t0 = a + " << rng_.below(100) << ";\n";
        os << "  int t1 = b * " << (1 + rng_.below(9)) << ";\n";
        std::uint64_t total = 4;
        for (int s = 0; s < config_.statementsPerFunction; ++s) {
            if (total >= kMaxFunctionCost)
                break;
            total += statement(os, 1, 2, kMaxFunctionCost - total);
        }
        os << "  return (t0 ^ t1) & 16777215;\n}\n";
        costs_[name] = total;
    }

    const ProgramConfig &config_;
    support::Rng rng_;
    std::string prefix_;
    std::vector<std::string> vars_;
    std::vector<std::string> globals_;
    std::vector<std::string> callables_;
    std::unordered_map<std::string, std::uint64_t> costs_;
    double callBias_ = 0.12;
    int loopVars_ = 0;
};

} // namespace

std::string
generateProgram(const ProgramConfig &config)
{
    std::ostringstream os;
    ProgramWriter writer(config, support::Rng(config.seed), "");
    writer.emitGlobals(os, 4 + config.functions / 8, false);
    const auto helpers =
        writer.emitHelpers(os, config.functions, false);
    // main calls a sample of helpers (all of them for small programs).
    std::vector<std::string> called;
    for (std::size_t i = 0; i < helpers.size();
         i += 1 + helpers.size() / 24)
        called.push_back(helpers[i]);
    writer.emitMain(os, called);
    return os.str();
}

std::vector<std::string>
generateMultiUnitProgram(const ProgramConfig &config, int units)
{
    support::fatalIf(units < 2, "multi-unit program needs >= 2 units");
    std::vector<std::string> sources;
    support::Rng rng(config.seed);
    std::vector<std::string> exported;

    for (int u = 0; u < units; ++u) {
        std::ostringstream os;
        ProgramConfig unitCfg = config;
        unitCfg.functions =
            std::max(2, config.functions / units);
        // Same prefix-less static names in every unit: "fn0", "g0",
        // ... — exactly the collisions OneFile must mangle.
        ProgramWriter writer(unitCfg, rng.fork(u + 1), "");
        writer.emitGlobals(os, 3, true);
        const auto statics =
            writer.emitHelpers(os, unitCfg.functions, true);

        // One exported (non-static) entry point per unit.
        const std::string entry = "unit" + std::to_string(u) +
                                  "_entry";
        os << "int " << entry << "(int a, int b)\n{\n  return "
           << statics.back() << "(a, b) + " << statics.front()
           << "(b, a);\n}\n";
        exported.push_back(entry);
        sources.push_back(os.str());
    }

    // main() lives in unit 0 and calls every unit's entry point.
    std::ostringstream mainTail;
    mainTail << "int main(void)\n{\n  int acc = 1;\n";
    for (const std::string &entry : exported) {
        mainTail << "  acc = acc + " << entry << "(acc & 63, "
                 << "(acc >> 3) & 31);\n";
    }
    mainTail << "  return acc & 1048575;\n}\n";
    sources[0] += mainTail.str();
    return sources;
}

} // namespace alberta::gcc
