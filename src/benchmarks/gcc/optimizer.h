/**
 * @file
 * AST-level optimizer for the mini-C compiler: constant folding,
 * algebraic simplification, and dead-branch elimination.
 */
#ifndef ALBERTA_BENCHMARKS_GCC_OPTIMIZER_H
#define ALBERTA_BENCHMARKS_GCC_OPTIMIZER_H

#include "benchmarks/gcc/ast.h"
#include "runtime/context.h"

namespace alberta::gcc {

/** Optimization statistics (for tests and reports). */
struct OptStats
{
    std::uint64_t foldedExprs = 0;   //!< expressions folded to literals
    std::uint64_t deadBranches = 0;  //!< if/while bodies removed
    std::uint64_t simplified = 0;    //!< algebraic identities applied
};

/**
 * Evaluate a constant binary/unary operation exactly as the VM would
 * (C semantics on 64-bit ints; division by zero is a FatalError).
 */
std::int64_t evalOp(Op op, std::int64_t lhs, std::int64_t rhs);

/** Optimize @p program in place; returns what was done. */
OptStats optimize(Program &program, runtime::ExecutionContext &ctx);

} // namespace alberta::gcc

#endif // ALBERTA_BENCHMARKS_GCC_OPTIMIZER_H
