/**
 * @file
 * Recursive-descent parser for the mini-C language.
 */
#ifndef ALBERTA_BENCHMARKS_GCC_PARSER_H
#define ALBERTA_BENCHMARKS_GCC_PARSER_H

#include "benchmarks/gcc/ast.h"
#include "benchmarks/gcc/lexer.h"

namespace alberta::gcc {

/**
 * Parse a mini-C translation unit, reporting micro-ops through @p ctx.
 *
 * @throws support::FatalError on syntax errors
 */
Program parse(const std::vector<Token> &tokens,
              runtime::ExecutionContext &ctx);

/** Convenience: tokenize then parse. */
Program parseSource(const std::string &source,
                    runtime::ExecutionContext &ctx);

} // namespace alberta::gcc

#endif // ALBERTA_BENCHMARKS_GCC_PARSER_H
