#include "benchmarks/gcc/onefile.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "benchmarks/gcc/parser.h"
#include "support/check.h"

namespace alberta::gcc {

namespace {

/**
 * Scope-aware reference renamer: rewrites Var/Assign/Call names that
 * refer to file-scope symbols in @p mapping, leaving references that
 * are shadowed by locals or parameters untouched.
 */
class Renamer
{
  public:
    explicit Renamer(
        const std::unordered_map<std::string, std::string> &mapping)
        : mapping_(mapping)
    {
    }

    void
    renameFunction(Function &f)
    {
        scopes_.clear();
        scopes_.push_back({f.params.begin(), f.params.end()});
        renameStmt(*f.body);
    }

  private:
    bool
    shadowed(const std::string &name) const
    {
        for (const auto &scope : scopes_) {
            if (scope.count(name))
                return true;
        }
        return false;
    }

    void
    maybeRename(std::string &name) const
    {
        if (shadowed(name))
            return;
        const auto it = mapping_.find(name);
        if (it != mapping_.end())
            name = it->second;
    }

    void
    renameExpr(Expr &e)
    {
        switch (e.kind) {
          case Expr::Kind::Var:
          case Expr::Kind::Assign:
          case Expr::Kind::Call:
            maybeRename(e.name);
            break;
          default:
            break;
        }
        if (e.lhs)
            renameExpr(*e.lhs);
        if (e.rhs)
            renameExpr(*e.rhs);
        for (auto &arg : e.args)
            renameExpr(*arg);
    }

    void
    renameStmt(Stmt &s)
    {
        if (s.kind == Stmt::Kind::Block)
            scopes_.push_back({});
        if (s.kind == Stmt::Kind::Decl) {
            if (s.expr)
                renameExpr(*s.expr);
            // The declaration shadows from here on within this scope.
            scopes_.back().insert(s.declName);
        } else {
            if (s.cond)
                renameExpr(*s.cond);
            if (s.init)
                renameExpr(*s.init);
            if (s.step)
                renameExpr(*s.step);
            if (s.expr)
                renameExpr(*s.expr);
        }
        for (auto &child : s.body)
            renameStmt(*child);
        if (s.thenBranch)
            renameStmt(*s.thenBranch);
        if (s.elseBranch)
            renameStmt(*s.elseBranch);
        if (s.loopBody)
            renameStmt(*s.loopBody);
        if (s.kind == Stmt::Kind::Block)
            scopes_.pop_back();
    }

    const std::unordered_map<std::string, std::string> &mapping_;
    std::vector<std::unordered_set<std::string>> scopes_;
};

} // namespace

OneFileResult
oneFile(std::vector<Program> units, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("gcc::onefile", 5600);
    auto &m = ctx.machine();
    OneFileResult result;

    std::set<std::string> externals;
    int mains = 0;

    for (std::size_t u = 0; u < units.size(); ++u) {
        Program &unit = units[u];
        const std::string prefix = "u" + std::to_string(u) + "_";

        // Mangle this unit's file-scope statics.
        std::unordered_map<std::string, std::string> mapping;
        for (Global &g : unit.globals) {
            m.load(0x780000000ULL + result.renamedSymbols * 32);
            if (m.branch(1, g.isStatic)) {
                mapping[g.name] = prefix + g.name;
                g.name = prefix + g.name;
                g.isStatic = false;
                ++result.renamedSymbols;
            }
        }
        for (Function &f : unit.functions) {
            if (m.branch(2, f.isStatic)) {
                mapping[f.name] = prefix + f.name;
                f.name = prefix + f.name;
                f.isStatic = false;
                ++result.renamedSymbols;
            }
        }
        Renamer renamer(mapping);
        for (Function &f : unit.functions)
            renamer.renameFunction(f);

        // External (non-mangled) symbols must be unique across units.
        for (const Global &g : unit.globals) {
            if (mapping.count(g.name) == 0) {
                support::fatalIf(
                    !externals.insert(g.name).second,
                    "onefile: external global '", g.name,
                    "' defined in multiple units");
            }
            result.merged.globals.push_back(g);
        }
        for (Function &f : unit.functions) {
            if (f.name == "main")
                ++mains;
            support::fatalIf(!externals.insert(f.name).second,
                             "onefile: external function '", f.name,
                             "' defined in multiple units");
            result.merged.functions.push_back(std::move(f));
        }
    }
    support::fatalIf(mains != 1, "onefile: merged program has ", mains,
                     " main() definitions; need exactly 1");
    ctx.consume(static_cast<std::uint64_t>(result.renamedSymbols));
    return result;
}

OneFileResult
oneFileFromSources(const std::vector<std::string> &sources,
                   runtime::ExecutionContext &ctx)
{
    std::vector<Program> units;
    units.reserve(sources.size());
    for (const std::string &source : sources)
        units.push_back(parseSource(source, ctx));
    return oneFile(std::move(units), ctx);
}

} // namespace alberta::gcc
