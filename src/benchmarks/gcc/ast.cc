#include "benchmarks/gcc/ast.h"

#include <sstream>

#include "support/check.h"

namespace alberta::gcc {

ExprPtr
Expr::makeNumber(std::int64_t value)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Number;
    e->number = value;
    return e;
}

ExprPtr
Expr::makeVar(std::string name)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Var;
    e->name = std::move(name);
    return e;
}

ExprPtr
Expr::makeAssign(std::string name, ExprPtr value)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Assign;
    e->name = std::move(name);
    e->lhs = std::move(value);
    return e;
}

ExprPtr
Expr::makeBinary(Op op, ExprPtr lhs, ExprPtr rhs)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Binary;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
}

ExprPtr
Expr::makeUnary(Op op, ExprPtr operand)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Unary;
    e->op = op;
    e->lhs = std::move(operand);
    return e;
}

ExprPtr
Expr::makeCall(std::string callee, std::vector<ExprPtr> args)
{
    auto e = std::make_unique<Expr>();
    e->kind = Kind::Call;
    e->name = std::move(callee);
    e->args = std::move(args);
    return e;
}

ExprPtr
Expr::clone() const
{
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->number = number;
    e->name = name;
    e->op = op;
    if (lhs)
        e->lhs = lhs->clone();
    if (rhs)
        e->rhs = rhs->clone();
    for (const auto &arg : args)
        e->args.push_back(arg->clone());
    return e;
}

StmtPtr
Stmt::makeBlock(std::vector<StmtPtr> body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::Block;
    s->body = std::move(body);
    return s;
}

StmtPtr
Stmt::makeIf(ExprPtr cond, StmtPtr thenB, StmtPtr elseB)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::If;
    s->cond = std::move(cond);
    s->thenBranch = std::move(thenB);
    s->elseBranch = std::move(elseB);
    return s;
}

StmtPtr
Stmt::makeWhile(ExprPtr cond, StmtPtr body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::While;
    s->cond = std::move(cond);
    s->loopBody = std::move(body);
    return s;
}

StmtPtr
Stmt::makeFor(ExprPtr init, ExprPtr cond, ExprPtr step, StmtPtr body)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::For;
    s->init = std::move(init);
    s->cond = std::move(cond);
    s->step = std::move(step);
    s->loopBody = std::move(body);
    return s;
}

StmtPtr
Stmt::makeReturn(ExprPtr value)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::Return;
    s->expr = std::move(value);
    return s;
}

StmtPtr
Stmt::makeDecl(std::string name, ExprPtr init)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::Decl;
    s->declName = std::move(name);
    s->expr = std::move(init);
    return s;
}

StmtPtr
Stmt::makeExpr(ExprPtr expr)
{
    auto s = std::make_unique<Stmt>();
    s->kind = Kind::ExprStmt;
    s->expr = std::move(expr);
    return s;
}

StmtPtr
Stmt::clone() const
{
    auto s = std::make_unique<Stmt>();
    s->kind = kind;
    for (const auto &child : body)
        s->body.push_back(child->clone());
    if (cond)
        s->cond = cond->clone();
    if (thenBranch)
        s->thenBranch = thenBranch->clone();
    if (elseBranch)
        s->elseBranch = elseBranch->clone();
    if (loopBody)
        s->loopBody = loopBody->clone();
    if (init)
        s->init = init->clone();
    if (step)
        s->step = step->clone();
    if (expr)
        s->expr = expr->clone();
    s->declName = declName;
    return s;
}

const Function *
Program::findFunction(const std::string &name) const
{
    for (const Function &f : functions) {
        if (f.name == name)
            return &f;
    }
    return nullptr;
}

namespace {

const char *
opText(Op op)
{
    switch (op) {
      case Op::Add: return "+";
      case Op::Sub: return "-";
      case Op::Mul: return "*";
      case Op::Div: return "/";
      case Op::Mod: return "%";
      case Op::And: return "&";
      case Op::Or: return "|";
      case Op::Xor: return "^";
      case Op::Shl: return "<<";
      case Op::Shr: return ">>";
      case Op::Lt: return "<";
      case Op::Gt: return ">";
      case Op::Le: return "<=";
      case Op::Ge: return ">=";
      case Op::Eq: return "==";
      case Op::Ne: return "!=";
      case Op::LogAnd: return "&&";
      case Op::LogOr: return "||";
      case Op::Neg: return "-";
      case Op::Not: return "!";
    }
    return "?";
}

void
printExpr(std::ostream &os, const Expr &e)
{
    switch (e.kind) {
      case Expr::Kind::Number:
        os << e.number;
        break;
      case Expr::Kind::Var:
        os << e.name;
        break;
      case Expr::Kind::Assign:
        os << '(' << e.name << " = ";
        printExpr(os, *e.lhs);
        os << ')';
        break;
      case Expr::Kind::Binary:
        os << '(';
        printExpr(os, *e.lhs);
        os << ' ' << opText(e.op) << ' ';
        printExpr(os, *e.rhs);
        os << ')';
        break;
      case Expr::Kind::Unary:
        os << '(' << opText(e.op);
        printExpr(os, *e.lhs);
        os << ')';
        break;
      case Expr::Kind::Call:
        os << e.name << '(';
        for (std::size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                os << ", ";
            printExpr(os, *e.args[i]);
        }
        os << ')';
        break;
    }
}

void
printStmt(std::ostream &os, const Stmt &s, int indent)
{
    const std::string pad(indent * 2, ' ');
    switch (s.kind) {
      case Stmt::Kind::Block:
        os << pad << "{\n";
        for (const auto &child : s.body)
            printStmt(os, *child, indent + 1);
        os << pad << "}\n";
        break;
      case Stmt::Kind::If:
        os << pad << "if (";
        printExpr(os, *s.cond);
        os << ")\n";
        printStmt(os, *s.thenBranch, indent + 1);
        if (s.elseBranch) {
            os << pad << "else\n";
            printStmt(os, *s.elseBranch, indent + 1);
        }
        break;
      case Stmt::Kind::While:
        os << pad << "while (";
        printExpr(os, *s.cond);
        os << ")\n";
        printStmt(os, *s.loopBody, indent + 1);
        break;
      case Stmt::Kind::For:
        os << pad << "for (";
        if (s.init)
            printExpr(os, *s.init);
        os << "; ";
        if (s.cond)
            printExpr(os, *s.cond);
        os << "; ";
        if (s.step)
            printExpr(os, *s.step);
        os << ")\n";
        printStmt(os, *s.loopBody, indent + 1);
        break;
      case Stmt::Kind::Return:
        os << pad << "return ";
        printExpr(os, *s.expr);
        os << ";\n";
        break;
      case Stmt::Kind::Decl:
        os << pad << "int " << s.declName;
        if (s.expr) {
            os << " = ";
            printExpr(os, *s.expr);
        }
        os << ";\n";
        break;
      case Stmt::Kind::ExprStmt:
        os << pad;
        printExpr(os, *s.expr);
        os << ";\n";
        break;
    }
}

std::size_t
countExpr(const Expr &e)
{
    std::size_t n = 1;
    if (e.lhs)
        n += countExpr(*e.lhs);
    if (e.rhs)
        n += countExpr(*e.rhs);
    for (const auto &arg : e.args)
        n += countExpr(*arg);
    return n;
}

std::size_t
countStmt(const Stmt &s)
{
    std::size_t n = 1;
    for (const auto &child : s.body)
        n += countStmt(*child);
    if (s.cond)
        n += countExpr(*s.cond);
    if (s.thenBranch)
        n += countStmt(*s.thenBranch);
    if (s.elseBranch)
        n += countStmt(*s.elseBranch);
    if (s.loopBody)
        n += countStmt(*s.loopBody);
    if (s.init)
        n += countExpr(*s.init);
    if (s.step)
        n += countExpr(*s.step);
    if (s.expr)
        n += countExpr(*s.expr);
    return n;
}

} // namespace

std::string
Program::prettyPrint() const
{
    std::ostringstream os;
    for (const Global &g : globals) {
        if (g.isStatic)
            os << "static ";
        os << "int " << g.name;
        if (g.init != 0)
            os << " = " << g.init;
        os << ";\n";
    }
    for (const Function &f : functions) {
        if (f.isStatic)
            os << "static ";
        os << "int " << f.name << '(';
        for (std::size_t i = 0; i < f.params.size(); ++i) {
            if (i)
                os << ", ";
            os << "int " << f.params[i];
        }
        os << ")\n";
        printStmt(os, *f.body, 0);
    }
    return os.str();
}

std::size_t
Program::nodeCount() const
{
    std::size_t n = globals.size();
    for (const Function &f : functions)
        n += 1 + countStmt(*f.body);
    return n;
}

} // namespace alberta::gcc
