/**
 * @file
 * The OneFile tool (Section IV-A): combine multiple mini-C translation
 * units into a single compilation unit suitable as a 502.gcc_r
 * workload. File-scope `static` symbols are name-mangled with a unit
 * prefix to avoid collisions; external symbols must be defined exactly
 * once across units.
 */
#ifndef ALBERTA_BENCHMARKS_GCC_ONEFILE_H
#define ALBERTA_BENCHMARKS_GCC_ONEFILE_H

#include <string>
#include <vector>

#include "benchmarks/gcc/ast.h"
#include "runtime/context.h"

namespace alberta::gcc {

/** Outcome of a OneFile merge. */
struct OneFileResult
{
    Program merged;
    int renamedSymbols = 0; //!< statics mangled across all units
};

/**
 * Merge @p units into one program.
 *
 * @throws support::FatalError when two units define the same external
 *         symbol, or when main() is missing or duplicated
 */
OneFileResult oneFile(std::vector<Program> units,
                      runtime::ExecutionContext &ctx);

/** Convenience: parse each source text, then merge. */
OneFileResult oneFileFromSources(const std::vector<std::string> &sources,
                                 runtime::ExecutionContext &ctx);

} // namespace alberta::gcc

#endif // ALBERTA_BENCHMARKS_GCC_ONEFILE_H
