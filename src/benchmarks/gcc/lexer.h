/**
 * @file
 * Lexer for the mini-C language compiled by the 502.gcc_r
 * mini-benchmark. The language is a C subset: int-typed variables and
 * functions, full integer expression operators, if/while/for control
 * flow, and file-scope `static`.
 */
#ifndef ALBERTA_BENCHMARKS_GCC_LEXER_H
#define ALBERTA_BENCHMARKS_GCC_LEXER_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace alberta::gcc {

/** Token kinds. */
enum class TokenKind : std::uint8_t
{
    End,
    Identifier,
    Number,
    KwInt,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwStatic,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Semicolon,
    Comma,
    Assign,     // =
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
};

/** One token with its source text and position. */
struct Token
{
    TokenKind kind = TokenKind::End;
    std::string text;
    std::int64_t value = 0; //!< for Number
    int line = 1;
};

/**
 * Tokenize @p source, reporting micro-ops through @p ctx.
 *
 * @throws support::FatalError on unknown characters
 */
std::vector<Token> tokenize(const std::string &source,
                            runtime::ExecutionContext &ctx);

} // namespace alberta::gcc

#endif // ALBERTA_BENCHMARKS_GCC_LEXER_H
