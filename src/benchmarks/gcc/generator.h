/**
 * @file
 * Procedural mini-C program generator: synthesizes single-file
 * workloads of configurable size and style for the 502.gcc_r
 * mini-benchmark, plus multi-unit programs for the OneFile tool.
 */
#ifndef ALBERTA_BENCHMARKS_GCC_GENERATOR_H
#define ALBERTA_BENCHMARKS_GCC_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace alberta::gcc {

/** Code style emphasis of a generated program. */
enum class ProgramStyle
{
    Balanced,   //!< a bit of everything
    LoopHeavy,  //!< deep loop nests
    BranchHeavy,//!< many data-dependent ifs
    CallHeavy,  //!< deep call chains
    Arithmetic, //!< big flat expressions
};

/** Generator knobs. */
struct ProgramConfig
{
    std::uint64_t seed = 1;
    int functions = 20;      //!< helper function count
    int statementsPerFunction = 10;
    int maxLoopTrip = 24;    //!< constant loop bounds stay below this
    ProgramStyle style = ProgramStyle::Balanced;
};

/** Generate one self-contained mini-C source file with a main(). */
std::string generateProgram(const ProgramConfig &config);

/**
 * Generate @p units translation units forming one program: unit 0
 * holds main(), every unit has file-scope statics that share names
 * across units (exercising OneFile's mangling).
 */
std::vector<std::string>
generateMultiUnitProgram(const ProgramConfig &config, int units);

} // namespace alberta::gcc

#endif // ALBERTA_BENCHMARKS_GCC_GENERATOR_H
