/**
 * @file
 * The 502.gcc_r mini-benchmark: compile (and validate by execution)
 * single-compilation-unit mini-C programs, with generated workloads
 * and OneFile-merged multi-unit programs.
 */
#ifndef ALBERTA_BENCHMARKS_GCC_BENCHMARK_H
#define ALBERTA_BENCHMARKS_GCC_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::gcc {

/** See file comment. */
class GccBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "502.gcc_r"; }
    std::string area() const override { return "Compiler"; }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::gcc

#endif // ALBERTA_BENCHMARKS_GCC_BENCHMARK_H
