/**
 * @file
 * Abstract syntax tree for the mini-C language: expressions,
 * statements, functions, globals, and a pretty-printer that emits
 * compilable mini-C source (used by the OneFile tool and the workload
 * generator).
 */
#ifndef ALBERTA_BENCHMARKS_GCC_AST_H
#define ALBERTA_BENCHMARKS_GCC_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace alberta::gcc {

/** Binary and unary operator codes (a subset shared with the VM). */
enum class Op : std::uint8_t
{
    Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
    Lt, Gt, Le, Ge, Eq, Ne, LogAnd, LogOr,
    Neg, Not,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node. */
struct Expr
{
    enum class Kind
    {
        Number,   //!< literal
        Var,      //!< variable reference
        Assign,   //!< name = value
        Binary,   //!< lhs op rhs
        Unary,    //!< op operand
        Call,     //!< callee(args...)
    };

    Kind kind = Kind::Number;
    std::int64_t number = 0;
    std::string name; //!< Var/Assign/Call target
    Op op = Op::Add;
    ExprPtr lhs, rhs; //!< Binary (lhs,rhs), Unary/Assign (lhs)
    std::vector<ExprPtr> args;

    static ExprPtr makeNumber(std::int64_t value);
    static ExprPtr makeVar(std::string name);
    static ExprPtr makeAssign(std::string name, ExprPtr value);
    static ExprPtr makeBinary(Op op, ExprPtr lhs, ExprPtr rhs);
    static ExprPtr makeUnary(Op op, ExprPtr operand);
    static ExprPtr makeCall(std::string callee,
                            std::vector<ExprPtr> args);

    /** Deep copy. */
    ExprPtr clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** Statement node. */
struct Stmt
{
    enum class Kind
    {
        Block,
        If,
        While,
        For,
        Return,
        Decl,  //!< local declaration with optional init
        ExprStmt,
    };

    Kind kind = Kind::Block;
    std::vector<StmtPtr> body;         //!< Block
    ExprPtr cond;                      //!< If/While/For condition
    StmtPtr thenBranch, elseBranch;    //!< If
    StmtPtr loopBody;                  //!< While/For
    ExprPtr init, step;                //!< For
    ExprPtr expr;                      //!< Return/ExprStmt/Decl init
    std::string declName;              //!< Decl

    static StmtPtr makeBlock(std::vector<StmtPtr> body);
    static StmtPtr makeIf(ExprPtr cond, StmtPtr thenB, StmtPtr elseB);
    static StmtPtr makeWhile(ExprPtr cond, StmtPtr body);
    static StmtPtr makeFor(ExprPtr init, ExprPtr cond, ExprPtr step,
                           StmtPtr body);
    static StmtPtr makeReturn(ExprPtr value);
    static StmtPtr makeDecl(std::string name, ExprPtr init);
    static StmtPtr makeExpr(ExprPtr expr);

    /** Deep copy. */
    StmtPtr clone() const;
};

/** A function definition. */
struct Function
{
    std::string name;
    bool isStatic = false;
    std::vector<std::string> params;
    StmtPtr body; //!< a Block
};

/** A global variable. */
struct Global
{
    std::string name;
    bool isStatic = false;
    std::int64_t init = 0;
};

/** A translation unit / merged program. */
struct Program
{
    std::vector<Global> globals;
    std::vector<Function> functions;

    /** Find a function by name, or nullptr. */
    const Function *findFunction(const std::string &name) const;

    /** Emit compilable mini-C source text. */
    std::string prettyPrint() const;

    /** Total AST node count (testing and sizing aid). */
    std::size_t nodeCount() const;
};

} // namespace alberta::gcc

#endif // ALBERTA_BENCHMARKS_GCC_AST_H
