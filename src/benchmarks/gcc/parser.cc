#include "benchmarks/gcc/parser.h"

#include "support/check.h"

namespace alberta::gcc {

namespace {

/** Binding powers for precedence-climbing expression parsing. */
int
precedence(TokenKind kind)
{
    switch (kind) {
      case TokenKind::PipePipe: return 1;
      case TokenKind::AmpAmp: return 2;
      case TokenKind::Pipe: return 3;
      case TokenKind::Caret: return 4;
      case TokenKind::Amp: return 5;
      case TokenKind::EqEq:
      case TokenKind::NotEq: return 6;
      case TokenKind::Lt:
      case TokenKind::Gt:
      case TokenKind::Le:
      case TokenKind::Ge: return 7;
      case TokenKind::Shl:
      case TokenKind::Shr: return 8;
      case TokenKind::Plus:
      case TokenKind::Minus: return 9;
      case TokenKind::Star:
      case TokenKind::Slash:
      case TokenKind::Percent: return 10;
      default: return 0;
    }
}

Op
binaryOp(TokenKind kind)
{
    switch (kind) {
      case TokenKind::PipePipe: return Op::LogOr;
      case TokenKind::AmpAmp: return Op::LogAnd;
      case TokenKind::Pipe: return Op::Or;
      case TokenKind::Caret: return Op::Xor;
      case TokenKind::Amp: return Op::And;
      case TokenKind::EqEq: return Op::Eq;
      case TokenKind::NotEq: return Op::Ne;
      case TokenKind::Lt: return Op::Lt;
      case TokenKind::Gt: return Op::Gt;
      case TokenKind::Le: return Op::Le;
      case TokenKind::Ge: return Op::Ge;
      case TokenKind::Shl: return Op::Shl;
      case TokenKind::Shr: return Op::Shr;
      case TokenKind::Plus: return Op::Add;
      case TokenKind::Minus: return Op::Sub;
      case TokenKind::Star: return Op::Mul;
      case TokenKind::Slash: return Op::Div;
      case TokenKind::Percent: return Op::Mod;
      default: support::panic("parser: not a binary operator");
    }
}

class Parser
{
  public:
    Parser(const std::vector<Token> &tokens,
           runtime::ExecutionContext &ctx)
        : tokens_(tokens), ctx_(ctx), m_(ctx.machine())
    {
    }

    Program
    parseProgram()
    {
        Program program;
        while (peek().kind != TokenKind::End) {
            bool isStatic = false;
            if (accept(TokenKind::KwStatic))
                isStatic = true;
            expect(TokenKind::KwInt, "declaration must start with int");
            const std::string name = expectIdent();
            if (m_.branch(1, peek().kind == TokenKind::LParen)) {
                program.functions.push_back(
                    parseFunction(name, isStatic));
            } else {
                Global g;
                g.name = name;
                g.isStatic = isStatic;
                if (accept(TokenKind::Assign)) {
                    const Token &tok = peek();
                    support::fatalIf(tok.kind != TokenKind::Number,
                                     "parser: global initializer must "
                                     "be a literal at line ",
                                     tok.line);
                    g.init = tok.value;
                    ++pos_;
                }
                expect(TokenKind::Semicolon, "expected ';'");
                program.globals.push_back(std::move(g));
            }
        }
        return program;
    }

  private:
    const Token &
    peek(int ahead = 0) const
    {
        const std::size_t i = pos_ + ahead;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    bool
    accept(TokenKind kind)
    {
        m_.load(0x710000000ULL + pos_ * 16);
        if (m_.branch(2, peek().kind == kind)) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expect(TokenKind kind, const char *message)
    {
        support::fatalIf(peek().kind != kind, "parser: ", message,
                         " at line ", peek().line, " (got '",
                         peek().text, "')");
        ++pos_;
    }

    std::string
    expectIdent()
    {
        support::fatalIf(peek().kind != TokenKind::Identifier,
                         "parser: expected identifier at line ",
                         peek().line);
        return tokens_[pos_++].text;
    }

    Function
    parseFunction(std::string name, bool isStatic)
    {
        auto scope = ctx_.method("gcc::parse_function", 5200);
        Function f;
        f.name = std::move(name);
        f.isStatic = isStatic;
        expect(TokenKind::LParen, "expected '('");
        if (!accept(TokenKind::RParen)) {
            if (accept(TokenKind::KwVoid)) {
                expect(TokenKind::RParen, "expected ')'");
            } else {
                do {
                    expect(TokenKind::KwInt, "expected 'int' parameter");
                    f.params.push_back(expectIdent());
                } while (accept(TokenKind::Comma));
                expect(TokenKind::RParen, "expected ')'");
            }
        }
        f.body = parseBlock();
        return f;
    }

    StmtPtr
    parseBlock()
    {
        expect(TokenKind::LBrace, "expected '{'");
        std::vector<StmtPtr> body;
        while (!accept(TokenKind::RBrace)) {
            support::fatalIf(peek().kind == TokenKind::End,
                             "parser: unexpected end of input");
            body.push_back(parseStatement());
        }
        return Stmt::makeBlock(std::move(body));
    }

    StmtPtr
    parseStatement()
    {
        m_.ops(topdown::OpKind::IntAlu, 6);
        m_.indirect(3, static_cast<std::uint64_t>(peek().kind));
        switch (peek().kind) {
          case TokenKind::LBrace:
            return parseBlock();
          case TokenKind::KwIf: {
            ++pos_;
            expect(TokenKind::LParen, "expected '('");
            ExprPtr cond = parseExpr();
            expect(TokenKind::RParen, "expected ')'");
            StmtPtr thenB = parseStatement();
            StmtPtr elseB;
            if (accept(TokenKind::KwElse))
                elseB = parseStatement();
            return Stmt::makeIf(std::move(cond), std::move(thenB),
                                std::move(elseB));
          }
          case TokenKind::KwWhile: {
            ++pos_;
            expect(TokenKind::LParen, "expected '('");
            ExprPtr cond = parseExpr();
            expect(TokenKind::RParen, "expected ')'");
            return Stmt::makeWhile(std::move(cond), parseStatement());
          }
          case TokenKind::KwFor: {
            ++pos_;
            expect(TokenKind::LParen, "expected '('");
            ExprPtr init, cond, step;
            if (peek().kind != TokenKind::Semicolon)
                init = parseExpr();
            expect(TokenKind::Semicolon, "expected ';'");
            if (peek().kind != TokenKind::Semicolon)
                cond = parseExpr();
            expect(TokenKind::Semicolon, "expected ';'");
            if (peek().kind != TokenKind::RParen)
                step = parseExpr();
            expect(TokenKind::RParen, "expected ')'");
            return Stmt::makeFor(std::move(init), std::move(cond),
                                 std::move(step), parseStatement());
          }
          case TokenKind::KwReturn: {
            ++pos_;
            ExprPtr value = parseExpr();
            expect(TokenKind::Semicolon, "expected ';'");
            return Stmt::makeReturn(std::move(value));
          }
          case TokenKind::KwInt: {
            ++pos_;
            const std::string name = expectIdent();
            ExprPtr init;
            if (accept(TokenKind::Assign))
                init = parseExpr();
            expect(TokenKind::Semicolon, "expected ';'");
            return Stmt::makeDecl(name, std::move(init));
          }
          default: {
            ExprPtr expr = parseExpr();
            expect(TokenKind::Semicolon, "expected ';'");
            return Stmt::makeExpr(std::move(expr));
          }
        }
    }

    ExprPtr
    parseExpr()
    {
        // Assignment (right-associative) above the binary ladder.
        if (peek().kind == TokenKind::Identifier &&
            peek(1).kind == TokenKind::Assign) {
            const std::string name = expectIdent();
            ++pos_; // '='
            return Expr::makeAssign(name, parseExpr());
        }
        return parseBinary(1);
    }

    ExprPtr
    parseBinary(int minPrec)
    {
        ExprPtr lhs = parseUnary();
        while (true) {
            const int prec = precedence(peek().kind);
            if (!m_.branch(4, prec >= minPrec && prec > 0))
                break;
            const TokenKind opTok = peek().kind;
            ++pos_;
            ExprPtr rhs = parseBinary(prec + 1);
            lhs = Expr::makeBinary(binaryOp(opTok), std::move(lhs),
                                   std::move(rhs));
            m_.ops(topdown::OpKind::IntAlu, 5);
        }
        return lhs;
    }

    ExprPtr
    parseUnary()
    {
        if (accept(TokenKind::Minus))
            return Expr::makeUnary(Op::Neg, parseUnary());
        if (accept(TokenKind::Bang))
            return Expr::makeUnary(Op::Not, parseUnary());
        return parsePrimary();
    }

    ExprPtr
    parsePrimary()
    {
        const Token &tok = peek();
        if (accept(TokenKind::LParen)) {
            ExprPtr inner = parseExpr();
            expect(TokenKind::RParen, "expected ')'");
            return inner;
        }
        if (tok.kind == TokenKind::Number) {
            ++pos_;
            return Expr::makeNumber(tok.value);
        }
        if (tok.kind == TokenKind::Identifier) {
            const std::string name = expectIdent();
            if (accept(TokenKind::LParen)) {
                std::vector<ExprPtr> args;
                if (!accept(TokenKind::RParen)) {
                    do {
                        args.push_back(parseExpr());
                    } while (accept(TokenKind::Comma));
                    expect(TokenKind::RParen, "expected ')'");
                }
                return Expr::makeCall(name, std::move(args));
            }
            return Expr::makeVar(name);
        }
        support::fatal("parser: unexpected token '", tok.text,
                       "' at line ", tok.line);
    }

    const std::vector<Token> &tokens_;
    runtime::ExecutionContext &ctx_;
    topdown::Machine &m_;
    std::size_t pos_ = 0;
};

} // namespace

Program
parse(const std::vector<Token> &tokens, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("gcc::parse", 7000);
    Parser parser(tokens, ctx);
    Program program = parser.parseProgram();
    ctx.consume(static_cast<std::uint64_t>(program.nodeCount()));
    return program;
}

Program
parseSource(const std::string &source, runtime::ExecutionContext &ctx)
{
    return parse(tokenize(source, ctx), ctx);
}

} // namespace alberta::gcc
