/**
 * @file
 * Bytecode generator and stack virtual machine for the mini-C
 * compiler: the compiled program is executed to validate the
 * compilation, like 502.gcc_r's -O3 code generation pass over each
 * workload file.
 */
#ifndef ALBERTA_BENCHMARKS_GCC_CODEGEN_H
#define ALBERTA_BENCHMARKS_GCC_CODEGEN_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "benchmarks/gcc/ast.h"
#include "runtime/context.h"

namespace alberta::gcc {

/** VM opcodes. */
enum class OpCode : std::uint8_t
{
    Push,   //!< push immediate
    LoadL,  //!< push local slot
    StoreL, //!< pop into local slot (value stays for expression use)
    LoadG,  //!< push global slot
    StoreG, //!< pop into global slot (value stays)
    Pop,    //!< discard top
    Binary, //!< pop rhs, lhs; push op(lhs, rhs)
    Unary,  //!< pop v; push op(v)
    Jump,   //!< unconditional jump
    JumpZ,  //!< pop; jump when zero
    Call,   //!< call function index with argument count
    Ret,    //!< return top of stack
};

/** One VM instruction. */
struct Instruction
{
    OpCode code = OpCode::Push;
    std::int64_t imm = 0; //!< immediate / slot / target / func index
    Op op = Op::Add;      //!< Binary/Unary operator
    std::int32_t extra = 0; //!< Call: argument count
};

/** A compiled function. */
struct CompiledFunction
{
    std::string name;
    int paramCount = 0;
    int localCount = 0; //!< including parameters
    std::vector<Instruction> code;
};

/** A compiled module. */
struct Module
{
    std::vector<CompiledFunction> functions;
    std::vector<std::int64_t> globalInit;
    std::unordered_map<std::string, int> functionIndex;
    int mainIndex = -1;

    /** Total instruction count across functions. */
    std::size_t instructionCount() const;
};

/**
 * Compile @p program to bytecode, reporting micro-ops through @p ctx.
 *
 * @throws support::FatalError on undefined variables/functions or a
 *         missing main
 */
Module compile(const Program &program, runtime::ExecutionContext &ctx);

/** Result of executing a module. */
struct ExecResult
{
    std::int64_t value = 0;       //!< main's return value
    std::uint64_t executed = 0;   //!< instructions executed
};

/**
 * Execute @p module's main function.
 *
 * @param budget instruction budget guarding against runaway programs
 * @throws support::FatalError on stack/budget violations or division
 *         by zero
 */
ExecResult execute(const Module &module, runtime::ExecutionContext &ctx,
                   std::uint64_t budget = 80'000'000);

} // namespace alberta::gcc

#endif // ALBERTA_BENCHMARKS_GCC_CODEGEN_H
