#include "benchmarks/gcc/codegen.h"

#include "benchmarks/gcc/optimizer.h"
#include "support/check.h"

namespace alberta::gcc {

std::size_t
Module::instructionCount() const
{
    std::size_t n = 0;
    for (const auto &f : functions)
        n += f.code.size();
    return n;
}

namespace {

class Compiler
{
  public:
    Compiler(const Program &program, runtime::ExecutionContext &ctx)
        : program_(program), ctx_(ctx), m_(ctx.machine())
    {
    }

    Module
    run()
    {
        Module module;
        for (std::size_t i = 0; i < program_.globals.size(); ++i) {
            globalSlot_[program_.globals[i].name] =
                static_cast<int>(i);
            module.globalInit.push_back(program_.globals[i].init);
        }
        for (std::size_t i = 0; i < program_.functions.size(); ++i) {
            support::fatalIf(
                module.functionIndex.count(
                    program_.functions[i].name) != 0,
                "codegen: duplicate function '",
                program_.functions[i].name, "'");
            module.functionIndex[program_.functions[i].name] =
                static_cast<int>(i);
        }
        for (const Function &f : program_.functions)
            module.functions.push_back(compileFunction(f, module));
        const auto it = module.functionIndex.find("main");
        support::fatalIf(it == module.functionIndex.end(),
                         "codegen: program has no main()");
        module.mainIndex = it->second;
        return module;
    }

  private:
    CompiledFunction
    compileFunction(const Function &f, const Module &module)
    {
        CompiledFunction out;
        out.name = f.name;
        out.paramCount = static_cast<int>(f.params.size());
        locals_.clear();
        scopes_.clear();
        scopes_.push_back({});
        nextSlot_ = 0;
        for (const std::string &param : f.params)
            declareLocal(param);

        current_ = &out;
        module_ = &module;
        compileStmt(*f.body);
        // Implicit return 0 at the end.
        emit({OpCode::Push, 0, Op::Add, 0});
        emit({OpCode::Ret, 0, Op::Add, 0});
        out.localCount = maxSlot_;
        maxSlot_ = 0;
        return out;
    }

    void
    emit(Instruction instruction)
    {
        current_->code.push_back(instruction);
        m_.store(0x730000000ULL + current_->code.size() * 16);
        m_.ops(topdown::OpKind::IntAlu, 2);
    }

    int
    declareLocal(const std::string &name)
    {
        const int slot = nextSlot_++;
        maxSlot_ = std::max(maxSlot_, nextSlot_);
        scopes_.back().push_back(name);
        locals_[name].push_back(slot);
        return slot;
    }

    void
    pushScope()
    {
        scopes_.push_back({});
    }

    void
    popScope()
    {
        for (const std::string &name : scopes_.back()) {
            locals_[name].pop_back();
            --nextSlot_;
        }
        scopes_.pop_back();
    }

    /** Resolve a name: local slot (>= 0) or -1-globalSlot. */
    int
    resolve(const std::string &name) const
    {
        const auto lit = locals_.find(name);
        if (lit != locals_.end() && !lit->second.empty())
            return lit->second.back();
        const auto git = globalSlot_.find(name);
        support::fatalIf(git == globalSlot_.end(),
                         "codegen: undefined variable '", name, "'");
        return -1 - git->second;
    }

    void
    compileExpr(const Expr &e)
    {
        m_.load(0x740000000ULL + (visited_++ % (1 << 19)) * 8);
        m_.indirect(1, static_cast<std::uint64_t>(e.kind));
        switch (e.kind) {
          case Expr::Kind::Number:
            emit({OpCode::Push, e.number, Op::Add, 0});
            break;
          case Expr::Kind::Var: {
            const int slot = resolve(e.name);
            if (slot >= 0)
                emit({OpCode::LoadL, slot, Op::Add, 0});
            else
                emit({OpCode::LoadG, -1 - slot, Op::Add, 0});
            break;
          }
          case Expr::Kind::Assign: {
            compileExpr(*e.lhs);
            const int slot = resolve(e.name);
            if (slot >= 0)
                emit({OpCode::StoreL, slot, Op::Add, 0});
            else
                emit({OpCode::StoreG, -1 - slot, Op::Add, 0});
            break;
          }
          case Expr::Kind::Binary:
            compileExpr(*e.lhs);
            compileExpr(*e.rhs);
            emit({OpCode::Binary, 0, e.op, 0});
            break;
          case Expr::Kind::Unary:
            compileExpr(*e.lhs);
            emit({OpCode::Unary, 0, e.op, 0});
            break;
          case Expr::Kind::Call: {
            const auto it = module_->functionIndex.find(e.name);
            support::fatalIf(it == module_->functionIndex.end(),
                             "codegen: call to undefined function '",
                             e.name, "'");
            const Function *target =
                program_.findFunction(e.name);
            support::fatalIf(
                target->params.size() != e.args.size(),
                "codegen: '", e.name, "' expects ",
                target->params.size(), " arguments, got ",
                e.args.size());
            for (const auto &arg : e.args)
                compileExpr(*arg);
            emit({OpCode::Call, it->second, Op::Add,
                  static_cast<std::int32_t>(e.args.size())});
            break;
          }
        }
    }

    void
    compileStmt(const Stmt &s)
    {
        switch (s.kind) {
          case Stmt::Kind::Block:
            pushScope();
            for (const auto &child : s.body)
                compileStmt(*child);
            popScope();
            break;
          case Stmt::Kind::If: {
            compileExpr(*s.cond);
            const std::size_t jz = current_->code.size();
            emit({OpCode::JumpZ, 0, Op::Add, 0});
            compileStmt(*s.thenBranch);
            if (s.elseBranch) {
                const std::size_t jend = current_->code.size();
                emit({OpCode::Jump, 0, Op::Add, 0});
                current_->code[jz].imm =
                    static_cast<std::int64_t>(current_->code.size());
                compileStmt(*s.elseBranch);
                current_->code[jend].imm =
                    static_cast<std::int64_t>(current_->code.size());
            } else {
                current_->code[jz].imm =
                    static_cast<std::int64_t>(current_->code.size());
            }
            break;
          }
          case Stmt::Kind::While: {
            const std::size_t top = current_->code.size();
            compileExpr(*s.cond);
            const std::size_t jz = current_->code.size();
            emit({OpCode::JumpZ, 0, Op::Add, 0});
            compileStmt(*s.loopBody);
            emit({OpCode::Jump, static_cast<std::int64_t>(top),
                  Op::Add, 0});
            current_->code[jz].imm =
                static_cast<std::int64_t>(current_->code.size());
            break;
          }
          case Stmt::Kind::For: {
            pushScope();
            if (s.init) {
                compileExpr(*s.init);
                emit({OpCode::Pop, 0, Op::Add, 0});
            }
            const std::size_t top = current_->code.size();
            std::size_t jz = 0;
            const bool hasCond = s.cond != nullptr;
            if (hasCond) {
                compileExpr(*s.cond);
                jz = current_->code.size();
                emit({OpCode::JumpZ, 0, Op::Add, 0});
            }
            compileStmt(*s.loopBody);
            if (s.step) {
                compileExpr(*s.step);
                emit({OpCode::Pop, 0, Op::Add, 0});
            }
            emit({OpCode::Jump, static_cast<std::int64_t>(top),
                  Op::Add, 0});
            if (hasCond) {
                current_->code[jz].imm =
                    static_cast<std::int64_t>(current_->code.size());
            }
            popScope();
            break;
          }
          case Stmt::Kind::Return:
            compileExpr(*s.expr);
            emit({OpCode::Ret, 0, Op::Add, 0});
            break;
          case Stmt::Kind::Decl: {
            const int slot = declareLocal(s.declName);
            if (s.expr) {
                compileExpr(*s.expr);
                emit({OpCode::StoreL, slot, Op::Add, 0});
                emit({OpCode::Pop, 0, Op::Add, 0});
            }
            break;
          }
          case Stmt::Kind::ExprStmt:
            compileExpr(*s.expr);
            emit({OpCode::Pop, 0, Op::Add, 0});
            break;
        }
    }

    const Program &program_;
    runtime::ExecutionContext &ctx_;
    topdown::Machine &m_;
    CompiledFunction *current_ = nullptr;
    const Module *module_ = nullptr;
    std::unordered_map<std::string, std::vector<int>> locals_;
    std::unordered_map<std::string, int> globalSlot_;
    std::vector<std::vector<std::string>> scopes_;
    std::uint64_t visited_ = 0;
    int nextSlot_ = 0;
    int maxSlot_ = 0;
};

} // namespace

Module
compile(const Program &program, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("gcc::codegen", 8200);
    Compiler compiler(program, ctx);
    Module module = compiler.run();
    ctx.consume(static_cast<std::uint64_t>(module.instructionCount()));
    return module;
}

ExecResult
execute(const Module &module, runtime::ExecutionContext &ctx,
        std::uint64_t budget)
{
    auto scope = ctx.method("gcc::vm_execute", 3200);
    auto &m = ctx.machine();

    struct Frame
    {
        int function;
        std::size_t pc;
        std::size_t stackBase;  //!< operand stack floor
        std::size_t localBase;  //!< locals array base
    };

    std::vector<std::int64_t> stack;
    std::vector<std::int64_t> locals;
    std::vector<std::int64_t> globals = module.globalInit;
    std::vector<Frame> frames;

    const auto enter = [&](int fidx, std::int32_t argc) {
        const CompiledFunction &f = module.functions[fidx];
        support::fatalIf(argc != f.paramCount,
                         "vm: bad argument count for ", f.name);
        Frame frame;
        frame.function = fidx;
        frame.pc = 0;
        frame.localBase = locals.size();
        locals.resize(locals.size() + f.localCount, 0);
        // Arguments were pushed left-to-right.
        for (int i = argc - 1; i >= 0; --i) {
            locals[frame.localBase + i] = stack.back();
            stack.pop_back();
        }
        frame.stackBase = stack.size();
        frames.push_back(frame);
    };

    enter(module.mainIndex, 0);
    ExecResult result;

    while (!frames.empty()) {
        Frame &frame = frames.back();
        const CompiledFunction &f = module.functions[frame.function];
        support::fatalIf(frame.pc >= f.code.size(),
                         "vm: fell off the end of ", f.name);
        const Instruction inst = f.code[frame.pc++];
        ++result.executed;
        support::fatalIf(result.executed > budget,
                         "vm: instruction budget exceeded");

        m.load(0x750000000ULL + frame.pc * 16);
        m.indirect(2, static_cast<std::uint64_t>(inst.code));

        switch (inst.code) {
          case OpCode::Push:
            stack.push_back(inst.imm);
            break;
          case OpCode::LoadL:
            stack.push_back(locals[frame.localBase + inst.imm]);
            m.load(0x760000000ULL +
                   (frame.localBase + inst.imm) * 8);
            break;
          case OpCode::StoreL:
            locals[frame.localBase + inst.imm] = stack.back();
            m.store(0x760000000ULL +
                    (frame.localBase + inst.imm) * 8);
            break;
          case OpCode::LoadG:
            stack.push_back(globals[inst.imm]);
            m.load(0x770000000ULL + inst.imm * 8);
            break;
          case OpCode::StoreG:
            globals[inst.imm] = stack.back();
            m.store(0x770000000ULL + inst.imm * 8);
            break;
          case OpCode::Pop:
            stack.pop_back();
            break;
          case OpCode::Binary: {
            const std::int64_t rhs = stack.back();
            stack.pop_back();
            const std::int64_t lhs = stack.back();
            stack.pop_back();
            stack.push_back(evalOp(inst.op, lhs, rhs));
            m.ops(inst.op == Op::Div || inst.op == Op::Mod
                      ? topdown::OpKind::IntDiv
                      : topdown::OpKind::IntAlu,
                  1);
            break;
          }
          case OpCode::Unary: {
            const std::int64_t v = stack.back();
            stack.pop_back();
            stack.push_back(evalOp(inst.op, v, 0));
            break;
          }
          case OpCode::Jump:
            frame.pc = static_cast<std::size_t>(inst.imm);
            m.branch(3, true);
            break;
          case OpCode::JumpZ: {
            const std::int64_t v = stack.back();
            stack.pop_back();
            if (m.branch(4, v == 0))
                frame.pc = static_cast<std::size_t>(inst.imm);
            break;
          }
          case OpCode::Call:
            support::fatalIf(frames.size() > 200,
                             "vm: call stack overflow");
            m.call();
            enter(static_cast<int>(inst.imm), inst.extra);
            break;
          case OpCode::Ret: {
            const std::int64_t value = stack.back();
            stack.resize(frame.stackBase);
            locals.resize(frame.localBase);
            frames.pop_back();
            stack.push_back(value);
            if (frames.empty())
                result.value = value;
            break;
          }
        }
    }

    ctx.consume(static_cast<std::uint64_t>(result.value));
    ctx.consume(result.executed);
    return result;
}

} // namespace alberta::gcc
