#include "benchmarks/gcc/benchmark.h"

#include "benchmarks/gcc/codegen.h"
#include "benchmarks/gcc/generator.h"
#include "benchmarks/gcc/onefile.h"
#include "benchmarks/gcc/optimizer.h"
#include "benchmarks/gcc/parser.h"
#include "support/check.h"

namespace alberta::gcc {

namespace {

runtime::Workload
makeWorkload(const std::string &name, const ProgramConfig &config)
{
    runtime::Workload w;
    w.name = name;
    w.seed = config.seed;
    w.params.set("functions", static_cast<long long>(config.functions));
    w.params.set("style", static_cast<long long>(config.style));
    w.files["input.c"] = generateProgram(config);
    return w;
}

runtime::Workload
makeOneFileWorkload(const std::string &name, const ProgramConfig &config,
                    int units)
{
    runtime::Workload w;
    w.name = name;
    w.seed = config.seed;
    w.params.set("units", static_cast<long long>(units));
    // Merge at generation time, exactly like the Alberta workloads
    // shipped pre-merged single files produced with OneFile.
    runtime::ExecutionContext scratch;
    const auto sources = generateMultiUnitProgram(config, units);
    const OneFileResult merged = oneFileFromSources(sources, scratch);
    w.files["input.c"] = merged.merged.prettyPrint();
    return w;
}

} // namespace

std::vector<runtime::Workload>
GccBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;

    ProgramConfig ref;
    ref.seed = 0x502F;
    ref.functions = 260;
    ref.statementsPerFunction = 14;
    out.push_back(makeWorkload("refrate", ref));

    ProgramConfig train = ref;
    train.seed = 0x5021;
    train.functions = 80;
    out.push_back(makeWorkload("train", train));

    ProgramConfig test = ref;
    test.seed = 0x5022;
    test.functions = 12;
    out.push_back(makeWorkload("test", test));

    // Thirteen single-file Alberta workloads: sizes x styles, like the
    // "large single compilation-unit C programs" collection.
    const ProgramStyle styles[4] = {
        ProgramStyle::LoopHeavy, ProgramStyle::BranchHeavy,
        ProgramStyle::CallHeavy, ProgramStyle::Arithmetic};
    const char *styleNames[4] = {"loops", "branches", "calls", "arith"};
    const int sizes[3] = {60, 140, 240};
    const char *sizeNames[3] = {"small", "medium", "large"};
    for (int s = 0; s < 3; ++s) {
        for (int k = 0; k < 4; ++k) {
            if (s == 2 && k == 3)
                continue; // 11 combinations
            ProgramConfig cfg;
            cfg.seed = 0x5020B0 + s * 8 + k;
            cfg.functions = sizes[s];
            cfg.style = styles[k];
            out.push_back(makeWorkload(
                std::string("alberta.") + sizeNames[s] + "-" +
                    styleNames[k],
                cfg));
        }
    }
    ProgramConfig flat;
    flat.seed = 0x5020C0;
    flat.functions = 100;
    flat.statementsPerFunction = 30;
    out.push_back(makeWorkload("alberta.huge-functions", flat));
    ProgramConfig many;
    many.seed = 0x5020C1;
    many.functions = 420;
    many.statementsPerFunction = 5;
    out.push_back(makeWorkload("alberta.many-functions", many));

    // Three OneFile-merged programs, named after the code bases the
    // paper merged with the tool (mcf, lbm, johnripper).
    ProgramConfig mcfLike;
    mcfLike.seed = 0x5020D0;
    mcfLike.functions = 90;
    mcfLike.style = ProgramStyle::BranchHeavy;
    out.push_back(
        makeOneFileWorkload("alberta.onefile-mcf", mcfLike, 5));
    ProgramConfig lbmLike;
    lbmLike.seed = 0x5020D1;
    lbmLike.functions = 60;
    lbmLike.style = ProgramStyle::Arithmetic;
    out.push_back(
        makeOneFileWorkload("alberta.onefile-lbm", lbmLike, 3));
    ProgramConfig johnLike;
    johnLike.seed = 0x5020D2;
    johnLike.functions = 120;
    johnLike.style = ProgramStyle::LoopHeavy;
    out.push_back(
        makeOneFileWorkload("alberta.onefile-johnripper", johnLike, 8));

    return out;
}

void
GccBenchmark::run(const runtime::Workload &workload,
                  runtime::ExecutionContext &context) const
{
    const std::string &source = workload.file("input.c");
    Program program = parseSource(source, context);
    const OptStats opt = optimize(program, context);
    const Module module = compile(program, context);
    const ExecResult result = execute(module, context);
    context.consume(static_cast<std::uint64_t>(result.value));
    context.consume(opt.foldedExprs + opt.simplified);
    support::fatalIf(module.instructionCount() == 0,
                     "gcc: empty module from '", workload.name, "'");
}

double
GccBenchmark::costHint(const runtime::Workload &workload) const
{
    // Whole-file workloads scale with translation units; synthetic
    // ones with function count, at a per-function cost that depends
    // strongly on the body style (loop bodies compile ~4x heavier
    // than branch ladders, call chains in between).
    if (workload.params.has("units"))
        return 500e3 *
               static_cast<double>(workload.params.getInt("units", 0));
    const double functions =
        static_cast<double>(workload.params.getInt("functions", 0));
    switch (workload.params.getInt("style", 0)) {
    case 1:
        return 600e3 * functions; // loop-heavy bodies
    case 2:
        return 150e3 * functions; // branch ladders
    case 3:
        return 550e3 * functions; // call chains
    case 4:
        return 60e3 * functions; // straight-line arithmetic
    default:
        return 250e3 * functions; // mixed (refrate/train style)
    }
}

} // namespace alberta::gcc
