#include "benchmarks/cactubssn/benchmark.h"

#include "benchmarks/cactubssn/wave.h"
#include "support/check.h"

namespace alberta::cactubssn {

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed,
             const WaveConfig &config)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.files["parameters.par"] = config.serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
CactuBssnBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;

    WaveConfig ref;
    ref.n = 26;
    ref.steps = 40;
    ref.dissipation = 0.1;
    out.push_back(makeWorkload("refrate", 0x507F, ref));

    WaveConfig train = ref;
    train.steps = 5;
    out.push_back(makeWorkload("train", 0x5071, train));

    WaveConfig test = ref;
    test.n = 10;
    test.steps = 2;
    out.push_back(makeWorkload("test", 0x5072, test));

    // Alberta workloads: computational-parameter variations per the
    // benchmark authors' suggestions (grid, CFL, dissipation, initial
    // data, horizon length).
    WaveConfig a;
    a = ref;
    a.n = 16;
    a.cfl = 0.125;
    out.push_back(makeWorkload("alberta.small-cfl", 0xF1, a));
    a = ref;
    a.n = 24;
    a.steps = 10;
    out.push_back(makeWorkload("alberta.fine-grid", 0xF2, a));
    a = ref;
    a.dissipation = 0.0;
    out.push_back(makeWorkload("alberta.no-dissipation", 0xF3, a));
    a = ref;
    a.dissipation = 0.3;
    out.push_back(makeWorkload("alberta.strong-dissipation", 0xF4, a));
    a = ref;
    a.amplitude = 0.1;
    a.width = 0.3;
    out.push_back(makeWorkload("alberta.wide-pulse", 0xF5, a));
    a = ref;
    a.planeWaveInit = true;
    a.modes = 2;
    out.push_back(makeWorkload("alberta.plane-wave", 0xF6, a));
    a = ref;
    a.steps = 32;
    a.n = 14;
    out.push_back(makeWorkload("alberta.long-evolution", 0xF7, a));
    a = ref;
    a.waveSpeed = 0.5;
    a.cfl = 0.4;
    out.push_back(makeWorkload("alberta.slow-wave", 0xF8, a));

    return out;
}

void
CactuBssnBenchmark::run(const runtime::Workload &workload,
                        runtime::ExecutionContext &context) const
{
    WaveConfig config;
    {
        auto scope = context.method("cactus::read_par", 1200);
        config = WaveConfig::parse(workload.file("parameters.par"));
    }
    WaveSolver solver(config);
    const WaveStats stats = solver.run(context);
    support::fatalIf(!(stats.maxU < 1e6),
                     "cactus: evolution blew up on '", workload.name,
                     "'");
    context.consume(stats.pointUpdates);
}

double
CactuBssnBenchmark::costHint(const runtime::Workload &workload) const
{
    // Workload shape is baked into the named evolution setups rather
    // than the parameter bag, so the hint is a per-name size class:
    // most Alberta setups run the full refrate-sized grid; the named
    // exceptions use coarser grids or shorter evolutions.
    const std::string &n = workload.name;
    if (n == "test")
        return 0.34e6;
    if (n == "train" || n == "alberta.long-evolution")
        return 14.8e6;
    if (n == "alberta.fine-grid")
        return 23.2e6;
    if (n == "alberta.small-cfl")
        return 27.5e6;
    return 118e6;
}

} // namespace alberta::cactubssn
