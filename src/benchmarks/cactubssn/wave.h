/**
 * @file
 * 3D first-order wave-equation solver for the 507.cactuBSSN_r
 * mini-benchmark: fourth-order centered finite differences, RK4 time
 * integration, Kreiss-Oliger dissipation, and periodic boundaries —
 * the numerical skeleton of the EinsteinToolkit vacuum evolution with
 * a pair of evolved grid functions standing in for the BSSN system.
 */
#ifndef ALBERTA_BENCHMARKS_CACTUBSSN_WAVE_H
#define ALBERTA_BENCHMARKS_CACTUBSSN_WAVE_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace alberta::cactubssn {

/** Solver parameters (the workload's parameter file). */
struct WaveConfig
{
    int n = 16;             //!< grid points per dimension
    int steps = 8;          //!< RK4 time steps
    double cfl = 0.25;      //!< dt = cfl * dx
    double waveSpeed = 1.0;
    double dissipation = 0.0;   //!< Kreiss-Oliger epsilon
    double amplitude = 1.0;     //!< initial Gaussian amplitude
    double width = 0.15;        //!< initial Gaussian width
    int modes = 1;              //!< plane-wave mode number (tests)
    bool planeWaveInit = false; //!< analytic-comparison initial data

    /** Serialize as a Cactus-like "key = value" parameter file. */
    std::string serialize() const;

    /** Parse the parameter-file format. */
    static WaveConfig parse(const std::string &text);
};

/** Evolution diagnostics. */
struct WaveStats
{
    double energy = 0.0;       //!< discrete energy integral
    double maxU = 0.0;         //!< max |u| at the final time
    double l2ErrorVsExact = 0.0; //!< plane-wave runs only
    std::uint64_t pointUpdates = 0;
};

/** The solver. */
class WaveSolver
{
  public:
    explicit WaveSolver(const WaveConfig &config);

    /** Evolve the configured number of steps. */
    WaveStats run(runtime::ExecutionContext &ctx);

  private:
    void rhs(const std::vector<double> &u, const std::vector<double> &v,
             std::vector<double> &du, std::vector<double> &dv,
             runtime::ExecutionContext &ctx) const;
    double energy(const std::vector<double> &u,
                  const std::vector<double> &v) const;

    WaveConfig config_;
    int n_;
    double dx_, dt_;
    std::vector<double> u_, v_;
};

} // namespace alberta::cactubssn

#endif // ALBERTA_BENCHMARKS_CACTUBSSN_WAVE_H
