#include "benchmarks/cactubssn/wave.h"

#include <cmath>
#include <numbers>
#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::cactubssn {

std::string
WaveConfig::serialize() const
{
    std::ostringstream os;
    os.precision(17);
    os << "grid::n = " << n << '\n';
    os << "evolve::steps = " << steps << '\n';
    os << "evolve::cfl = " << cfl << '\n';
    os << "evolve::wave_speed = " << waveSpeed << '\n';
    os << "evolve::dissipation = " << dissipation << '\n';
    os << "init::amplitude = " << amplitude << '\n';
    os << "init::width = " << width << '\n';
    os << "init::modes = " << modes << '\n';
    os << "init::plane_wave = " << (planeWaveInit ? 1 : 0) << '\n';
    return os.str();
}

WaveConfig
WaveConfig::parse(const std::string &text)
{
    WaveConfig cfg;
    for (const auto &line : support::split(text, '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        const auto eq = trimmed.find('=');
        support::fatalIf(eq == std::string_view::npos,
                         "cactus: malformed parameter line: '",
                         std::string(trimmed), "'");
        const std::string key(support::trim(trimmed.substr(0, eq)));
        const std::string value(
            support::trim(trimmed.substr(eq + 1)));
        if (key == "grid::n")
            cfg.n = static_cast<int>(support::parseInt(value));
        else if (key == "evolve::steps")
            cfg.steps = static_cast<int>(support::parseInt(value));
        else if (key == "evolve::cfl")
            cfg.cfl = support::parseDouble(value);
        else if (key == "evolve::wave_speed")
            cfg.waveSpeed = support::parseDouble(value);
        else if (key == "evolve::dissipation")
            cfg.dissipation = support::parseDouble(value);
        else if (key == "init::amplitude")
            cfg.amplitude = support::parseDouble(value);
        else if (key == "init::width")
            cfg.width = support::parseDouble(value);
        else if (key == "init::modes")
            cfg.modes = static_cast<int>(support::parseInt(value));
        else if (key == "init::plane_wave")
            cfg.planeWaveInit = support::parseInt(value) != 0;
        else
            support::fatal("cactus: unknown parameter '", key, "'");
    }
    support::fatalIf(cfg.n < 8, "cactus: grid too small");
    support::fatalIf(cfg.cfl <= 0 || cfg.cfl > 0.5,
                     "cactus: cfl out of (0, 0.5]");
    return cfg;
}

WaveSolver::WaveSolver(const WaveConfig &config)
    : config_(config), n_(config.n), dx_(1.0 / config.n),
      dt_(config.cfl * dx_)
{
    const std::size_t points =
        static_cast<std::size_t>(n_) * n_ * n_;
    u_.assign(points, 0.0);
    v_.assign(points, 0.0);

    const double twoPi = 2.0 * std::numbers::pi;
    for (int z = 0; z < n_; ++z) {
        for (int y = 0; y < n_; ++y) {
            for (int x = 0; x < n_; ++x) {
                const std::size_t i =
                    x + static_cast<std::size_t>(n_) *
                            (y + static_cast<std::size_t>(n_) * z);
                const double px = (x + 0.5) * dx_ - 0.5;
                const double py = (y + 0.5) * dx_ - 0.5;
                const double pz = (z + 0.5) * dx_ - 0.5;
                if (config.planeWaveInit) {
                    const double k = twoPi * config.modes;
                    u_[i] = config.amplitude *
                            std::sin(k * (x + 0.5) * dx_);
                    v_[i] = -config.amplitude * config.waveSpeed * k *
                            std::cos(k * (x + 0.5) * dx_);
                } else {
                    const double r2 = px * px + py * py + pz * pz;
                    u_[i] = config.amplitude *
                            std::exp(-r2 / (config.width *
                                            config.width));
                    v_[i] = 0.0;
                }
            }
        }
    }
}

void
WaveSolver::rhs(const std::vector<double> &u,
                const std::vector<double> &v, std::vector<double> &du,
                std::vector<double> &dv,
                runtime::ExecutionContext &ctx) const
{
    auto &m = ctx.machine();
    const double c2 = config_.waveSpeed * config_.waveSpeed;
    const double invDx2 = 1.0 / (dx_ * dx_);
    const double eps = config_.dissipation;

    const auto wrap = [&](int a) { return (a + 2 * n_) % n_; };
    const auto at = [&](const std::vector<double> &field, int x, int y,
                        int z) {
        return field[wrap(x) +
                     static_cast<std::size_t>(n_) *
                         (wrap(y) +
                          static_cast<std::size_t>(n_) * wrap(z))];
    };

    for (int z = 0; z < n_; ++z) {
        for (int y = 0; y < n_; ++y) {
            for (int x = 0; x < n_; ++x) {
                const std::size_t i =
                    x + static_cast<std::size_t>(n_) *
                            (y + static_cast<std::size_t>(n_) * z);
                // Fourth-order Laplacian stencil per dimension.
                double lap = 0.0;
                const double center = u[i];
                lap += (-at(u, x + 2, y, z) +
                        16 * at(u, x + 1, y, z) - 30 * center +
                        16 * at(u, x - 1, y, z) -
                        at(u, x - 2, y, z));
                lap += (-at(u, x, y + 2, z) +
                        16 * at(u, x, y + 1, z) - 30 * center +
                        16 * at(u, x, y - 1, z) -
                        at(u, x, y - 2, z));
                lap += (-at(u, x, y, z + 2) +
                        16 * at(u, x, y, z + 1) - 30 * center +
                        16 * at(u, x, y, z - 1) -
                        at(u, x, y, z - 2));
                lap *= invDx2 / 12.0;

                du[i] = v[i];
                dv[i] = c2 * lap;

                if (eps > 0.0) {
                    // Kreiss-Oliger 4th-derivative damping on u and v.
                    const auto ko = [&](const std::vector<double>
                                            &field) {
                        double total = 0.0;
                        total += at(field, x + 2, y, z) -
                                 4 * at(field, x + 1, y, z) +
                                 6 * field[i] -
                                 4 * at(field, x - 1, y, z) +
                                 at(field, x - 2, y, z);
                        total += at(field, x, y + 2, z) -
                                 4 * at(field, x, y + 1, z) +
                                 6 * field[i] -
                                 4 * at(field, x, y - 1, z) +
                                 at(field, x, y - 2, z);
                        total += at(field, x, y, z + 2) -
                                 4 * at(field, x, y, z + 1) +
                                 6 * field[i] -
                                 4 * at(field, x, y, z - 1) +
                                 at(field, x, y, z - 2);
                        return total;
                    };
                    du[i] -= eps / 16.0 / dt_ * ko(u) * dt_;
                    dv[i] -= eps / 16.0 / dt_ * ko(v) * dt_;
                }

                if ((i & 7) == 0) {
                    m.stream(topdown::OpKind::Load, i * 8, 16, 8);
                    m.ops(topdown::OpKind::FpAdd, 8 * 30);
                    m.ops(topdown::OpKind::FpMul, 8 * 10);
                }
            }
        }
    }
}

double
WaveSolver::energy(const std::vector<double> &u,
                   const std::vector<double> &v) const
{
    // E = 1/2 int (v^2 + c^2 |grad u|^2), 2nd-order gradient.
    const double c2 = config_.waveSpeed * config_.waveSpeed;
    const auto wrap = [&](int a) { return (a + n_) % n_; };
    const auto at = [&](const std::vector<double> &field, int x, int y,
                        int z) {
        return field[wrap(x) +
                     static_cast<std::size_t>(n_) *
                         (wrap(y) +
                          static_cast<std::size_t>(n_) * wrap(z))];
    };
    double total = 0.0;
    for (int z = 0; z < n_; ++z) {
        for (int y = 0; y < n_; ++y) {
            for (int x = 0; x < n_; ++x) {
                const std::size_t i =
                    x + static_cast<std::size_t>(n_) *
                            (y + static_cast<std::size_t>(n_) * z);
                const double gx = (at(u, x + 1, y, z) -
                                   at(u, x - 1, y, z)) /
                                  (2 * dx_);
                const double gy = (at(u, x, y + 1, z) -
                                   at(u, x, y - 1, z)) /
                                  (2 * dx_);
                const double gz = (at(u, x, y, z + 1) -
                                   at(u, x, y, z - 1)) /
                                  (2 * dx_);
                total += 0.5 * (v[i] * v[i] +
                                c2 * (gx * gx + gy * gy + gz * gz));
            }
        }
    }
    return total * dx_ * dx_ * dx_;
}

WaveStats
WaveSolver::run(runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("cactus::evolve", 4600);
    const std::size_t points = u_.size();
    std::vector<double> k1u(points), k1v(points), k2u(points),
        k2v(points), k3u(points), k3v(points), k4u(points),
        k4v(points), tu(points), tv(points);

    for (int step = 0; step < config_.steps; ++step) {
        rhs(u_, v_, k1u, k1v, ctx);
        for (std::size_t i = 0; i < points; ++i) {
            tu[i] = u_[i] + 0.5 * dt_ * k1u[i];
            tv[i] = v_[i] + 0.5 * dt_ * k1v[i];
        }
        rhs(tu, tv, k2u, k2v, ctx);
        for (std::size_t i = 0; i < points; ++i) {
            tu[i] = u_[i] + 0.5 * dt_ * k2u[i];
            tv[i] = v_[i] + 0.5 * dt_ * k2v[i];
        }
        rhs(tu, tv, k3u, k3v, ctx);
        for (std::size_t i = 0; i < points; ++i) {
            tu[i] = u_[i] + dt_ * k3u[i];
            tv[i] = v_[i] + dt_ * k3v[i];
        }
        rhs(tu, tv, k4u, k4v, ctx);
        for (std::size_t i = 0; i < points; ++i) {
            u_[i] += dt_ / 6.0 *
                     (k1u[i] + 2 * k2u[i] + 2 * k3u[i] + k4u[i]);
            v_[i] += dt_ / 6.0 *
                     (k1v[i] + 2 * k2v[i] + 2 * k3v[i] + k4v[i]);
        }
    }

    WaveStats stats;
    stats.energy = energy(u_, v_);
    for (const double value : u_)
        stats.maxU = std::max(stats.maxU, std::abs(value));
    stats.pointUpdates =
        static_cast<std::uint64_t>(points) * config_.steps * 4;

    if (config_.planeWaveInit) {
        // Exact solution: u = A sin(k x - c k t).
        const double twoPi = 2.0 * std::numbers::pi;
        const double k = twoPi * config_.modes;
        const double t = config_.steps * dt_;
        double err2 = 0.0;
        for (int z = 0; z < n_; ++z) {
            for (int y = 0; y < n_; ++y) {
                for (int x = 0; x < n_; ++x) {
                    const std::size_t i =
                        x + static_cast<std::size_t>(n_) *
                                (y + static_cast<std::size_t>(n_) *
                                         z);
                    const double exact =
                        config_.amplitude *
                        std::sin(k * ((x + 0.5) * dx_ -
                                      config_.waveSpeed * t));
                    err2 += (u_[i] - exact) * (u_[i] - exact);
                }
            }
        }
        stats.l2ErrorVsExact =
            std::sqrt(err2 / static_cast<double>(points));
    }

    ctx.consume(stats.energy);
    ctx.consume(stats.maxU);
    return stats;
}

} // namespace alberta::cactubssn
