/**
 * @file
 * The 507.cactuBSSN_r mini-benchmark: vacuum wave evolution with
 * parameter-file workloads following the benchmark authors' suggested
 * computational-parameter variations.
 */
#ifndef ALBERTA_BENCHMARKS_CACTUBSSN_BENCHMARK_H
#define ALBERTA_BENCHMARKS_CACTUBSSN_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::cactubssn {

/** See file comment. */
class CactuBssnBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "507.cactuBSSN_r"; }
    std::string area() const override
    {
        return "Physics: relativity (Einstein equations)";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::cactubssn

#endif // ALBERTA_BENCHMARKS_CACTUBSSN_BENCHMARK_H
