#include "benchmarks/xz/generator.h"

#include <array>
#include <cstring>
#include <string>

#include "support/check.h"
#include "support/rng.h"

namespace alberta::xz {

namespace {

const std::array<const char *, 32> kVocabulary = {
    "the",     "workload", "benchmark", "system",  "compiler",
    "cache",   "branch",   "profile",   "vector",  "stream",
    "window",  "buffer",   "lattice",   "network", "packet",
    "kernel",  "thread",   "memory",    "record",  "index",
    "search",  "matrix",   "signal",    "filter",  "render",
    "shader",  "cycle",    "retire",    "issue",   "fetch",
    "decode",  "commit"};

void
appendText(std::vector<std::uint8_t> &out, std::size_t bytes,
           support::Rng &rng)
{
    while (out.size() < bytes) {
        const char *word = kVocabulary[rng.below(kVocabulary.size())];
        out.insert(out.end(), word, word + std::strlen(word));
        out.push_back(rng.chance(0.12) ? '\n' : ' ');
    }
    out.resize(bytes);
}

void
appendLog(std::vector<std::uint8_t> &out, std::size_t bytes,
          support::Rng &rng)
{
    std::uint64_t timestamp = 1500000000;
    while (out.size() < bytes) {
        timestamp += rng.below(20);
        std::string line = "[" + std::to_string(timestamp) + "] ";
        line += rng.chance(0.85) ? "INFO" : "WARN";
        line += " service=frontend request=/api/v1/resource status=";
        line += rng.chance(0.9) ? "200" : "503";
        line += " latency_ms=" + std::to_string(rng.below(250)) + "\n";
        out.insert(out.end(), line.begin(), line.end());
    }
    out.resize(bytes);
}

void
appendBinary(std::vector<std::uint8_t> &out, std::size_t bytes,
             support::Rng &rng)
{
    // 32-byte records: constant tag, incrementing id, noisy payload.
    std::uint32_t id = 0;
    while (out.size() < bytes) {
        out.push_back(0xCA);
        out.push_back(0xFE);
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<std::uint8_t>(id >> (8 * i)));
        ++id;
        for (int i = 0; i < 10; ++i)
            out.push_back(static_cast<std::uint8_t>(rng.below(4)));
        for (int i = 0; i < 16; ++i)
            out.push_back(static_cast<std::uint8_t>(rng.below(256)));
    }
    out.resize(bytes);
}

void
appendRandom(std::vector<std::uint8_t> &out, std::size_t bytes,
             support::Rng &rng)
{
    while (out.size() < bytes)
        out.push_back(static_cast<std::uint8_t>(rng.below(256)));
}

} // namespace

std::vector<std::uint8_t>
generateFile(const FileConfig &config)
{
    support::fatalIf(config.bytes == 0, "xz: zero-byte workload file");
    support::Rng rng(config.seed);
    std::vector<std::uint8_t> out;
    out.reserve(config.bytes);

    switch (config.kind) {
      case ContentKind::Text:
        appendText(out, config.bytes, rng);
        break;
      case ContentKind::Log:
        appendLog(out, config.bytes, rng);
        break;
      case ContentKind::Binary:
        appendBinary(out, config.bytes, rng);
        break;
      case ContentKind::Random:
        appendRandom(out, config.bytes, rng);
        break;
      case ContentKind::RepeatedFile: {
        // The paper's memoization-sensitive construction: repeat one
        // short unit until the target size.
        std::vector<std::uint8_t> unit;
        support::Rng unitRng = rng.fork(1);
        if (config.repeatUnitKind == ContentKind::Random)
            appendRandom(unit, config.repeatUnit, unitRng);
        else
            appendText(unit, config.repeatUnit, unitRng);
        while (out.size() < config.bytes) {
            const std::size_t take =
                std::min(unit.size(), config.bytes - out.size());
            out.insert(out.end(), unit.begin(), unit.begin() + take);
        }
        break;
      }
    }
    return out;
}

} // namespace alberta::xz
