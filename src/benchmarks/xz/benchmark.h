/**
 * @file
 * The 557.xz_r mini-benchmark: decompress -> compress -> decompress over
 * files whose redundancy structure interacts with the dictionary size.
 */
#ifndef ALBERTA_BENCHMARKS_XZ_BENCHMARK_H
#define ALBERTA_BENCHMARKS_XZ_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::xz {

/** See file comment. */
class XzBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "557.xz_r"; }
    std::string area() const override { return "Data compression"; }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::xz

#endif // ALBERTA_BENCHMARKS_XZ_BENCHMARK_H
