/**
 * @file
 * Sliding-window LZ77 codec for the 557.xz_r mini-benchmark.
 *
 * Implements the behaviour the paper's Section IV-A analysis hinges on:
 * a dictionary (sliding window) plus look-ahead buffer, with a
 * hash-chain match finder whose work shifts between literal encoding
 * and dictionary lookups depending on how the input's redundancy
 * interacts with the dictionary size.
 */
#ifndef ALBERTA_BENCHMARKS_XZ_LZ77_H
#define ALBERTA_BENCHMARKS_XZ_LZ77_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace alberta::xz {

/** Codec parameters. */
struct CodecConfig
{
    std::uint32_t dictionaryBytes = 1 << 16; //!< sliding-window size
    std::uint32_t minMatch = 4;              //!< shortest coded match
    std::uint32_t maxMatch = 273;            //!< longest coded match
    std::uint32_t maxChainDepth = 48;        //!< match-finder effort
};

/** Compression outcome statistics. */
struct CompressStats
{
    std::uint64_t literals = 0;     //!< bytes emitted as literals
    std::uint64_t matches = 0;      //!< match tokens emitted
    std::uint64_t matchedBytes = 0; //!< bytes covered by matches
    std::uint64_t chainSteps = 0;   //!< dictionary chain nodes visited
};

/**
 * Compress @p input, reporting micro-ops through @p ctx.
 *
 * The output stream is self-describing: a small header holding the
 * dictionary size followed by literal/match tokens with varint fields.
 */
std::vector<std::uint8_t> compress(const std::vector<std::uint8_t> &input,
                                   const CodecConfig &config,
                                   runtime::ExecutionContext &ctx,
                                   CompressStats *stats = nullptr);

/**
 * Decompress a stream produced by @ref compress.
 *
 * @throws support::FatalError on a corrupt stream
 */
std::vector<std::uint8_t>
decompress(const std::vector<std::uint8_t> &stream,
           runtime::ExecutionContext &ctx);

} // namespace alberta::xz

#endif // ALBERTA_BENCHMARKS_XZ_LZ77_H
