/**
 * @file
 * Workload file synthesizer for the 557.xz_r mini-benchmark.
 *
 * Reproduces the Alberta workload design of Section IV-A: files that
 * are very compressible and files that are barely compressible, both
 * smaller and larger than the codec dictionary, plus the
 * repeated-short-file construction whose interaction with the sliding
 * window the paper discovered to skew execution toward dictionary
 * lookups.
 */
#ifndef ALBERTA_BENCHMARKS_XZ_GENERATOR_H
#define ALBERTA_BENCHMARKS_XZ_GENERATOR_H

#include <cstdint>
#include <vector>

namespace alberta::xz {

/** Content classes for synthesized files. */
enum class ContentKind
{
    Text,        //!< anglophone-looking text from a small vocabulary
    Log,         //!< highly redundant structured log lines
    Binary,      //!< mildly structured binary records
    Random,      //!< incompressible random bytes
    RepeatedFile //!< one short file repeated until the target size
};

/** Generator knobs. */
struct FileConfig
{
    std::uint64_t seed = 1;
    ContentKind kind = ContentKind::Text;
    std::size_t bytes = 1 << 16;      //!< target file size
    std::size_t repeatUnit = 1 << 12; //!< unit size for RepeatedFile
    /** Content of the repeated unit (Text = internally compressible,
     * Random = redundancy exists only across repetitions). */
    ContentKind repeatUnitKind = ContentKind::Text;
};

/** Synthesize a file with the requested redundancy structure. */
std::vector<std::uint8_t> generateFile(const FileConfig &config);

} // namespace alberta::xz

#endif // ALBERTA_BENCHMARKS_XZ_GENERATOR_H
