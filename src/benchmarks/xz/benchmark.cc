#include "benchmarks/xz/benchmark.h"

#include "benchmarks/xz/generator.h"
#include "benchmarks/xz/lz77.h"
#include "support/check.h"

namespace alberta::xz {

namespace {

std::string
toString(const std::vector<std::uint8_t> &bytes)
{
    return std::string(bytes.begin(), bytes.end());
}

std::vector<std::uint8_t>
toBytes(const std::string &text)
{
    return std::vector<std::uint8_t>(text.begin(), text.end());
}

runtime::Workload
makeWorkload(const std::string &name, const FileConfig &file,
             std::uint32_t chainDepth = 48)
{
    runtime::Workload w;
    w.name = name;
    w.seed = file.seed;
    w.params.set("bytes", static_cast<long long>(file.bytes));
    w.params.set("kind", static_cast<long long>(file.kind));
    w.params.set("chain_depth", static_cast<long long>(chainDepth));

    // Workloads ship compressed, exactly like SPEC's xz inputs.
    const std::vector<std::uint8_t> raw = generateFile(file);
    runtime::ExecutionContext scratch;
    CodecConfig codec;
    w.files["input.alz"] = toString(compress(raw, codec, scratch));
    return w;
}

} // namespace

std::vector<runtime::Workload>
XzBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;
    const std::size_t dict = CodecConfig{}.dictionaryBytes; // 64 KiB

    FileConfig ref;
    ref.seed = 0x557A0;
    ref.kind = ContentKind::Log;
    ref.bytes = 24 * dict;
    out.push_back(makeWorkload("refrate", ref));

    FileConfig train = ref;
    train.seed = 0x557A1;
    train.bytes = 6 * dict;
    out.push_back(makeWorkload("train", train));

    FileConfig test = ref;
    test.seed = 0x557A2;
    test.bytes = dict / 2;
    out.push_back(makeWorkload("test", test));

    // The eight Alberta workloads: {very compressible, not very
    // compressible} x {smaller, larger than the dictionary} plus
    // content-class variants.
    FileConfig a;
    a.seed = 0xB1;
    a.kind = ContentKind::Text;
    a.bytes = dict / 2;
    out.push_back(makeWorkload("alberta.text-small", a));

    a.seed = 0xB2;
    a.bytes = 10 * dict;
    out.push_back(makeWorkload("alberta.text-large", a));

    a.seed = 0xB3;
    a.kind = ContentKind::Random;
    a.bytes = dict / 2;
    out.push_back(makeWorkload("alberta.random-small", a));

    a.seed = 0xB4;
    a.bytes = 8 * dict;
    out.push_back(makeWorkload("alberta.random-large", a));

    a.seed = 0xB5;
    a.kind = ContentKind::Log;
    a.bytes = 12 * dict;
    out.push_back(makeWorkload("alberta.log-large", a));

    a.seed = 0xB6;
    a.kind = ContentKind::Binary;
    a.bytes = 8 * dict;
    out.push_back(makeWorkload("alberta.binary-large", a));

    // Repeat unit far smaller than the dictionary: every copy after the
    // first is one long dictionary match (the discovered skew).
    FileConfig rep;
    rep.seed = 0xB7;
    rep.kind = ContentKind::RepeatedFile;
    rep.repeatUnitKind = ContentKind::Random;
    rep.repeatUnit = dict / 16;
    rep.bytes = 10 * dict;
    out.push_back(makeWorkload("alberta.repeat-in-dict", rep));

    // Repeat unit larger than the dictionary: previous copies fall out
    // of the window, so redundancy must be rediscovered locally.
    rep.seed = 0xB8;
    rep.repeatUnit = 3 * dict;
    rep.bytes = 9 * dict;
    out.push_back(makeWorkload("alberta.repeat-beyond-dict", rep));

    FileConfig mixed;
    mixed.seed = 0xB9;
    mixed.kind = ContentKind::Binary;
    mixed.bytes = dict / 4;
    out.push_back(makeWorkload("alberta.binary-small", mixed));

    return out;
}

void
XzBenchmark::run(const runtime::Workload &workload,
                 runtime::ExecutionContext &context) const
{
    const auto stored = toBytes(workload.file("input.alz"));

    // Pass 1: decompress the stored input to memory.
    const std::vector<std::uint8_t> raw = decompress(stored, context);

    // Pass 2: recompress at the workload's effort level.
    CodecConfig codec;
    codec.maxChainDepth = static_cast<std::uint32_t>(
        workload.params.getInt("chain_depth", 48));
    CompressStats stats;
    const std::vector<std::uint8_t> packed =
        compress(raw, codec, context, &stats);

    // Pass 3: decompress again and verify the round trip.
    const std::vector<std::uint8_t> again = decompress(packed, context);
    support::fatalIf(again != raw, "xz: round-trip mismatch on '",
                     workload.name, "'");

    context.consume(static_cast<std::uint64_t>(packed.size()));
    context.consume(stats.chainSteps);
    context.consume(stats.matches);
}

double
XzBenchmark::costHint(const runtime::Workload &workload) const
{
    // Linear in input bytes; the per-byte cost tracks match density:
    // compressible text spends the most time extending matches,
    // incompressible random data the least.
    const double bytes =
        static_cast<double>(workload.params.getInt("bytes", 0));
    switch (workload.params.getInt("kind", 1)) {
    case 0:
        return 30.0 * bytes; // text
    case 2:
        return 28.0 * bytes; // binary
    case 3:
        return 20.0 * bytes; // random
    case 4:
        return 15.0 * bytes; // repeated blocks
    default:
        return 10.0 * bytes; // logs / mixed (refrate)
    }
}

} // namespace alberta::xz
