#include "benchmarks/xz/lz77.h"

#include <algorithm>

#include "support/check.h"

namespace alberta::xz {

namespace {

constexpr std::uint8_t kMagic0 = 0xA7;
constexpr std::uint8_t kMagic1 = 0x5A;
constexpr std::uint32_t kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;
constexpr std::uint32_t kNoPos = 0xffffffffu;

std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    __builtin_memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t
getVarint(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
        support::fatalIf(pos >= in.size(), "xz: truncated varint");
        const std::uint8_t byte = in[pos++];
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        support::fatalIf(shift > 63, "xz: oversized varint");
    }
}

} // namespace

std::vector<std::uint8_t>
compress(const std::vector<std::uint8_t> &input, const CodecConfig &config,
         runtime::ExecutionContext &ctx, CompressStats *stats)
{
    auto &m = ctx.machine();
    CompressStats local;

    std::vector<std::uint8_t> out;
    out.reserve(input.size() / 2 + 64);
    out.push_back(kMagic0);
    out.push_back(kMagic1);
    {
        auto scope = ctx.method("xz::write_header", 400);
        putVarint(out, config.dictionaryBytes);
        putVarint(out, input.size());
    }

    std::vector<std::uint32_t> hashHead(kHashSize, kNoPos);
    std::vector<std::uint32_t> chain(input.size(), kNoPos);

    const std::uint64_t winBase = 0x100000000ULL;  // window addresses
    const std::uint64_t chainBase = 0x200000000ULL;

    std::size_t pos = 0;
    std::size_t literalRun = 0;
    std::vector<std::uint8_t> literals;

    const auto flushLiterals = [&] {
        if (literalRun == 0)
            return;
        auto scope = ctx.method("xz::emit_literals", 900);
        putVarint(out, (literalRun << 1) | 0); // tag 0: literal run
        out.insert(out.end(), literals.end() - literalRun,
                   literals.end());
        m.stream(topdown::OpKind::Store, winBase + out.size(),
                 literalRun, 1);
        local.literals += literalRun;
        literalRun = 0;
        literals.clear();
    };

    while (pos < input.size()) {
        std::uint32_t bestLen = 0;
        std::uint32_t bestDist = 0;

        if (pos + config.minMatch <= input.size()) {
            auto scope = ctx.method("xz::find_match", 2600);
            const std::uint32_t h = hash4(&input[pos]);
            m.ops(topdown::OpKind::IntMul, 1);
            std::uint32_t candidate = hashHead[h];
            m.load(chainBase + h * 4);
            std::uint32_t depth = 0;
            const std::size_t limit =
                pos > config.dictionaryBytes
                    ? pos - config.dictionaryBytes
                    : 0;
            while (candidate != kNoPos && depth < config.maxChainDepth) {
                ++local.chainSteps;
                ++depth;
                if (m.branch(1, candidate < limit))
                    break; // left the dictionary window
                // Compare candidate and current look-ahead.
                const std::uint8_t *a = &input[candidate];
                const std::uint8_t *b = &input[pos];
                const std::size_t maxLen = std::min<std::size_t>(
                    config.maxMatch, input.size() - pos);
                std::uint32_t len = 0;
                m.load(winBase + candidate);
                m.load(winBase + pos);
                // Data-dependent comparison branches: the dominant
                // mispredict source in match finders.
                m.branch(4, maxLen > 0 && a[0] == b[0]);
                while (len < maxLen && a[len] == b[len]) {
                    ++len;
                    if ((len & 7) == 0) {
                        m.ops(topdown::OpKind::IntAlu, 2);
                        m.branch(5, a[len - 1] == b[len - 1]);
                    }
                }
                m.branch(2, len >= config.minMatch);
                if (len >= config.minMatch && len > bestLen) {
                    // No early exit at maxMatch: like LZMA's bt4
                    // finder the search keeps walking the chain for
                    // the best candidate, which is what makes
                    // dictionary-resident repetition lookup-bound
                    // (the paper's Section IV-A discovery).
                    bestLen = len;
                    bestDist = static_cast<std::uint32_t>(pos -
                                                          candidate);
                }
                candidate = chain[candidate];
                m.load(chainBase + 0x1000000 + candidate * 4ULL);
            }
        }

        if (bestLen >= config.minMatch) {
            flushLiterals();
            auto scope = ctx.method("xz::emit_match", 1100);
            putVarint(out, (static_cast<std::uint64_t>(bestLen) << 1) |
                               1); // tag 1: match
            putVarint(out, bestDist);
            m.ops(topdown::OpKind::IntAlu, 6);
            ++local.matches;
            local.matchedBytes += bestLen;
            // Insert every covered position into the dictionary.
            auto scope2 = ctx.method("xz::hash_insert", 700);
            const std::size_t end =
                std::min(pos + bestLen, input.size() - 3);
            for (std::size_t p = pos; p < end; ++p) {
                const std::uint32_t h = hash4(&input[p]);
                chain[p] = hashHead[h];
                hashHead[h] = static_cast<std::uint32_t>(p);
                m.store(chainBase + h * 4);
                // Adaptive bit-model update branch (LZMA codes every
                // position through data-dependent probability bits).
                m.branch(6, (input[p] & 1) != 0);
            }
            pos += bestLen;
        } else {
            auto scope = ctx.method("xz::hash_insert", 700);
            literals.push_back(input[pos]);
            ++literalRun;
            if (pos + 4 <= input.size()) {
                const std::uint32_t h = hash4(&input[pos]);
                chain[pos] = hashHead[h];
                hashHead[h] = static_cast<std::uint32_t>(pos);
                m.store(chainBase + h * 4);
            }
            m.load(winBase + pos);
            m.branch(6, (input[pos] & 1) != 0); // bit-model update
            ++pos;
        }
    }
    flushLiterals();

    if (stats)
        *stats = local;
    ctx.consume(static_cast<std::uint64_t>(out.size()));
    return out;
}

std::vector<std::uint8_t>
decompress(const std::vector<std::uint8_t> &stream,
           runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("xz::decompress", 2000);
    auto &m = ctx.machine();

    support::fatalIf(stream.size() < 4 || stream[0] != kMagic0 ||
                         stream[1] != kMagic1,
                     "xz: bad stream magic");
    std::size_t pos = 2;
    const std::uint64_t dict = getVarint(stream, pos);
    const std::uint64_t rawSize = getVarint(stream, pos);
    support::fatalIf(dict == 0, "xz: zero dictionary");

    std::vector<std::uint8_t> out;
    out.reserve(rawSize);
    const std::uint64_t outBase = 0x300000000ULL;

    while (pos < stream.size()) {
        const std::uint64_t token = getVarint(stream, pos);
        m.ops(topdown::OpKind::IntAlu, 3);
        if (m.branch(1, (token & 1) == 0)) {
            const std::uint64_t run = token >> 1;
            support::fatalIf(pos + run > stream.size(),
                             "xz: truncated literal run");
            out.insert(out.end(), stream.begin() + pos,
                       stream.begin() + pos + run);
            m.stream(topdown::OpKind::Load, outBase + pos, run, 1);
            pos += run;
        } else {
            const std::uint64_t len = token >> 1;
            const std::uint64_t dist = getVarint(stream, pos);
            support::fatalIf(dist == 0 || dist > out.size(),
                             "xz: match distance out of range");
            support::fatalIf(dist > dict,
                             "xz: match distance beyond dictionary");
            std::size_t src = out.size() - dist;
            for (std::uint64_t i = 0; i < len; ++i) {
                out.push_back(out[src + i]);
                if ((i & 15) == 0)
                    m.load(outBase + src + i);
            }
            m.ops(topdown::OpKind::IntAlu, len / 4 + 1);
        }
    }
    support::fatalIf(out.size() != rawSize,
                     "xz: size mismatch after decompression: ",
                     out.size(), " vs ", rawSize);
    ctx.consume(static_cast<std::uint64_t>(out.size()));
    return out;
}

} // namespace alberta::xz
