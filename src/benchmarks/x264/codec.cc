#include "benchmarks/x264/codec.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/check.h"

namespace alberta::x264 {

namespace {

constexpr std::uint8_t kMagic = 0xC4;
constexpr int kMb = 16; //!< macroblock size

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t
getVarint(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
        support::fatalIf(pos >= in.size(), "x264: truncated stream");
        const std::uint8_t byte = in[pos++];
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        support::fatalIf(shift > 63, "x264: oversized varint");
    }
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** 1D 8-point Hadamard butterfly (involution up to scaling). */
void
hadamard8(const std::int32_t in[8], std::int32_t out[8])
{
    std::int32_t a[8];
    for (int i = 0; i < 4; ++i) {
        a[i] = in[i] + in[i + 4];
        a[i + 4] = in[i] - in[i + 4];
    }
    std::int32_t b[8];
    for (int half = 0; half < 8; half += 4) {
        for (int i = 0; i < 2; ++i) {
            b[half + i] = a[half + i] + a[half + i + 2];
            b[half + i + 2] = a[half + i] - a[half + i + 2];
        }
    }
    for (int pair = 0; pair < 8; pair += 2) {
        out[pair] = b[pair] + b[pair + 1];
        out[pair + 1] = b[pair] - b[pair + 1];
    }
}

void
transform2d(const std::int32_t in[64], std::int32_t out[64])
{
    std::int32_t tmp[64];
    std::int32_t row[8], res[8];
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c)
            row[c] = in[r * 8 + c];
        hadamard8(row, res);
        for (int c = 0; c < 8; ++c)
            tmp[r * 8 + c] = res[c];
    }
    for (int c = 0; c < 8; ++c) {
        for (int r = 0; r < 8; ++r)
            row[r] = tmp[r * 8 + c];
        hadamard8(row, res);
        for (int r = 0; r < 8; ++r)
            out[r * 8 + c] = res[r];
    }
}

int
clampByte(int v)
{
    return std::clamp(v, 0, 255);
}

/** SAD of a 16x16 block at (bx,by) in cur vs (rx,ry) in ref. */
std::uint32_t
sad16(const Frame &cur, int bx, int by, const Frame &ref, int rx,
      int ry)
{
    std::uint32_t total = 0;
    for (int y = 0; y < kMb; ++y) {
        const std::uint8_t *cp = &cur.samples[(by + y) * cur.width +
                                              bx];
        const std::uint8_t *rp = &ref.samples[(ry + y) * ref.width +
                                              rx];
        for (int x = 0; x < kMb; ++x)
            total += static_cast<std::uint32_t>(
                std::abs(int(cp[x]) - int(rp[x])));
    }
    return total;
}

} // namespace

void
forwardDct(const std::int32_t in[64], std::int32_t out[64])
{
    transform2d(in, out);
}

void
inverseDct(const std::int32_t in[64], std::int32_t out[64])
{
    std::int32_t raw[64];
    transform2d(in, raw);
    for (int i = 0; i < 64; ++i)
        out[i] = raw[i] / 64; // Hadamard is 64x its own inverse
}

namespace {

struct MotionVector
{
    int dx = 0;
    int dy = 0;
};

/** Diamond search around (0,0) within the configured range. */
MotionVector
searchMotion(const Frame &cur, int bx, int by, const Frame &ref,
             int range, runtime::ExecutionContext &ctx,
             EncodeStats &stats)
{
    auto &m = ctx.machine();
    MotionVector best;
    const auto tryVector = [&](int dx, int dy,
                               std::uint32_t &bestCost) {
        const int rx = bx + dx, ry = by + dy;
        if (rx < 0 || ry < 0 || rx + kMb > ref.width ||
            ry + kMb > ref.height)
            return false;
        const std::uint32_t cost =
            sad16(cur, bx, by, ref, rx, ry) +
            4 * (std::abs(dx) + std::abs(dy)); // rate bias
        ++stats.sadEvaluations;
        m.stream(topdown::OpKind::Load,
                 0x800000000ULL +
                     static_cast<std::uint64_t>(ry) * ref.width + rx,
                 kMb * kMb / 8, 8);
        m.ops(topdown::OpKind::IntAlu, kMb * kMb / 4);
        if (m.branch(1, cost < bestCost)) {
            bestCost = cost;
            best = {dx, dy};
            return true;
        }
        return false;
    };

    std::uint32_t bestCost = ~0u;
    tryVector(0, 0, bestCost);
    int step = std::max(1, range / 2);
    while (step >= 1) {
        bool improved = false;
        const int cx = best.dx, cy = best.dy;
        improved |= tryVector(cx + step, cy, bestCost);
        improved |= tryVector(cx - step, cy, bestCost);
        improved |= tryVector(cx, cy + step, bestCost);
        improved |= tryVector(cx, cy - step, bestCost);
        if (!m.branch(2, improved))
            step /= 2;
    }
    return best;
}

} // namespace

std::vector<std::uint8_t>
encode(const std::vector<Frame> &clip, const CodecConfig &config,
       runtime::ExecutionContext &ctx, EncodeStats *statsOut)
{
    support::fatalIf(clip.empty(), "x264: empty clip");
    support::fatalIf(config.qp < 1, "x264: qp must be >= 1");
    auto &m = ctx.machine();
    EncodeStats stats;

    const int width = clip[0].width, height = clip[0].height;
    std::vector<std::uint8_t> stream = {kMagic};
    putVarint(stream, width);
    putVarint(stream, height);
    putVarint(stream, clip.size());
    putVarint(stream, config.qp);

    // Optional first pass: coarse motion statistics drive per-frame
    // rate control in the second pass (busy frames get a coarser
    // quantizer, quiet frames a finer one).
    std::vector<int> frameQp(clip.size(), config.qp);
    if (config.twoPass) {
        auto scope = ctx.method("x264::first_pass", 2400);
        std::vector<double> activity(clip.size(), 0.0);
        Frame prev = clip[0];
        for (std::size_t f = 1; f < clip.size(); ++f) {
            double residual = 0.0;
            for (int by = 0; by + kMb <= height; by += kMb) {
                for (int bx = 0; bx + kMb <= width; bx += kMb) {
                    const MotionVector mv = searchMotion(
                        clip[f], bx, by, prev,
                        std::max(2, config.searchRange / 2), ctx,
                        stats);
                    residual += sad16(clip[f], bx, by, prev,
                                      bx + mv.dx, by + mv.dy);
                }
            }
            activity[f] = residual;
            prev = clip[f];
        }
        double mean = 0.0;
        for (std::size_t f = 1; f < clip.size(); ++f)
            mean += activity[f];
        if (clip.size() > 1)
            mean /= static_cast<double>(clip.size() - 1);
        for (std::size_t f = 1; f < clip.size() && mean > 0; ++f) {
            if (activity[f] > 1.5 * mean)
                frameQp[f] = std::min(config.qp * 2, config.qp + 8);
            else if (activity[f] < 0.5 * mean)
                frameQp[f] = std::max(1, config.qp / 2);
        }
    }

    Frame reference(width, height);
    double psnrSum = 0.0;
    for (std::size_t f = 0; f < clip.size(); ++f) {
        const Frame &cur = clip[f];
        Frame reconstructed(width, height);
        const bool intra = f == 0;
        const int qp = frameQp[f];
        putVarint(stream, qp); // per-frame quantizer (rate control)

        for (int by = 0; by + kMb <= height; by += kMb) {
            for (int bx = 0; bx + kMb <= width; bx += kMb) {
                MotionVector mv;
                if (!intra) {
                    auto scope = ctx.method("x264::motion_search",
                                            3600);
                    mv = searchMotion(cur, bx, by, reference,
                                      config.searchRange, ctx, stats);
                }
                putVarint(stream, zigzag(mv.dx));
                putVarint(stream, zigzag(mv.dy));

                // Residual blocks (4 per macroblock).
                auto scope = ctx.method("x264::transform_quant", 3000);
                for (int sub = 0; sub < 4; ++sub) {
                    const int ox = bx + (sub % 2) * 8;
                    const int oy = by + (sub / 2) * 8;
                    std::int32_t block[64], coeffs[64];
                    for (int y = 0; y < 8; ++y) {
                        for (int x = 0; x < 8; ++x) {
                            const int pred =
                                intra ? 128
                                      : reference.at(ox + x + mv.dx,
                                                     oy + y + mv.dy);
                            block[y * 8 + x] =
                                int(cur.at(ox + x, oy + y)) - pred;
                        }
                    }
                    m.stream(topdown::OpKind::Load,
                             0x900000000ULL +
                                 static_cast<std::uint64_t>(oy) *
                                     width +
                                 ox,
                             8, 8);
                    forwardDct(block, coeffs);
                    m.ops(topdown::OpKind::IntAlu, 64 * 3);

                    bool allZero = true;
                    for (int i = 0; i < 64; ++i) {
                        coeffs[i] /= qp;
                        allZero &= coeffs[i] == 0;
                    }
                    m.ops(topdown::OpKind::IntDiv, 8);

                    // Entropy stage: RLE of zeros + zigzagged values.
                    auto entropy = ctx.method("x264::entropy", 2200);
                    if (m.branch(3, allZero)) {
                        putVarint(stream, 0); // skip marker
                        ++stats.skipBlocks;
                    } else {
                        putVarint(stream, 1);
                        int zeros = 0;
                        for (int i = 0; i < 64; ++i) {
                            if (coeffs[i] == 0) {
                                ++zeros;
                                continue;
                            }
                            putVarint(stream, zeros + 1);
                            putVarint(stream, zigzag(coeffs[i]));
                            zeros = 0;
                            m.ops(topdown::OpKind::IntAlu, 6);
                        }
                        putVarint(stream, 0); // end of block
                    }

                    // Reconstruct exactly as the decoder will.
                    std::int32_t dequant[64], spatial[64];
                    for (int i = 0; i < 64; ++i)
                        dequant[i] = coeffs[i] * qp;
                    inverseDct(dequant, spatial);
                    for (int y = 0; y < 8; ++y) {
                        for (int x = 0; x < 8; ++x) {
                            const int pred =
                                intra ? 128
                                      : reference.at(ox + x + mv.dx,
                                                     oy + y + mv.dy);
                            reconstructed.at(ox + x, oy + y) =
                                static_cast<std::uint8_t>(clampByte(
                                    pred + spatial[y * 8 + x]));
                        }
                    }
                }
            }
        }
        psnrSum += psnr(cur, reconstructed);
        reference = std::move(reconstructed);
    }

    stats.bitsEstimated = stream.size();
    stats.meanPsnr = psnrSum / static_cast<double>(clip.size());
    if (statsOut)
        *statsOut = stats;
    ctx.consume(static_cast<std::uint64_t>(stream.size()));
    ctx.consume(stats.skipBlocks);
    return stream;
}

std::vector<Frame>
decode(const std::vector<std::uint8_t> &stream,
       runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("x264::decode", 3400);
    auto &m = ctx.machine();
    support::fatalIf(stream.empty() || stream[0] != kMagic,
                     "x264: bad stream magic");
    std::size_t pos = 1;
    const int width = static_cast<int>(getVarint(stream, pos));
    const int height = static_cast<int>(getVarint(stream, pos));
    const auto frameCount = getVarint(stream, pos);
    const int baseQp = static_cast<int>(getVarint(stream, pos));
    support::fatalIf(width <= 0 || height <= 0 || baseQp < 1,
                     "x264: bad stream header");

    std::vector<Frame> frames;
    Frame reference(width, height);
    for (std::uint64_t f = 0; f < frameCount; ++f) {
        Frame out(width, height);
        const bool intra = f == 0;
        // Per-frame quantizer (rate control can vary it).
        const int qp = static_cast<int>(getVarint(stream, pos));
        support::fatalIf(qp < 1, "x264: bad frame quantizer");
        for (int by = 0; by + kMb <= height; by += kMb) {
            for (int bx = 0; bx + kMb <= width; bx += kMb) {
                const int dx = static_cast<int>(
                    unzigzag(getVarint(stream, pos)));
                const int dy = static_cast<int>(
                    unzigzag(getVarint(stream, pos)));
                support::fatalIf(
                    !intra && (bx + dx < 0 || by + dy < 0 ||
                               bx + dx + kMb > width ||
                               by + dy + kMb > height),
                    "x264: motion vector out of bounds");
                for (int sub = 0; sub < 4; ++sub) {
                    const int ox = bx + (sub % 2) * 8;
                    const int oy = by + (sub / 2) * 8;
                    std::int32_t coeffs[64] = {};
                    const auto marker = getVarint(stream, pos);
                    if (m.branch(1, marker != 0)) {
                        int idx = 0;
                        while (true) {
                            const auto run = getVarint(stream, pos);
                            if (run == 0)
                                break;
                            idx += static_cast<int>(run) - 1;
                            support::fatalIf(idx >= 64,
                                             "x264: coefficient "
                                             "overflow");
                            coeffs[idx++] = static_cast<std::int32_t>(
                                unzigzag(getVarint(stream, pos)));
                            m.ops(topdown::OpKind::IntAlu, 4);
                        }
                    }
                    std::int32_t dequant[64], spatial[64];
                    for (int i = 0; i < 64; ++i)
                        dequant[i] = coeffs[i] * qp;
                    inverseDct(dequant, spatial);
                    m.ops(topdown::OpKind::IntAlu, 64 * 3);
                    m.stream(topdown::OpKind::Store,
                             0xA00000000ULL +
                                 static_cast<std::uint64_t>(oy) *
                                     width +
                                 ox,
                             8, 8);
                    for (int y = 0; y < 8; ++y) {
                        for (int x = 0; x < 8; ++x) {
                            const int pred =
                                intra
                                    ? 128
                                    : reference.at(ox + x + dx,
                                                   oy + y + dy);
                            out.at(ox + x, oy + y) =
                                static_cast<std::uint8_t>(clampByte(
                                    pred + spatial[y * 8 + x]));
                        }
                    }
                }
            }
        }
        frames.push_back(out);
        reference = std::move(out);
    }
    ctx.consume(frames.size());
    return frames;
}

double
validate(const std::vector<Frame> &decoded,
         const std::vector<Frame> &reference, int dumpInterval,
         double minDb, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("x264::imagevalidate", 1800);
    auto &m = ctx.machine();
    support::fatalIf(decoded.size() != reference.size(),
                     "imagevalidate: frame count mismatch");
    support::fatalIf(dumpInterval < 1, "imagevalidate: bad interval");
    double sum = 0.0;
    int counted = 0;
    for (std::size_t f = 0; f < decoded.size(); f += dumpInterval) {
        const double db = psnr(decoded[f], reference[f]);
        m.ops(topdown::OpKind::FpAdd,
              decoded[f].samples.size() / 16);
        m.stream(topdown::OpKind::Load, 0xB00000000ULL,
                 decoded[f].samples.size() / 64, 64);
        support::fatalIf(db < minDb, "imagevalidate: frame ", f,
                         " PSNR ", db, " below ", minDb);
        sum += db;
        ++counted;
    }
    const double mean = sum / counted;
    ctx.consume(mean);
    return mean;
}

} // namespace alberta::x264
