/**
 * @file
 * The 525.x264_r mini-benchmark: decode -> encode -> validate over
 * synthetic clips, mirroring the three-program SPEC workload
 * (ldecod_r, x264_r, imagevalidate_r).
 */
#ifndef ALBERTA_BENCHMARKS_X264_BENCHMARK_H
#define ALBERTA_BENCHMARKS_X264_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::x264 {

/** See file comment. */
class X264Benchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "525.x264_r"; }
    std::string area() const override { return "Video compression"; }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::x264

#endif // ALBERTA_BENCHMARKS_X264_BENCHMARK_H
