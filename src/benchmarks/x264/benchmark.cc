#include "benchmarks/x264/benchmark.h"

#include "benchmarks/x264/codec.h"
#include "support/check.h"

namespace alberta::x264 {

namespace {

runtime::Workload
makeWorkload(const std::string &name, const VideoConfig &video, int qp,
             bool twoPass, int startFrame, int frameCount,
             int dumpInterval)
{
    runtime::Workload w;
    w.name = name;
    w.seed = video.seed;
    w.params.set("qp", static_cast<long long>(qp));
    w.params.set("two_pass", twoPass);
    w.params.set("start_frame", static_cast<long long>(startFrame));
    w.params.set("frame_count", static_cast<long long>(frameCount));
    w.params.set("dump_interval",
                 static_cast<long long>(dumpInterval));

    // Workloads ship as encoded streams, like SPEC's .264 inputs; the
    // generation script encodes the raw clip at high quality.
    runtime::ExecutionContext scratch;
    CodecConfig master;
    master.qp = 2;
    const auto clip = generateVideo(video);
    const auto stream = encode(clip, master, scratch);
    w.files["input.264"] =
        std::string(stream.begin(), stream.end());
    return w;
}

} // namespace

std::vector<runtime::Workload>
X264Benchmark::workloads() const
{
    std::vector<runtime::Workload> out;

    VideoConfig ref;
    ref.seed = 0x525F;
    ref.frames = 40;
    ref.style = VideoStyle::MovingBlocks;
    out.push_back(makeWorkload("refrate", ref, 8, false, 0, 24, 4));

    VideoConfig train = ref;
    train.seed = 0x5251;
    train.frames = 10;
    out.push_back(makeWorkload("train", train, 8, false, 0, 10, 5));

    VideoConfig test = ref;
    test.seed = 0x5252;
    test.frames = 4;
    test.width = 96;
    test.height = 64;
    out.push_back(makeWorkload("test", test, 8, false, 0, 4, 2));

    // Alberta workloads: different clips and script parameters
    // (start frame, frame count, dump interval, 1-/2-pass).
    VideoConfig zoom = ref;
    zoom.seed = 0xE1;
    zoom.style = VideoStyle::Zoom;
    zoom.frames = 18;
    out.push_back(
        makeWorkload("alberta.zoom-1pass", zoom, 8, false, 0, 18, 3));
    out.push_back(
        makeWorkload("alberta.zoom-2pass", zoom, 8, true, 0, 18, 3));

    VideoConfig talking = ref;
    talking.seed = 0xE2;
    talking.style = VideoStyle::Talking;
    talking.frames = 20;
    out.push_back(makeWorkload("alberta.talking-midclip", talking, 6,
                               false, 6, 12, 4));

    VideoConfig noise = ref;
    noise.seed = 0xE3;
    noise.style = VideoStyle::Noise;
    noise.frames = 8;
    out.push_back(
        makeWorkload("alberta.noise-hard", noise, 12, false, 0, 8, 2));

    VideoConfig fine = ref;
    fine.seed = 0xE4;
    fine.frames = 14;
    out.push_back(
        makeWorkload("alberta.fine-quant", fine, 3, false, 0, 14, 7));
    return out;
}

void
X264Benchmark::run(const runtime::Workload &workload,
                   runtime::ExecutionContext &context) const
{
    // Program 1: ldecod_r decodes the distributed stream.
    const std::string &raw = workload.file("input.264");
    const std::vector<std::uint8_t> stream(raw.begin(), raw.end());
    const std::vector<Frame> source = decode(stream, context);

    const int start = static_cast<int>(
        workload.params.getInt("start_frame", 0));
    const int count = static_cast<int>(workload.params.getInt(
        "frame_count", static_cast<long long>(source.size())));
    support::fatalIf(start < 0 ||
                         start + count >
                             static_cast<int>(source.size()),
                     "x264: frame range out of bounds");
    const std::vector<Frame> clip(source.begin() + start,
                                  source.begin() + start + count);

    // Program 2: x264_r encodes the selected range.
    CodecConfig config;
    config.qp =
        static_cast<int>(workload.params.getInt("qp", 8));
    config.twoPass = workload.params.getBool("two_pass", false);
    EncodeStats stats;
    const auto encoded = encode(clip, config, context, &stats);

    // Program 3: imagevalidate_r compares decoded output frames.
    const auto decoded = decode(encoded, context);
    const int interval = static_cast<int>(
        workload.params.getInt("dump_interval", 1));
    const double meanDb =
        validate(decoded, clip, interval, 18.0, context);

    context.consume(static_cast<std::uint64_t>(encoded.size()));
    context.consume(stats.sadEvaluations);
    context.consume(meanDb);
}

double
X264Benchmark::costHint(const runtime::Workload &workload) const
{
    // Encoding cost is linear in frames; a second pass re-encodes
    // everything with stats from the first.
    const double frames = static_cast<double>(
        workload.params.getInt("frame_count", 0));
    const double passes =
        workload.params.getBool("two_pass", false) ? 1.8 : 1.0;
    return 250e3 * frames * passes;
}

} // namespace alberta::x264
