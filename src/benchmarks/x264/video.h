/**
 * @file
 * Frames, synthetic video sources, and PSNR validation for the
 * 525.x264_r mini-benchmark (stand-ins for the public-domain HD clips
 * and the imagevalidate_r tool).
 */
#ifndef ALBERTA_BENCHMARKS_X264_VIDEO_H
#define ALBERTA_BENCHMARKS_X264_VIDEO_H

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace alberta::x264 {

/** A luma-only frame (8-bit samples). */
struct Frame
{
    int width = 0;
    int height = 0;
    std::vector<std::uint8_t> samples; //!< row-major, width*height

    Frame() = default;
    Frame(int w, int h) : width(w), height(h), samples(w * h, 0) {}

    std::uint8_t
    at(int x, int y) const
    {
        return samples[y * width + x];
    }

    std::uint8_t &
    at(int x, int y)
    {
        return samples[y * width + x];
    }
};

/** Synthetic video style. */
enum class VideoStyle
{
    MovingBlocks, //!< rigid objects over a gradient: easy to predict
    Zoom,         //!< slow global change
    Noise,        //!< temporally incoherent noise: hard to predict
    Talking,      //!< static background + small moving region
};

/** Synthetic video source configuration. */
struct VideoConfig
{
    std::uint64_t seed = 1;
    int width = 192;  //!< multiple of 16
    int height = 112; //!< multiple of 16
    int frames = 16;
    VideoStyle style = VideoStyle::MovingBlocks;
};

/** Generate a deterministic synthetic clip. */
std::vector<Frame> generateVideo(const VideoConfig &config);

/** Peak signal-to-noise ratio between two equal-sized frames (dB). */
double psnr(const Frame &a, const Frame &b);

} // namespace alberta::x264

#endif // ALBERTA_BENCHMARKS_X264_VIDEO_H
