#include "benchmarks/x264/video.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace alberta::x264 {

std::vector<Frame>
generateVideo(const VideoConfig &config)
{
    support::fatalIf(config.width % 16 != 0 || config.height % 16 != 0,
                     "x264: dimensions must be multiples of 16");
    support::Rng rng(config.seed);
    std::vector<Frame> clip;

    struct Object
    {
        double x, y, dx, dy;
        int size;
        int brightness;
    };
    std::vector<Object> objects;
    const int objectCount =
        config.style == VideoStyle::Talking ? 1 : 5;
    for (int i = 0; i < objectCount; ++i) {
        objects.push_back({rng.real() * config.width,
                           rng.real() * config.height,
                           rng.real(-2.0, 2.0), rng.real(-1.5, 1.5),
                           8 + static_cast<int>(rng.below(24)),
                           60 + static_cast<int>(rng.below(160))});
    }

    for (int f = 0; f < config.frames; ++f) {
        Frame frame(config.width, config.height);
        const double zoom =
            config.style == VideoStyle::Zoom ? 1.0 + 0.01 * f : 1.0;

        for (int y = 0; y < config.height; ++y) {
            for (int x = 0; x < config.width; ++x) {
                // Gradient background.
                int value = 40 +
                            (x * 80) / config.width +
                            (y * 60) / config.height;
                if (config.style == VideoStyle::Zoom) {
                    value = 40 +
                            static_cast<int>((x * 80 * zoom)) /
                                config.width +
                            (y * 60) / config.height;
                }
                frame.at(x, y) =
                    static_cast<std::uint8_t>(std::clamp(value, 0,
                                                         255));
            }
        }

        if (config.style == VideoStyle::Noise) {
            for (auto &s : frame.samples)
                s = static_cast<std::uint8_t>(rng.below(256));
        } else {
            for (const Object &obj : objects) {
                const int cx = static_cast<int>(obj.x + f * obj.dx);
                const int cy = static_cast<int>(obj.y + f * obj.dy);
                for (int dy = -obj.size; dy <= obj.size; ++dy) {
                    for (int dx = -obj.size; dx <= obj.size; ++dx) {
                        const int px =
                            ((cx + dx) % config.width +
                             config.width) %
                            config.width;
                        const int py =
                            ((cy + dy) % config.height +
                             config.height) %
                            config.height;
                        frame.at(px, py) = static_cast<std::uint8_t>(
                            obj.brightness);
                    }
                }
            }
            // Light sensor noise keeps residuals nonzero.
            for (int i = 0; i < config.width * config.height / 16;
                 ++i) {
                const auto idx = rng.below(frame.samples.size());
                frame.samples[idx] = static_cast<std::uint8_t>(
                    std::clamp<int>(frame.samples[idx] +
                                        static_cast<int>(
                                            rng.range(-6, 6)),
                                    0, 255));
            }
        }
        clip.push_back(std::move(frame));
    }
    return clip;
}

double
psnr(const Frame &a, const Frame &b)
{
    support::fatalIf(a.width != b.width || a.height != b.height,
                     "psnr: frame size mismatch");
    double mse = 0.0;
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        const double d = static_cast<double>(a.samples[i]) -
                         static_cast<double>(b.samples[i]);
        mse += d * d;
    }
    mse /= static_cast<double>(a.samples.size());
    if (mse <= 1e-12)
        return 99.0;
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace alberta::x264
