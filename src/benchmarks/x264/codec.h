/**
 * @file
 * The mini video codec for 525.x264_r: 16x16 macroblocks, diamond
 * motion search against the previous reconstructed frame, 8x8 integer
 * DCT + quantization of residuals, and a byte-oriented entropy stage.
 * The decoder (the ldecod_r stand-in) exactly inverts the bitstream.
 */
#ifndef ALBERTA_BENCHMARKS_X264_CODEC_H
#define ALBERTA_BENCHMARKS_X264_CODEC_H

#include <cstdint>
#include <vector>

#include "benchmarks/x264/video.h"
#include "runtime/context.h"

namespace alberta::x264 {

/** Encoder configuration. */
struct CodecConfig
{
    int qp = 8;           //!< quantization step (higher = lossier)
    int searchRange = 12; //!< motion search radius in pixels
    bool twoPass = false; //!< first pass collects stats, second encodes
};

/** Encoder statistics. */
struct EncodeStats
{
    std::uint64_t sadEvaluations = 0; //!< motion candidates scored
    std::uint64_t bitsEstimated = 0;  //!< entropy-stage size in bytes
    std::uint64_t skipBlocks = 0;     //!< zero-residual macroblocks
    double meanPsnr = 0.0;            //!< reconstruction quality
};

/** Encode @p clip; the stream is self-describing. */
std::vector<std::uint8_t> encode(const std::vector<Frame> &clip,
                                 const CodecConfig &config,
                                 runtime::ExecutionContext &ctx,
                                 EncodeStats *stats = nullptr);

/** Decode a stream produced by @ref encode. */
std::vector<Frame> decode(const std::vector<std::uint8_t> &stream,
                          runtime::ExecutionContext &ctx);

/**
 * The imagevalidate_r stand-in: mean PSNR of @p decoded against
 * @p reference frames at the dump interval; fatal below @p minDb.
 */
double validate(const std::vector<Frame> &decoded,
                const std::vector<Frame> &reference, int dumpInterval,
                double minDb, runtime::ExecutionContext &ctx);

/** 8x8 forward integer transform (exposed for tests). */
void forwardDct(const std::int32_t in[64], std::int32_t out[64]);

/** 8x8 inverse integer transform (exact inverse after scaling). */
void inverseDct(const std::int32_t in[64], std::int32_t out[64]);

} // namespace alberta::x264

#endif // ALBERTA_BENCHMARKS_X264_CODEC_H
