#include "benchmarks/mcf/mincost.h"

#include <limits>
#include <queue>
#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::mcf {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

} // namespace

std::string
Instance::serialize() const
{
    std::ostringstream os;
    os << "p min " << nodes() << ' ' << arcs.size() << '\n';
    for (std::int32_t i = 0; i < nodes(); ++i) {
        if (supplies[i] != 0)
            os << "n " << i << ' ' << supplies[i] << '\n';
    }
    for (const Arc &a : arcs) {
        os << "a " << a.from << ' ' << a.to << ' ' << a.lower << ' '
           << a.capacity << ' ' << a.cost << '\n';
    }
    return os.str();
}

Instance
Instance::parse(const std::string &text, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("mcf::read_min", 3000);
    auto &m = ctx.machine();

    Instance inst;
    std::size_t pos = 0;
    const std::uint64_t base = 0x10000000;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string_view line(text.data() + pos, eol - pos);
        pos = eol + 1;
        m.load(base + pos);
        if (m.branch(1, line.empty()))
            continue;
        m.ops(topdown::OpKind::IntAlu, 4);
        const auto fields = support::splitWhitespace(line);
        if (m.branch(2, fields[0] == "p")) {
            support::fatalIf(fields.size() != 4 || fields[1] != "min",
                             "mcf: malformed problem line");
            inst.supplies.assign(support::parseInt(fields[2]), 0);
            inst.arcs.reserve(support::parseInt(fields[3]));
        } else if (m.branch(3, fields[0] == "n")) {
            support::fatalIf(fields.size() != 3,
                             "mcf: malformed node line");
            const auto id = support::parseInt(fields[1]);
            support::fatalIf(id < 0 ||
                                 id >= static_cast<long long>(
                                           inst.supplies.size()),
                             "mcf: node id out of range: ", id);
            inst.supplies[id] = support::parseInt(fields[2]);
        } else if (m.branch(4, fields[0] == "a")) {
            support::fatalIf(fields.size() != 6,
                             "mcf: malformed arc line");
            Arc a;
            a.from = static_cast<std::int32_t>(
                support::parseInt(fields[1]));
            a.to = static_cast<std::int32_t>(support::parseInt(fields[2]));
            a.lower = support::parseInt(fields[3]);
            a.capacity = support::parseInt(fields[4]);
            a.cost = support::parseInt(fields[5]);
            support::fatalIf(a.from < 0 || a.from >= inst.nodes() ||
                                 a.to < 0 || a.to >= inst.nodes(),
                             "mcf: arc endpoint out of range");
            support::fatalIf(a.lower < 0 || a.lower > a.capacity,
                             "mcf: arc bounds inconsistent");
            support::fatalIf(a.cost < 0, "mcf: negative arc cost");
            inst.arcs.push_back(a);
        } else if (fields[0] != "c") {
            support::fatal("mcf: unknown line kind '", fields[0], "'");
        }
    }
    std::int64_t net = 0;
    for (std::int64_t s : inst.supplies)
        net += s;
    support::fatalIf(net != 0, "mcf: supplies sum to ", net, ", not 0");
    return inst;
}

Solver::Solver(const Instance &instance) : instance_(instance) {}

void
Solver::addEdge(std::int32_t from, std::int32_t to, std::int64_t cap,
                std::int64_t cost)
{
    edges_.push_back({to, head_[from], cap, cost});
    head_[from] = static_cast<std::int32_t>(edges_.size() - 1);
    edges_.push_back({from, head_[to], 0, -cost});
    head_[to] = static_cast<std::int32_t>(edges_.size() - 1);
}

Solution
Solver::solve(runtime::ExecutionContext &ctx)
{
    auto &m = ctx.machine();

    // --- Build the residual network with lower bounds removed. -------
    const std::int32_t n = instance_.nodes();
    const std::int32_t source = n;
    const std::int32_t sink = n + 1;
    const std::int32_t total = n + 2;

    std::vector<std::int64_t> excess(total, 0);
    for (std::int32_t i = 0; i < n; ++i)
        excess[i] = instance_.supplies[i];

    edges_.clear();
    head_.assign(total, -1);
    std::int64_t baseCost = 0;
    {
        auto scope = ctx.method("mcf::build_network", 2200);
        for (const Arc &a : instance_.arcs) {
            excess[a.from] -= a.lower;
            excess[a.to] += a.lower;
            baseCost += a.lower * a.cost;
            addEdge(a.from, a.to, a.capacity - a.lower, a.cost);
            m.load(0x20000000 + edges_.size() * 24);
            m.ops(topdown::OpKind::IntAlu, 6);
        }
        std::int64_t required = 0;
        for (std::int32_t i = 0; i < total; ++i) {
            if (m.branch(1, excess[i] > 0)) {
                addEdge(source, i, excess[i], 0);
                required += excess[i];
            } else if (m.branch(2, excess[i] < 0)) {
                addEdge(i, sink, -excess[i], 0);
            }
        }
        ctx.consume(static_cast<std::uint64_t>(required));
    }

    // --- Successive shortest paths with potentials. -------------------
    Solution sol;
    std::vector<std::int64_t> dist(total);
    std::vector<std::int64_t> potential(total, 0);
    std::vector<std::int32_t> prevEdge(total);
    using HeapItem = std::pair<std::int64_t, std::int32_t>;

    std::int64_t sentCost = 0;
    std::int64_t remaining = 0;
    for (std::int32_t e = head_[source]; e != -1; e = edges_[e].next)
        remaining += edges_[e].residual;

    while (remaining > 0) {
        auto scope = ctx.method("mcf::shortest_path", 4100);
        std::fill(dist.begin(), dist.end(), kInf);
        std::fill(prevEdge.begin(), prevEdge.end(), -1);
        dist[source] = 0;
        std::priority_queue<HeapItem, std::vector<HeapItem>,
                            std::greater<>>
            heap;
        heap.push({0, source});
        while (!heap.empty()) {
            const auto [d, u] = heap.top();
            heap.pop();
            m.load(0x30000000 + static_cast<std::uint64_t>(u) * 8);
            if (m.branch(3, d > dist[u]))
                continue;
            for (std::int32_t e = head_[u]; e != -1;
                 e = edges_[e].next) {
                const Edge &edge = edges_[e];
                m.load(0x40000000 + static_cast<std::uint64_t>(e) * 24);
                m.ops(topdown::OpKind::IntAlu, 3);
                if (m.branch(4, edge.residual <= 0))
                    continue;
                const std::int64_t nd =
                    d + edge.cost + potential[u] - potential[edge.to];
                m.load(0x30000000 +
                       static_cast<std::uint64_t>(edge.to) * 8);
                if (m.branch(5, nd < dist[edge.to])) {
                    dist[edge.to] = nd;
                    prevEdge[edge.to] = e;
                    m.store(0x30000000 +
                            static_cast<std::uint64_t>(edge.to) * 8);
                    heap.push({nd, edge.to});
                }
            }
        }

        if (dist[sink] >= kInf)
            break; // infeasible: some excess cannot reach the sink

        auto scope2 = ctx.method("mcf::augment", 1800);
        for (std::int32_t i = 0; i < total; ++i) {
            if (m.branch(6, dist[i] < kInf))
                potential[i] += dist[i];
            m.ops(topdown::OpKind::IntAlu, 1);
        }
        std::int64_t push = remaining;
        for (std::int32_t v = sink; v != source;
             v = edges_[prevEdge[v] ^ 1].to) {
            push = std::min(push, edges_[prevEdge[v]].residual);
            m.load(0x40000000 +
                   static_cast<std::uint64_t>(prevEdge[v]) * 24);
        }
        for (std::int32_t v = sink; v != source;
             v = edges_[prevEdge[v] ^ 1].to) {
            edges_[prevEdge[v]].residual -= push;
            edges_[prevEdge[v] ^ 1].residual += push;
            sentCost += push * edges_[prevEdge[v]].cost;
            m.store(0x40000000 +
                    static_cast<std::uint64_t>(prevEdge[v]) * 24);
            m.ops(topdown::OpKind::IntAlu, 4);
        }
        remaining -= push;
        ++sol.augmentations;
    }

    sol.feasible = remaining == 0;
    sol.totalCost = baseCost + sentCost;
    sol.flows.assign(instance_.arcs.size(), 0);
    for (std::size_t i = 0; i < instance_.arcs.size(); ++i) {
        // Forward edge 2i: residual = (cap - lower) - sent.
        const std::int64_t sent =
            (instance_.arcs[i].capacity - instance_.arcs[i].lower) -
            edges_[2 * i].residual;
        sol.flows[i] = instance_.arcs[i].lower + sent;
    }
    ctx.consume(static_cast<std::uint64_t>(sol.totalCost));
    return sol;
}

bool
verifyOptimal(const Instance &instance, const Solution &solution)
{
    if (!solution.feasible)
        return false;
    const std::int32_t n = instance.nodes();

    // Conservation and capacity checks.
    std::vector<std::int64_t> net(n, 0);
    for (std::size_t i = 0; i < instance.arcs.size(); ++i) {
        const Arc &a = instance.arcs[i];
        const std::int64_t f = solution.flows[i];
        if (f < a.lower || f > a.capacity)
            return false;
        net[a.from] -= f;
        net[a.to] += f;
    }
    for (std::int32_t i = 0; i < n; ++i) {
        if (net[i] != -instance.supplies[i])
            return false;
    }

    // Residual Bellman-Ford: any relaxation after n rounds implies a
    // negative cycle, i.e. a cheaper circulation exists.
    struct REdge
    {
        std::int32_t from, to;
        std::int64_t cost;
    };
    std::vector<REdge> residual;
    for (std::size_t i = 0; i < instance.arcs.size(); ++i) {
        const Arc &a = instance.arcs[i];
        const std::int64_t f = solution.flows[i];
        if (f < a.capacity)
            residual.push_back({a.from, a.to, a.cost});
        if (f > a.lower)
            residual.push_back({a.to, a.from, -a.cost});
    }
    std::vector<std::int64_t> dist(n, 0);
    for (std::int32_t round = 0; round < n; ++round) {
        bool changed = false;
        for (const REdge &e : residual) {
            if (dist[e.from] + e.cost < dist[e.to]) {
                dist[e.to] = dist[e.from] + e.cost;
                changed = true;
            }
        }
        if (!changed)
            return true;
    }
    return false;
}

} // namespace alberta::mcf
