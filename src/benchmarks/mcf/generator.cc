#include "benchmarks/mcf/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/check.h"

namespace alberta::mcf {

double
circadianWeight(int minute, int dayMinutes)
{
    // Two Gaussian rush-hour peaks at 1/4 and 5/8 of the service day
    // over a 0.1 night-service floor.
    const double t = static_cast<double>(minute) / dayMinutes;
    const auto peak = [](double t0, double center, double width) {
        const double d = (t0 - center) / width;
        return std::exp(-d * d);
    };
    const double w =
        0.1 + 0.9 * std::max(peak(t, 0.25, 0.08), peak(t, 0.625, 0.10));
    return std::min(w, 1.0);
}

VehicleProblem
generateCity(const CityConfig &config)
{
    support::fatalIf(config.terminals < 2, "city needs >= 2 terminals");
    support::fatalIf(config.trips < 1, "city needs >= 1 trip");
    support::Rng rng(config.seed);

    VehicleProblem prob;

    // --- Terminals: clustered by density around a few hubs. -----------
    const int hubs = std::max(2, config.terminals / 6);
    std::vector<int> hubX(hubs), hubY(hubs);
    for (int h = 0; h < hubs; ++h) {
        hubX[h] = static_cast<int>(rng.below(config.gridSize));
        hubY[h] = static_cast<int>(rng.below(config.gridSize));
    }
    for (int i = 0; i < config.terminals; ++i) {
        if (rng.chance(config.density)) {
            const int h = static_cast<int>(rng.below(hubs));
            const int spread = std::max(2, config.gridSize / 10);
            prob.terminalX.push_back(std::clamp(
                hubX[h] + static_cast<int>(rng.range(-spread, spread)),
                0, config.gridSize - 1));
            prob.terminalY.push_back(std::clamp(
                hubY[h] + static_cast<int>(rng.range(-spread, spread)),
                0, config.gridSize - 1));
        } else {
            prob.terminalX.push_back(
                static_cast<int>(rng.below(config.gridSize)));
            prob.terminalY.push_back(
                static_cast<int>(rng.below(config.gridSize)));
        }
    }

    const auto travelMinutes = [&](int a, int b) {
        const int dist = std::abs(prob.terminalX[a] - prob.terminalX[b]) +
                         std::abs(prob.terminalY[a] - prob.terminalY[b]);
        return 5 + dist / 2;
    };

    // --- Trips: start times follow the circadian cycle. ---------------
    for (int t = 0; t < config.trips; ++t) {
        Trip trip;
        // Rejection-sample a start minute from the circadian profile.
        int minute;
        do {
            minute = static_cast<int>(rng.below(config.dayMinutes * 3 /
                                                4));
        } while (!rng.chance(circadianWeight(minute, config.dayMinutes)));
        trip.fromTerminal = static_cast<int>(rng.below(config.terminals));
        do {
            trip.toTerminal =
                static_cast<int>(rng.below(config.terminals));
        } while (trip.toTerminal == trip.fromTerminal);
        trip.startMinute = minute;
        trip.endMinute =
            minute + travelMinutes(trip.fromTerminal, trip.toTerminal);
        prob.trips.push_back(trip);
    }
    std::sort(prob.trips.begin(), prob.trips.end(),
              [](const Trip &a, const Trip &b) {
                  return a.startMinute < b.startMinute;
              });

    // --- Flow network: trip arcs (lower = 1), deadheads, depot. -------
    const int n = config.trips;
    const std::int32_t source = 2 * n;
    const std::int32_t sink = 2 * n + 1;
    Instance &inst = prob.instance;
    inst.supplies.assign(2 * n + 2, 0);
    // At most one vehicle per trip can pull out; the depot supply is
    // the trip count, with a free bypass arc absorbing unused vehicles.
    inst.supplies[source] = n;
    inst.supplies[sink] = -n;

    for (int i = 0; i < n; ++i) {
        // The trip itself must be covered exactly once.
        inst.arcs.push_back({static_cast<std::int32_t>(2 * i),
                             static_cast<std::int32_t>(2 * i + 1), 1, 1,
                             0});
    }
    for (int i = 0; i < n; ++i) {
        // Depot pull-out / pull-in.
        inst.arcs.push_back({source, static_cast<std::int32_t>(2 * i), 0,
                             1, config.pullCost});
        inst.arcs.push_back({static_cast<std::int32_t>(2 * i + 1), sink,
                             0, 1, 0});
    }
    inst.arcs.push_back({source, sink, 0, n, 0}); // unused vehicles

    // Deadhead connections between time-compatible trips.
    for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
            const Trip &a = prob.trips[i];
            const Trip &b = prob.trips[j];
            const int dead = travelMinutes(a.toTerminal, b.fromTerminal);
            if (a.endMinute + dead > b.startMinute)
                continue;
            if (!rng.chance(config.connectivity))
                continue;
            const int wait = b.startMinute - a.endMinute - dead;
            const std::int64_t cost =
                config.deadheadCostPerKm * dead +
                config.waitCostPerMin * wait;
            inst.arcs.push_back({static_cast<std::int32_t>(2 * i + 1),
                                 static_cast<std::int32_t>(2 * j), 0, 1,
                                 cost});
            ++prob.deadheads;
        }
    }
    return prob;
}

} // namespace alberta::mcf
