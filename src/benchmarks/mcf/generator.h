/**
 * @file
 * Workload generator for the 505.mcf_r mini-benchmark.
 *
 * Mirrors the Alberta Workloads generator described in Section IV-A:
 * it synthesizes a city map "with various levels of density and
 * connectivity", schedules buses through the day following a circadian
 * demand cycle, and emits a single-depot vehicle-scheduling problem as
 * a consistent min-cost-flow instance.
 */
#ifndef ALBERTA_BENCHMARKS_MCF_GENERATOR_H
#define ALBERTA_BENCHMARKS_MCF_GENERATOR_H

#include <cstdint>
#include <vector>

#include "benchmarks/mcf/mincost.h"
#include "support/rng.h"

namespace alberta::mcf {

/** Knobs of the city / schedule synthesizer. */
struct CityConfig
{
    std::uint64_t seed = 1;
    int terminals = 24;        //!< bus terminals on the city grid
    int gridSize = 100;        //!< city coordinate extent
    int trips = 200;           //!< timetabled trips over the day
    double density = 0.5;      //!< clustering of terminals [0,1]
    double connectivity = 0.5; //!< fraction of feasible deadheads kept
    int dayMinutes = 1200;     //!< service day length (20 h)
    std::int64_t pullCost = 2000;   //!< depot pull-out cost (fleet size)
    std::int64_t waitCostPerMin = 1; //!< idle cost between trips
    std::int64_t deadheadCostPerKm = 8;
};

/** One timetabled trip. */
struct Trip
{
    int fromTerminal = 0;
    int toTerminal = 0;
    int startMinute = 0;
    int endMinute = 0;
};

/** A generated vehicle-scheduling problem. */
struct VehicleProblem
{
    std::vector<Trip> trips;
    std::vector<int> terminalX, terminalY;
    int deadheads = 0; //!< number of deadhead connection arcs

    /**
     * The min-cost-flow encoding: node 2i = trip-i start, 2i+1 =
     * trip-i end, plus depot source/sink; each trip is a lower=1
     * arc, deadheads connect compatible trip pairs.
     */
    Instance instance;
};

/**
 * The circadian demand weight for @p minute of the service day: a
 * double-peaked (am/pm rush) profile in [0.1, 1].
 */
double circadianWeight(int minute, int dayMinutes);

/** Generate a consistent vehicle-scheduling problem. */
VehicleProblem generateCity(const CityConfig &config);

} // namespace alberta::mcf

#endif // ALBERTA_BENCHMARKS_MCF_GENERATOR_H
