/**
 * @file
 * The 505.mcf_r mini-benchmark: single-depot vehicle scheduling via
 * min-cost flow, with the Alberta city-generator workloads.
 */
#ifndef ALBERTA_BENCHMARKS_MCF_BENCHMARK_H
#define ALBERTA_BENCHMARKS_MCF_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::mcf {

/** See file comment. */
class McfBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "505.mcf_r"; }
    std::string area() const override { return "Route planning"; }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::mcf

#endif // ALBERTA_BENCHMARKS_MCF_BENCHMARK_H
