#include "benchmarks/mcf/benchmark.h"

#include "benchmarks/mcf/generator.h"
#include "benchmarks/mcf/mincost.h"
#include "support/check.h"

namespace alberta::mcf {

namespace {

runtime::Workload
makeWorkload(const std::string &name, const CityConfig &config)
{
    runtime::Workload w;
    w.name = name;
    w.seed = config.seed;
    w.params.set("trips", static_cast<long long>(config.trips));
    w.params.set("terminals", static_cast<long long>(config.terminals));
    w.params.set("density", config.density);
    w.params.set("connectivity", config.connectivity);
    const VehicleProblem prob = generateCity(config);
    w.files["input.min"] = prob.instance.serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
McfBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;

    CityConfig ref;
    ref.seed = 0x505AEF;
    ref.trips = 170;
    ref.terminals = 30;
    ref.density = 0.5;
    ref.connectivity = 0.22;
    out.push_back(makeWorkload("refrate", ref));

    CityConfig train = ref;
    train.seed = 0x505AE1;
    train.trips = 70;
    out.push_back(makeWorkload("train", train));

    CityConfig test = ref;
    test.seed = 0x505AE2;
    test.trips = 30;
    test.connectivity = 0.5;
    out.push_back(makeWorkload("test", test));

    // The three automatically generated Alberta workloads: each defines
    // a different single-depot vehicle scheduling problem.
    CityConfig c1 = ref;
    c1.seed = 0xA1;
    c1.trips = 110;
    c1.density = 0.8; // dense downtown-heavy city
    c1.connectivity = 0.40;
    out.push_back(makeWorkload("alberta.city-1", c1));

    CityConfig c2 = ref;
    c2.seed = 0xA2;
    c2.trips = 130;
    c2.density = 0.2; // sprawling city, long deadheads
    c2.connectivity = 0.18;
    c2.deadheadCostPerKm = 16;
    out.push_back(makeWorkload("alberta.city-2", c2));

    CityConfig c3 = ref;
    c3.seed = 0xA3;
    c3.trips = 100;
    c3.terminals = 60; // many terminals, sparse connections
    c3.connectivity = 0.12;
    out.push_back(makeWorkload("alberta.city-3", c3));

    CityConfig metro = ref;
    metro.seed = 0xA4;
    metro.trips = 140;
    metro.terminals = 16;
    metro.density = 0.9;
    metro.connectivity = 0.5; // highly connected metro network
    metro.pullCost = 4000;
    out.push_back(makeWorkload("alberta.metro-1", metro));

    return out;
}

void
McfBenchmark::run(const runtime::Workload &workload,
                  runtime::ExecutionContext &context) const
{
    const Instance instance =
        Instance::parse(workload.file("input.min"), context);
    Solver solver(instance);
    const Solution solution = solver.solve(context);
    support::fatalIf(!solution.feasible, "mcf: workload '", workload.name,
                     "' is infeasible");
    context.consume(static_cast<std::uint64_t>(solution.totalCost));
    context.consume(static_cast<std::uint64_t>(solution.augmentations));
}

double
McfBenchmark::costHint(const runtime::Workload &workload) const
{
    // Solver work grows roughly quadratically in trips (each trip adds
    // both a column and rows to price against); ~500 uops per trip^2
    // fits refrate within 1% and every city within 2x.
    const double trips =
        static_cast<double>(workload.params.getInt("trips", 0));
    return 500.0 * trips * trips;
}

} // namespace alberta::mcf
