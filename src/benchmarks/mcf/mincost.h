/**
 * @file
 * Min-cost-flow kernel for the 505.mcf_r mini-benchmark.
 *
 * SPEC's mcf solves single-depot vehicle scheduling as a minimum-cost
 * flow problem (Löbel's MCF network simplex). This reproduction solves
 * the same problem class with successive shortest paths over reduced
 * costs — a different pivot strategy with the same memory-bound,
 * pointer-chasing behaviour (graph traversal over arrays far larger
 * than cache) and the same optimality guarantees.
 */
#ifndef ALBERTA_BENCHMARKS_MCF_MINCOST_H
#define ALBERTA_BENCHMARKS_MCF_MINCOST_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace alberta::mcf {

/** One directed arc with a lower bound, capacity, and unit cost. */
struct Arc
{
    std::int32_t from = 0;
    std::int32_t to = 0;
    std::int64_t lower = 0;
    std::int64_t capacity = 0;
    std::int64_t cost = 0;
};

/** A min-cost-flow instance: node supplies plus arcs. */
struct Instance
{
    /** supply[i] > 0 produces flow, < 0 consumes flow; must sum to 0. */
    std::vector<std::int64_t> supplies;
    std::vector<Arc> arcs;

    /** Number of nodes. */
    std::int32_t nodes() const
    {
        return static_cast<std::int32_t>(supplies.size());
    }

    /** Serialize to DIMACS-min format ("p min", "n", "a" lines). */
    std::string serialize() const;

    /** Parse from DIMACS-min format; fatal on malformed input. */
    static Instance parse(const std::string &text,
                          runtime::ExecutionContext &ctx);
};

/** Solution of a min-cost-flow instance. */
struct Solution
{
    bool feasible = false;
    std::int64_t totalCost = 0;
    /** Flow per arc, parallel to Instance::arcs (includes lower). */
    std::vector<std::int64_t> flows;
    std::int64_t augmentations = 0; //!< shortest-path rounds performed
};

/**
 * Successive-shortest-paths min-cost-flow solver.
 *
 * Lower bounds are removed by the standard excess transformation; all
 * residual searches use Dijkstra with node potentials, so arc costs must
 * be non-negative.
 */
class Solver
{
  public:
    explicit Solver(const Instance &instance);

    /** Solve, reporting micro-ops through @p ctx. */
    Solution solve(runtime::ExecutionContext &ctx);

  private:
    struct Edge
    {
        std::int32_t to;
        std::int32_t next;      //!< next edge index in adjacency list
        std::int64_t residual;
        std::int64_t cost;
    };

    void addEdge(std::int32_t from, std::int32_t to, std::int64_t cap,
                 std::int64_t cost);

    const Instance &instance_;
    std::vector<Edge> edges_;
    std::vector<std::int32_t> head_;
};

/**
 * Verify optimality via complementary slackness: a feasible flow is
 * optimal iff the residual graph has no negative-cost cycle. Runs
 * Bellman-Ford; intended for tests, not benchmarking.
 *
 * @return true when the solution is feasible, conserving, and optimal
 */
bool verifyOptimal(const Instance &instance, const Solution &solution);

} // namespace alberta::mcf

#endif // ALBERTA_BENCHMARKS_MCF_MINCOST_H
