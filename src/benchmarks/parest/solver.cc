#include "benchmarks/parest/solver.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.h"
#include "support/rng.h"
#include "support/text.h"

namespace alberta::parest {

void
CsrMatrix::multiply(const std::vector<double> &x,
                    std::vector<double> &y,
                    runtime::ExecutionContext &ctx) const
{
    auto &m = ctx.machine();
    y.assign(rows, 0.0);
    for (int r = 0; r < rows; ++r) {
        double sum = 0.0;
        for (int k = rowStart[r]; k < rowStart[r + 1]; ++k)
            sum += value[k] * x[column[k]];
        y[r] = sum;
        if ((r & 15) == 0) {
            m.stream(topdown::OpKind::Load,
                     0xF00000000ULL + rowStart[r] * 12ULL, 16, 12);
            m.ops(topdown::OpKind::FpMul, 16 * 5);
        }
    }
}

CgResult
conjugateGradient(const CsrMatrix &matrix,
                  const std::vector<double> &rhs,
                  std::vector<double> &x, double tolerance,
                  int maxIterations, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("parest::cg_solve", 3200);
    auto &m = ctx.machine();
    const std::size_t n = rhs.size();
    x.assign(n, 0.0);
    std::vector<double> r = rhs, p = rhs, ap(n);
    double rr = 0.0;
    for (const double v : r)
        rr += v * v;
    const double target = tolerance * tolerance * rr;

    CgResult result;
    while (result.iterations < maxIterations && rr > target &&
           rr > 1e-30) {
        matrix.multiply(p, ap, ctx);
        double pap = 0.0;
        for (std::size_t i = 0; i < n; ++i)
            pap += p[i] * ap[i];
        const double alpha = rr / pap;
        double rrNew = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
            rrNew += r[i] * r[i];
            // Sign-dependent bookkeeping branch (residual monitors,
            // Jacobi-style clipping): data-dependent and irregular.
            if ((i & 7) == 0)
                m.branch(3, r[i] > 0.0);
        }
        const double beta = rrNew / rr;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = r[i] + beta * p[i];
        rr = rrNew;
        ++result.iterations;
        m.ops(topdown::OpKind::FpMul, n / 2);
        m.ops(topdown::OpKind::FpDiv, 2);
        m.branch(1, rr > target);
    }
    result.residual = std::sqrt(rr);
    result.converged = rr <= target || rr <= 1e-30;
    return result;
}

namespace {

int
subdomainOf(int ix, int iy, int n, int k)
{
    const int sx = std::min(k - 1, ix * k / n);
    const int sy = std::min(k - 1, iy * k / n);
    return sy * k + sx;
}

std::vector<double>
forwardSolve(int n, int subdomains, const std::vector<double> &c,
             double tolerance, runtime::ExecutionContext &ctx,
             EstimationResult *accounting = nullptr)
{
    const CsrMatrix matrix = assemble(n, subdomains, c, ctx);
    std::vector<double> rhs(static_cast<std::size_t>(n) * n, 1.0);
    std::vector<double> u;
    const CgResult cg = conjugateGradient(matrix, rhs, u, tolerance,
                                          4 * n * n, ctx);
    support::fatalIf(!cg.converged, "parest: CG failed to converge");
    if (accounting) {
        ++accounting->forwardSolves;
        accounting->cgIterations += cg.iterations;
    }
    return u;
}

} // namespace

CsrMatrix
assemble(int n, int subdomains, const std::vector<double> &c,
         runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("parest::assemble", 2600);
    auto &m = ctx.machine();
    support::fatalIf(static_cast<int>(c.size()) !=
                         subdomains * subdomains,
                     "parest: coefficient count mismatch");
    for (const double v : c)
        support::fatalIf(v <= 0, "parest: nonpositive coefficient");

    CsrMatrix matrix;
    matrix.rows = n * n;
    matrix.rowStart.reserve(matrix.rows + 1);
    matrix.rowStart.push_back(0);
    // Five-point stencil with harmonic-mean edge coefficients.
    const auto coeff = [&](int ix, int iy) {
        return c[subdomainOf(ix, iy, n, subdomains)];
    };
    for (int iy = 0; iy < n; ++iy) {
        for (int ix = 0; ix < n; ++ix) {
            const int row = iy * n + ix;
            const double cc = coeff(ix, iy);
            double diag = 0.0;
            const auto addNeighbor = [&](int jx, int jy) {
                const double edge =
                    2.0 * cc * coeff(jx, jy) /
                    (cc + coeff(jx, jy));
                diag += edge;
                matrix.column.push_back(jy * n + jx);
                matrix.value.push_back(-edge);
            };
            // Dirichlet boundary: off-grid neighbours contribute to
            // the diagonal only.
            if (ix > 0)
                addNeighbor(ix - 1, iy);
            else
                diag += cc;
            if (ix + 1 < n)
                addNeighbor(ix + 1, iy);
            else
                diag += cc;
            if (iy > 0)
                addNeighbor(ix, iy - 1);
            else
                diag += cc;
            if (iy + 1 < n)
                addNeighbor(ix, iy + 1);
            else
                diag += cc;
            matrix.column.push_back(row);
            matrix.value.push_back(diag);
            matrix.rowStart.push_back(
                static_cast<int>(matrix.column.size()));
            m.ops(topdown::OpKind::FpDiv, 4);
            m.store(0xF10000000ULL + row * 40ULL);
        }
    }
    return matrix;
}

std::string
EstimationProblem::serialize() const
{
    std::ostringstream os;
    os.precision(17);
    os << "parest " << n << ' ' << subdomains << ' '
       << regularization << ' ' << cgTolerance << ' '
       << descentIterations << '\n';
    os << "true";
    for (const double v : trueCoefficients)
        os << ' ' << v;
    os << "\nmeasured";
    for (const double v : measurements)
        os << ' ' << v;
    os << '\n';
    return os.str();
}

EstimationProblem
EstimationProblem::parse(const std::string &text)
{
    const auto lines = support::split(text, '\n');
    support::fatalIf(lines.size() < 3, "parest: truncated problem");
    EstimationProblem p;
    {
        const auto header = support::splitWhitespace(lines[0]);
        support::fatalIf(header.size() != 6 || header[0] != "parest",
                         "parest: bad header");
        p.n = static_cast<int>(support::parseInt(header[1]));
        p.subdomains =
            static_cast<int>(support::parseInt(header[2]));
        p.regularization = support::parseDouble(header[3]);
        p.cgTolerance = support::parseDouble(header[4]);
        p.descentIterations =
            static_cast<int>(support::parseInt(header[5]));
        support::fatalIf(p.n < 4 || p.subdomains < 1,
                         "parest: bad dimensions");
    }
    const auto truth = support::splitWhitespace(lines[1]);
    support::fatalIf(truth.empty() || truth[0] != "true",
                     "parest: missing truth line");
    for (std::size_t i = 1; i < truth.size(); ++i)
        p.trueCoefficients.push_back(support::parseDouble(truth[i]));
    const auto measured = support::splitWhitespace(lines[2]);
    support::fatalIf(measured.empty() || measured[0] != "measured",
                     "parest: missing measurements line");
    for (std::size_t i = 1; i < measured.size(); ++i)
        p.measurements.push_back(support::parseDouble(measured[i]));
    support::fatalIf(static_cast<int>(p.measurements.size()) !=
                         p.n * p.n,
                     "parest: measurement count mismatch");
    return p;
}

EstimationProblem
makeProblem(int n, int subdomains, std::uint64_t seed,
            runtime::ExecutionContext &ctx)
{
    support::Rng rng(seed);
    EstimationProblem p;
    p.n = n;
    p.subdomains = subdomains;
    for (int i = 0; i < subdomains * subdomains; ++i)
        p.trueCoefficients.push_back(rng.real(0.5, 3.0));
    p.measurements = forwardSolve(n, subdomains, p.trueCoefficients,
                                  1e-10, ctx);
    // Small measurement noise.
    for (auto &v : p.measurements)
        v *= 1.0 + rng.real(-1e-4, 1e-4);
    return p;
}

EstimationResult
estimate(const EstimationProblem &problem,
         runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("parest::estimate", 4200);
    auto &m = ctx.machine();
    const int k2 = problem.subdomains * problem.subdomains;

    EstimationResult result;
    result.coefficients.assign(k2, 1.0); // initial guess

    const auto misfit = [&](const std::vector<double> &c) {
        const auto u =
            forwardSolve(problem.n, problem.subdomains, c,
                         problem.cgTolerance, ctx, &result);
        double sum = 0.0;
        for (std::size_t i = 0; i < u.size(); ++i) {
            const double d = u[i] - problem.measurements[i];
            sum += d * d;
        }
        double reg = 0.0;
        for (const double v : c)
            reg += (v - 1.0) * (v - 1.0);
        m.ops(topdown::OpKind::FpMul, u.size() / 4);
        return sum + problem.regularization * reg;
    };

    double current = misfit(result.coefficients);
    double stepSize = 0.4;
    for (int iter = 0; iter < problem.descentIterations; ++iter) {
        for (int j = 0; j < k2; ++j) {
            // Coordinate descent: walk in the first improving
            // direction as long as the misfit keeps dropping.
            for (const double direction : {1.0, -1.0}) {
                bool movedThisDirection = false;
                for (int move = 0; move < 8; ++move) {
                    std::vector<double> trial = result.coefficients;
                    trial[j] = std::max(
                        0.05, trial[j] + direction * stepSize);
                    const double value = misfit(trial);
                    if (!m.branch(1, value < current))
                        break;
                    current = value;
                    result.coefficients = trial;
                    movedThisDirection = true;
                }
                if (movedThisDirection)
                    break;
            }
        }
        stepSize *= 0.5;
        m.ops(topdown::OpKind::FpMul, 4);
    }

    result.misfit = current;
    double err = 0.0;
    for (int j = 0; j < k2; ++j) {
        const double d = result.coefficients[j] -
                         problem.trueCoefficients[j];
        err += d * d;
    }
    result.coefficientError = std::sqrt(err / k2);
    ctx.consume(result.misfit);
    ctx.consume(static_cast<std::uint64_t>(result.forwardSolves));
    return result;
}

} // namespace alberta::parest
