#include "benchmarks/parest/benchmark.h"

#include "benchmarks/parest/solver.h"
#include "support/check.h"

namespace alberta::parest {

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed, int n,
             int subdomains, double regularization, int descent)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.params.set("n", static_cast<long long>(n));
    w.params.set("subdomains", static_cast<long long>(subdomains));
    runtime::ExecutionContext scratch;
    EstimationProblem problem =
        makeProblem(n, subdomains, seed, scratch);
    problem.regularization = regularization;
    problem.descentIterations = descent;
    w.files["problem.prb"] = problem.serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
ParestBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;
    out.push_back(makeWorkload("refrate", 0x510F, 28, 2, 1e-3, 6));
    out.push_back(makeWorkload("train", 0x5101, 18, 2, 1e-3, 4));
    out.push_back(makeWorkload("test", 0x5102, 14, 1, 1e-3, 2));
    // Parameter variations: mesh refinement, partition granularity,
    // regularization strength, and optimizer effort.
    out.push_back(
        makeWorkload("alberta.fine-mesh", 0x10A1, 36, 2, 1e-3, 4));
    out.push_back(
        makeWorkload("alberta.many-zones", 0x10A2, 24, 3, 1e-3, 5));
    out.push_back(makeWorkload("alberta.strong-reg", 0x10A3, 24, 2,
                               1e-1, 6));
    out.push_back(
        makeWorkload("alberta.weak-reg", 0x10A4, 24, 2, 1e-6, 6));
    out.push_back(makeWorkload("alberta.deep-descent", 0x10A5, 20, 2,
                               1e-3, 10));
    return out;
}

void
ParestBenchmark::run(const runtime::Workload &workload,
                     runtime::ExecutionContext &context) const
{
    EstimationProblem problem;
    {
        auto scope = context.method("parest::read_problem", 1400);
        problem =
            EstimationProblem::parse(workload.file("problem.prb"));
        context.machine().stream(
            topdown::OpKind::Load, 0xF20000000ULL,
            workload.file("problem.prb").size() / 32 + 1, 32);
    }
    const EstimationResult result = estimate(problem, context);
    support::fatalIf(result.forwardSolves == 0,
                     "parest: no forward solves performed");
    context.consume(result.cgIterations);
}

double
ParestBenchmark::costHint(const runtime::Workload &workload) const
{
    // Grid solves dominate: O(n^3) in the mesh parameter, scaled by
    // the number of inversion subdomains.
    const double n = static_cast<double>(workload.params.getInt("n", 0));
    const double subdomains = static_cast<double>(
        workload.params.getInt("subdomains", 1));
    return 2400.0 * n * n * n * (subdomains / 2.0);
}

} // namespace alberta::parest
