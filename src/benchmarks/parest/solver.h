/**
 * @file
 * Sparse linear algebra and PDE-constrained parameter estimation for
 * the 510.parest_r mini-benchmark: a structured-mesh diffusion
 * problem, conjugate-gradient forward solves, and coordinate-descent
 * recovery of subdomain diffusion coefficients from measurements.
 */
#ifndef ALBERTA_BENCHMARKS_PAREST_SOLVER_H
#define ALBERTA_BENCHMARKS_PAREST_SOLVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace alberta::parest {

/** Compressed-sparse-row matrix. */
struct CsrMatrix
{
    int rows = 0;
    std::vector<int> rowStart;   //!< size rows + 1
    std::vector<int> column;
    std::vector<double> value;

    /** y = A x (instrumented). */
    void multiply(const std::vector<double> &x,
                  std::vector<double> &y,
                  runtime::ExecutionContext &ctx) const;
};

/** Conjugate-gradient outcome. */
struct CgResult
{
    int iterations = 0;
    double residual = 0.0;
    bool converged = false;
};

/** CG for symmetric positive-definite systems. */
CgResult conjugateGradient(const CsrMatrix &matrix,
                           const std::vector<double> &rhs,
                           std::vector<double> &x, double tolerance,
                           int maxIterations,
                           runtime::ExecutionContext &ctx);

/**
 * The estimation problem: a diffusion equation -div(c grad u) = f on
 * an n x n interior grid with homogeneous Dirichlet boundaries. The
 * diffusion coefficient is constant on each cell of a k x k subdomain
 * partition; the estimator recovers those constants from a measured
 * solution.
 */
struct EstimationProblem
{
    int n = 24;            //!< interior grid points per dimension
    int subdomains = 2;    //!< k (k*k unknown coefficients)
    double regularization = 1e-3;
    double cgTolerance = 1e-8;
    int descentIterations = 6;
    std::vector<double> trueCoefficients; //!< k*k values
    std::vector<double> measurements;     //!< n*n solution samples

    std::string serialize() const;
    static EstimationProblem parse(const std::string &text);
};

/** Build a problem: solve the forward model for the given truth. */
EstimationProblem makeProblem(int n, int subdomains,
                              std::uint64_t seed,
                              runtime::ExecutionContext &ctx);

/** Estimation outcome. */
struct EstimationResult
{
    std::vector<double> coefficients;
    double misfit = 0.0;            //!< final data misfit
    double coefficientError = 0.0;  //!< L2 error vs the truth
    int forwardSolves = 0;
    std::uint64_t cgIterations = 0;
};

/** Assemble the diffusion stiffness matrix for coefficients @p c. */
CsrMatrix assemble(int n, int subdomains,
                   const std::vector<double> &c,
                   runtime::ExecutionContext &ctx);

/** Run the estimator on @p problem. */
EstimationResult estimate(const EstimationProblem &problem,
                          runtime::ExecutionContext &ctx);

} // namespace alberta::parest

#endif // ALBERTA_BENCHMARKS_PAREST_SOLVER_H
