/**
 * @file
 * The 510.parest_r mini-benchmark: PDE-constrained parameter
 * estimation on a structured finite-element mesh.
 */
#ifndef ALBERTA_BENCHMARKS_PAREST_BENCHMARK_H
#define ALBERTA_BENCHMARKS_PAREST_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::parest {

/** See file comment. */
class ParestBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "510.parest_r"; }
    std::string area() const override
    {
        return "Biomedical imaging (parameter estimation)";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::parest

#endif // ALBERTA_BENCHMARKS_PAREST_BENCHMARK_H
