/**
 * @file
 * The 541.leela_r mini-benchmark: play incomplete Go games to the end
 * with fixed-simulation MCTS, plus the Alberta SGF-archive generator
 * and end-move culling script.
 */
#ifndef ALBERTA_BENCHMARKS_LEELA_BENCHMARK_H
#define ALBERTA_BENCHMARKS_LEELA_BENCHMARK_H

#include "benchmarks/leela/goboard.h"
#include "runtime/benchmark.h"
#include "support/rng.h"

namespace alberta::leela {

/**
 * Generate a self-play game on a @p boardSize board using the uniform
 * random (eye-preserving) policy, stopping at two consecutive passes
 * or a move cap. The archive stand-in for the NNGS SGF collection.
 */
SgfGame generateGame(int boardSize, support::Rng &rng);

/**
 * The Alberta culling script: remove @p cullMoves moves from the end
 * of @p game so that the benchmark has a game to finish.
 */
SgfGame cullEndMoves(const SgfGame &game, int cullMoves);

/** See file comment. */
class LeelaBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "541.leela_r"; }
    std::string area() const override { return "AI: Go game playing"; }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::leela

#endif // ALBERTA_BENCHMARKS_LEELA_BENCHMARK_H
