#include "benchmarks/leela/mcts.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace alberta::leela {

MctsEngine::MctsEngine(const MctsConfig &config, std::uint64_t seed)
    : config_(config), rng_(seed)
{
}

int
MctsEngine::playout(GoBoard &board, Color toMove,
                    runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("leela::playout", 3000);
    auto &m = ctx.machine();

    const int cap = board.area() + board.area() / 2;
    int moves = 0;
    while (board.passes() < 2 && moves < cap) {
        // Collect empty points once, then sample candidates from them;
        // legality is checked lazily (cheap in the common case).
        empties_.clear();
        for (const int p : board.points()) {
            if (board.at(p) == Color::Empty)
                empties_.push_back(p);
        }
        m.stream(topdown::OpKind::Load, 0x9000,
                 static_cast<std::uint64_t>(board.area()) / 8 + 1, 8);

        int chosen = kPass;
        for (int attempt = 0; attempt < 10 && !empties_.empty();
             ++attempt) {
            const int p = empties_[rng_.below(empties_.size())];
            m.load(0xA000 + p);
            if (m.branch(1, board.isTrueEye(p, toMove)))
                continue;
            if (m.branch(2, board.legal(p, toMove))) {
                chosen = p;
                break;
            }
        }
        board.play(chosen, toMove);
        m.ops(topdown::OpKind::IntAlu, 24);
        toMove = opponent(toMove);
        ++moves;
        ++playoutMoves_;
    }
    return board.areaScore();
}

void
MctsEngine::expand(int nodeIndex, const GoBoard &board, Color color)
{
    board.legalPoints(color, legalBuf_);
    const int first = static_cast<int>(nodes_.size());
    int count = 0;
    for (const int p : legalBuf_) {
        if (board.isTrueEye(p, color))
            continue;
        Node child;
        child.move = p;
        nodes_.push_back(child);
        ++count;
    }
    Node pass;
    pass.move = kPass;
    nodes_.push_back(pass);
    ++count;
    nodes_[nodeIndex].firstChild = first;
    nodes_[nodeIndex].childCount = count;
}

int
MctsEngine::selectChild(const Node &parent,
                        runtime::ExecutionContext &ctx) const
{
    auto &m = ctx.machine();
    const double logN =
        std::log(static_cast<double>(parent.visits) + 1.0);
    int best = parent.firstChild;
    double bestScore = -1e18;
    for (int c = parent.firstChild;
         c < parent.firstChild + parent.childCount; ++c) {
        const Node &child = nodes_[c];
        m.load(0xB000ULL + static_cast<std::uint64_t>(c) * 32);
        m.ops(topdown::OpKind::FpAdd, 2);
        double score;
        if (child.visits == 0) {
            score = 1e9 - c; // first-play urgency, deterministic order
        } else {
            m.ops(topdown::OpKind::FpDiv, 1);
            score = child.wins / child.visits +
                    config_.uctC * std::sqrt(logN / child.visits);
        }
        if (m.branch(2, score > bestScore)) {
            bestScore = score;
            best = c;
        }
    }
    return best;
}

int
MctsEngine::chooseMove(const GoBoard &board, Color color,
                       runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("leela::uct_tree", 4200);
    auto &m = ctx.machine();

    nodes_.clear();
    nodes_.push_back(Node{});
    expand(0, board, color);

    for (int sim = 0; sim < config_.simulationsPerMove; ++sim) {
        GoBoard &scratch = scratchBoard_;
        scratch.copyPositionFrom(board);
        Color toMove = color;
        path_.clear();
        path_.push_back(0);

        // Descend while nodes have expanded children.
        int current = 0;
        while (nodes_[current].childCount > 0) {
            const int childIdx = selectChild(nodes_[current], ctx);
            scratch.play(nodes_[childIdx].move, toMove);
            toMove = opponent(toMove);
            path_.push_back(childIdx);
            current = childIdx;
            if (nodes_[current].visits < config_.expandThreshold)
                break;
            if (nodes_[current].childCount == 0 &&
                scratch.passes() < 2)
                expand(current, scratch, toMove);
        }

        const int score = playout(scratch, toMove, ctx);

        // Backpropagate from black's perspective, flipping per ply.
        Color mover = color;
        for (std::size_t i = 1; i < path_.size(); ++i) {
            Node &node = nodes_[path_[i]];
            ++node.visits;
            const bool blackWins = score > 0;
            const bool moverIsBlack = mover == Color::Black;
            node.wins += (blackWins == moverIsBlack) ? 1.0 : 0.0;
            m.store(0xB000ULL +
                    static_cast<std::uint64_t>(path_[i]) * 32);
            mover = opponent(mover);
        }
        ++nodes_[0].visits;
    }

    // Most-visited child wins.
    int bestMove = kPass;
    int bestVisits = -1;
    for (int c = nodes_[0].firstChild;
         c < nodes_[0].firstChild + nodes_[0].childCount; ++c) {
        if (m.branch(3, nodes_[c].visits > bestVisits)) {
            bestVisits = nodes_[c].visits;
            bestMove = nodes_[c].move;
        }
    }
    return bestMove;
}

GameStats
MctsEngine::playToEnd(const SgfGame &game, runtime::ExecutionContext &ctx)
{
    GoBoard board(game.boardSize);
    Color toMove = game.firstColor;
    {
        auto scope = ctx.method("leela::replay_sgf", 1200);
        auto &m = ctx.machine();
        for (const int move : game.moves) {
            int p = kPass;
            if (move != kPass) {
                p = board.point(move / game.boardSize,
                                move % game.boardSize);
                if (!board.legal(p, toMove))
                    p = kPass; // tolerate archive oddities
            }
            board.play(p, toMove);
            m.ops(topdown::OpKind::IntAlu, 30);
            m.load(0xC000 + (move & 0x3ff));
            toMove = opponent(toMove);
        }
    }

    GameStats stats;
    const std::uint64_t before = playoutMoves_;
    const int cap = std::min(board.area(), config_.maxGameMoves);
    while (board.passes() < 2 && stats.movesPlayed < cap) {
        const int move = chooseMove(board, toMove, ctx);
        board.play(move, toMove);
        toMove = opponent(toMove);
        ++stats.movesPlayed;
        stats.simulations += config_.simulationsPerMove;
    }
    stats.playoutMoves = playoutMoves_ - before;
    stats.finalScore = board.areaScore();
    ctx.consume(static_cast<std::uint64_t>(stats.finalScore + 1000));
    ctx.consume(static_cast<std::uint64_t>(stats.movesPlayed));
    return stats;
}

} // namespace alberta::leela
