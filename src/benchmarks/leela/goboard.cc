#include "benchmarks/leela/goboard.h"

#include <algorithm>
#include <cctype>

#include "support/check.h"
#include "support/rng.h"
#include "support/text.h"

namespace alberta::leela {

namespace {

/** Point-color Zobrist keys, shared across board sizes via index. */
std::uint64_t
pointKey(int p, Color c)
{
    return support::mix64(static_cast<std::uint64_t>(p) * 4 +
                          static_cast<std::uint64_t>(c));
}

} // namespace

GoBoard::GoBoard(int size) : size_(size), stride_(size + 2)
{
    support::fatalIf(size != 9 && size != 13 && size != 19,
                     "go: board size must be 9, 13, or 19; got ", size);
    board_.assign(stride_ * (size + 2), Color::Border);
    for (int r = 0; r < size; ++r)
        for (int c = 0; c < size; ++c) {
            board_[point(r, c)] = Color::Empty;
            points_.push_back(point(r, c));
        }
    mark_.assign(board_.size(), 0);
}

void
GoBoard::setPoint(int p, Color c)
{
    if (board_[p] != Color::Empty)
        hash_ ^= pointKey(p, board_[p]);
    board_[p] = c;
    if (c != Color::Empty)
        hash_ ^= pointKey(p, c);
}

int
GoBoard::libertiesAndGroup(int p, std::vector<int> &group) const
{
    const Color color = board_[p];
    group.clear();
    ++markGen_;
    int liberties = 0;
    scratch_.clear();
    scratch_.push_back(p);
    mark_[p] = markGen_;
    const int dirs[4] = {1, -1, stride_, -stride_};
    while (!scratch_.empty()) {
        const int q = scratch_.back();
        scratch_.pop_back();
        group.push_back(q);
        for (const int d : dirs) {
            const int nb = q + d;
            if (mark_[nb] == markGen_)
                continue;
            mark_[nb] = markGen_;
            if (board_[nb] == Color::Empty)
                ++liberties;
            else if (board_[nb] == color)
                scratch_.push_back(nb);
        }
    }
    return liberties;
}

void
GoBoard::removeGroup(const std::vector<int> &group)
{
    for (const int p : group)
        setPoint(p, Color::Empty);
}

bool
GoBoard::legal(int p, Color color) const
{
    if (p == kPass)
        return true;
    if (board_[p] != Color::Empty)
        return false;
    if (p == koPoint_)
        return false;

    const int dirs[4] = {1, -1, stride_, -stride_};
    // Fast accept: an adjacent empty point means no suicide.
    for (const int d : dirs)
        if (board_[p + d] == Color::Empty)
            return true;

    // Otherwise the move is legal iff it captures something or joins a
    // group that retains a liberty.
    for (const int d : dirs) {
        const int nb = p + d;
        if (board_[nb] == opponent(color)) {
            if (libertiesAndGroup(nb, group_) == 1)
                return true; // captures the neighbour group
        } else if (board_[nb] == color) {
            if (libertiesAndGroup(nb, group_) > 1)
                return true; // friendly group keeps a liberty
        }
    }
    return false;
}

int
GoBoard::play(int p, Color color)
{
    if (p == kPass) {
        ++passes_;
        koPoint_ = -2;
        return 0;
    }
    support::fatalIf(!legal(p, color), "go: illegal move at ", p);
    passes_ = 0;
    setPoint(p, color);

    const int dirs[4] = {1, -1, stride_, -stride_};
    int captured = 0;
    int lastCaptured = -2;
    for (const int d : dirs) {
        const int nb = p + d;
        if (board_[nb] != opponent(color))
            continue;
        if (libertiesAndGroup(nb, group_) == 0) {
            captured += static_cast<int>(group_.size());
            if (group_.size() == 1)
                lastCaptured = group_[0];
            removeGroup(group_);
        }
    }

    // Simple ko: single-stone capture by a single stone in atari.
    koPoint_ = -2;
    if (captured == 1 && lastCaptured >= 0) {
        if (libertiesAndGroup(p, group_) == 1 && group_.size() == 1)
            koPoint_ = lastCaptured;
    }
    return captured;
}

void
GoBoard::legalPoints(Color color, std::vector<int> &out) const
{
    out.clear();
    for (const int p : points_) {
        if (board_[p] == Color::Empty && legal(p, color))
            out.push_back(p);
    }
}

bool
GoBoard::isTrueEye(int p, Color color) const
{
    if (board_[p] != Color::Empty)
        return false;
    const int dirs[4] = {1, -1, stride_, -stride_};
    for (const int d : dirs) {
        const Color nb = board_[p + d];
        if (nb != color && nb != Color::Border)
            return false;
    }
    const int diags[4] = {stride_ + 1, stride_ - 1, -stride_ + 1,
                          -stride_ - 1};
    int bad = 0, border = 0;
    for (const int d : diags) {
        const Color nb = board_[p + d];
        if (nb == Color::Border)
            ++border;
        else if (nb == opponent(color))
            ++bad;
    }
    // Interior eyes tolerate one enemy diagonal; edge/corner none.
    return border > 0 ? bad == 0 : bad <= 1;
}

int
GoBoard::areaScore() const
{
    int black = 0, white = 0;
    ++markGen_;
    const int dirs[4] = {1, -1, stride_, -stride_};
    for (const int p : points_) {
        if (board_[p] == Color::Black) {
            ++black;
        } else if (board_[p] == Color::White) {
            ++white;
        } else if (mark_[p] != markGen_) {
            // Flood-fill the empty region; assign if bordered by a
            // single color.
            scratch_.clear();
            scratch_.push_back(p);
            mark_[p] = markGen_;
            int regionSize = 0;
            bool touchesBlack = false, touchesWhite = false;
            while (!scratch_.empty()) {
                const int q = scratch_.back();
                scratch_.pop_back();
                ++regionSize;
                for (const int d : dirs) {
                    const int nb = q + d;
                    if (board_[nb] == Color::Black)
                        touchesBlack = true;
                    else if (board_[nb] == Color::White)
                        touchesWhite = true;
                    else if (board_[nb] == Color::Empty &&
                             mark_[nb] != markGen_) {
                        mark_[nb] = markGen_;
                        scratch_.push_back(nb);
                    }
                }
            }
            if (touchesBlack && !touchesWhite)
                black += regionSize;
            else if (touchesWhite && !touchesBlack)
                white += regionSize;
        }
    }
    return black - white;
}

int
GoBoard::stones(Color color) const
{
    int n = 0;
    for (const int p : points_)
        n += board_[p] == color;
    return n;
}

std::string
toSgfCoord(int row, int col)
{
    std::string out;
    out += static_cast<char>('a' + col);
    out += static_cast<char>('a' + row);
    return out;
}

std::string
SgfGame::serialize() const
{
    std::string out = "(;GM[1]FF[4]SZ[" + std::to_string(boardSize) +
                      "]";
    Color color = firstColor;
    for (const int move : moves) {
        out += ';';
        out += color == Color::Black ? 'B' : 'W';
        out += '[';
        if (move != kPass)
            out += toSgfCoord(move / boardSize, move % boardSize);
        out += ']';
        color = opponent(color);
    }
    out += ')';
    return out;
}

SgfGame
SgfGame::parse(const std::string &text)
{
    SgfGame game;
    std::size_t i = 0;
    bool sawMove = false;
    const auto expectProp = [&](char what) {
        support::fatalIf(i >= text.size() || text[i] != what,
                         "sgf: expected '", what, "' at ", i);
        ++i;
    };
    support::fatalIf(text.empty() || text[0] != '(',
                     "sgf: missing opening parenthesis");
    ++i;
    while (i < text.size() && text[i] != ')') {
        if (text[i] == ';' || std::isspace(
                                  static_cast<unsigned char>(text[i]))) {
            ++i;
            continue;
        }
        // Property identifier.
        std::string ident;
        while (i < text.size() &&
               std::isupper(static_cast<unsigned char>(text[i])))
            ident += text[i++];
        expectProp('[');
        std::string value;
        while (i < text.size() && text[i] != ']')
            value += text[i++];
        expectProp(']');

        if (ident == "SZ") {
            game.boardSize =
                static_cast<int>(support::parseInt(value));
        } else if (ident == "B" || ident == "W") {
            const Color c =
                ident == "B" ? Color::Black : Color::White;
            if (!sawMove) {
                game.firstColor = c;
                sawMove = true;
            }
            if (value.empty()) {
                game.moves.push_back(kPass);
            } else {
                support::fatalIf(value.size() != 2,
                                 "sgf: bad coordinate '", value, "'");
                const int col = value[0] - 'a';
                const int row = value[1] - 'a';
                support::fatalIf(col < 0 || col >= game.boardSize ||
                                     row < 0 || row >= game.boardSize,
                                 "sgf: coordinate off board");
                game.moves.push_back(row * game.boardSize + col);
            }
        }
        // Other properties (GM, FF, ...) are ignored.
    }
    return game;
}

} // namespace alberta::leela
