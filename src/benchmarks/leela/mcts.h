/**
 * @file
 * Monte-Carlo tree search for the 541.leela_r mini-benchmark: UCT over
 * a growing tree with uniform-random playouts that avoid filling true
 * eyes, a fixed number of simulations per move (like leela's SPEC
 * configuration).
 */
#ifndef ALBERTA_BENCHMARKS_LEELA_MCTS_H
#define ALBERTA_BENCHMARKS_LEELA_MCTS_H

#include <cstdint>
#include <vector>

#include "benchmarks/leela/goboard.h"
#include "runtime/context.h"
#include "support/rng.h"

namespace alberta::leela {

/** Engine configuration. */
struct MctsConfig
{
    int simulationsPerMove = 48; //!< fixed playout budget per move
    double uctC = 0.8;           //!< exploration constant
    int expandThreshold = 2;     //!< visits before a node expands
    int maxGameMoves = 40;       //!< bound on moves played to the end
};

/** Statistics for one completed game. */
struct GameStats
{
    int movesPlayed = 0;
    std::uint64_t simulations = 0;
    std::uint64_t playoutMoves = 0;
    int finalScore = 0; //!< area score, positive = black
};

/** MCTS Go engine. */
class MctsEngine
{
  public:
    MctsEngine(const MctsConfig &config, std::uint64_t seed);

    /**
     * Choose a move for @p color on @p board using the fixed
     * simulation budget; returns the point or kPass.
     */
    int chooseMove(const GoBoard &board, Color color,
                   runtime::ExecutionContext &ctx);

    /**
     * Play @p game's recorded moves onto a fresh board, then play the
     * game out to completion (two consecutive passes or a move cap)
     * with both sides using MCTS.
     */
    GameStats playToEnd(const SgfGame &game,
                        runtime::ExecutionContext &ctx);

    /** Playout moves simulated so far (across calls). */
    std::uint64_t playoutMoves() const { return playoutMoves_; }

  private:
    struct Node
    {
        int move = kPass;
        int visits = 0;
        double wins = 0.0; //!< from the mover's perspective
        int firstChild = -1;
        int childCount = 0;
    };

    int playout(GoBoard &board, Color toMove,
                runtime::ExecutionContext &ctx);
    void expand(int nodeIndex, const GoBoard &board, Color color);
    int selectChild(const Node &parent,
                    runtime::ExecutionContext &ctx) const;

    MctsConfig config_;
    support::Rng rng_;
    std::vector<Node> nodes_;
    std::uint64_t playoutMoves_ = 0;
    // Reused across simulations so the hot loop does not allocate:
    // one chooseMove runs simulationsPerMove full playouts, and a
    // fresh board copy plus path/candidate vectors per simulation
    // dominated the host-side cost of the generator.
    GoBoard scratchBoard_{9};
    std::vector<int> path_;
    std::vector<int> empties_;
    std::vector<int> legalBuf_;
};

} // namespace alberta::leela

#endif // ALBERTA_BENCHMARKS_LEELA_MCTS_H
