#include "benchmarks/leela/benchmark.h"

#include <sstream>

#include "benchmarks/leela/mcts.h"
#include "support/check.h"
#include "support/text.h"

namespace alberta::leela {

SgfGame
generateGame(int boardSize, support::Rng &rng)
{
    GoBoard board(boardSize);
    SgfGame game;
    game.boardSize = boardSize;
    Color toMove = Color::Black;
    std::vector<int> empties;
    const int cap = board.area() + board.area() / 2;
    while (board.passes() < 2 &&
           static_cast<int>(game.moves.size()) < cap) {
        empties.clear();
        for (const int p : board.points())
            if (board.at(p) == Color::Empty)
                empties.push_back(p);
        int chosen = kPass;
        for (int attempt = 0; attempt < 10 && !empties.empty();
             ++attempt) {
            const int p = empties[rng.below(empties.size())];
            if (board.isTrueEye(p, toMove))
                continue;
            if (board.legal(p, toMove)) {
                chosen = p;
                break;
            }
        }
        board.play(chosen, toMove);
        if (chosen == kPass) {
            game.moves.push_back(kPass);
        } else {
            // Convert the padded index back to row-major coordinates.
            const int stride = boardSize + 2;
            const int row = chosen / stride - 1;
            const int col = chosen % stride - 1;
            game.moves.push_back(row * boardSize + col);
        }
        toMove = opponent(toMove);
    }
    return game;
}

SgfGame
cullEndMoves(const SgfGame &game, int cullMoves)
{
    SgfGame culled = game;
    const int keep = std::max(
        0, static_cast<int>(game.moves.size()) - cullMoves);
    culled.moves.resize(keep);
    return culled;
}

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed, int boardSize,
             int games, int cullMoves, int simulations, int maxMoves)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.params.set("board_size", static_cast<long long>(boardSize));
    w.params.set("simulations", static_cast<long long>(simulations));
    w.params.set("max_moves", static_cast<long long>(maxMoves));

    support::Rng rng(seed);
    std::ostringstream os;
    for (int g = 0; g < games; ++g) {
        support::Rng child = rng.fork(g + 1);
        const SgfGame full = generateGame(boardSize, child);
        os << cullEndMoves(full, cullMoves).serialize() << '\n';
    }
    w.files["games.sgf"] = os.str();
    return w;
}

} // namespace

std::vector<runtime::Workload>
LeelaBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;
    out.push_back(
        makeWorkload("refrate", 0x541F, 9, 6, 18, 48, 26));
    out.push_back(makeWorkload("train", 0x5411, 9, 2, 12, 32, 16));
    out.push_back(makeWorkload("test", 0x5412, 9, 1, 6, 12, 8));

    // Nine Alberta workloads, six positions each; board size and cull
    // count vary between workloads (Section IV-A).
    const int sizes[9] = {9, 9, 9, 13, 13, 13, 19, 9, 13};
    const int culls[9] = {10, 16, 24, 12, 18, 26, 14, 30, 22};
    for (int i = 0; i < 9; ++i) {
        const int sims = sizes[i] == 19 ? 12 : (sizes[i] == 13 ? 24
                                                               : 40);
        const int maxMoves = sizes[i] == 19 ? 8 : 18;
        out.push_back(makeWorkload(
            "alberta.g" + std::to_string(i + 1), 0x5410A0 + i,
            sizes[i], 6, culls[i], sims, maxMoves));
    }
    return out;
}

void
LeelaBenchmark::run(const runtime::Workload &workload,
                    runtime::ExecutionContext &context) const
{
    MctsConfig config;
    config.simulationsPerMove = static_cast<int>(
        workload.params.getInt("simulations", 48));
    config.maxGameMoves =
        static_cast<int>(workload.params.getInt("max_moves", 40));

    MctsEngine engine(config, workload.seed ^ 0x541);
    std::uint64_t totalSims = 0;
    int games = 0;
    for (const auto &line :
         support::split(workload.file("games.sgf"), '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty())
            continue;
        const SgfGame game = SgfGame::parse(std::string(trimmed));
        const GameStats stats = engine.playToEnd(game, context);
        totalSims += stats.simulations;
        context.consume(static_cast<std::uint64_t>(stats.movesPlayed));
        ++games;
    }
    support::fatalIf(games == 0, "leela: workload has no games");
    context.consume(totalSims);
}

double
LeelaBenchmark::costHint(const runtime::Workload &workload) const
{
    // One playout touches the whole board; total work ~ moves played
    // x simulations per move x board area.
    const double moves = static_cast<double>(
        workload.params.getInt("max_moves", 0));
    const double sims = static_cast<double>(
        workload.params.getInt("simulations", 0));
    const double board = static_cast<double>(
        workload.params.getInt("board_size", 9));
    return 41.0 * moves * sims * board * board;
}

} // namespace alberta::leela
