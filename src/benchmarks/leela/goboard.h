/**
 * @file
 * Go board for the 541.leela_r mini-benchmark: padded 1D array with
 * flood-fill capture, simple-ko rule, legality checks, and Tromp-Taylor
 * area scoring. Supports 9x9, 13x13, and 19x19 boards like the Alberta
 * leela workloads.
 */
#ifndef ALBERTA_BENCHMARKS_LEELA_GOBOARD_H
#define ALBERTA_BENCHMARKS_LEELA_GOBOARD_H

#include <cstdint>
#include <string>
#include <vector>

namespace alberta::leela {

/** Point states. */
enum class Color : std::int8_t
{
    Empty = 0,
    Black = 1,
    White = 2,
    Border = 3,
};

/** Opponent of @p c (Black <-> White). */
constexpr Color
opponent(Color c)
{
    return c == Color::Black ? Color::White : Color::Black;
}

/** The special "pass" move. */
inline constexpr int kPass = -1;

/** A Go position. */
class GoBoard
{
  public:
    /** @param size board side length (9, 13, or 19). */
    explicit GoBoard(int size = 9);

    /** Board side length. */
    int size() const { return size_; }

    /** Playable points on the board (size^2). */
    int area() const { return size_ * size_; }

    /** Index of (row, col), 0-based. */
    int
    point(int row, int col) const
    {
        return (row + 1) * stride_ + col + 1;
    }

    /** Color at padded index @p p. */
    Color at(int p) const { return board_[p]; }

    /** True if playing @p color at @p p is legal (suicide and simple
     * ko forbidden); @p p == kPass is always legal. */
    bool legal(int p, Color color) const;

    /**
     * Play @p color at @p p (or pass); returns stones captured.
     * Fatal if the move is illegal.
     */
    int play(int p, Color color);

    /** All legal points for @p color (excludes pass). */
    void legalPoints(Color color, std::vector<int> &out) const;

    /**
     * True when @p p is a single-point "true eye" for @p color: all
     * neighbours are @p color and enough diagonals are too. Playouts
     * avoid filling these.
     */
    bool isTrueEye(int p, Color color) const;

    /** Tromp-Taylor area score: positive favours black. */
    int areaScore() const;

    /** Stones currently on the board for @p color. */
    int stones(Color color) const;

    /** Consecutive passes so far (game over at 2). */
    int passes() const { return passes_; }

    /** All padded on-board indices. */
    const std::vector<int> &points() const { return points_; }

    /** Zobrist-style position hash (color-at-point). */
    std::uint64_t hash() const { return hash_; }

    /**
     * Adopt @p o's position — stones, ko state, pass count, hash —
     * without copying its traversal scratch. Equivalent to a full copy
     * for every query (marks never exceed the generation counter, so
     * keeping our own is safe), but reuses this board's buffers: in a
     * hot copy-restore loop (one restore per MCTS simulation) this is
     * a few memcpys instead of four vector clones.
     */
    void
    copyPositionFrom(const GoBoard &o)
    {
        size_ = o.size_;
        stride_ = o.stride_;
        koPoint_ = o.koPoint_;
        passes_ = o.passes_;
        hash_ = o.hash_;
        board_ = o.board_;
        points_ = o.points_;
        if (mark_.size() != board_.size()) {
            mark_.assign(board_.size(), 0);
            markGen_ = 0;
        }
    }

  private:
    int libertiesAndGroup(int p, std::vector<int> &group) const;
    void removeGroup(const std::vector<int> &group);
    void setPoint(int p, Color c);

    int size_;
    int stride_;
    int koPoint_ = -2; //!< simple-ko forbidden point, or -2
    int passes_ = 0;
    std::uint64_t hash_ = 0;
    std::vector<Color> board_;
    std::vector<int> points_;
    mutable std::vector<int> scratch_;
    mutable std::vector<int> group_; //!< flood-fill result scratch
    /** Visited marks as generation stamps: a point is marked iff
     * mark_[p] == markGen_, so starting a new traversal is one counter
     * bump instead of clearing the whole array. */
    mutable std::vector<std::uint64_t> mark_;
    mutable std::uint64_t markGen_ = 0;
};

/** Convert a 0-based (row, col) to SGF coordinates, e.g. (3,2)->"cd". */
std::string toSgfCoord(int row, int col);

/** A parsed SGF game record. */
struct SgfGame
{
    int boardSize = 9;
    /** Moves in order: point = row * size + col, or kPass. */
    std::vector<int> moves;
    /** Which color moves first (SGF allows either). */
    Color firstColor = Color::Black;

    /** Serialize to a minimal SGF string. */
    std::string serialize() const;

    /** Parse a minimal SGF string (SZ, B, W properties). */
    static SgfGame parse(const std::string &text);
};

} // namespace alberta::leela

#endif // ALBERTA_BENCHMARKS_LEELA_GOBOARD_H
