/**
 * @file
 * XSLT-lite transform engine for the 523.xalancbmk_r mini-benchmark.
 *
 * Supports the subset of XSLT 1.0 the XSLTMark/XMark-style workloads
 * need: template rules matched by element name (or "/"),
 * apply-templates, value-of, for-each, if (attribute equality or child
 * existence), literal result elements, and an XPath-lite select syntax
 * ("." , "@attr", "name", "name/sub", "*", "text()").
 */
#ifndef ALBERTA_BENCHMARKS_XALANCBMK_XSLT_H
#define ALBERTA_BENCHMARKS_XALANCBMK_XSLT_H

#include <memory>
#include <string>
#include <vector>

#include "benchmarks/xalancbmk/xml.h"
#include "runtime/context.h"

namespace alberta::xalancbmk {

/** A compiled stylesheet. */
class Stylesheet
{
  public:
    /**
     * Compile a stylesheet document (an `xsl:stylesheet` element with
     * `xsl:template` children).
     */
    explicit Stylesheet(const XmlNode &document);

    /**
     * Transform @p input, producing the output tree rooted at a
     * synthetic "out" element.
     */
    std::unique_ptr<XmlNode> transform(const XmlNode &input,
                                       runtime::ExecutionContext &ctx)
        const;

    /** Number of template rules (testing aid). */
    std::size_t templateCount() const { return templates_.size(); }

  private:
    struct Template
    {
        std::string match;    //!< element name or "/"
        const XmlNode *body;  //!< instruction sequence
    };

    const Template *findTemplate(const std::string &name) const;
    void instantiate(const XmlNode &instruction, const XmlNode &context,
                     XmlNode &out,
                     runtime::ExecutionContext &ctx) const;
    void applyTemplates(const XmlNode &context, XmlNode &out,
                        const std::string &select,
                        runtime::ExecutionContext &ctx) const;
    std::vector<const XmlNode *>
    selectNodes(const XmlNode &context, const std::string &select)
        const;
    std::string selectString(const XmlNode &context,
                             const std::string &select) const;

    std::vector<Template> templates_;
};

} // namespace alberta::xalancbmk

#endif // ALBERTA_BENCHMARKS_XALANCBMK_XSLT_H
