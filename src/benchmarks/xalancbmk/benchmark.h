/**
 * @file
 * The 523.xalancbmk_r mini-benchmark: XSLT transformation of XML data,
 * with XSLTMark-style generated documents and an XMark-style combined
 * query stylesheet (Section IV-A).
 */
#ifndef ALBERTA_BENCHMARKS_XALANCBMK_BENCHMARK_H
#define ALBERTA_BENCHMARKS_XALANCBMK_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::xalancbmk {

/**
 * Generate an XSLTMark-style sales document with @p records records:
 * random content, fixed schema, so one stylesheet fits all sizes.
 */
std::string generateSalesXml(int records, std::uint64_t seed);

/**
 * Generate an XMark-style auction document with @p items items and
 * @p people people.
 */
std::string generateAuctionXml(int items, int people,
                               std::uint64_t seed);

/** The fixed stylesheet for sales documents (HTML table report). */
std::string salesStylesheet();

/** The combined-queries stylesheet for auction documents. */
std::string auctionStylesheet();

/**
 * Generate a deeply nested random tree document (recursion-heavy
 * parsing and template application).
 */
std::string generateNestedXml(int depth, int fanout,
                              std::uint64_t seed);

/** Recursive stylesheet matching @ref generateNestedXml documents. */
std::string nestedStylesheet();

/** See file comment. */
class XalancbmkBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "523.xalancbmk_r"; }
    std::string area() const override
    {
        return "XML to HTML conversion";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::xalancbmk

#endif // ALBERTA_BENCHMARKS_XALANCBMK_BENCHMARK_H
