#include "benchmarks/xalancbmk/xslt.h"

#include "support/check.h"
#include "support/rng.h"
#include "support/text.h"

namespace alberta::xalancbmk {

Stylesheet::Stylesheet(const XmlNode &document)
{
    support::fatalIf(document.name() != "xsl:stylesheet",
                     "xslt: root must be xsl:stylesheet, got '",
                     document.name(), "'");
    for (const auto &child : document.children()) {
        if (child->kind() != XmlNode::Kind::Element ||
            child->name() != "xsl:template")
            continue;
        const std::string &match = child->attribute("match");
        support::fatalIf(match.empty(),
                         "xslt: template without match pattern");
        templates_.push_back({match, child.get()});
    }
    support::fatalIf(templates_.empty(), "xslt: no template rules");
}

const Stylesheet::Template *
Stylesheet::findTemplate(const std::string &name) const
{
    for (const Template &t : templates_) {
        if (t.match == name)
            return &t;
    }
    return nullptr;
}

std::vector<const XmlNode *>
Stylesheet::selectNodes(const XmlNode &context,
                        const std::string &select) const
{
    std::vector<const XmlNode *> out;
    if (select.empty() || select == "*") {
        for (const auto &child : context.children()) {
            if (child->kind() == XmlNode::Kind::Element)
                out.push_back(child.get());
        }
        return out;
    }
    if (select == ".") {
        out.push_back(&context);
        return out;
    }
    if (select == "text()") {
        for (const auto &child : context.children()) {
            if (child->kind() == XmlNode::Kind::Text)
                out.push_back(child.get());
        }
        return out;
    }
    // Path steps: "a/b/c".
    std::vector<const XmlNode *> frontier = {&context};
    for (const auto &step : support::split(select, '/')) {
        std::vector<const XmlNode *> next;
        for (const XmlNode *node : frontier) {
            for (const auto &child : node->children()) {
                if (child->kind() == XmlNode::Kind::Element &&
                    (step == "*" || child->name() == step))
                    next.push_back(child.get());
            }
        }
        frontier = std::move(next);
    }
    return frontier;
}

std::string
Stylesheet::selectString(const XmlNode &context,
                         const std::string &select) const
{
    if (select == ".")
        return context.textValue();
    if (!select.empty() && select[0] == '@')
        return context.attribute(select.substr(1));
    const auto nodes = selectNodes(context, select);
    return nodes.empty() ? std::string() : nodes.front()->textValue();
}

void
Stylesheet::applyTemplates(const XmlNode &context, XmlNode &out,
                           const std::string &select,
                           runtime::ExecutionContext &ctx) const
{
    auto scope = ctx.method("xalanc::apply_templates", 2800);
    auto &m = ctx.machine();
    for (const XmlNode *node : selectNodes(context, select)) {
        m.indirect(1, support::mix64(
                          std::hash<std::string>{}(node->name())));
        const Template *rule = findTemplate(node->name());
        m.ops(topdown::OpKind::IntAlu,
              4 * templates_.size()); // linear rule scan
        if (m.branch(2, rule != nullptr)) {
            for (const auto &instruction : rule->body->children())
                instantiate(*instruction, *node, out, ctx);
        } else {
            // Built-in rule: copy text, recurse into elements.
            for (const auto &child : node->children()) {
                if (child->kind() == XmlNode::Kind::Text)
                    out.appendChild(XmlNode::text(child->content()));
            }
            applyTemplates(*node, out, "", ctx);
        }
    }
}

void
Stylesheet::instantiate(const XmlNode &instruction,
                        const XmlNode &context, XmlNode &out,
                        runtime::ExecutionContext &ctx) const
{
    auto &m = ctx.machine();
    if (instruction.kind() == XmlNode::Kind::Text) {
        out.appendChild(XmlNode::text(instruction.content()));
        return;
    }
    const std::string &name = instruction.name();
    m.load(0x500000000ULL + std::hash<std::string>{}(name) % 65536);

    if (m.branch(3, name == "xsl:apply-templates")) {
        applyTemplates(context, out, instruction.attribute("select"),
                       ctx);
    } else if (m.branch(4, name == "xsl:value-of")) {
        auto valueScope = ctx.method("xalanc::xpath_string", 2400);
        out.appendChild(XmlNode::text(
            selectString(context, instruction.attribute("select"))));
        m.ops(topdown::OpKind::IntAlu, 12);
    } else if (m.branch(5, name == "xsl:for-each")) {
        auto forScope = ctx.method("xalanc::for_each", 2000);
        for (const XmlNode *node :
             selectNodes(context, instruction.attribute("select"))) {
            for (const auto &child : instruction.children())
                instantiate(*child, *node, out, ctx);
        }
    } else if (m.branch(6, name == "xsl:if")) {
        auto ifScope = ctx.method("xalanc::evaluate_test", 1700);
        const std::string &test = instruction.attribute("test");
        bool pass = false;
        const auto eq = test.find('=');
        if (eq != std::string::npos) {
            // "@attr='value'" or "name='value'" equality.
            std::string lhs(support::trim(test.substr(0, eq)));
            std::string rhs(support::trim(test.substr(eq + 1)));
            if (rhs.size() >= 2 && rhs.front() == '\'')
                rhs = rhs.substr(1, rhs.size() - 2);
            pass = selectString(context, lhs) == rhs;
        } else {
            pass = !selectNodes(context, std::string(
                                             support::trim(test)))
                        .empty();
        }
        if (m.branch(7, pass)) {
            for (const auto &child : instruction.children())
                instantiate(*child, context, out, ctx);
        }
    } else if (support::startsWith(name, "xsl:")) {
        support::fatal("xslt: unsupported instruction <", name, ">");
    } else {
        // Literal result element.
        auto literalScope = ctx.method("xalanc::literal_result", 1500);
        auto &element = out.appendChild(XmlNode::element(name));
        for (const auto &[key, value] : instruction.attributes())
            element.setAttribute(key, value);
        for (const auto &child : instruction.children())
            instantiate(*child, context, element, ctx);
    }
}

std::unique_ptr<XmlNode>
Stylesheet::transform(const XmlNode &input,
                      runtime::ExecutionContext &ctx) const
{
    auto scope = ctx.method("xalanc::transform", 4200);
    auto root = XmlNode::element("out");

    // A "/" template takes priority; otherwise match the root element.
    const Template *rule = findTemplate("/");
    if (rule == nullptr)
        rule = findTemplate(input.name());
    if (rule != nullptr) {
        for (const auto &instruction : rule->body->children())
            instantiate(*instruction, input, *root, ctx);
    } else {
        applyTemplates(input, *root, "", ctx);
    }
    ctx.consume(static_cast<std::uint64_t>(root->subtreeSize()));
    return root;
}

} // namespace alberta::xalancbmk
