/**
 * @file
 * A small XML DOM and parser for the 523.xalancbmk_r mini-benchmark.
 * Supports elements, attributes, text, comments, and the five basic
 * entities — enough to express XSLTMark/XMark-style documents and the
 * stylesheets that transform them.
 */
#ifndef ALBERTA_BENCHMARKS_XALANCBMK_XML_H
#define ALBERTA_BENCHMARKS_XALANCBMK_XML_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace alberta::xalancbmk {

/** An XML node: an element with children, or a text node. */
class XmlNode
{
  public:
    /** Node kinds. */
    enum class Kind
    {
        Element,
        Text,
    };

    /** Construct an element node. */
    static std::unique_ptr<XmlNode> element(std::string name);

    /** Construct a text node. */
    static std::unique_ptr<XmlNode> text(std::string content);

    Kind kind() const { return kind_; }
    /** Element name (empty for text nodes). */
    const std::string &name() const { return name_; }
    /** Text content (raw for text nodes). */
    const std::string &content() const { return content_; }
    /** Attributes in document order of first appearance. */
    const std::map<std::string, std::string> &attributes() const
    {
        return attributes_;
    }
    /** Child nodes. */
    const std::vector<std::unique_ptr<XmlNode>> &children() const
    {
        return children_;
    }

    /** Set (or overwrite) an attribute. */
    void setAttribute(const std::string &key, const std::string &value);
    /** Attribute value or empty string. */
    const std::string &attribute(const std::string &key) const;
    /** Append a child node, returning a handle to it. */
    XmlNode &appendChild(std::unique_ptr<XmlNode> child);

    /** Concatenated descendant text (the XPath string value). */
    std::string textValue() const;

    /** First child element with @p name, or nullptr. */
    const XmlNode *firstChild(const std::string &name) const;

    /** Serialize this subtree to XML text. */
    std::string serialize() const;

    /** Total node count in this subtree (testing aid). */
    std::size_t subtreeSize() const;

  private:
    XmlNode() = default;

    Kind kind_ = Kind::Element;
    std::string name_;
    std::string content_;
    std::map<std::string, std::string> attributes_;
    std::vector<std::unique_ptr<XmlNode>> children_;
};

/**
 * Parse an XML document, reporting micro-ops through @p ctx.
 *
 * @return the root element
 * @throws support::FatalError on malformed XML
 */
std::unique_ptr<XmlNode> parseXml(const std::string &text,
                                  runtime::ExecutionContext &ctx);

} // namespace alberta::xalancbmk

#endif // ALBERTA_BENCHMARKS_XALANCBMK_XML_H
