#include "benchmarks/xalancbmk/xml.h"

#include <cctype>

#include "support/check.h"

namespace alberta::xalancbmk {

std::unique_ptr<XmlNode>
XmlNode::element(std::string name)
{
    auto node = std::unique_ptr<XmlNode>(new XmlNode());
    node->kind_ = Kind::Element;
    node->name_ = std::move(name);
    return node;
}

std::unique_ptr<XmlNode>
XmlNode::text(std::string content)
{
    auto node = std::unique_ptr<XmlNode>(new XmlNode());
    node->kind_ = Kind::Text;
    node->content_ = std::move(content);
    return node;
}

void
XmlNode::setAttribute(const std::string &key, const std::string &value)
{
    attributes_[key] = value;
}

const std::string &
XmlNode::attribute(const std::string &key) const
{
    static const std::string kEmpty;
    const auto it = attributes_.find(key);
    return it == attributes_.end() ? kEmpty : it->second;
}

XmlNode &
XmlNode::appendChild(std::unique_ptr<XmlNode> child)
{
    children_.push_back(std::move(child));
    return *children_.back();
}

std::string
XmlNode::textValue() const
{
    if (kind_ == Kind::Text)
        return content_;
    std::string out;
    for (const auto &child : children_)
        out += child->textValue();
    return out;
}

const XmlNode *
XmlNode::firstChild(const std::string &name) const
{
    for (const auto &child : children_) {
        if (child->kind() == Kind::Element && child->name() == name)
            return child.get();
    }
    return nullptr;
}

namespace {

void
escapeInto(std::string &out, const std::string &text)
{
    for (const char ch : text) {
        switch (ch) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          case '"': out += "&quot;"; break;
          default: out += ch;
        }
    }
}

void
serializeInto(std::string &out, const XmlNode &node)
{
    if (node.kind() == XmlNode::Kind::Text) {
        escapeInto(out, node.content());
        return;
    }
    out += '<';
    out += node.name();
    for (const auto &[key, value] : node.attributes()) {
        out += ' ';
        out += key;
        out += "=\"";
        escapeInto(out, value);
        out += '"';
    }
    if (node.children().empty()) {
        out += "/>";
        return;
    }
    out += '>';
    for (const auto &child : node.children())
        serializeInto(out, *child);
    out += "</";
    out += node.name();
    out += '>';
}

} // namespace

std::string
XmlNode::serialize() const
{
    std::string out;
    serializeInto(out, *this);
    return out;
}

std::size_t
XmlNode::subtreeSize() const
{
    std::size_t n = 1;
    for (const auto &child : children_)
        n += child->subtreeSize();
    return n;
}

namespace {

/** Recursive-descent XML parser with probe instrumentation. */
class Parser
{
  public:
    Parser(const std::string &text, runtime::ExecutionContext &ctx)
        : text_(text), ctx_(ctx), m_(ctx.machine())
    {
    }

    std::unique_ptr<XmlNode>
    parse()
    {
        skipProlog();
        auto root = parseElement();
        skipWhitespace();
        support::fatalIf(pos_ != text_.size(),
                         "xml: trailing content after root element");
        return root;
    }

  private:
    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    char
    next()
    {
        support::fatalIf(pos_ >= text_.size(), "xml: unexpected end");
        m_.load(0x400000000ULL + pos_);
        return text_[pos_++];
    }

    void
    expect(char ch)
    {
        const char got = next();
        support::fatalIf(got != ch, "xml: expected '", ch, "', got '",
                         got, "' at ", pos_ - 1);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    void
    skipProlog()
    {
        skipWhitespace();
        while (pos_ + 1 < text_.size() && text_[pos_] == '<' &&
               (text_[pos_ + 1] == '?' || text_[pos_ + 1] == '!')) {
            const std::size_t close = text_.find('>', pos_);
            support::fatalIf(close == std::string::npos,
                             "xml: unterminated prolog");
            pos_ = close + 1;
            skipWhitespace();
        }
    }

    std::string
    parseName()
    {
        std::string name;
        while (pos_ < text_.size()) {
            const char ch = text_[pos_];
            const bool nameChar =
                std::isalnum(static_cast<unsigned char>(ch)) ||
                ch == '-' || ch == '_' || ch == ':' || ch == '.';
            if (!m_.branch(1, nameChar))
                break;
            name += ch;
            ++pos_;
        }
        support::fatalIf(name.empty(), "xml: empty name at ", pos_);
        return name;
    }

    std::string
    decodeEntities(const std::string &raw)
    {
        std::string out;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] != '&') {
                out += raw[i];
                continue;
            }
            const std::size_t semi = raw.find(';', i);
            support::fatalIf(semi == std::string::npos,
                             "xml: unterminated entity");
            const std::string entity = raw.substr(i + 1, semi - i - 1);
            if (entity == "lt") out += '<';
            else if (entity == "gt") out += '>';
            else if (entity == "amp") out += '&';
            else if (entity == "quot") out += '"';
            else if (entity == "apos") out += '\'';
            else
                support::fatal("xml: unknown entity &", entity, ";");
            i = semi;
        }
        return out;
    }

    std::unique_ptr<XmlNode>
    parseElement()
    {
        auto scope = ctx_.method("xalanc::parse_element", 3000);
        expect('<');
        auto node = XmlNode::element(parseName());
        m_.ops(topdown::OpKind::IntAlu, 8);

        // Attributes.
        while (true) {
            skipWhitespace();
            const char ch = peek();
            if (m_.branch(2, ch == '>' || ch == '/'))
                break;
            const std::string key = parseName();
            skipWhitespace();
            expect('=');
            skipWhitespace();
            const char quote = next();
            support::fatalIf(quote != '"' && quote != '\'',
                             "xml: unquoted attribute");
            std::string value;
            while (peek() != quote)
                value += next();
            expect(quote);
            node->setAttribute(key, decodeEntities(value));
            m_.ops(topdown::OpKind::IntAlu, 6);
        }

        if (m_.branch(3, peek() == '/')) {
            expect('/');
            expect('>');
            return node;
        }
        expect('>');

        // Children until the closing tag.
        while (true) {
            support::fatalIf(pos_ >= text_.size(),
                             "xml: unexpected end inside <",
                             node->name(), ">");
            if (m_.branch(4, peek() == '<')) {
                if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/')
                    break;
                if (pos_ + 3 < text_.size() && text_[pos_ + 1] == '!' &&
                    text_[pos_ + 2] == '-' && text_[pos_ + 3] == '-') {
                    const std::size_t close = text_.find("-->", pos_);
                    support::fatalIf(close == std::string::npos,
                                     "xml: unterminated comment");
                    pos_ = close + 3;
                    continue;
                }
                node->appendChild(parseElement());
            } else {
                std::string raw;
                while (pos_ < text_.size() && peek() != '<')
                    raw += next();
                node->appendChild(
                    XmlNode::text(decodeEntities(raw)));
            }
        }
        expect('<');
        expect('/');
        const std::string closing = parseName();
        support::fatalIf(closing != node->name(), "xml: mismatched </",
                         closing, "> for <", node->name(), ">");
        skipWhitespace();
        expect('>');
        return node;
    }

    const std::string &text_;
    runtime::ExecutionContext &ctx_;
    topdown::Machine &m_;
    std::size_t pos_ = 0;
};

} // namespace

std::unique_ptr<XmlNode>
parseXml(const std::string &text, runtime::ExecutionContext &ctx)
{
    Parser parser(text, ctx);
    auto root = parser.parse();
    ctx.consume(static_cast<std::uint64_t>(root->subtreeSize()));
    return root;
}

} // namespace alberta::xalancbmk
