#include "benchmarks/xalancbmk/benchmark.h"

#include <array>
#include <sstream>

#include "benchmarks/xalancbmk/xslt.h"
#include "support/check.h"
#include "support/rng.h"

namespace alberta::xalancbmk {

namespace {

const std::array<const char *, 12> kNames = {
    "alice", "bob",   "carol", "dave",  "erin",  "frank",
    "grace", "heidi", "ivan",  "judy",  "mallory", "oscar"};

const std::array<const char *, 8> kProducts = {
    "widget", "gadget", "sprocket", "gizmo",
    "doohickey", "contraption", "apparatus", "device"};

const std::array<const char *, 5> kRegions = {"north", "south", "east",
                                              "west", "central"};

} // namespace

std::string
generateSalesXml(int records, std::uint64_t seed)
{
    support::Rng rng(seed);
    std::ostringstream os;
    os << "<?xml version=\"1.0\"?>\n<sales>";
    for (int i = 0; i < records; ++i) {
        os << "<record id=\"" << i << "\" region=\""
           << kRegions[rng.below(kRegions.size())] << "\">"
           << "<customer>" << kNames[rng.below(kNames.size())]
           << "</customer>"
           << "<product>" << kProducts[rng.below(kProducts.size())]
           << "</product>"
           << "<quantity>" << (1 + rng.below(40)) << "</quantity>"
           << "<price>" << (5 + rng.below(995)) << "</price>"
           << "</record>";
    }
    os << "</sales>";
    return os.str();
}

std::string
generateAuctionXml(int items, int people, std::uint64_t seed)
{
    support::Rng rng(seed);
    std::ostringstream os;
    os << "<site>";
    os << "<people>";
    for (int p = 0; p < people; ++p) {
        os << "<person id=\"p" << p << "\"><name>"
           << kNames[rng.below(kNames.size())] << "</name><country>"
           << kRegions[rng.below(kRegions.size())]
           << "</country></person>";
    }
    os << "</people>";
    os << "<items>";
    for (int i = 0; i < items; ++i) {
        os << "<item id=\"i" << i << "\" featured=\""
           << (rng.chance(0.2) ? "yes" : "no") << "\">"
           << "<title>" << kProducts[rng.below(kProducts.size())] << ' '
           << i << "</title>"
           << "<seller>p" << rng.below(people) << "</seller>"
           << "<reserve>" << (10 + rng.below(990)) << "</reserve>";
        const int bids = static_cast<int>(rng.below(6));
        for (int b = 0; b < bids; ++b) {
            os << "<bid bidder=\"p" << rng.below(people)
               << "\"><amount>" << (10 + rng.below(2000))
               << "</amount></bid>";
        }
        os << "</item>";
    }
    os << "</items></site>";
    return os.str();
}

std::string
salesStylesheet()
{
    return R"(<xsl:stylesheet version="1.0">
<xsl:template match="sales">
  <html><body><table>
    <xsl:for-each select="record">
      <tr>
        <td><xsl:value-of select="@id"/></td>
        <td><xsl:value-of select="customer"/></td>
        <td><xsl:value-of select="product"/></td>
        <td><xsl:value-of select="quantity"/></td>
        <td><xsl:value-of select="price"/></td>
        <xsl:if test="@region='north'"><td>N</td></xsl:if>
      </tr>
    </xsl:for-each>
  </table></body></html>
</xsl:template>
</xsl:stylesheet>)";
}

std::string
auctionStylesheet()
{
    // Eighteen "queries" combined into one stylesheet, mirroring the
    // Alberta XMark workload construction.
    std::ostringstream os;
    os << "<xsl:stylesheet version=\"1.0\">\n";
    os << "<xsl:template match=\"site\">\n<report>\n";
    for (int q = 1; q <= 18; ++q) {
        os << "<query n=\"" << q << "\">";
        switch (q % 6) {
          case 0:
            os << "<xsl:for-each select=\"items/item\">"
                  "<xsl:if test=\"@featured='yes'\">"
                  "<hit><xsl:value-of select=\"title\"/></hit>"
                  "</xsl:if></xsl:for-each>";
            break;
          case 1:
            os << "<xsl:for-each select=\"people/person\">"
                  "<p><xsl:value-of select=\"name\"/></p>"
                  "</xsl:for-each>";
            break;
          case 2:
            os << "<xsl:for-each select=\"items/item\">"
                  "<t><xsl:value-of select=\"reserve\"/></t>"
                  "</xsl:for-each>";
            break;
          case 3:
            os << "<xsl:for-each select=\"items/item/bid\">"
                  "<b><xsl:value-of select=\"amount\"/></b>"
                  "</xsl:for-each>";
            break;
          case 4:
            os << "<xsl:for-each select=\"people/person\">"
                  "<xsl:if test=\"country='north'\">"
                  "<n><xsl:value-of select=\"name\"/></n>"
                  "</xsl:if></xsl:for-each>";
            break;
          default:
            os << "<xsl:apply-templates select=\"items/item\"/>";
            break;
        }
        os << "</query>\n";
    }
    os << "</report>\n</xsl:template>\n";
    os << "<xsl:template match=\"item\">"
          "<i><xsl:value-of select=\"@id\"/>:"
          "<xsl:value-of select=\"seller\"/></i>"
          "</xsl:template>\n";
    os << "</xsl:stylesheet>";
    return os.str();
}

namespace {

void
appendNested(std::ostringstream &os, int depth, int fanout,
             support::Rng &rng, int &id)
{
    os << "<node id=\"" << id++ << "\" k=\""
       << kRegions[rng.below(kRegions.size())] << "\">";
    if (depth > 0) {
        const int children =
            1 + static_cast<int>(rng.below(fanout));
        for (int c = 0; c < children; ++c)
            appendNested(os, depth - 1, fanout, rng, id);
    } else {
        os << kProducts[rng.below(kProducts.size())];
    }
    os << "</node>";
}

} // namespace

std::string
generateNestedXml(int depth, int fanout, std::uint64_t seed)
{
    support::Rng rng(seed);
    std::ostringstream os;
    os << "<tree>";
    int id = 0;
    for (int r = 0; r < 3; ++r)
        appendNested(os, depth, fanout, rng, id);
    os << "</tree>";
    return os.str();
}

std::string
nestedStylesheet()
{
    return R"(<xsl:stylesheet version="1.0">
<xsl:template match="tree">
  <out-tree><xsl:apply-templates select="node"/></out-tree>
</xsl:template>
<xsl:template match="node">
  <div>
    <xsl:if test="@k='north'"><n><xsl:value-of select="@id"/></n></xsl:if>
    <xsl:apply-templates select="node"/>
  </div>
</xsl:template>
</xsl:stylesheet>)";
}

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed,
             std::string xml, std::string xsl)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.files["input.xml"] = std::move(xml);
    w.files["transform.xsl"] = std::move(xsl);
    return w;
}

} // namespace

std::vector<runtime::Workload>
XalancbmkBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;
    out.push_back(makeWorkload("refrate", 0x523F,
                               generateAuctionXml(2600, 700, 0x523F),
                               auctionStylesheet()));
    out.push_back(makeWorkload("train", 0x5231,
                               generateAuctionXml(200, 60, 0x5231),
                               auctionStylesheet()));
    out.push_back(makeWorkload("test", 0x5232,
                               generateSalesXml(40, 0x5232),
                               salesStylesheet()));

    // Five Alberta workloads: XSLTMark-style sized variants plus the
    // combined XMark queries (Section IV-A).
    out.push_back(makeWorkload("alberta.xsltmark-small", 0xD1,
                               generateSalesXml(400, 0xD1),
                               salesStylesheet()));
    out.push_back(makeWorkload("alberta.nested-deep", 0xD2,
                               generateNestedXml(9, 2, 0xD2),
                               nestedStylesheet()));
    out.push_back(makeWorkload("alberta.xsltmark-large", 0xD3,
                               generateSalesXml(9000, 0xD3),
                               salesStylesheet()));
    out.push_back(makeWorkload("alberta.xmark-combined", 0xD4,
                               generateAuctionXml(700, 200, 0xD4),
                               auctionStylesheet()));
    out.push_back(makeWorkload("alberta.xmark-dense-bids", 0xD5,
                               generateAuctionXml(350, 60, 0xD5),
                               auctionStylesheet()));
    return out;
}

void
XalancbmkBenchmark::run(const runtime::Workload &workload,
                        runtime::ExecutionContext &context) const
{
    const auto input = parseXml(workload.file("input.xml"), context);
    const auto sheetDoc =
        parseXml(workload.file("transform.xsl"), context);
    const Stylesheet stylesheet(*sheetDoc);
    const auto output = stylesheet.transform(*input, context);

    std::string serialized;
    {
        auto scope = context.method("xalanc::serialize", 1600);
        serialized = output->serialize();
        context.machine().stream(topdown::OpKind::Store, 0x600000000ULL,
                                 serialized.size() / 8 + 1, 8);
    }
    support::fatalIf(serialized.size() < 8,
                     "xalancbmk: empty transform output");
    context.consume(static_cast<std::uint64_t>(serialized.size()));
    context.consume(std::hash<std::string>{}(serialized));
}

double
XalancbmkBenchmark::costHint(const runtime::Workload &workload) const
{
    // Document sizes are fixed per named input: the xsltmark pair
    // brackets refrate, the xmark queries are mid-size, and the
    // remaining inputs are small functional documents.
    const std::string &n = workload.name;
    if (n == "alberta.xsltmark-large")
        return 3.2e6;
    if (workload.isRefrate())
        return 2.2e6;
    if (n == "alberta.xmark-combined")
        return 0.6e6;
    if (n == "alberta.xmark-dense-bids")
        return 0.29e6;
    return 0.15e6;
}

} // namespace alberta::xalancbmk
