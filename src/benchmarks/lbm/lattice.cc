#include "benchmarks/lbm/lattice.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::lbm {

namespace {

/** D3Q19 velocity set and weights. */
const int kVel[19][3] = {
    {0, 0, 0},  {1, 0, 0},   {-1, 0, 0}, {0, 1, 0},  {0, -1, 0},
    {0, 0, 1},  {0, 0, -1},  {1, 1, 0},  {-1, -1, 0}, {1, -1, 0},
    {-1, 1, 0}, {1, 0, 1},   {-1, 0, -1}, {1, 0, -1}, {-1, 0, 1},
    {0, 1, 1},  {0, -1, -1}, {0, 1, -1}, {0, -1, 1}};

const double kWeight[19] = {
    1.0 / 3,  1.0 / 18, 1.0 / 18, 1.0 / 18, 1.0 / 18,
    1.0 / 18, 1.0 / 18, 1.0 / 36, 1.0 / 36, 1.0 / 36,
    1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36,
    1.0 / 36, 1.0 / 36, 1.0 / 36, 1.0 / 36};

/** Opposite direction index for bounce-back. */
const int kOpposite[19] = {0, 2,  1,  4,  3,  6,  5,  8,  7, 10,
                           9, 12, 11, 14, 13, 16, 15, 18, 17};

double
equilibrium(int dir, double rho, double ux, double uy, double uz)
{
    const double cu = 3.0 * (kVel[dir][0] * ux + kVel[dir][1] * uy +
                             kVel[dir][2] * uz);
    const double usq = 1.5 * (ux * ux + uy * uy + uz * uz);
    return kWeight[dir] * rho * (1.0 + cu + 0.5 * cu * cu - usq);
}

} // namespace

std::string
Geometry::serialize() const
{
    std::ostringstream os;
    os << nx << ' ' << ny << ' ' << nz << '\n';
    for (int z = 0; z < nz; ++z) {
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x)
                os << (at(x, y, z) == CellType::Obstacle ? '#' : '.');
            os << '\n';
        }
        os << '\n';
    }
    return os.str();
}

Geometry
Geometry::parse(const std::string &text)
{
    std::istringstream is(text);
    Geometry g;
    is >> g.nx >> g.ny >> g.nz;
    support::fatalIf(!is || g.nx <= 2 || g.ny <= 2 || g.nz <= 2,
                     "lbm: bad geometry header");
    g.cells.assign(
        static_cast<std::size_t>(g.nx) * g.ny * g.nz,
        CellType::Fluid);
    std::string line;
    int x = 0, y = 0, z = 0;
    while (std::getline(is, line)) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty())
            continue;
        support::fatalIf(static_cast<int>(trimmed.size()) != g.nx,
                         "lbm: geometry row has ", trimmed.size(),
                         " cells; expected ", g.nx);
        support::fatalIf(z >= g.nz, "lbm: too many geometry rows");
        for (x = 0; x < g.nx; ++x) {
            if (trimmed[x] == '#') {
                g.cells[x + static_cast<std::size_t>(g.nx) *
                                (y + static_cast<std::size_t>(g.ny) *
                                         z)] = CellType::Obstacle;
            } else {
                support::fatalIf(trimmed[x] != '.',
                                 "lbm: bad geometry char '",
                                 trimmed[x], "'");
            }
        }
        if (++y == g.ny) {
            y = 0;
            ++z;
        }
    }
    support::fatalIf(z != g.nz || y != 0, "lbm: truncated geometry");
    return g;
}

std::size_t
Geometry::solidCells() const
{
    std::size_t n = 0;
    for (const CellType c : cells)
        n += c == CellType::Obstacle;
    return n;
}

Lattice::Lattice(const Geometry &geometry, const LbmConfig &config)
    : geometry_(geometry), config_(config), nx_(geometry.nx),
      ny_(geometry.ny), nz_(geometry.nz)
{
    support::fatalIf(config.tau <= 0.5, "lbm: tau must exceed 0.5");
    const std::size_t cells =
        static_cast<std::size_t>(nx_) * ny_ * nz_;
    f_.assign(cells * 19, 0.0);
    fNew_.assign(cells * 19, 0.0);
    for (std::size_t c = 0; c < cells; ++c) {
        if (geometry_.cells[c] == CellType::Obstacle)
            continue; // solids carry no distributions
        for (int d = 0; d < 19; ++d)
            f_[c * 19 + d] = kWeight[d]; // rho = 1, u = 0
    }
}

void
Lattice::collideStream(runtime::ExecutionContext &ctx)
{
    auto &m = ctx.machine();
    const double omega = 1.0 / config_.tau;
    const double force = config_.inflowVelocity;

    const auto index = [&](int x, int y, int z) {
        return static_cast<std::size_t>(
            x + static_cast<std::size_t>(nx_) *
                    (y + static_cast<std::size_t>(ny_) * z));
    };

    for (int z = 0; z < nz_; ++z) {
        for (int y = 0; y < ny_; ++y) {
            for (int x = 0; x < nx_; ++x) {
                const std::size_t c = index(x, y, z);
                if (geometry_.cells[c] == CellType::Obstacle)
                    continue; // handled by halfway bounce-back below
                m.stream(topdown::OpKind::Load, c * 19 * 8, 19, 8);

                // Macroscopic moments.
                double rho = 0.0, ux = 0.0, uy = 0.0, uz = 0.0;
                for (int d = 0; d < 19; ++d) {
                    const double fd = f_[c * 19 + d];
                    rho += fd;
                    ux += fd * kVel[d][0];
                    uy += fd * kVel[d][1];
                    uz += fd * kVel[d][2];
                }
                ux /= rho;
                uy /= rho;
                uz = uz / rho + force; // body force drives the flow
                // Low-Mach clamp: the BGK expansion is only valid for
                // small velocities; closed pockets would otherwise
                // accumulate body-force momentum without bound.
                ux = std::clamp(ux, -0.2, 0.2);
                uy = std::clamp(uy, -0.2, 0.2);
                uz = std::clamp(uz, -0.2, 0.2);
                m.ops(topdown::OpKind::FpMul, 19 * 4);
                m.ops(topdown::OpKind::FpDiv, 3);

                // Collide.
                double post[19];
                if (config_.model == CollisionModel::Bgk) {
                    for (int d = 0; d < 19; ++d) {
                        const double eq =
                            equilibrium(d, rho, ux, uy, uz);
                        post[d] = f_[c * 19 + d] -
                                  omega * (f_[c * 19 + d] - eq);
                    }
                    m.ops(topdown::OpKind::FpMul, 19 * 6);
                } else {
                    // TRT: symmetric/antisymmetric parts relax with
                    // different rates.
                    const double omegaMinus =
                        1.0 / (0.5 + 3.0 / 16.0 /
                                         (config_.tau - 0.5));
                    for (int d = 0; d < 19; ++d) {
                        const int o = kOpposite[d];
                        const double eqP =
                            equilibrium(d, rho, ux, uy, uz);
                        const double eqM =
                            equilibrium(o, rho, ux, uy, uz);
                        const double fP = f_[c * 19 + d];
                        const double fM = f_[c * 19 + o];
                        const double sym = 0.5 * (fP + fM) -
                                           0.5 * (eqP + eqM);
                        const double asym = 0.5 * (fP - fM) -
                                            0.5 * (eqP - eqM);
                        post[d] = fP - omega * sym -
                                  omegaMinus * asym;
                    }
                    m.ops(topdown::OpKind::FpMul, 19 * 10);
                }

                // Stream (periodic boundaries); populations that hit
                // a solid cell reflect back (halfway bounce-back),
                // which conserves mass exactly.
                for (int d = 0; d < 19; ++d) {
                    const int tx = (x + kVel[d][0] + nx_) % nx_;
                    const int ty = (y + kVel[d][1] + ny_) % ny_;
                    const int tz = (z + kVel[d][2] + nz_) % nz_;
                    const std::size_t target = index(tx, ty, tz);
                    if (geometry_.cells[target] ==
                        CellType::Obstacle) {
                        fNew_[c * 19 + kOpposite[d]] = post[d];
                    } else {
                        fNew_[target * 19 + d] = post[d];
                    }
                }
                m.stream(topdown::OpKind::Store, c * 19 * 8, 19, 8);
            }
        }
    }
    f_.swap(fNew_);
}

FlowStats
Lattice::measure() const
{
    FlowStats stats;
    const std::size_t cells =
        static_cast<std::size_t>(nx_) * ny_ * nz_;
    std::size_t fluid = 0;
    for (std::size_t c = 0; c < cells; ++c) {
        if (geometry_.cells[c] == CellType::Obstacle)
            continue;
        ++fluid;
        double rho = 0.0, uz = 0.0, ux = 0.0, uy = 0.0;
        for (int d = 0; d < 19; ++d) {
            const double fd = f_[c * 19 + d];
            rho += fd;
            ux += fd * kVel[d][0];
            uy += fd * kVel[d][1];
            uz += fd * kVel[d][2];
        }
        stats.totalMass += rho;
        stats.meanVelocityZ += uz / rho;
        stats.kineticEnergy +=
            0.5 * (ux * ux + uy * uy + uz * uz) / rho;
    }
    if (fluid > 0)
        stats.meanVelocityZ /= static_cast<double>(fluid);
    return stats;
}

FlowStats
Lattice::run(runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("lbm::collide_stream", 3800);
    for (int step = 0; step < config_.steps; ++step)
        collideStream(ctx);
    FlowStats stats = measure();
    stats.cellUpdates = static_cast<std::uint64_t>(nx_) * ny_ * nz_ *
                        config_.steps;
    ctx.consume(stats.totalMass);
    ctx.consume(stats.meanVelocityZ * 1e6);
    return stats;
}

double
Lattice::density(int x, int y, int z) const
{
    const std::size_t c =
        x + static_cast<std::size_t>(nx_) *
                (y + static_cast<std::size_t>(ny_) * z);
    double rho = 0.0;
    for (int d = 0; d < 19; ++d)
        rho += f_[c * 19 + d];
    return rho;
}

} // namespace alberta::lbm
