/**
 * @file
 * The 519.lbm_r mini-benchmark plus the Alberta obstacle-geometry
 * generator (shape, size, density, steps, and step-type knobs).
 */
#ifndef ALBERTA_BENCHMARKS_LBM_BENCHMARK_H
#define ALBERTA_BENCHMARKS_LBM_BENCHMARK_H

#include "benchmarks/lbm/lattice.h"
#include "runtime/benchmark.h"
#include "support/rng.h"

namespace alberta::lbm {

/** Obstacle shapes the generator can place in the channel. */
enum class ObstacleShape
{
    Sphere,
    Box,
    Cylinder,
    RandomBlobs,
};

/** Geometry-generator knobs. */
struct GeometryConfig
{
    std::uint64_t seed = 1;
    int nx = 12, ny = 12, nz = 36;
    ObstacleShape shape = ObstacleShape::Sphere;
    double sizeFraction = 0.3;  //!< obstacle radius vs channel width
    double density = 0.0;       //!< extra random solid-cell fraction
};

/** Generate a channel geometry with the requested obstacles. */
Geometry generateGeometry(const GeometryConfig &config);

/** See file comment. */
class LbmBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "519.lbm_r"; }
    std::string area() const override
    {
        return "Fluid dynamics (Lattice Boltzmann)";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::lbm

#endif // ALBERTA_BENCHMARKS_LBM_BENCHMARK_H
