#include "benchmarks/lbm/benchmark.h"

#include <cmath>

#include "support/check.h"

namespace alberta::lbm {

Geometry
generateGeometry(const GeometryConfig &config)
{
    support::Rng rng(config.seed);
    Geometry g;
    g.nx = config.nx;
    g.ny = config.ny;
    g.nz = config.nz;
    g.cells.assign(static_cast<std::size_t>(g.nx) * g.ny * g.nz,
                   CellType::Fluid);

    const auto set = [&](int x, int y, int z) {
        if (x < 1 || y < 1 || z < 0 || x >= g.nx - 1 ||
            y >= g.ny - 1 || z >= g.nz)
            return; // keep channel walls fluid-free of clutter
        g.cells[x + static_cast<std::size_t>(g.nx) *
                        (y + static_cast<std::size_t>(g.ny) * z)] =
            CellType::Obstacle;
    };

    const int cx = g.nx / 2, cy = g.ny / 2, cz = g.nz / 3;
    const double radius =
        config.sizeFraction * std::min(g.nx, g.ny) / 2.0;

    // Extra scattered solid cells (the density knob).
    const std::size_t extra = static_cast<std::size_t>(
        config.density * static_cast<double>(g.cells.size()));
    for (std::size_t i = 0; i < extra; ++i) {
        set(1 + static_cast<int>(rng.below(g.nx - 2)),
            1 + static_cast<int>(rng.below(g.ny - 2)),
            static_cast<int>(rng.below(g.nz)));
    }
    if (radius <= 0.0)
        return g; // no primary obstacle

    switch (config.shape) {
      case ObstacleShape::Sphere:
        for (int z = 0; z < g.nz; ++z)
            for (int y = 0; y < g.ny; ++y)
                for (int x = 0; x < g.nx; ++x) {
                    const double d2 = (x - cx) * (x - cx) +
                                      (y - cy) * (y - cy) +
                                      (z - cz) * (z - cz);
                    if (d2 <= radius * radius)
                        set(x, y, z);
                }
        break;
      case ObstacleShape::Box:
        for (int z = cz - static_cast<int>(radius);
             z <= cz + static_cast<int>(radius); ++z)
            for (int y = cy - static_cast<int>(radius);
                 y <= cy + static_cast<int>(radius); ++y)
                for (int x = cx - static_cast<int>(radius);
                     x <= cx + static_cast<int>(radius); ++x)
                    set(x, y, z);
        break;
      case ObstacleShape::Cylinder:
        for (int z = 0; z < g.nz; ++z)
            for (int y = 0; y < g.ny; ++y)
                for (int x = 0; x < g.nx; ++x) {
                    const double d2 = (x - cx) * (x - cx) +
                                      (y - cy) * (y - cy);
                    if (d2 <= radius * radius &&
                        std::abs(z - cz) <= g.nz / 6)
                        set(x, y, z);
                }
        break;
      case ObstacleShape::RandomBlobs:
        for (int blob = 0; blob < 6; ++blob) {
            const int bx = 2 + static_cast<int>(
                                   rng.below(g.nx - 4));
            const int by = 2 + static_cast<int>(
                                   rng.below(g.ny - 4));
            const int bz = static_cast<int>(rng.below(g.nz));
            const int r = 1 + static_cast<int>(
                                  rng.below(std::max(
                                      1.0, radius)));
            for (int z = bz - r; z <= bz + r; ++z)
                for (int y = by - r; y <= by + r; ++y)
                    for (int x = bx - r; x <= bx + r; ++x)
                        set(x, y, (z + g.nz) % g.nz);
        }
        break;
    }

    return g;
}

namespace {

runtime::Workload
makeWorkload(const std::string &name, const GeometryConfig &geom,
             int steps, CollisionModel model)
{
    runtime::Workload w;
    w.name = name;
    w.seed = geom.seed;
    w.params.set("steps", static_cast<long long>(steps));
    w.params.set("model",
                 model == CollisionModel::Bgk ? "bgk" : "trt");
    w.files["geometry.txt"] = generateGeometry(geom).serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
LbmBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;

    GeometryConfig ref;
    ref.seed = 0x519F;
    ref.shape = ObstacleShape::Sphere;
    ref.nz = 72;
    out.push_back(makeWorkload("refrate", ref, 60,
                               CollisionModel::Bgk));
    GeometryConfig train = ref;
    train.seed = 0x5191;
    out.push_back(
        makeWorkload("train", train, 10, CollisionModel::Bgk));
    GeometryConfig test = ref;
    test.seed = 0x5192;
    test.nz = 12;
    out.push_back(makeWorkload("test", test, 3, CollisionModel::Bgk));

    // Twenty-seven Alberta workloads: shape x size x density x step
    // count x collision model (Section IV-B: "varying the shape and
    // size of the objects, the object density and the parameter for
    // the simulation").
    const ObstacleShape shapes[4] = {
        ObstacleShape::Sphere, ObstacleShape::Box,
        ObstacleShape::Cylinder, ObstacleShape::RandomBlobs};
    const char *shapeNames[4] = {"sphere", "box", "cylinder",
                                 "blobs"};
    int produced = 0;
    for (int s = 0; s < 4 && produced < 27; ++s) {
        for (double size : {0.2, 0.4, 0.6}) {
            for (double density : {0.0, 0.02}) {
                if (produced >= 27)
                    break;
                GeometryConfig cfg;
                cfg.seed = 0x5190A0 + produced;
                cfg.shape = shapes[s];
                cfg.sizeFraction = size;
                cfg.density = density;
                const CollisionModel model =
                    produced % 3 == 2 ? CollisionModel::Trt
                                      : CollisionModel::Bgk;
                const int steps = 12 + (produced % 4) * 6;
                out.push_back(makeWorkload(
                    std::string("alberta.") + shapeNames[s] + "-" +
                        std::to_string(produced + 1),
                    cfg, steps, model));
                ++produced;
            }
        }
    }
    // Top up with random-blob variants to reach the Table II count.
    while (produced < 27) {
        GeometryConfig cfg;
        cfg.seed = 0x5190C0 + produced;
        cfg.shape = ObstacleShape::RandomBlobs;
        cfg.density = 0.01 * (produced % 5);
        out.push_back(makeWorkload(
            "alberta.blobs-" + std::to_string(produced + 1), cfg,
            16, CollisionModel::Trt));
        ++produced;
    }
    return out;
}

void
LbmBenchmark::run(const runtime::Workload &workload,
                  runtime::ExecutionContext &context) const
{
    Geometry geometry;
    {
        auto scope = context.method("lbm::read_geometry", 1600);
        geometry = Geometry::parse(workload.file("geometry.txt"));
        context.machine().stream(
            topdown::OpKind::Load, 0xC00000000ULL,
            workload.file("geometry.txt").size() / 16 + 1, 16);
    }
    LbmConfig config;
    config.nx = geometry.nx;
    config.ny = geometry.ny;
    config.nz = geometry.nz;
    config.steps =
        static_cast<int>(workload.params.getInt("steps", 16));
    config.model = workload.params.getString("model", "bgk") == "trt"
                       ? CollisionModel::Trt
                       : CollisionModel::Bgk;

    Lattice lattice(geometry, config);
    const FlowStats stats = lattice.run(context);
    // Sanity: mass must stay near the initial value (rho=1/cell).
    const double expected = static_cast<double>(
        geometry.nx * geometry.ny * geometry.nz -
        geometry.solidCells());
    support::fatalIf(
        std::abs(stats.totalMass - expected) > 0.05 * expected,
        "lbm: mass drifted: ", stats.totalMass, " vs ", expected);
    context.consume(stats.cellUpdates);
}

double
LbmBenchmark::costHint(const runtime::Workload &workload) const
{
    // Cost is linear in time steps over a fixed lattice; the TRT
    // collision operator costs ~1.35x BGK per step, and refrate runs
    // the full-size lattice (several times the Alberta grids).
    const double steps =
        static_cast<double>(workload.params.getInt("steps", 0));
    const double perStep =
        workload.params.getString("model", "bgk") == "trt" ? 1.62e6
                                                           : 1.2e6;
    return steps * perStep * (workload.isRefrate() ? 2.0 : 1.0);
}

} // namespace alberta::lbm
