/**
 * @file
 * D3Q19 lattice-Boltzmann fluid solver for the 519.lbm_r
 * mini-benchmark: incompressible flow through a channel containing
 * obstacles described by an ASCII geometry file, with two collision
 * models (the "type of simulation step" knob of the Alberta
 * workloads).
 */
#ifndef ALBERTA_BENCHMARKS_LBM_LATTICE_H
#define ALBERTA_BENCHMARKS_LBM_LATTICE_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"

namespace alberta::lbm {

/** Collision operators supported. */
enum class CollisionModel
{
    Bgk,  //!< single-relaxation-time LBGK
    Trt,  //!< two-relaxation-time
};

/** Solver configuration. */
struct LbmConfig
{
    int nx = 12, ny = 12, nz = 36; //!< channel dimensions
    int steps = 20;
    double tau = 0.7;              //!< relaxation time (> 0.5)
    double inflowVelocity = 0.05;  //!< body force along +z
    CollisionModel model = CollisionModel::Bgk;
};

/** Cell classification. */
enum class CellType : std::uint8_t
{
    Fluid = 0,
    Obstacle = 1,
};

/** Obstacle geometry: a set of solid cells in the channel. */
struct Geometry
{
    int nx = 0, ny = 0, nz = 0;
    std::vector<CellType> cells; //!< x + nx*(y + ny*z)

    CellType
    at(int x, int y, int z) const
    {
        return cells[x +
                     static_cast<std::size_t>(nx) *
                         (y + static_cast<std::size_t>(ny) * z)];
    }

    /** Serialize as the ASCII obstacle format (one char per cell). */
    std::string serialize() const;

    /** Parse the ASCII obstacle format. */
    static Geometry parse(const std::string &text);

    /** Number of solid cells. */
    std::size_t solidCells() const;
};

/** Summary of a finished simulation (for verification). */
struct FlowStats
{
    double totalMass = 0.0;     //!< sum of densities over fluid cells
    double meanVelocityZ = 0.0; //!< mean streamwise velocity
    double kineticEnergy = 0.0;
    std::uint64_t cellUpdates = 0;
};

/** The solver. */
class Lattice
{
  public:
    Lattice(const Geometry &geometry, const LbmConfig &config);

    /** Run the configured number of steps. */
    FlowStats run(runtime::ExecutionContext &ctx);

    /** Density at a fluid cell (testing aid; call after run). */
    double density(int x, int y, int z) const;

  private:
    void collideStream(runtime::ExecutionContext &ctx);
    FlowStats measure() const;

    Geometry geometry_; //!< copied: the lattice outlives its input
    LbmConfig config_;
    int nx_, ny_, nz_;
    std::vector<double> f_;    //!< distributions, 19 per cell
    std::vector<double> fNew_;
};

} // namespace alberta::lbm

#endif // ALBERTA_BENCHMARKS_LBM_LATTICE_H
