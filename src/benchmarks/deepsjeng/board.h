/**
 * @file
 * Chess board for the 531.deepsjeng_r mini-benchmark: 0x88 mailbox
 * representation with FEN parsing, legal move generation, and
 * make/unmake, validated by standard perft counts.
 */
#ifndef ALBERTA_BENCHMARKS_DEEPSJENG_BOARD_H
#define ALBERTA_BENCHMARKS_DEEPSJENG_BOARD_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace alberta::deepsjeng {

/** Piece codes; positive = white, negative = black, 0 = empty. */
enum Piece : std::int8_t
{
    kEmpty = 0,
    kPawn = 1,
    kKnight = 2,
    kBishop = 3,
    kRook = 4,
    kQueen = 5,
    kKing = 6,
};

/** Side to move. */
enum class Side : std::int8_t
{
    White = 1,
    Black = -1,
};

/** A move: from/to in 0x88 coordinates plus promotion/flags. */
struct Move
{
    std::uint8_t from = 0;
    std::uint8_t to = 0;
    std::int8_t promotion = 0; //!< kKnight..kQueen, or 0
    bool isEnPassant = false;
    bool isCastle = false;

    bool
    operator==(const Move &o) const
    {
        return from == o.from && to == o.to &&
               promotion == o.promotion;
    }

    /** Long algebraic form, e.g. "e2e4" or "a7a8q". */
    std::string algebraic() const;
};

/** Undo record for make/unmake. */
struct Undo
{
    Move move;
    std::int8_t captured = 0;
    std::uint8_t castling = 0;
    std::int8_t epSquare = -1;
    int halfmove = 0;
    std::uint64_t hash = 0;
};

/** Castling-rights bits. */
enum CastlingRights : std::uint8_t
{
    kWhiteKingside = 1,
    kWhiteQueenside = 2,
    kBlackKingside = 4,
    kBlackQueenside = 8,
};

/** The board state. */
class Board
{
  public:
    /** The standard initial position. */
    static Board initial();

    /** Parse a FEN string (first four fields required). */
    static Board fromFen(const std::string &fen);

    /** Serialize to FEN (piece placement through fullmove). */
    std::string toFen() const;

    /** Piece on 0x88 square @p sq. */
    std::int8_t piece(int sq) const { return squares_[sq]; }

    /** Side to move. */
    Side sideToMove() const { return side_; }

    /** Zobrist hash of the position. */
    std::uint64_t hash() const { return hash_; }

    /** Castling-rights bits. */
    std::uint8_t castling() const { return castling_; }

    /** En-passant target square or -1. */
    int epSquare() const { return epSquare_; }

    /** True if @p side's king is attacked. */
    bool inCheck(Side side) const;

    /** True if @p sq is attacked by @p by. */
    bool attacked(int sq, Side by) const;

    /** Generate pseudo-legal moves (legality filtered by makeMove). */
    void pseudoMoves(std::vector<Move> &out) const;

    /** Generate pseudo-legal captures and promotions only. */
    void pseudoCaptures(std::vector<Move> &out) const;

    /**
     * Make @p move; returns false (with state restored) when the move
     * leaves the mover's king in check, i.e. the move was illegal.
     */
    bool makeMove(const Move &move, Undo &undo);

    /** Undo the last made move using its @p undo record. */
    void unmakeMove(const Undo &undo);

    /** Legal move count == 0 and in check -> mate; used by tests. */
    std::vector<Move> legalMoves() const;

    /** Material + piece-square evaluation from @p side's view. */
    int evaluate(Side side) const;

    /** Perft node count (testing aid). */
    std::uint64_t perft(int depth);

  private:
    void place(int sq, std::int8_t piece);
    void computeHash();

    std::array<std::int8_t, 128> squares_ = {};
    Side side_ = Side::White;
    std::uint8_t castling_ = 0;
    std::int8_t epSquare_ = -1;
    int halfmove_ = 0;
    int fullmove_ = 1;
    std::uint64_t hash_ = 0;
    int kingSquare_[2] = {0, 0}; //!< [0]=white, [1]=black
};

/** 0x88 helpers. */
constexpr bool onBoard(int sq) { return (sq & 0x88) == 0; }
constexpr int squareOf(int file, int rank) { return rank * 16 + file; }
constexpr int fileOf(int sq) { return sq & 7; }
constexpr int rankOf(int sq) { return sq >> 4; }

} // namespace alberta::deepsjeng

#endif // ALBERTA_BENCHMARKS_DEEPSJENG_BOARD_H
