/**
 * @file
 * The 531.deepsjeng_r mini-benchmark: alpha-beta analysis of chess
 * positions given in FEN with per-position ply depths, plus the
 * Alberta script that samples positions from a test-suite file.
 */
#ifndef ALBERTA_BENCHMARKS_DEEPSJENG_BENCHMARK_H
#define ALBERTA_BENCHMARKS_DEEPSJENG_BENCHMARK_H

#include "runtime/benchmark.h"
#include "support/rng.h"

namespace alberta::deepsjeng {

/**
 * Build the position suite standing in for the Arasan test positions:
 * @p count legal middlegame positions reached by seeded random play
 * from the initial position, one FEN per line.
 */
std::string generatePositionSuite(int count, std::uint64_t seed);

/**
 * The Alberta workload script: choose @p positions FENs from @p suite
 * and attach a ply depth drawn uniformly from [@p minPly, @p maxPly].
 * Output format: one "<depth> <fen>" per line.
 */
std::string samplePositions(const std::string &suite, int positions,
                            int minPly, int maxPly, support::Rng &rng);

/** See file comment. */
class DeepsjengBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "531.deepsjeng_r"; }
    std::string area() const override
    {
        return "AI: alpha-beta tree search";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::deepsjeng

#endif // ALBERTA_BENCHMARKS_DEEPSJENG_BENCHMARK_H
