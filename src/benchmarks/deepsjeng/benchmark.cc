#include "benchmarks/deepsjeng/benchmark.h"

#include <cmath>
#include <mutex>
#include <sstream>

#include "benchmarks/deepsjeng/search.h"
#include "support/check.h"
#include "support/text.h"

namespace alberta::deepsjeng {

std::string
generatePositionSuite(int count, std::uint64_t seed)
{
    support::Rng rng(seed);
    std::ostringstream os;
    int produced = 0;
    while (produced < count) {
        Board board = Board::initial();
        // Play 12-32 random plies; keep the position if the game is
        // still live (both sides have moves and material is mixed).
        const int plies = static_cast<int>(rng.range(12, 32));
        bool dead = false;
        Undo undo;
        for (int p = 0; p < plies; ++p) {
            const auto legal = board.legalMoves();
            if (legal.empty()) {
                dead = true;
                break;
            }
            board.makeMove(legal[rng.below(legal.size())], undo);
        }
        if (dead || board.legalMoves().empty())
            continue;
        os << board.toFen() << '\n';
        ++produced;
    }
    return os.str();
}

std::string
samplePositions(const std::string &suite, int positions, int minPly,
                int maxPly, support::Rng &rng)
{
    std::vector<std::string> lines;
    for (const auto &line : support::split(suite, '\n')) {
        if (!support::trim(line).empty())
            lines.emplace_back(support::trim(line));
    }
    support::fatalIf(lines.empty(), "deepsjeng: empty position suite");
    std::ostringstream os;
    for (int i = 0; i < positions; ++i) {
        const int depth =
            static_cast<int>(rng.range(minPly, maxPly));
        os << depth << ' ' << lines[rng.below(lines.size())] << '\n';
    }
    return os.str();
}

namespace {

/** The stand-in for the 946-position Arasan suite, built once. */
const std::string &
arasanLikeSuite()
{
    static std::string cached;
    static std::once_flag once;
    std::call_once(once, [] {
        cached = generatePositionSuite(120, 0x531A5A1ULL);
    });
    return cached;
}

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed, int positions,
             int minPly, int maxPly)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.params.set("positions", static_cast<long long>(positions));
    w.params.set("min_ply", static_cast<long long>(minPly));
    w.params.set("max_ply", static_cast<long long>(maxPly));
    support::Rng rng(seed);
    w.files["positions.epd"] =
        samplePositions(arasanLikeSuite(), positions, minPly, maxPly,
                        rng);
    return w;
}

} // namespace

std::vector<runtime::Workload>
DeepsjengBenchmark::workloads() const
{
    // Paper ply depths 11-16 scale to 3-5 here: the mini-engine's
    // branching factor makes depth 5 comparable work to deepsjeng's
    // deeper searches on its optimized move generator.
    std::vector<runtime::Workload> out;
    out.push_back(makeWorkload("refrate", 0x531F, 8, 4, 5));
    out.push_back(makeWorkload("train", 0x5311, 4, 3, 4));
    out.push_back(makeWorkload("test", 0x5312, 2, 3, 3));
    // Nine Alberta workloads, eight positions each (Section IV-A).
    for (int i = 1; i <= 9; ++i) {
        out.push_back(makeWorkload("alberta.d" + std::to_string(i),
                                   0x5310A0 + i, 8, 3, 5));
    }
    return out;
}

void
DeepsjengBenchmark::run(const runtime::Workload &workload,
                        runtime::ExecutionContext &context) const
{
    Engine engine;
    std::uint64_t totalNodes = 0;
    for (const auto &line :
         support::split(workload.file("positions.epd"), '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty())
            continue;
        const auto space = trimmed.find(' ');
        support::fatalIf(space == std::string_view::npos,
                         "deepsjeng: malformed position line");
        const int depth = static_cast<int>(
            support::parseInt(trimmed.substr(0, space)));
        Board board =
            Board::fromFen(std::string(trimmed.substr(space + 1)));
        const SearchResult result =
            engine.analyze(board, depth, context);
        totalNodes += result.nodes;
        context.consume(result.nodes);
    }
    context.consume(totalNodes);
}

double
DeepsjengBenchmark::costHint(const runtime::Workload &workload) const
{
    // Alpha-beta search: exponential in depth (effective branching
    // factor ~4 after pruning), linear in positions searched. Actual
    // cost per position varies severalfold with the position itself.
    const double positions = static_cast<double>(
        workload.params.getInt("positions", 0));
    const double maxPly = static_cast<double>(
        workload.params.getInt("max_ply", 0));
    return 1900.0 * positions * std::pow(4.0, maxPly);
}

} // namespace alberta::deepsjeng
