#include "benchmarks/deepsjeng/search.h"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "support/check.h"

namespace alberta::deepsjeng {

namespace {

constexpr int kInfinity = 100000;
constexpr int kMateScore = 90000;

int
pieceValue(int kind)
{
    static const int values[7] = {0, 100, 320, 330, 500, 900, 20000};
    return values[kind];
}

} // namespace

Engine::Engine(std::size_t tt_entries)
{
    support::fatalIf(!std::has_single_bit(tt_entries),
                     "deepsjeng: TT size must be a power of two");
    table_.assign(tt_entries, TTEntry{});
    mask_ = tt_entries - 1;
}

void
Engine::orderMoves(const Board &board, std::vector<Move> &moves,
                   const Move &ttMove) const
{
    // MVV-LVA with the TT move first.
    std::stable_sort(
        moves.begin(), moves.end(),
        [&](const Move &a, const Move &b) {
            const auto key = [&](const Move &m) {
                if (m == ttMove)
                    return 1000000;
                const int victim = std::abs(board.piece(m.to));
                const int attacker = std::abs(board.piece(m.from));
                int score = 0;
                if (victim != 0)
                    score = 10000 + pieceValue(victim) * 10 -
                            pieceValue(attacker) / 10;
                if (m.promotion != 0)
                    score += 5000 + pieceValue(m.promotion);
                return score;
            };
            return key(a) > key(b);
        });
}

int
Engine::quiesce(Board &board, int alpha, int beta,
                runtime::ExecutionContext &ctx)
{
    auto &m = ctx.machine();
    ++current_.nodes;

    const int stand = board.evaluate(board.sideToMove());
    m.ops(topdown::OpKind::IntAlu, 48);
    if (m.branch(1, stand >= beta))
        return stand;
    alpha = std::max(alpha, stand);

    std::vector<Move> captures;
    board.pseudoCaptures(captures);
    orderMoves(board, captures, Move{});
    m.ops(topdown::OpKind::IntAlu, 6 * captures.size() + 4);

    Undo undo;
    for (const Move &move : captures) {
        m.load(0x5000 + move.from);
        if (!board.makeMove(move, undo))
            continue;
        m.call();
        const int score = -quiesce(board, -beta, -alpha, ctx);
        board.unmakeMove(undo);
        if (m.branch(2, score >= beta))
            return score;
        if (m.branch(3, score > alpha))
            alpha = score;
    }
    return alpha;
}

int
Engine::negamax(Board &board, int depth, int alpha, int beta, int ply,
                runtime::ExecutionContext &ctx)
{
    auto &m = ctx.machine();
    ++current_.nodes;

    if (depth <= 0) {
        auto scope = ctx.method("deepsjeng::quiesce", 2600);
        return quiesce(board, alpha, beta, ctx);
    }

    // Transposition-table probe.
    TTEntry &entry = table_[board.hash() & mask_];
    m.load(0x80000000ULL + (board.hash() & mask_) * 24);
    Move ttMove;
    if (m.branch(4, entry.key == board.hash())) {
        ttMove = entry.move;
        if (entry.depth >= depth) {
            ++current_.ttHits;
            const int score = entry.score;
            if (entry.bound == Bound::Exact)
                return score;
            if (m.branch(5, entry.bound == Bound::Lower &&
                                score >= beta))
                return score;
            if (m.branch(6, entry.bound == Bound::Upper &&
                                score <= alpha))
                return score;
        }
    }

    std::vector<Move> moves;
    {
        auto scope = ctx.method("deepsjeng::movegen", 3400);
        board.pseudoMoves(moves);
        m.ops(topdown::OpKind::IntAlu, 10 * moves.size() + 16);
        m.stream(topdown::OpKind::Load, 0x6000, moves.size() + 8, 8);
    }
    orderMoves(board, moves, ttMove);

    const int alphaOrig = alpha;
    int best = -kInfinity;
    Move bestMove;
    bool anyLegal = false;
    Undo undo;
    for (const Move &move : moves) {
        // Capture / check-extension decisions: data-dependent and the
        // engine's main mispredict source.
        m.branch(9, board.piece(move.to) != 0);
        if (!board.makeMove(move, undo))
            continue;
        anyLegal = true;
        m.branch(10, board.inCheck(board.sideToMove()));
        m.call();
        const int score =
            -negamax(board, depth - 1, -beta, -alpha, ply + 1, ctx);
        board.unmakeMove(undo);
        if (m.branch(7, score > best)) {
            best = score;
            bestMove = move;
            if (ply == 0)
                current_.bestMove = move;
        }
        alpha = std::max(alpha, score);
        if (m.branch(8, alpha >= beta))
            break; // beta cutoff
    }

    if (!anyLegal) {
        // Mate or stalemate.
        best = board.inCheck(board.sideToMove()) ? -kMateScore + ply : 0;
    }

    // Store.
    entry.key = board.hash();
    entry.score = static_cast<std::int16_t>(
        std::clamp(best, -32000, 32000));
    entry.depth = static_cast<std::int8_t>(depth);
    entry.move = bestMove;
    entry.bound = best <= alphaOrig ? Bound::Upper
                  : best >= beta    ? Bound::Lower
                                    : Bound::Exact;
    m.store(0x80000000ULL + (board.hash() & mask_) * 24);
    return best;
}

SearchResult
Engine::analyze(Board &board, int depth, runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("deepsjeng::search", 5200);
    support::fatalIf(depth < 1, "deepsjeng: depth must be >= 1");
    current_ = SearchResult{};
    int score = 0;
    for (int d = 1; d <= depth; ++d)
        score = negamax(board, d, -kInfinity, kInfinity, 0, ctx);
    current_.score = score;
    ctx.consume(current_.nodes);
    ctx.consume(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(score) + (1 << 20)));
    return current_;
}

} // namespace alberta::deepsjeng
