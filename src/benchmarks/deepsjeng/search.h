/**
 * @file
 * Alpha-beta search with transposition table and quiescence for the
 * 531.deepsjeng_r mini-benchmark.
 */
#ifndef ALBERTA_BENCHMARKS_DEEPSJENG_SEARCH_H
#define ALBERTA_BENCHMARKS_DEEPSJENG_SEARCH_H

#include <cstdint>
#include <vector>

#include "benchmarks/deepsjeng/board.h"
#include "runtime/context.h"

namespace alberta::deepsjeng {

/** Outcome of analyzing one position. */
struct SearchResult
{
    int score = 0;            //!< centipawns from the mover's view
    Move bestMove;            //!< principal move (valid if any legal)
    std::uint64_t nodes = 0;  //!< interior + quiescence nodes
    std::uint64_t ttHits = 0; //!< transposition-table cutoffs
};

/** The engine: owns the transposition table across searches. */
class Engine
{
  public:
    /** @param tt_entries transposition-table size (power of two). */
    explicit Engine(std::size_t tt_entries = 1 << 16);

    /**
     * Analyze @p board to @p depth plies with iterative deepening,
     * reporting micro-ops through @p ctx.
     */
    SearchResult analyze(Board &board, int depth,
                         runtime::ExecutionContext &ctx);

  private:
    enum class Bound : std::uint8_t { Exact, Lower, Upper };

    struct TTEntry
    {
        std::uint64_t key = 0;
        std::int16_t score = 0;
        std::int8_t depth = -1;
        Bound bound = Bound::Exact;
        Move move;
    };

    int negamax(Board &board, int depth, int alpha, int beta, int ply,
                runtime::ExecutionContext &ctx);
    int quiesce(Board &board, int alpha, int beta,
                runtime::ExecutionContext &ctx);
    void orderMoves(const Board &board, std::vector<Move> &moves,
                    const Move &ttMove) const;

    std::vector<TTEntry> table_;
    std::uint64_t mask_;
    SearchResult current_;
};

} // namespace alberta::deepsjeng

#endif // ALBERTA_BENCHMARKS_DEEPSJENG_SEARCH_H
