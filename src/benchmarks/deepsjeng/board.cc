#include "benchmarks/deepsjeng/board.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "support/check.h"
#include "support/rng.h"
#include "support/text.h"

namespace alberta::deepsjeng {

namespace {

const int kKnightOffsets[8] = {-33, -31, -18, -14, 14, 18, 31, 33};
const int kKingOffsets[8] = {-17, -16, -15, -1, 1, 15, 16, 17};
const int kBishopDirs[4] = {-17, -15, 15, 17};
const int kRookDirs[4] = {-16, -1, 1, 16};

/** Zobrist keys, generated deterministically at startup. */
struct Zobrist
{
    std::uint64_t piece[13][128]; //!< [piece + 6][square]
    std::uint64_t side;
    std::uint64_t castling[16];
    std::uint64_t epFile[8];

    Zobrist()
    {
        support::Rng rng(0x531C4E55ULL);
        for (auto &row : piece)
            for (auto &key : row)
                key = rng();
        side = rng();
        for (auto &key : castling)
            key = rng();
        for (auto &key : epFile)
            key = rng();
    }
};

const Zobrist &
zobrist()
{
    static const Zobrist z;
    return z;
}

int
sideIndex(Side s)
{
    return s == Side::White ? 0 : 1;
}

const int kPieceValue[7] = {0, 100, 320, 330, 500, 900, 0};

} // namespace

std::string
Move::algebraic() const
{
    std::string out;
    out += static_cast<char>('a' + fileOf(from));
    out += static_cast<char>('1' + rankOf(from));
    out += static_cast<char>('a' + fileOf(to));
    out += static_cast<char>('1' + rankOf(to));
    if (promotion != 0)
        out += " nbrq"[promotion - 1];
    return out;
}

void
Board::place(int sq, std::int8_t piece)
{
    const std::int8_t old = squares_[sq];
    if (old != 0)
        hash_ ^= zobrist().piece[old + 6][sq];
    squares_[sq] = piece;
    if (piece != 0) {
        hash_ ^= zobrist().piece[piece + 6][sq];
        if (piece == kKing)
            kingSquare_[0] = sq;
        else if (piece == -kKing)
            kingSquare_[1] = sq;
    }
}

void
Board::computeHash()
{
    hash_ = 0;
    for (int sq = 0; sq < 128; ++sq) {
        if (onBoard(sq) && squares_[sq] != 0)
            hash_ ^= zobrist().piece[squares_[sq] + 6][sq];
    }
    if (side_ == Side::Black)
        hash_ ^= zobrist().side;
    hash_ ^= zobrist().castling[castling_];
    if (epSquare_ >= 0)
        hash_ ^= zobrist().epFile[fileOf(epSquare_)];
}

Board
Board::initial()
{
    return fromFen(
        "rnbqkbnr/pppppppp/8/8/8/8/PPPPPPPP/RNBQKBNR w KQkq - 0 1");
}

Board
Board::fromFen(const std::string &fen)
{
    const auto fields = support::splitWhitespace(fen);
    support::fatalIf(fields.size() < 4, "fen: need at least 4 fields");

    Board b;
    int rank = 7, file = 0;
    for (const char ch : fields[0]) {
        if (ch == '/') {
            --rank;
            file = 0;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(ch))) {
            file += ch - '0';
            continue;
        }
        support::fatalIf(rank < 0 || file > 7, "fen: board overflow");
        std::int8_t piece = 0;
        switch (std::tolower(ch)) {
          case 'p': piece = kPawn; break;
          case 'n': piece = kKnight; break;
          case 'b': piece = kBishop; break;
          case 'r': piece = kRook; break;
          case 'q': piece = kQueen; break;
          case 'k': piece = kKing; break;
          default: support::fatal("fen: bad piece '", ch, "'");
        }
        if (std::islower(static_cast<unsigned char>(ch)))
            piece = -piece;
        b.squares_[squareOf(file, rank)] = piece;
        if (piece == kKing)
            b.kingSquare_[0] = squareOf(file, rank);
        if (piece == -kKing)
            b.kingSquare_[1] = squareOf(file, rank);
        ++file;
    }

    support::fatalIf(fields[1] != "w" && fields[1] != "b",
                     "fen: bad side '", fields[1], "'");
    b.side_ = fields[1] == "w" ? Side::White : Side::Black;

    b.castling_ = 0;
    for (const char ch : fields[2]) {
        switch (ch) {
          case 'K': b.castling_ |= kWhiteKingside; break;
          case 'Q': b.castling_ |= kWhiteQueenside; break;
          case 'k': b.castling_ |= kBlackKingside; break;
          case 'q': b.castling_ |= kBlackQueenside; break;
          case '-': break;
          default: support::fatal("fen: bad castling '", ch, "'");
        }
    }

    if (fields[3] != "-") {
        support::fatalIf(fields[3].size() != 2, "fen: bad ep square");
        b.epSquare_ = static_cast<std::int8_t>(
            squareOf(fields[3][0] - 'a', fields[3][1] - '1'));
    }
    if (fields.size() > 4)
        b.halfmove_ = static_cast<int>(support::parseInt(fields[4]));
    if (fields.size() > 5)
        b.fullmove_ = static_cast<int>(support::parseInt(fields[5]));

    b.computeHash();
    return b;
}

std::string
Board::toFen() const
{
    std::string out;
    for (int rank = 7; rank >= 0; --rank) {
        int empty = 0;
        for (int file = 0; file < 8; ++file) {
            const std::int8_t p = squares_[squareOf(file, rank)];
            if (p == 0) {
                ++empty;
                continue;
            }
            if (empty) {
                out += static_cast<char>('0' + empty);
                empty = 0;
            }
            const char names[] = " pnbrqk";
            char ch = names[std::abs(p)];
            if (p > 0)
                ch = static_cast<char>(std::toupper(ch));
            out += ch;
        }
        if (empty)
            out += static_cast<char>('0' + empty);
        if (rank)
            out += '/';
    }
    out += side_ == Side::White ? " w " : " b ";
    if (castling_ == 0) {
        out += '-';
    } else {
        if (castling_ & kWhiteKingside) out += 'K';
        if (castling_ & kWhiteQueenside) out += 'Q';
        if (castling_ & kBlackKingside) out += 'k';
        if (castling_ & kBlackQueenside) out += 'q';
    }
    out += ' ';
    if (epSquare_ < 0) {
        out += '-';
    } else {
        out += static_cast<char>('a' + fileOf(epSquare_));
        out += static_cast<char>('1' + rankOf(epSquare_));
    }
    out += ' ';
    out += std::to_string(halfmove_);
    out += ' ';
    out += std::to_string(fullmove_);
    return out;
}

bool
Board::attacked(int sq, Side by) const
{
    const int sign = by == Side::White ? 1 : -1;

    // Pawns: a white pawn attacks up-left/up-right.
    const int pawnFrom[2] = {sq - sign * 15, sq - sign * 17};
    for (const int from : pawnFrom) {
        if (onBoard(from) && squares_[from] == sign * kPawn)
            return true;
    }
    for (const int d : kKnightOffsets) {
        const int from = sq + d;
        if (onBoard(from) && squares_[from] == sign * kKnight)
            return true;
    }
    for (const int d : kKingOffsets) {
        const int from = sq + d;
        if (onBoard(from) && squares_[from] == sign * kKing)
            return true;
    }
    for (const int d : kBishopDirs) {
        for (int from = sq + d; onBoard(from); from += d) {
            const std::int8_t p = squares_[from];
            if (p == 0)
                continue;
            if (p == sign * kBishop || p == sign * kQueen)
                return true;
            break;
        }
    }
    for (const int d : kRookDirs) {
        for (int from = sq + d; onBoard(from); from += d) {
            const std::int8_t p = squares_[from];
            if (p == 0)
                continue;
            if (p == sign * kRook || p == sign * kQueen)
                return true;
            break;
        }
    }
    return false;
}

bool
Board::inCheck(Side side) const
{
    return attacked(kingSquare_[sideIndex(side)],
                    side == Side::White ? Side::Black : Side::White);
}

void
Board::pseudoMoves(std::vector<Move> &out) const
{
    const int sign = static_cast<int>(side_);
    const auto push = [&](int from, int to, std::int8_t promo = 0,
                          bool ep = false, bool castle = false) {
        out.push_back({static_cast<std::uint8_t>(from),
                       static_cast<std::uint8_t>(to), promo, ep,
                       castle});
    };
    const auto pushPawn = [&](int from, int to) {
        const int rank = rankOf(to);
        if (rank == 7 || rank == 0) {
            for (std::int8_t promo : {kQueen, kRook, kBishop, kKnight})
                push(from, to, promo);
        } else {
            push(from, to);
        }
    };

    for (int sq = 0; sq < 128; ++sq) {
        if (!onBoard(sq))
            continue;
        const std::int8_t p = squares_[sq];
        if (p == 0 || (p > 0) != (sign > 0))
            continue;
        const int kind = std::abs(p);
        switch (kind) {
          case kPawn: {
            const int fwd = sq + 16 * sign;
            if (onBoard(fwd) && squares_[fwd] == 0) {
                pushPawn(sq, fwd);
                const int startRank = sign > 0 ? 1 : 6;
                const int fwd2 = sq + 32 * sign;
                if (rankOf(sq) == startRank && squares_[fwd2] == 0)
                    push(sq, fwd2);
            }
            for (const int d : {15 * sign, 17 * sign}) {
                const int to = sq + d;
                if (!onBoard(to))
                    continue;
                const std::int8_t target = squares_[to];
                if (target != 0 && (target > 0) != (sign > 0))
                    pushPawn(sq, to);
                else if (to == epSquare_)
                    push(sq, to, 0, true);
            }
            break;
          }
          case kKnight:
            for (const int d : kKnightOffsets) {
                const int to = sq + d;
                if (onBoard(to) &&
                    (squares_[to] == 0 ||
                     (squares_[to] > 0) != (sign > 0)))
                    push(sq, to);
            }
            break;
          case kKing:
            for (const int d : kKingOffsets) {
                const int to = sq + d;
                if (onBoard(to) &&
                    (squares_[to] == 0 ||
                     (squares_[to] > 0) != (sign > 0)))
                    push(sq, to);
            }
            break;
          case kBishop:
          case kRook:
          case kQueen: {
            const int *dirs = kind == kRook ? kRookDirs : kBishopDirs;
            const int ndirs = 4;
            for (int pass = 0; pass < (kind == kQueen ? 2 : 1);
                 ++pass) {
                const int *dd =
                    kind == kQueen
                        ? (pass == 0 ? kBishopDirs : kRookDirs)
                        : dirs;
                for (int i = 0; i < ndirs; ++i) {
                    for (int to = sq + dd[i]; onBoard(to);
                         to += dd[i]) {
                        if (squares_[to] == 0) {
                            push(sq, to);
                            continue;
                        }
                        if ((squares_[to] > 0) != (sign > 0))
                            push(sq, to);
                        break;
                    }
                }
            }
            break;
          }
          default:
            break;
        }
    }

    // Castling.
    const Side enemy = side_ == Side::White ? Side::Black : Side::White;
    if (side_ == Side::White) {
        const int e1 = squareOf(4, 0);
        if ((castling_ & kWhiteKingside) && squares_[e1 + 1] == 0 &&
            squares_[e1 + 2] == 0 && !attacked(e1, enemy) &&
            !attacked(e1 + 1, enemy) && !attacked(e1 + 2, enemy))
            push(e1, e1 + 2, 0, false, true);
        if ((castling_ & kWhiteQueenside) && squares_[e1 - 1] == 0 &&
            squares_[e1 - 2] == 0 && squares_[e1 - 3] == 0 &&
            !attacked(e1, enemy) && !attacked(e1 - 1, enemy) &&
            !attacked(e1 - 2, enemy))
            push(e1, e1 - 2, 0, false, true);
    } else {
        const int e8 = squareOf(4, 7);
        if ((castling_ & kBlackKingside) && squares_[e8 + 1] == 0 &&
            squares_[e8 + 2] == 0 && !attacked(e8, enemy) &&
            !attacked(e8 + 1, enemy) && !attacked(e8 + 2, enemy))
            push(e8, e8 + 2, 0, false, true);
        if ((castling_ & kBlackQueenside) && squares_[e8 - 1] == 0 &&
            squares_[e8 - 2] == 0 && squares_[e8 - 3] == 0 &&
            !attacked(e8, enemy) && !attacked(e8 - 1, enemy) &&
            !attacked(e8 - 2, enemy))
            push(e8, e8 - 2, 0, false, true);
    }
}

void
Board::pseudoCaptures(std::vector<Move> &out) const
{
    std::vector<Move> all;
    pseudoMoves(all);
    for (const Move &m : all) {
        if (squares_[m.to] != 0 || m.isEnPassant || m.promotion != 0)
            out.push_back(m);
    }
}

bool
Board::makeMove(const Move &move, Undo &undo)
{
    undo.move = move;
    undo.captured = squares_[move.to];
    undo.castling = castling_;
    undo.epSquare = epSquare_;
    undo.halfmove = halfmove_;
    undo.hash = hash_;

    hash_ ^= zobrist().castling[castling_];
    if (epSquare_ >= 0)
        hash_ ^= zobrist().epFile[fileOf(epSquare_)];

    const std::int8_t mover = squares_[move.from];
    const int sign = static_cast<int>(side_);

    if (move.isEnPassant) {
        const int victim = move.to - 16 * sign;
        undo.captured = squares_[victim];
        place(victim, 0);
    }
    place(move.from, 0);
    place(move.to, move.promotion != 0
                       ? static_cast<std::int8_t>(sign * move.promotion)
                       : mover);

    if (move.isCastle) {
        // Move the rook: to > from means kingside.
        if (move.to > move.from) {
            const int rookFrom = move.to + 1;
            place(move.to - 1, squares_[rookFrom]);
            place(rookFrom, 0);
        } else {
            const int rookFrom = move.to - 2;
            place(move.to + 1, squares_[rookFrom]);
            place(rookFrom, 0);
        }
    }

    // Castling-rights updates on king/rook moves and rook captures.
    const auto clearRight = [&](int sq) {
        switch (sq) {
          case 0x04: castling_ &= ~(kWhiteKingside | kWhiteQueenside);
                     break;
          case 0x00: castling_ &= ~kWhiteQueenside; break;
          case 0x07: castling_ &= ~kWhiteKingside; break;
          case 0x74: castling_ &= ~(kBlackKingside | kBlackQueenside);
                     break;
          case 0x70: castling_ &= ~kBlackQueenside; break;
          case 0x77: castling_ &= ~kBlackKingside; break;
          default: break;
        }
    };
    clearRight(move.from);
    clearRight(move.to);

    // En-passant square on double pawn pushes.
    epSquare_ = -1;
    if (std::abs(mover) == kPawn &&
        std::abs(move.to - move.from) == 32) {
        epSquare_ = static_cast<std::int8_t>(move.from + 16 * sign);
    }

    halfmove_ =
        (std::abs(mover) == kPawn || undo.captured != 0) ? 0
                                                         : halfmove_ + 1;
    if (side_ == Side::Black)
        ++fullmove_;

    const Side mySide = side_;
    side_ = side_ == Side::White ? Side::Black : Side::White;

    hash_ ^= zobrist().side;
    hash_ ^= zobrist().castling[castling_];
    if (epSquare_ >= 0)
        hash_ ^= zobrist().epFile[fileOf(epSquare_)];

    if (inCheck(mySide)) {
        unmakeMove(undo);
        return false;
    }
    return true;
}

void
Board::unmakeMove(const Undo &undo)
{
    const Move &move = undo.move;
    side_ = side_ == Side::White ? Side::Black : Side::White;
    const int sign = static_cast<int>(side_);

    std::int8_t mover = squares_[move.to];
    if (move.promotion != 0)
        mover = static_cast<std::int8_t>(sign * kPawn);
    place(move.from, mover);
    place(move.to, 0);

    if (move.isEnPassant) {
        place(move.to - 16 * sign, undo.captured);
    } else if (undo.captured != 0) {
        place(move.to, undo.captured);
    }

    if (move.isCastle) {
        if (move.to > move.from) {
            place(move.to + 1, squares_[move.to - 1]);
            place(move.to - 1, 0);
        } else {
            place(move.to - 2, squares_[move.to + 1]);
            place(move.to + 1, 0);
        }
    }

    castling_ = undo.castling;
    epSquare_ = undo.epSquare;
    halfmove_ = undo.halfmove;
    hash_ = undo.hash;
    if (side_ == Side::Black)
        --fullmove_;
}

std::vector<Move>
Board::legalMoves() const
{
    std::vector<Move> pseudo, legal;
    pseudoMoves(pseudo);
    Board copy = *this;
    Undo undo;
    for (const Move &m : pseudo) {
        if (copy.makeMove(m, undo)) {
            copy.unmakeMove(undo);
            legal.push_back(m);
        }
    }
    return legal;
}

int
Board::evaluate(Side side) const
{
    int score = 0;
    for (int sq = 0; sq < 128; ++sq) {
        if (!onBoard(sq))
            continue;
        const std::int8_t p = squares_[sq];
        if (p == 0)
            continue;
        const int kind = std::abs(p);
        int value = kPieceValue[kind];
        // Centralization bonus for minor pieces and pawns.
        const double df = std::abs(fileOf(sq) - 3.5);
        const double dr = std::abs(rankOf(sq) - 3.5);
        const int center = static_cast<int>((3.5 - df) + (3.5 - dr));
        if (kind == kKnight || kind == kBishop)
            value += 4 * center;
        else if (kind == kPawn)
            value += 2 * center;
        score += p > 0 ? value : -value;
    }
    return side == Side::White ? score : -score;
}

std::uint64_t
Board::perft(int depth)
{
    if (depth == 0)
        return 1;
    std::vector<Move> moves;
    pseudoMoves(moves);
    std::uint64_t nodes = 0;
    Undo undo;
    for (const Move &m : moves) {
        if (!makeMove(m, undo))
            continue;
        nodes += perft(depth - 1);
        unmakeMove(undo);
    }
    return nodes;
}

} // namespace alberta::deepsjeng
