#include "benchmarks/wrf/model.h"

#include <cmath>
#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::wrf {

namespace {

constexpr double kGravity = 9.81;
constexpr double kCoriolis = 5e-5;
constexpr double kBaseHeight = 8000.0;

} // namespace

std::string
Namelist::serialize() const
{
    std::ostringstream os;
    os << "&physics\n";
    os << " steps = " << steps << '\n';
    os << " dt = " << dt << '\n';
    os << " mp_physics = " << microphysics << '\n';
    os << " ra_lw_physics = " << longwaveRadiation << '\n';
    os << " sf_surface_physics = " << surfaceScheme << '\n';
    os << " bl_pbl_physics = " << boundaryLayer << '\n';
    os << "/\n";
    return os.str();
}

Namelist
Namelist::parse(const std::string &text)
{
    Namelist nl;
    for (const auto &line : support::split(text, '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty() || trimmed[0] == '&' || trimmed[0] == '/')
            continue;
        const auto eq = trimmed.find('=');
        support::fatalIf(eq == std::string_view::npos,
                         "namelist: malformed line '",
                         std::string(trimmed), "'");
        const std::string key(support::trim(trimmed.substr(0, eq)));
        const std::string value(support::trim(trimmed.substr(eq + 1)));
        if (key == "steps")
            nl.steps = static_cast<int>(support::parseInt(value));
        else if (key == "dt")
            nl.dt = support::parseDouble(value);
        else if (key == "mp_physics")
            nl.microphysics =
                static_cast<int>(support::parseInt(value));
        else if (key == "ra_lw_physics")
            nl.longwaveRadiation =
                static_cast<int>(support::parseInt(value));
        else if (key == "sf_surface_physics")
            nl.surfaceScheme =
                static_cast<int>(support::parseInt(value));
        else if (key == "bl_pbl_physics")
            nl.boundaryLayer =
                static_cast<int>(support::parseInt(value));
        else
            support::fatal("namelist: unknown key '", key, "'");
    }
    support::fatalIf(nl.dt <= 0 || nl.steps < 0,
                     "namelist: bad steps/dt");
    return nl;
}

std::string
InputFields::serialize() const
{
    std::ostringstream os;
    os.precision(12);
    os << "wrfinput " << nx << ' ' << ny << ' ' << dx << '\n';
    const auto dump = [&](const char *name,
                          const std::vector<double> &field) {
        os << name;
        for (const double v : field)
            os << ' ' << v;
        os << '\n';
    };
    dump("height", height);
    dump("u", u);
    dump("v", v);
    dump("moisture", moisture);
    return os.str();
}

InputFields
InputFields::parse(const std::string &text)
{
    InputFields in;
    const auto lines = support::split(text, '\n');
    support::fatalIf(lines.size() < 5, "wrfinput: truncated file");
    {
        const auto header = support::splitWhitespace(lines[0]);
        support::fatalIf(header.size() != 4 ||
                             header[0] != "wrfinput",
                         "wrfinput: bad header");
        in.nx = static_cast<int>(support::parseInt(header[1]));
        in.ny = static_cast<int>(support::parseInt(header[2]));
        in.dx = support::parseDouble(header[3]);
        support::fatalIf(in.nx < 4 || in.ny < 4 || in.dx <= 0,
                         "wrfinput: bad dimensions");
    }
    const std::size_t cells =
        static_cast<std::size_t>(in.nx) * in.ny;
    const auto loadField = [&](const std::string &line,
                               const char *name,
                               std::vector<double> &field) {
        const auto fields = support::splitWhitespace(line);
        support::fatalIf(fields.empty() || fields[0] != name,
                         "wrfinput: expected field '", name, "'");
        support::fatalIf(fields.size() != cells + 1, "wrfinput: '",
                         name, "' has ", fields.size() - 1,
                         " values; expected ", cells);
        field.reserve(cells);
        for (std::size_t i = 1; i < fields.size(); ++i)
            field.push_back(support::parseDouble(fields[i]));
    };
    loadField(lines[1], "height", in.height);
    loadField(lines[2], "u", in.u);
    loadField(lines[3], "v", in.v);
    loadField(lines[4], "moisture", in.moisture);
    return in;
}

InputFields
makeStorm(StormKind kind, int nx, int ny, std::uint64_t seed)
{
    support::Rng rng(seed);
    InputFields in;
    in.nx = nx;
    in.ny = ny;
    const std::size_t cells = static_cast<std::size_t>(nx) * ny;
    in.height.assign(cells, kBaseHeight);
    in.u.assign(cells, 0.0);
    in.v.assign(cells, 0.0);
    in.moisture.assign(cells, 0.01);

    const double cx = nx * rng.real(0.35, 0.65);
    const double cy = ny * rng.real(0.35, 0.65);

    double depth, radius, moist;
    switch (kind) {
      case StormKind::Hurricane:
        depth = 600.0;
        radius = nx * 0.10;
        moist = 0.035;
        break;
      case StormKind::Typhoon:
        depth = 350.0;
        radius = nx * 0.22;
        moist = 0.030;
        break;
      default: // Front
        depth = 200.0;
        radius = nx * 0.3;
        moist = 0.022;
        break;
    }

    for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
            const std::size_t i =
                x + static_cast<std::size_t>(nx) * y;
            if (kind == StormKind::Front) {
                // A shear line across the domain.
                const double band =
                    std::exp(-std::pow((y - cy) / radius, 2));
                in.u[i] = 18.0 * band * (x > cx ? 1.0 : -1.0);
                in.height[i] -= depth * band * 0.5;
                in.moisture[i] += (moist - 0.01) * band;
                continue;
            }
            const double dx0 = x - cx, dy0 = y - cy;
            const double r = std::sqrt(dx0 * dx0 + dy0 * dy0);
            const double shape = std::exp(-(r * r) /
                                          (2 * radius * radius));
            in.height[i] -= depth * shape;
            // Gradient-wind vortex (cyclonic).
            const double speed =
                depth * shape * (r / (radius * radius)) * 0.8;
            if (r > 1e-6) {
                in.u[i] = -speed * dy0 / r;
                in.v[i] = speed * dx0 / r;
            }
            in.moisture[i] += (moist - 0.01) * shape;
        }
    }
    // Environmental noise so no two events are identical.
    for (auto &h : in.height)
        h += rng.real(-3.0, 3.0);
    return in;
}

Model::Model(InputFields input, const Namelist &namelist)
    : state_(std::move(input)), namelist_(namelist)
{
    const std::size_t cells =
        static_cast<std::size_t>(state_.nx) * state_.ny;
    support::fatalIf(state_.height.size() != cells,
                     "wrf: field size mismatch");
}

void
Model::dynamicsStep(runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("wrf::dynamics", 4400);
    auto &m = ctx.machine();
    const int nx = state_.nx, ny = state_.ny;
    const double dt = namelist_.dt;
    const double inv2dx = 1.0 / (2.0 * state_.dx);

    const auto wrap = [&](int a, int n) { return (a + n) % n; };
    const auto idx = [&](int x, int y) {
        return static_cast<std::size_t>(wrap(x, nx)) +
               static_cast<std::size_t>(nx) * wrap(y, ny);
    };

    std::vector<double> nh = state_.height, nu = state_.u,
                        nv = state_.v, nq = state_.moisture;
    for (int y = 0; y < ny; ++y) {
        for (int x = 0; x < nx; ++x) {
            const std::size_t i = idx(x, y);
            const double hE = state_.height[idx(x + 1, y)];
            const double hW = state_.height[idx(x - 1, y)];
            const double hN = state_.height[idx(x, y + 1)];
            const double hS = state_.height[idx(x, y - 1)];
            const double uE = state_.u[idx(x + 1, y)];
            const double uW = state_.u[idx(x - 1, y)];
            const double vN = state_.v[idx(x, y + 1)];
            const double vS = state_.v[idx(x, y - 1)];

            // Lax scheme: the time update starts from the neighbour
            // average, which stabilizes the centered space
            // derivatives for CFL < 1.
            const double hAvg = 0.25 * (hE + hW + hN + hS);
            const double uAvg =
                0.25 * (uE + uW + state_.u[idx(x, y + 1)] +
                        state_.u[idx(x, y - 1)]);
            const double vAvg =
                0.25 * (vN + vS + state_.v[idx(x + 1, y)] +
                        state_.v[idx(x - 1, y)]);

            // Continuity: dh/dt = -H (du/dx + dv/dy) (linearized).
            nh[i] = hAvg - dt * kBaseHeight *
                               ((uE - uW) + (vN - vS)) * inv2dx;

            // Momentum with Coriolis.
            nu[i] = uAvg - dt * (kGravity * (hE - hW) * inv2dx -
                                 kCoriolis * state_.v[i]);
            nv[i] = vAvg - dt * (kGravity * (hN - hS) * inv2dx +
                                 kCoriolis * state_.u[i]);

            // Moisture advection (upwind).
            const double qx = state_.u[i] > 0
                                  ? state_.moisture[i] -
                                        state_.moisture[idx(x - 1, y)]
                                  : state_.moisture[idx(x + 1, y)] -
                                        state_.moisture[i];
            const double qy = state_.v[i] > 0
                                  ? state_.moisture[i] -
                                        state_.moisture[idx(x, y - 1)]
                                  : state_.moisture[idx(x, y + 1)] -
                                        state_.moisture[i];
            nq[i] = state_.moisture[i] -
                    dt * 2.0 * inv2dx *
                        (std::abs(state_.u[i]) * qx +
                         std::abs(state_.v[i]) * qy);

            // Upwind-direction selection branches: per-cell and
            // data-dependent (sign fields flip across the vortex).
            m.branch(1, state_.u[i] > 0);
            m.branch(5, state_.v[i] > 0);
            if ((i & 7) == 0) {
                m.stream(topdown::OpKind::Load, i * 8, 16, 8);
                m.ops(topdown::OpKind::FpMul, 8 * 14);
                m.ops(topdown::OpKind::FpAdd, 8 * 16);
            }
        }
    }
    state_.height.swap(nh);
    state_.u.swap(nu);
    state_.v.swap(nv);
    state_.moisture.swap(nq);
}

void
Model::physicsStep(runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("wrf::physics", 3600);
    auto &m = ctx.machine();
    const int nx = state_.nx, ny = state_.ny;
    const double dt = namelist_.dt;
    const std::size_t cells =
        static_cast<std::size_t>(nx) * ny;

    // Microphysics: condensation above saturation releases latent
    // heat (raises the column height a little) and precipitates.
    if (namelist_.microphysics > 0) {
        auto mpScope = ctx.method(namelist_.microphysics == 2
                                      ? "wrf::mp_ice"
                                      : "wrf::mp_warm_rain",
                                  2400);
        const double saturation =
            namelist_.microphysics == 2 ? 0.024 : 0.028;
        for (std::size_t i = 0; i < cells; ++i) {
            m.load(0xE00000000ULL + i * 8);
            if (m.branch(2, state_.moisture[i] > saturation)) {
                const double excess =
                    state_.moisture[i] - saturation;
                state_.moisture[i] = saturation;
                precipitation_ += excess;
                state_.height[i] += excess * 2000.0; // latent heat
                m.ops(topdown::OpKind::FpMul, 4);
                if (namelist_.microphysics == 2) {
                    // Ice phase: extra work per condensing cell.
                    m.ops(topdown::OpKind::FpDiv, 2);
                    state_.height[i] += excess * 500.0;
                }
            }
        }
    }

    // Long-wave radiation: slow cooling (height relaxation).
    if (namelist_.longwaveRadiation > 0) {
        auto lwScope = ctx.method(namelist_.longwaveRadiation == 2
                                      ? "wrf::ra_lw_layered"
                                      : "wrf::ra_lw_uniform",
                                  1800);
        for (std::size_t i = 0; i < cells; ++i) {
            double rate = 1e-6;
            if (namelist_.longwaveRadiation == 2) {
                // Layered scheme: cooling depends on anomaly size.
                rate *= 1.0 + std::abs(state_.height[i] -
                                       kBaseHeight) /
                                  1000.0;
                m.ops(topdown::OpKind::FpDiv, 1);
            }
            state_.height[i] -=
                dt * rate * (state_.height[i] - kBaseHeight);
        }
        m.ops(topdown::OpKind::FpMul, cells / 4);
    }

    // Surface drag.
    if (namelist_.surfaceScheme == 1) {
        auto sfScope = ctx.method("wrf::sf_drag", 1100);
        const double drag = 1.0 - 2e-4 * dt;
        for (std::size_t i = 0; i < cells; ++i) {
            state_.u[i] *= drag;
            state_.v[i] *= drag;
        }
        m.ops(topdown::OpKind::FpMul, cells / 2);
    }

    // Boundary-layer mixing: Laplacian smoothing of the winds.
    {
        auto blScope = ctx.method(namelist_.boundaryLayer == 2
                                      ? "wrf::bl_strong_mixing"
                                      : "wrf::bl_weak_mixing",
                                  2000);
        const double k =
            namelist_.boundaryLayer == 2 ? 0.08 : 0.02;
        const auto wrap = [&](int a, int n) { return (a + n) % n; };
        const auto idx = [&](int x, int y) {
            return static_cast<std::size_t>(wrap(x, nx)) +
                   static_cast<std::size_t>(nx) * wrap(y, ny);
        };
        std::vector<double> su = state_.u, sv = state_.v;
        for (int y = 0; y < ny; ++y) {
            for (int x = 0; x < nx; ++x) {
                const std::size_t i = idx(x, y);
                su[i] = (1 - 4 * k) * state_.u[i] +
                        k * (state_.u[idx(x + 1, y)] +
                             state_.u[idx(x - 1, y)] +
                             state_.u[idx(x, y + 1)] +
                             state_.u[idx(x, y - 1)]);
                sv[i] = (1 - 4 * k) * state_.v[i] +
                        k * (state_.v[idx(x + 1, y)] +
                             state_.v[idx(x - 1, y)] +
                             state_.v[idx(x, y - 1)] +
                             state_.v[idx(x, y + 1)]);
            }
        }
        state_.u.swap(su);
        state_.v.swap(sv);
        m.ops(topdown::OpKind::FpMul, cells);
        m.stream(topdown::OpKind::Load, 0xE10000000ULL, cells / 8,
                 8);
    }
}

ForecastStats
Model::run(runtime::ExecutionContext &ctx)
{
    for (int step = 0; step < namelist_.steps; ++step) {
        dynamicsStep(ctx);
        physicsStep(ctx);
    }

    ForecastStats stats;
    const std::size_t cells = state_.height.size();
    for (std::size_t i = 0; i < cells; ++i) {
        stats.totalMass += state_.height[i];
        stats.maxWind = std::max(
            stats.maxWind, std::sqrt(state_.u[i] * state_.u[i] +
                                     state_.v[i] * state_.v[i]));
    }
    stats.meanHeight =
        stats.totalMass / static_cast<double>(cells);
    stats.totalPrecipitation = precipitation_;
    stats.cellUpdates = static_cast<std::uint64_t>(cells) *
                        namelist_.steps;
    ctx.consume(stats.meanHeight);
    ctx.consume(stats.maxWind);
    ctx.consume(stats.totalPrecipitation * 1e6);
    return stats;
}

} // namespace alberta::wrf
