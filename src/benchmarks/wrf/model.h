/**
 * @file
 * Numerical weather model for the 521.wrf_r mini-benchmark: 2D
 * shallow-water dynamics with Coriolis force plus pluggable physics
 * options (microphysics, long-wave radiation, surface drag, and
 * boundary-layer mixing), mirroring the WRF namelist knobs the
 * Alberta workloads sweep.
 */
#ifndef ALBERTA_BENCHMARKS_WRF_MODEL_H
#define ALBERTA_BENCHMARKS_WRF_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"
#include "support/rng.h"

namespace alberta::wrf {

/** Physics options (the namelist). */
struct Namelist
{
    int steps = 20;
    double dt = 20.0;            //!< seconds
    int microphysics = 1;        //!< 0 off, 1 warm rain, 2 with ice
    int longwaveRadiation = 1;   //!< 0 off, 1 uniform, 2 layered
    int surfaceScheme = 1;       //!< 0 free-slip, 1 drag
    int boundaryLayer = 1;       //!< 1 weak mixing, 2 strong mixing

    std::string serialize() const;
    static Namelist parse(const std::string &text);
};

/** Gridded initial condition (the wrfinput stand-in). */
struct InputFields
{
    int nx = 0, ny = 0;
    double dx = 10000.0;            //!< meters
    std::vector<double> height;     //!< fluid depth (m)
    std::vector<double> u, v;       //!< winds (m/s)
    std::vector<double> moisture;   //!< specific humidity proxy

    std::string serialize() const;
    static InputFields parse(const std::string &text);
};

/** Storm archetypes for initial-condition synthesis. */
enum class StormKind
{
    Hurricane, //!< compact intense vortex (Katrina-like)
    Typhoon,   //!< broad moderate vortex (Rusa-like)
    Front,     //!< linear wind shear band
};

/** Build the wrfinput fields for a storm event. */
InputFields makeStorm(StormKind kind, int nx, int ny,
                      std::uint64_t seed);

/** Forecast diagnostics. */
struct ForecastStats
{
    double totalMass = 0.0;
    double maxWind = 0.0;
    double totalPrecipitation = 0.0;
    double meanHeight = 0.0;
    std::uint64_t cellUpdates = 0;
};

/** The model. */
class Model
{
  public:
    Model(InputFields input, const Namelist &namelist);

    /** Run the forecast. */
    ForecastStats run(runtime::ExecutionContext &ctx);

  private:
    void dynamicsStep(runtime::ExecutionContext &ctx);
    void physicsStep(runtime::ExecutionContext &ctx);

    InputFields state_;
    Namelist namelist_;
    double precipitation_ = 0.0;
};

} // namespace alberta::wrf

#endif // ALBERTA_BENCHMARKS_WRF_MODEL_H
