/**
 * @file
 * The 521.wrf_r mini-benchmark: storm-event forecasts with
 * namelist-driven physics-option sweeps (the Alberta Katrina/Rusa
 * workload families).
 */
#ifndef ALBERTA_BENCHMARKS_WRF_BENCHMARK_H
#define ALBERTA_BENCHMARKS_WRF_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::wrf {

/** See file comment. */
class WrfBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "521.wrf_r"; }
    std::string area() const override
    {
        return "Weather forecasting";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::wrf

#endif // ALBERTA_BENCHMARKS_WRF_BENCHMARK_H
