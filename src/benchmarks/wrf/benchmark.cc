#include "benchmarks/wrf/benchmark.h"

#include "benchmarks/wrf/model.h"
#include "support/check.h"

namespace alberta::wrf {

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed,
             StormKind storm, int nx, int ny,
             const Namelist &namelist)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.params.set("mp_physics",
                 static_cast<long long>(namelist.microphysics));
    w.params.set("ra_lw_physics",
                 static_cast<long long>(namelist.longwaveRadiation));
    w.files["wrfinput.txt"] =
        makeStorm(storm, nx, ny, seed).serialize();
    w.files["namelist.input"] = namelist.serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
WrfBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;

    Namelist ref;
    ref.steps = 80;
    out.push_back(makeWorkload("refrate", 0x521F,
                               StormKind::Hurricane, 72, 72, ref));
    Namelist train = ref;
    train.steps = 8;
    out.push_back(makeWorkload("train", 0x5211, StormKind::Typhoon,
                               32, 32, train));
    Namelist test = ref;
    test.steps = 3;
    out.push_back(makeWorkload("test", 0x5212, StormKind::Front, 16,
                               16, test));

    // Twelve-plus Alberta workloads: two storm data sets (Katrina /
    // Rusa analogues) x physics-option sweeps (Section IV-B).
    int produced = 0;
    for (const StormKind storm :
         {StormKind::Hurricane, StormKind::Typhoon}) {
        const char *stormName =
            storm == StormKind::Hurricane ? "katrina" : "rusa";
        for (int mp : {0, 1, 2}) {
            for (int lw : {1, 2}) {
                Namelist nl = ref;
                nl.steps = 18;
                nl.microphysics = mp;
                nl.longwaveRadiation = lw;
                nl.surfaceScheme = produced % 2;
                nl.boundaryLayer = 1 + (produced / 2) % 2;
                out.push_back(makeWorkload(
                    std::string("alberta.") + stormName + "-mp" +
                        std::to_string(mp) + "-lw" +
                        std::to_string(lw),
                    0x5210A0 + produced, storm, 36, 36, nl));
                ++produced;
            }
        }
    }
    // One more to reach the Table II count of 16.
    Namelist frontNl = ref;
    frontNl.steps = 22;
    frontNl.boundaryLayer = 2;
    out.push_back(makeWorkload("alberta.front-strongbl", 0x5210C0,
                               StormKind::Front, 40, 40, frontNl));
    return out;
}

void
WrfBenchmark::run(const runtime::Workload &workload,
                  runtime::ExecutionContext &context) const
{
    InputFields input;
    Namelist namelist;
    {
        auto scope = context.method("wrf::read_input", 2000);
        input = InputFields::parse(workload.file("wrfinput.txt"));
        namelist = Namelist::parse(workload.file("namelist.input"));
        context.machine().stream(
            topdown::OpKind::Load, 0xE20000000ULL,
            workload.file("wrfinput.txt").size() / 32 + 1, 32);
    }
    Model model(std::move(input), namelist);
    const ForecastStats stats = model.run(context);
    support::fatalIf(!(stats.maxWind < 500.0),
                     "wrf: forecast blew up on '", workload.name,
                     "': max wind ", stats.maxWind);
    context.consume(stats.cellUpdates);
}

double
WrfBenchmark::costHint(const runtime::Workload &workload) const
{
    // Domain size is fixed per named case: refrate integrates the
    // large domain, the Alberta storm cases share a mid-size one
    // (front-strongbl runs a longer forecast), and train/test are
    // smoke-sized. Physics options only nudge the cost a few percent.
    if (workload.isRefrate())
        return 15.7e6;
    if (workload.name == "alberta.front-strongbl")
        return 1.3e6;
    if (workload.isAlberta())
        return 0.9e6;
    return workload.name == "train" ? 0.3e6 : 0.03e6;
}

} // namespace alberta::wrf
