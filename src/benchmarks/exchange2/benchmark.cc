#include "benchmarks/exchange2/benchmark.h"

#include <mutex>
#include <sstream>

#include "benchmarks/exchange2/sudoku.h"
#include "support/check.h"
#include "support/text.h"

namespace alberta::exchange2 {

namespace {

/**
 * Select @p count seed lines from @p seeds using @p rng, mirroring the
 * Alberta script that "randomly chooses from a file containing seeds".
 */
std::vector<std::string>
chooseSeeds(const std::vector<std::string> &seeds, int count,
            support::Rng &rng)
{
    std::vector<std::string> out;
    for (int i = 0; i < count; ++i)
        out.push_back(seeds[rng.below(seeds.size())]);
    return out;
}

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed, int seedCount,
             int puzzlesPerSeed, const std::string &seedFile)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.params.set("puzzles_per_seed",
                 static_cast<long long>(puzzlesPerSeed));

    const auto all = support::splitWhitespace(seedFile);
    support::Rng rng(seed);
    std::ostringstream os;
    if (seedCount >= static_cast<int>(all.size())) {
        for (const auto &line : all)
            os << line << '\n';
    } else {
        for (const auto &line : chooseSeeds(all, seedCount, rng))
            os << line << '\n';
    }
    w.files["puzzles.txt"] = os.str();
    return w;
}

} // namespace

std::string
Exchange2Benchmark::distributedSeeds()
{
    // Created once per process; deterministic in the creation seed.
    static std::string cached;
    static std::once_flag once;
    std::call_once(once, [] {
        runtime::ExecutionContext scratch;
        support::Rng rng(0x548EED5ULL);
        std::ostringstream os;
        for (int i = 0; i < 27; ++i) {
            support::Rng child = rng.fork(i + 1);
            os << createSeedPuzzle(child, 26, scratch).serialize()
               << '\n';
        }
        cached = os.str();
    });
    return cached;
}

std::vector<runtime::Workload>
Exchange2Benchmark::workloads() const
{
    const std::string seeds = distributedSeeds();
    std::vector<runtime::Workload> out;

    out.push_back(makeWorkload("refrate", 0x548F, 27, 10, seeds));
    out.push_back(makeWorkload("train", 0x5481, 27, 2, seeds));
    out.push_back(makeWorkload("test", 0x5482, 3, 1, seeds));

    // The ten additional Alberta workloads all draw from the
    // distributed 27 seeds (fresh seed sets ran too short; see the
    // ablation bench), varying the subset and the puzzle count.
    for (int i = 1; i <= 10; ++i) {
        out.push_back(makeWorkload("alberta.s" + std::to_string(i),
                                   0x5480A0 + i, 6 + (i % 5) * 3,
                                   3 + (i % 3) * 2, seeds));
    }
    return out;
}

void
Exchange2Benchmark::run(const runtime::Workload &workload,
                        runtime::ExecutionContext &context) const
{
    const auto lines =
        support::splitWhitespace(workload.file("puzzles.txt"));
    support::fatalIf(lines.empty(), "exchange2: no seed puzzles");
    const int perSeed = static_cast<int>(
        workload.params.getInt("puzzles_per_seed", 1));

    support::Rng rng(workload.seed ^ 0x548);
    std::uint64_t totalNodes = 0;
    for (const auto &line : lines) {
        const Grid seed = Grid::parse(line);
        const auto seedPattern = seed.pattern();
        for (int p = 0; p < perSeed; ++p) {
            Grid puzzle;
            {
                auto scope =
                    context.method("exchange2::transform", 1500);
                puzzle = transformPuzzle(seed, rng);
                context.machine().ops(topdown::OpKind::IntAlu, 600);
            }
            // Generated puzzles must keep the clue-pattern cardinality
            // and be uniquely solvable, like exchange2's output.
            support::fatalIf(puzzle.clues() != seed.clues(),
                             "exchange2: clue count changed");
            const SolveResult res = solve(puzzle, context, 2);
            support::fatalIf(res.solutions != 1,
                             "exchange2: generated puzzle has ",
                             res.solutions, " solutions");
            totalNodes += res.nodes;
            context.consume(res.nodes);
        }
        // The pattern itself moves under symmetry but keeps its size;
        // fold its population into the checksum.
        int popcount = 0;
        for (const bool b : seedPattern)
            popcount += b;
        context.consume(static_cast<std::uint64_t>(popcount));
    }
    context.consume(totalNodes);
}

double
Exchange2Benchmark::costHint(const runtime::Workload &workload) const
{
    // Linear in puzzles solved; individual puzzles vary severalfold
    // with how constrained the generated grid happens to be.
    return 2.1e6 * static_cast<double>(
                       workload.params.getInt("puzzles_per_seed", 0));
}

} // namespace alberta::exchange2
