/**
 * @file
 * The 548.exchange2_r mini-benchmark: generate new Sudoku puzzles with
 * identical clue patterns from collections of seed puzzles.
 */
#ifndef ALBERTA_BENCHMARKS_EXCHANGE2_BENCHMARK_H
#define ALBERTA_BENCHMARKS_EXCHANGE2_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::exchange2 {

/** See file comment. */
class Exchange2Benchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "548.exchange2_r"; }
    std::string area() const override
    {
        return "AI: Sudoku recursive solution";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;

    /**
     * The 27 seed puzzles "distributed with the benchmark": a fixed,
     * procedurally created collection of hard-ish puzzles, one per
     * line. Exposed for the seed-sensitivity ablation.
     */
    static std::string distributedSeeds();
};

} // namespace alberta::exchange2

#endif // ALBERTA_BENCHMARKS_EXCHANGE2_BENCHMARK_H
