/**
 * @file
 * Sudoku kernel for the 548.exchange2_r mini-benchmark.
 *
 * SPEC's exchange2 is a Sudoku *generator*: seed puzzles are used to
 * produce new puzzles with identical clue patterns. This module
 * provides the backtracking solver (with search-node accounting), the
 * validity-preserving transformations used to derive new puzzles from
 * seeds, and a clue-removal creator used to synthesize the seed
 * collections themselves.
 */
#ifndef ALBERTA_BENCHMARKS_EXCHANGE2_SUDOKU_H
#define ALBERTA_BENCHMARKS_EXCHANGE2_SUDOKU_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "runtime/context.h"
#include "support/rng.h"

namespace alberta::exchange2 {

/** A 9x9 Sudoku grid; 0 = empty cell. */
struct Grid
{
    std::array<std::uint8_t, 81> cells = {};

    /** Parse from an 81-character string ('1'-'9', '0' or '.' empty). */
    static Grid parse(const std::string &text);

    /** Serialize to the 81-character form ('0' for empty). */
    std::string serialize() const;

    /** Number of clues (non-empty cells). */
    int clues() const;

    /** The clue pattern: an 81-bit mask of filled positions. */
    std::array<bool, 81> pattern() const;

    /** True when no row/column/box constraint is violated. */
    bool consistent() const;

    /** True when fully filled and consistent. */
    bool solved() const;
};

/** Result of a solver invocation. */
struct SolveResult
{
    int solutions = 0;        //!< solutions found (capped at limit)
    std::uint64_t nodes = 0;  //!< search nodes expanded
    Grid solution;            //!< first solution, valid if solutions > 0
};

/**
 * Count solutions of @p grid up to @p limit using MRV backtracking,
 * reporting micro-ops through @p ctx.
 */
SolveResult solve(const Grid &grid, runtime::ExecutionContext &ctx,
                  int limit = 2);

/**
 * Derive a new puzzle from @p seed with an *identical clue pattern*:
 * applies validity-preserving symmetries (digit relabeling, in-band row
 * and column swaps, band/stack swaps, transposition). The result has
 * the same number of clues in transformed positions, exactly like
 * exchange2's seeded generation.
 */
Grid transformPuzzle(const Grid &seed, support::Rng &rng);

/**
 * Create a random seed puzzle: fill a grid with a randomized solver,
 * then remove clues (keeping a unique solution) down to about
 * @p targetClues. Fewer clues yield harder puzzles.
 */
Grid createSeedPuzzle(support::Rng &rng, int targetClues,
                      runtime::ExecutionContext &ctx);

} // namespace alberta::exchange2

#endif // ALBERTA_BENCHMARKS_EXCHANGE2_SUDOKU_H
