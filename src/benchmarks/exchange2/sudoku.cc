#include "benchmarks/exchange2/sudoku.h"

#include <algorithm>
#include <bit>

#include "support/check.h"

namespace alberta::exchange2 {

namespace {

int
boxOf(int row, int col)
{
    return (row / 3) * 3 + col / 3;
}

/** Candidate bitmasks per row/column/box for fast constraint checks. */
struct Masks
{
    std::array<std::uint16_t, 9> row = {}, col = {}, box = {};

    static Masks
    fromGrid(const Grid &g)
    {
        Masks m;
        for (int r = 0; r < 9; ++r) {
            for (int c = 0; c < 9; ++c) {
                const int v = g.cells[r * 9 + c];
                if (v == 0)
                    continue;
                const std::uint16_t bit = 1u << (v - 1);
                m.row[r] |= bit;
                m.col[c] |= bit;
                m.box[boxOf(r, c)] |= bit;
            }
        }
        return m;
    }

    std::uint16_t
    candidates(int r, int c) const
    {
        return static_cast<std::uint16_t>(
            ~(row[r] | col[c] | box[boxOf(r, c)]) & 0x1ff);
    }

    void
    place(int r, int c, int v)
    {
        const std::uint16_t bit = 1u << (v - 1);
        row[r] |= bit;
        col[c] |= bit;
        box[boxOf(r, c)] |= bit;
    }

    void
    remove(int r, int c, int v)
    {
        const std::uint16_t bit = static_cast<std::uint16_t>(
            ~(1u << (v - 1)));
        row[r] &= bit;
        col[c] &= bit;
        box[boxOf(r, c)] &= bit;
    }
};

struct Searcher
{
    Grid grid;
    Masks masks;
    runtime::ExecutionContext &ctx;
    topdown::Machine &m;
    int limit;
    SolveResult result;
    /** Optional per-cell value order for randomized grid filling. */
    const std::array<std::uint8_t, 9> *valueOrder = nullptr;

    explicit Searcher(const Grid &g, runtime::ExecutionContext &c,
                      int lim)
        : grid(g), masks(Masks::fromGrid(g)), ctx(c), m(c.machine()),
          limit(lim)
    {
    }

    bool
    search()
    {
        ++result.nodes;
        // MRV: pick the empty cell with the fewest candidates.
        int bestCell = -1;
        int bestCount = 10;
        std::uint16_t bestCand = 0;
        // The MRV scan is branch-light in the Fortran original: the
        // digit loops are counted and the comparisons compile to
        // conditional moves, so most of this is plain retired work.
        for (int cell = 0; cell < 81; ++cell) {
            m.load(0x1000 + cell);
            if (grid.cells[cell] != 0) {
                m.ops(topdown::OpKind::IntAlu, 1);
                continue;
            }
            const std::uint16_t cand =
                masks.candidates(cell / 9, cell % 9);
            const int count = std::popcount(cand);
            m.ops(topdown::OpKind::IntAlu, 7); // cmov-style select
            if (count < bestCount) {
                bestCount = count;
                bestCell = cell;
                bestCand = cand;
                if (m.branch(3, count <= 1))
                    break;
            }
        }
        if (m.branch(4, bestCell == -1)) {
            ++result.solutions;
            if (result.solutions == 1)
                result.solution = grid;
            return result.solutions >= limit;
        }
        if (m.branch(5, bestCount == 0))
            return false; // dead end

        const int r = bestCell / 9, c = bestCell % 9;
        for (int k = 0; k < 9; ++k) {
            const int v = valueOrder ? (*valueOrder)[k] : k + 1;
            const std::uint16_t bit = 1u << (v - 1);
            m.ops(topdown::OpKind::IntAlu, 5); // bit-test + mask math
            if (!(bestCand & bit))
                continue;
            m.branch(6, true); // the taken recursion branch
            grid.cells[bestCell] = static_cast<std::uint8_t>(v);
            masks.place(r, c, v);
            m.store(0x1000 + bestCell);
            m.call();
            if (search())
                return true;
            grid.cells[bestCell] = 0;
            masks.remove(r, c, v);
        }
        return false;
    }
};

} // namespace

Grid
Grid::parse(const std::string &text)
{
    support::fatalIf(text.size() < 81, "sudoku: puzzle string has ",
                     text.size(), " characters; need 81");
    Grid g;
    for (int i = 0; i < 81; ++i) {
        const char ch = text[i];
        if (ch == '.' || ch == '0') {
            g.cells[i] = 0;
        } else if (ch >= '1' && ch <= '9') {
            g.cells[i] = static_cast<std::uint8_t>(ch - '0');
        } else {
            support::fatal("sudoku: bad character '", ch, "' at ", i);
        }
    }
    support::fatalIf(!g.consistent(), "sudoku: inconsistent puzzle");
    return g;
}

std::string
Grid::serialize() const
{
    std::string out(81, '0');
    for (int i = 0; i < 81; ++i)
        out[i] = static_cast<char>('0' + cells[i]);
    return out;
}

int
Grid::clues() const
{
    int n = 0;
    for (const auto v : cells)
        n += v != 0;
    return n;
}

std::array<bool, 81>
Grid::pattern() const
{
    std::array<bool, 81> p;
    for (int i = 0; i < 81; ++i)
        p[i] = cells[i] != 0;
    return p;
}

bool
Grid::consistent() const
{
    std::array<std::uint16_t, 9> row = {}, col = {}, box = {};
    for (int r = 0; r < 9; ++r) {
        for (int c = 0; c < 9; ++c) {
            const int v = cells[r * 9 + c];
            if (v == 0)
                continue;
            const std::uint16_t bit = 1u << (v - 1);
            const int b = boxOf(r, c);
            if (row[r] & bit)
                return false;
            if (col[c] & bit)
                return false;
            if (box[b] & bit)
                return false;
            row[r] |= bit;
            col[c] |= bit;
            box[b] |= bit;
        }
    }
    return true;
}

bool
Grid::solved() const
{
    for (const auto v : cells)
        if (v == 0)
            return false;
    return consistent();
}

SolveResult
solve(const Grid &grid, runtime::ExecutionContext &ctx, int limit)
{
    auto scope = ctx.method("exchange2::solve", 2800);
    Searcher s(grid, ctx, limit);
    s.search();
    ctx.consume(s.result.nodes);
    return s.result;
}

Grid
transformPuzzle(const Grid &seed, support::Rng &rng)
{
    Grid g = seed;

    // Digit relabeling: a random permutation of 1..9.
    std::array<std::uint8_t, 9> perm;
    for (int i = 0; i < 9; ++i)
        perm[i] = static_cast<std::uint8_t>(i + 1);
    for (int i = 8; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);
    for (auto &cell : g.cells)
        if (cell != 0)
            cell = perm[cell - 1];

    const auto swapRows = [&](int a, int b) {
        for (int c = 0; c < 9; ++c)
            std::swap(g.cells[a * 9 + c], g.cells[b * 9 + c]);
    };
    const auto swapCols = [&](int a, int b) {
        for (int r = 0; r < 9; ++r)
            std::swap(g.cells[r * 9 + a], g.cells[r * 9 + b]);
    };

    // In-band row swaps and in-stack column swaps.
    for (int band = 0; band < 3; ++band) {
        const int a = band * 3 + static_cast<int>(rng.below(3));
        const int b = band * 3 + static_cast<int>(rng.below(3));
        swapRows(a, b);
        const int c = band * 3 + static_cast<int>(rng.below(3));
        const int d = band * 3 + static_cast<int>(rng.below(3));
        swapCols(c, d);
    }

    // Whole-band and whole-stack swaps.
    {
        const int a = static_cast<int>(rng.below(3));
        const int b = static_cast<int>(rng.below(3));
        for (int r = 0; r < 3; ++r)
            swapRows(a * 3 + r, b * 3 + r);
        const int c = static_cast<int>(rng.below(3));
        const int d = static_cast<int>(rng.below(3));
        for (int k = 0; k < 3; ++k)
            swapCols(c * 3 + k, d * 3 + k);
    }

    // Optional transposition.
    if (rng.chance(0.5)) {
        Grid t;
        for (int r = 0; r < 9; ++r)
            for (int c = 0; c < 9; ++c)
                t.cells[c * 9 + r] = g.cells[r * 9 + c];
        g = t;
    }
    return g;
}

Grid
createSeedPuzzle(support::Rng &rng, int targetClues,
                 runtime::ExecutionContext &ctx)
{
    support::fatalIf(targetClues < 20 || targetClues > 81,
                     "sudoku: unreasonable clue target ", targetClues);

    // Fill an empty grid with a randomized value order.
    Grid empty;
    Searcher filler(empty, ctx, 1);
    std::array<std::uint8_t, 9> order;
    for (int i = 0; i < 9; ++i)
        order[i] = static_cast<std::uint8_t>(i + 1);
    for (int i = 8; i > 0; --i)
        std::swap(order[i], order[rng.below(i + 1)]);
    filler.valueOrder = &order;
    filler.search();
    support::panicIf(filler.result.solutions == 0,
                     "sudoku: failed to fill an empty grid");
    Grid full = filler.result.solution;

    // Remove clues in random order while the solution stays unique.
    std::array<int, 81> cells;
    for (int i = 0; i < 81; ++i)
        cells[i] = i;
    for (int i = 80; i > 0; --i)
        std::swap(cells[i], cells[rng.below(i + 1)]);

    Grid puzzle = full;
    for (const int cell : cells) {
        if (puzzle.clues() <= targetClues)
            break;
        const std::uint8_t saved = puzzle.cells[cell];
        puzzle.cells[cell] = 0;
        if (solve(puzzle, ctx, 2).solutions != 1)
            puzzle.cells[cell] = saved; // removal breaks uniqueness
    }
    return puzzle;
}

} // namespace alberta::exchange2
