#include "benchmarks/omnetpp/benchmark.h"

#include "benchmarks/omnetpp/sim.h"
#include "support/check.h"

namespace alberta::omnetpp {

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed,
             const Topology &topology, double simTimeUs,
             double interarrivalUs)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.params.set("sim_time_us", simTimeUs);
    w.params.set("interarrival_us", interarrivalUs);
    w.files["network.ned"] = topology.serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
OmnetppBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;

    // SPEC's train and ref inputs share the network and differ only in
    // the simulated time (Section IV-A).
    support::Rng refRng(0x520F);
    const Topology refNet = makeRandom(24, 40, refRng);
    out.push_back(
        makeWorkload("refrate", 0x520F, refNet, 220000.0, 50.0));
    out.push_back(makeWorkload("train", 0x5201, refNet, 12000.0, 50.0));
    out.push_back(makeWorkload("test", 0x5202, refNet, 1200.0, 50.0));

    // The seven Alberta workloads: different topologies.
    out.push_back(makeWorkload("alberta.line", 0xC1, makeLine(16),
                               30000.0, 70.0));
    out.push_back(makeWorkload("alberta.ring", 0xC2, makeRing(16),
                               30000.0, 60.0));
    out.push_back(makeWorkload("alberta.star", 0xC3, makeStar(16),
                               30000.0, 70.0));
    out.push_back(makeWorkload("alberta.tree", 0xC4, makeTree(15),
                               30000.0, 60.0));
    support::Rng rng(0x520AA);
    out.push_back(makeWorkload("alberta.random-9", 0xC5,
                               makeRandom(8, 9, rng), 30000.0, 55.0));
    out.push_back(makeWorkload("alberta.random-18", 0xC6,
                               makeRandom(14, 18, rng), 30000.0, 55.0));
    out.push_back(makeWorkload("alberta.random-27", 0xC7,
                               makeRandom(20, 27, rng), 30000.0,
                               55.0));
    return out;
}

void
OmnetppBenchmark::run(const runtime::Workload &workload,
                      runtime::ExecutionContext &context) const
{
    Topology topology;
    {
        auto scope = context.method("omnetpp::parse_ned", 1800);
        topology = Topology::parse(workload.file("network.ned"));
        context.machine().stream(
            topdown::OpKind::Load, 0x7000,
            workload.file("network.ned").size() / 8 + 1, 8);
    }
    SimConfig config;
    config.simTimeUs = workload.params.getDouble("sim_time_us", 10000);
    config.meanInterarrivalUs =
        workload.params.getDouble("interarrival_us", 60.0);
    config.seed = workload.seed ^ 0x520;

    Simulator simulator(topology, config);
    const SimStats stats = simulator.run(context);
    support::fatalIf(stats.packetsDelivered == 0,
                     "omnetpp: nothing delivered in '", workload.name,
                     "'");
    context.consume(stats.eventsProcessed);
}

double
OmnetppBenchmark::costHint(const runtime::Workload &workload) const
{
    // Event count ~ simulated time / packet interarrival; ~1250 uops
    // per injected packet across queueing, routing, and delivery.
    const double simTime = static_cast<double>(
        workload.params.getInt("sim_time_us", 0));
    const double interarrival = static_cast<double>(
        workload.params.getInt("interarrival_us", 1));
    return interarrival > 0.0 ? 1250.0 * simTime / interarrival : 0.0;
}

} // namespace alberta::omnetpp
