#include "benchmarks/omnetpp/sim.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "support/check.h"

namespace alberta::omnetpp {

Simulator::Simulator(const Topology &topology, const SimConfig &config)
    : topology_(topology), config_(config), rng_(config.seed)
{
    support::fatalIf(!topology.connected(),
                     "omnetpp: topology is not connected");
    outLinks_.resize(topology.nodes);
    for (const Link &l : topology.links) {
        const int fwd = static_cast<int>(links_.size());
        links_.push_back({l.b, fwd + 1, l.delayUs, l.bitsPerUs, false,
                          {}});
        links_.push_back({l.a, fwd, l.delayUs, l.bitsPerUs, false,
                          {}});
        outLinks_[l.a].push_back(fwd);
        outLinks_[l.b].push_back(fwd + 1);
    }
    computeRoutes();
}

void
Simulator::computeRoutes()
{
    const int n = topology_.nodes;
    nextHop_.assign(n, std::vector<int>(n, -1));
    // BFS from every destination over reversed (symmetric) links.
    for (int dst = 0; dst < n; ++dst) {
        std::deque<int> queue = {dst};
        std::vector<bool> seen(n, false);
        seen[dst] = true;
        while (!queue.empty()) {
            const int u = queue.front();
            queue.pop_front();
            for (const int le : outLinks_[u]) {
                const int v = links_[le].to;
                if (seen[v])
                    continue;
                seen[v] = true;
                // v reaches dst via the reverse direction of le.
                nextHop_[v][dst] = links_[le].reverse;
                queue.push_back(v);
            }
        }
    }
}

int
Simulator::nextHop(int from, int to) const
{
    const int link = nextHop_[from][to];
    return link < 0 ? -1 : links_[link].to;
}

void
Simulator::schedule(const Event &event)
{
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

void
Simulator::startTransmission(int linkIdx,
                             runtime::ExecutionContext &ctx)
{
    auto &m = ctx.machine();
    DirectedLink &link = links_[linkIdx];
    if (link.busy || link.queue.empty())
        return;
    link.busy = true;
    const std::int32_t packetIdx = link.queue.front();
    link.queue.erase(link.queue.begin());
    m.load(0x2000000ULL + static_cast<std::uint64_t>(linkIdx) * 64);
    const double txUs = config_.packetBits / link.bitsPerUs;
    Event free;
    free.kind = EventKind::LinkFree;
    free.link = linkIdx;
    free.packet = packetIdx;
    free.timeUs = currentTime_ + txUs + link.delayUs;
    schedule(free);
    m.ops(topdown::OpKind::FpMul, 2);
}

SimStats
Simulator::run(runtime::ExecutionContext &ctx)
{
    auto &m = ctx.machine();
    stats_ = SimStats{};
    heap_.clear();
    packets_.clear();

    // Prime per-node generators.
    for (int node = 0; node < topology_.nodes; ++node) {
        Event e;
        e.kind = EventKind::Generate;
        e.node = node;
        e.timeUs = rng_.real() * config_.meanInterarrivalUs;
        schedule(e);
    }

    while (!heap_.empty()) {
        auto scope = ctx.method("omnetpp::handle_event", 3600);
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
        const Event event = heap_.back();
        heap_.pop_back();
        m.load(0x1000000ULL + (heap_.size() % 4096) * 48);
        if (m.branch(1, event.timeUs > config_.simTimeUs))
            break;
        currentTime_ = event.timeUs;
        ++stats_.eventsProcessed;

        // Virtual dispatch on the module/message type, like OMNeT++.
        m.indirect(2, static_cast<std::uint64_t>(event.kind));

        switch (event.kind) {
          case EventKind::Generate: {
            auto genScope = ctx.method("omnetpp::source", 1400);
            // Create a packet to a random other node.
            int dst;
            do {
                dst = static_cast<int>(rng_.below(topology_.nodes));
            } while (dst == event.node);
            const auto packetIdx =
                static_cast<std::int32_t>(packets_.size());
            packets_.push_back(
                {event.node, dst, 0, event.timeUs});
            ++stats_.packetsSent;
            m.ops(topdown::OpKind::IntAlu, 12);

            Event arrival;
            arrival.kind = EventKind::Arrival;
            arrival.node = event.node;
            arrival.packet = packetIdx;
            arrival.timeUs = event.timeUs;
            schedule(arrival);

            // Next generation: exponential interarrival.
            Event next;
            next.kind = EventKind::Generate;
            next.node = event.node;
            next.timeUs =
                event.timeUs -
                config_.meanInterarrivalUs * std::log(rng_.real() +
                                                      1e-12);
            m.ops(topdown::OpKind::FpDiv, 1);
            schedule(next);
            break;
          }
          case EventKind::Arrival: {
            auto routeScope = ctx.method("omnetpp::route", 2200);
            Packet &packet = packets_[event.packet];
            m.load(0x3000000ULL +
                   static_cast<std::uint64_t>(event.packet) * 32);
            if (m.branch(3, packet.dst == event.node)) {
                ++stats_.packetsDelivered;
                stats_.totalHops += packet.hops;
                stats_.totalLatencyUs += event.timeUs - packet.bornUs;
                break;
            }
            const int linkIdx = nextHop_[event.node][packet.dst];
            support::panicIf(linkIdx < 0, "omnetpp: no route");
            DirectedLink &link = links_[linkIdx];
            m.load(0x2000000ULL +
                   static_cast<std::uint64_t>(linkIdx) * 64);
            if (m.branch(4, static_cast<int>(link.queue.size()) >=
                                config_.queueLimit)) {
                ++stats_.packetsDropped;
                break;
            }
            ++packet.hops;
            link.queue.push_back(event.packet);
            startTransmission(linkIdx, ctx);
            break;
          }
          case EventKind::LinkFree: {
            auto txScope = ctx.method("omnetpp::transmit", 1600);
            DirectedLink &link = links_[event.link];
            link.busy = false;
            // Deliver the packet to the next node.
            Event arrival;
            arrival.kind = EventKind::Arrival;
            arrival.node = link.to;
            arrival.packet = event.packet;
            arrival.timeUs = event.timeUs;
            schedule(arrival);
            // Start the next queued transmission, if any.
            startTransmission(event.link, ctx);
            break;
          }
        }
    }

    ctx.consume(stats_.packetsDelivered);
    ctx.consume(stats_.packetsDropped);
    ctx.consume(stats_.totalHops);
    return stats_;
}

} // namespace alberta::omnetpp
