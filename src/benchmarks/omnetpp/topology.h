/**
 * @file
 * NED-like network descriptions and topology generators for the
 * 520.omnetpp_r mini-benchmark: line, ring, star, tree, and random
 * topologies — the seven Alberta workload families of Section IV-A.
 */
#ifndef ALBERTA_BENCHMARKS_OMNETPP_TOPOLOGY_H
#define ALBERTA_BENCHMARKS_OMNETPP_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.h"

namespace alberta::omnetpp {

/** One bidirectional link. */
struct Link
{
    int a = 0;
    int b = 0;
    double delayUs = 1.0;      //!< propagation delay
    double bitsPerUs = 100.0;  //!< bandwidth
};

/** A network description (the parsed .ned file). */
struct Topology
{
    std::string name;
    int nodes = 0;
    std::vector<Link> links;

    /** Serialize to the simplified NED text format. */
    std::string serialize() const;

    /** Parse the simplified NED text format. */
    static Topology parse(const std::string &text);

    /** True when every node can reach every other node. */
    bool connected() const;
};

/** Chain of @p n nodes. */
Topology makeLine(int n);

/** Cycle of @p n nodes. */
Topology makeRing(int n);

/** Hub-and-spoke with @p n - 1 leaves. */
Topology makeStar(int n);

/** Balanced binary tree with @p n nodes. */
Topology makeTree(int n);

/**
 * Random connected topology with @p nodes nodes and @p edges edges
 * (a random spanning tree plus extra random links).
 */
Topology makeRandom(int nodes, int edges, support::Rng &rng);

} // namespace alberta::omnetpp

#endif // ALBERTA_BENCHMARKS_OMNETPP_TOPOLOGY_H
