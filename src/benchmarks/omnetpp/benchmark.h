/**
 * @file
 * The 520.omnetpp_r mini-benchmark: discrete-event simulation of
 * packet networks described by NED-like files, with the seven Alberta
 * topology workloads.
 */
#ifndef ALBERTA_BENCHMARKS_OMNETPP_BENCHMARK_H
#define ALBERTA_BENCHMARKS_OMNETPP_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::omnetpp {

/** See file comment. */
class OmnetppBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "520.omnetpp_r"; }
    std::string area() const override
    {
        return "Discrete event simulation";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::omnetpp

#endif // ALBERTA_BENCHMARKS_OMNETPP_BENCHMARK_H
