#include "benchmarks/omnetpp/topology.h"

#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::omnetpp {

std::string
Topology::serialize() const
{
    std::ostringstream os;
    os.precision(17); // exact double round trip
    os << "network " << name << '\n';
    os << "nodes " << nodes << '\n';
    for (const Link &l : links) {
        os << "link " << l.a << ' ' << l.b << ' ' << l.delayUs << ' '
           << l.bitsPerUs << '\n';
    }
    return os.str();
}

Topology
Topology::parse(const std::string &text)
{
    Topology t;
    bool sawNetwork = false;
    for (const auto &line : support::split(text, '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        const auto fields = support::splitWhitespace(trimmed);
        if (fields[0] == "network") {
            support::fatalIf(fields.size() != 2, "ned: bad network line");
            t.name = fields[1];
            sawNetwork = true;
        } else if (fields[0] == "nodes") {
            support::fatalIf(fields.size() != 2, "ned: bad nodes line");
            t.nodes = static_cast<int>(support::parseInt(fields[1]));
        } else if (fields[0] == "link") {
            support::fatalIf(fields.size() != 5, "ned: bad link line");
            Link l;
            l.a = static_cast<int>(support::parseInt(fields[1]));
            l.b = static_cast<int>(support::parseInt(fields[2]));
            l.delayUs = support::parseDouble(fields[3]);
            l.bitsPerUs = support::parseDouble(fields[4]);
            support::fatalIf(l.a < 0 || l.a >= t.nodes || l.b < 0 ||
                                 l.b >= t.nodes || l.a == l.b,
                             "ned: link endpoints invalid");
            support::fatalIf(l.bitsPerUs <= 0, "ned: zero bandwidth");
            t.links.push_back(l);
        } else {
            support::fatal("ned: unknown keyword '", fields[0], "'");
        }
    }
    support::fatalIf(!sawNetwork || t.nodes <= 0,
                     "ned: missing network/nodes header");
    return t;
}

bool
Topology::connected() const
{
    if (nodes == 0)
        return false;
    std::vector<std::vector<int>> adj(nodes);
    for (const Link &l : links) {
        adj[l.a].push_back(l.b);
        adj[l.b].push_back(l.a);
    }
    std::vector<bool> seen(nodes, false);
    std::vector<int> stack = {0};
    seen[0] = true;
    int visited = 0;
    while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        ++visited;
        for (const int v : adj[u]) {
            if (!seen[v]) {
                seen[v] = true;
                stack.push_back(v);
            }
        }
    }
    return visited == nodes;
}

namespace {

Topology
base(const std::string &name, int n)
{
    support::fatalIf(n < 2, "topology needs >= 2 nodes");
    Topology t;
    t.name = name;
    t.nodes = n;
    return t;
}

} // namespace

Topology
makeLine(int n)
{
    Topology t = base("line", n);
    for (int i = 0; i + 1 < n; ++i)
        t.links.push_back({i, i + 1, 2.0, 100.0});
    return t;
}

Topology
makeRing(int n)
{
    Topology t = base("ring", n);
    for (int i = 0; i < n; ++i)
        t.links.push_back({i, (i + 1) % n, 2.0, 100.0});
    return t;
}

Topology
makeStar(int n)
{
    Topology t = base("star", n);
    for (int i = 1; i < n; ++i)
        t.links.push_back({0, i, 1.0, 200.0});
    return t;
}

Topology
makeTree(int n)
{
    Topology t = base("tree", n);
    for (int i = 1; i < n; ++i)
        t.links.push_back({(i - 1) / 2, i, 2.0, 150.0});
    return t;
}

Topology
makeRandom(int nodes, int edges, support::Rng &rng)
{
    support::fatalIf(edges < nodes - 1, "random topology needs >= n-1 "
                                        "edges for connectivity");
    Topology t = base("random", nodes);
    // Random spanning tree: attach node i to a random earlier node.
    for (int i = 1; i < nodes; ++i) {
        const int parent = static_cast<int>(rng.below(i));
        t.links.push_back({parent, i, 1.0 + rng.real() * 4.0,
                           50.0 + rng.real() * 200.0});
    }
    // Extra random edges (avoiding self-loops and exact duplicates).
    int extra = edges - (nodes - 1);
    int guard = 0;
    while (extra > 0 && guard < 1000) {
        ++guard;
        const int a = static_cast<int>(rng.below(nodes));
        const int b = static_cast<int>(rng.below(nodes));
        if (a == b)
            continue;
        bool duplicate = false;
        for (const Link &l : t.links) {
            if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
                duplicate = true;
                break;
            }
        }
        if (duplicate)
            continue;
        t.links.push_back({a, b, 1.0 + rng.real() * 4.0,
                           50.0 + rng.real() * 200.0});
        --extra;
    }
    return t;
}

} // namespace alberta::omnetpp
