/**
 * @file
 * Discrete-event packet-network simulator for the 520.omnetpp_r
 * mini-benchmark: a future-event set (binary heap), per-node traffic
 * sources, shortest-path routing, and store-and-forward links with
 * finite queues — the same event-dispatch-heavy, pointer-chasing
 * pattern as OMNeT++.
 */
#ifndef ALBERTA_BENCHMARKS_OMNETPP_SIM_H
#define ALBERTA_BENCHMARKS_OMNETPP_SIM_H

#include <cstdint>
#include <vector>

#include "benchmarks/omnetpp/topology.h"
#include "runtime/context.h"
#include "support/rng.h"

namespace alberta::omnetpp {

/** Simulation configuration (the .ini file's knobs). */
struct SimConfig
{
    double simTimeUs = 50000.0;    //!< simulated time horizon
    double meanInterarrivalUs = 60; //!< per-node packet interarrival
    int packetBits = 4096;          //!< packet size
    int queueLimit = 64;            //!< per-link queue capacity
    std::uint64_t seed = 1;
};

/** Aggregate statistics of one simulation run. */
struct SimStats
{
    std::uint64_t eventsProcessed = 0;
    std::uint64_t packetsSent = 0;
    std::uint64_t packetsDelivered = 0;
    std::uint64_t packetsDropped = 0;
    std::uint64_t totalHops = 0;
    double totalLatencyUs = 0.0;

    /** Mean end-to-end latency of delivered packets. */
    double
    meanLatencyUs() const
    {
        return packetsDelivered
                   ? totalLatencyUs / packetsDelivered
                   : 0.0;
    }
};

/** The simulator. */
class Simulator
{
  public:
    Simulator(const Topology &topology, const SimConfig &config);

    /** Run until the time horizon, reporting micro-ops via @p ctx. */
    SimStats run(runtime::ExecutionContext &ctx);

    /** Shortest-path next hop from @p from toward @p to (testing). */
    int nextHop(int from, int to) const;

  private:
    enum class EventKind : std::uint8_t
    {
        Generate,   //!< node creates a new packet
        Arrival,    //!< packet arrives at a node
        LinkFree,   //!< link finished transmitting
    };

    struct Packet
    {
        int src = 0;
        int dst = 0;
        int hops = 0;
        double bornUs = 0.0;
    };

    struct Event
    {
        double timeUs = 0.0;
        EventKind kind = EventKind::Generate;
        int node = 0;     //!< Generate/Arrival location
        int link = -1;    //!< LinkFree: directed link index
        std::int32_t packet = -1; //!< packet pool index

        bool
        operator>(const Event &o) const
        {
            return timeUs > o.timeUs;
        }
    };

    struct DirectedLink
    {
        int to = 0;
        int reverse = 0; //!< paired directed link
        double delayUs = 0.0;
        double bitsPerUs = 0.0;
        bool busy = false;
        std::vector<std::int32_t> queue; //!< FIFO of packet indices
    };

    void schedule(const Event &event);
    void startTransmission(int link, runtime::ExecutionContext &ctx);
    void computeRoutes();

    const Topology &topology_;
    SimConfig config_;
    support::Rng rng_;

    std::vector<std::vector<int>> outLinks_; //!< per node
    std::vector<DirectedLink> links_;
    std::vector<std::vector<int>> nextHop_;  //!< [from][dst] link idx
    std::vector<Packet> packets_;
    std::vector<Event> heap_;
    SimStats stats_;
    double currentTime_ = 0.0;
};

} // namespace alberta::omnetpp

#endif // ALBERTA_BENCHMARKS_OMNETPP_SIM_H
