#include "benchmarks/nab/forcefield.h"

#include <cmath>
#include <sstream>

#include "support/check.h"
#include "support/text.h"

namespace alberta::nab {

std::string
Molecule::serializePdb() const
{
    std::ostringstream os;
    os.precision(6);
    os << std::fixed;
    for (std::size_t i = 0; i < atoms.size(); ++i) {
        const Atom &a = atoms[i];
        os << "ATOM " << i << ' ' << a.element << ' '
           << a.position[0] << ' ' << a.position[1] << ' '
           << a.position[2] << ' ' << a.charge << ' ' << a.mass
           << '\n';
    }
    for (std::size_t b = 0; b < bonds.size(); ++b) {
        os << "CONECT " << bonds[b][0] << ' ' << bonds[b][1] << ' '
           << restLengths[b] << '\n';
    }
    os << "END\n";
    return os.str();
}

Molecule
Molecule::parsePdb(const std::string &text)
{
    Molecule mol;
    for (const auto &line : support::split(text, '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty() || trimmed == "END")
            continue;
        const auto fields = support::splitWhitespace(trimmed);
        if (fields[0] == "ATOM") {
            support::fatalIf(fields.size() != 8,
                             "pdb: malformed ATOM record");
            Atom a;
            a.element = fields[2][0];
            a.position = {support::parseDouble(fields[3]),
                          support::parseDouble(fields[4]),
                          support::parseDouble(fields[5])};
            a.charge = support::parseDouble(fields[6]);
            a.mass = support::parseDouble(fields[7]);
            support::fatalIf(a.mass <= 0, "pdb: nonpositive mass");
            mol.atoms.push_back(a);
        } else if (fields[0] == "CONECT") {
            support::fatalIf(fields.size() != 4,
                             "pdb: malformed CONECT record");
            const int i = static_cast<int>(
                support::parseInt(fields[1]));
            const int j = static_cast<int>(
                support::parseInt(fields[2]));
            support::fatalIf(
                i < 0 || j < 0 ||
                    i >= static_cast<int>(mol.atoms.size()) ||
                    j >= static_cast<int>(mol.atoms.size()) ||
                    i == j,
                "pdb: bond endpoints invalid");
            mol.bonds.push_back({i, j});
            mol.restLengths.push_back(
                support::parseDouble(fields[3]));
        } else {
            support::fatal("pdb: unknown record '", fields[0], "'");
        }
    }
    support::fatalIf(mol.atoms.empty(), "pdb: no atoms");
    return mol;
}

std::string
PrmConfig::serialize() const
{
    std::ostringstream os;
    os.precision(17);
    os << "steps " << steps << '\n';
    os << "dt " << dt << '\n';
    os << "cutoff " << cutoff << '\n';
    os << "dielectric " << dielectric << '\n';
    os << "bond_k " << bondK << '\n';
    return os.str();
}

PrmConfig
PrmConfig::parse(const std::string &text)
{
    PrmConfig cfg;
    for (const auto &line : support::split(text, '\n')) {
        const auto trimmed = support::trim(line);
        if (trimmed.empty())
            continue;
        const auto fields = support::splitWhitespace(trimmed);
        support::fatalIf(fields.size() != 2, "prm: malformed line");
        if (fields[0] == "steps")
            cfg.steps = static_cast<int>(
                support::parseInt(fields[1]));
        else if (fields[0] == "dt")
            cfg.dt = support::parseDouble(fields[1]);
        else if (fields[0] == "cutoff")
            cfg.cutoff = support::parseDouble(fields[1]);
        else if (fields[0] == "dielectric")
            cfg.dielectric = support::parseDouble(fields[1]);
        else if (fields[0] == "bond_k")
            cfg.bondK = support::parseDouble(fields[1]);
        else
            support::fatal("prm: unknown key '", fields[0], "'");
    }
    support::fatalIf(cfg.dt <= 0 || cfg.cutoff <= 0,
                     "prm: nonpositive dt/cutoff");
    return cfg;
}

Simulation::Simulation(Molecule molecule, const PrmConfig &config)
    : molecule_(std::move(molecule)), config_(config)
{
    velocities_.assign(molecule_.atoms.size(), {0.0, 0.0, 0.0});
}

double
Simulation::computeForces(std::vector<std::array<double, 3>> &forces,
                          runtime::ExecutionContext &ctx,
                          std::uint64_t *pairs) const
{
    auto &m = ctx.machine();
    const std::size_t n = molecule_.atoms.size();
    forces.assign(n, {0.0, 0.0, 0.0});
    double potential = 0.0;

    // Bonded terms: harmonic springs along the chain.
    {
        auto scope = ctx.method("nab::bonded_forces", 1800);
        for (std::size_t b = 0; b < molecule_.bonds.size(); ++b) {
            const auto [i, j] = molecule_.bonds[b];
            const double rest = molecule_.restLengths[b];
            double d[3], r2 = 0.0;
            for (int k = 0; k < 3; ++k) {
                d[k] = molecule_.atoms[j].position[k] -
                       molecule_.atoms[i].position[k];
                r2 += d[k] * d[k];
            }
            const double r = std::sqrt(r2);
            const double f = config_.bondK * (r - rest);
            potential += 0.5 * config_.bondK * (r - rest) * (r - rest);
            for (int k = 0; k < 3; ++k) {
                const double fk = f * d[k] / r;
                forces[i][k] += fk;
                forces[j][k] -= fk;
            }
            m.load(0xD00000000ULL + b * 24);
            m.ops(topdown::OpKind::FpMul, 12);
            m.ops(topdown::OpKind::FpDiv, 4);
        }
    }

    // Nonbonded terms: LJ + Coulomb within the cutoff.
    {
        auto scope = ctx.method("nab::nonbonded_forces", 3400);
        const double cutoff2 = config_.cutoff * config_.cutoff;
        const double coulombK = 332.0 / config_.dielectric;
        std::uint64_t count = 0;
        for (std::size_t i = 0; i < n; ++i) {
            m.load(0xD10000000ULL + i * 48);
            for (std::size_t j = i + 1; j < n; ++j) {
                double d[3], r2 = 0.0;
                for (int k = 0; k < 3; ++k) {
                    d[k] = molecule_.atoms[j].position[k] -
                           molecule_.atoms[i].position[k];
                    r2 += d[k] * d[k];
                }
                m.ops(topdown::OpKind::FpMul, 6);
                if (m.branch(1, r2 > cutoff2))
                    continue;
                ++count;
                const Atom &ai = molecule_.atoms[i];
                const Atom &aj = molecule_.atoms[j];
                const double sigma = 0.5 * (ai.sigma + aj.sigma);
                const double eps =
                    std::sqrt(ai.epsilon * aj.epsilon);
                const double s2 = sigma * sigma / r2;
                const double s6 = s2 * s2 * s2;
                const double s12 = s6 * s6;
                const double r = std::sqrt(r2);
                const double lj = 4.0 * eps * (s12 - s6);
                const double coul =
                    coulombK * ai.charge * aj.charge / r;
                potential += lj + coul;
                const double fScalar =
                    (24.0 * eps * (2.0 * s12 - s6) / r2) +
                    coul / r2;
                for (int k = 0; k < 3; ++k) {
                    const double fk = fScalar * d[k];
                    forces[j][k] += fk;
                    forces[i][k] -= fk;
                }
                m.load(0xD10000000ULL + j * 48);
                m.ops(topdown::OpKind::FpMul, 22);
                m.ops(topdown::OpKind::FpDiv, 3);
            }
        }
        if (pairs)
            *pairs += count;
    }
    return potential;
}

MdStats
Simulation::run(runtime::ExecutionContext &ctx)
{
    auto scope = ctx.method("nab::dynamics", 2600);
    const std::size_t n = molecule_.atoms.size();
    std::vector<std::array<double, 3>> forces;
    MdStats stats;
    double potential = computeForces(forces, ctx,
                                     &stats.pairInteractions);

    for (int step = 0; step < config_.steps; ++step) {
        // Velocity Verlet: half-kick, drift, recompute, half-kick.
        for (std::size_t i = 0; i < n; ++i) {
            const double invMass = 1.0 / molecule_.atoms[i].mass;
            for (int k = 0; k < 3; ++k) {
                velocities_[i][k] +=
                    0.5 * config_.dt * forces[i][k] * invMass;
                molecule_.atoms[i].position[k] +=
                    config_.dt * velocities_[i][k];
            }
        }
        potential = computeForces(forces, ctx,
                                  &stats.pairInteractions);
        for (std::size_t i = 0; i < n; ++i) {
            const double invMass = 1.0 / molecule_.atoms[i].mass;
            for (int k = 0; k < 3; ++k) {
                velocities_[i][k] +=
                    0.5 * config_.dt * forces[i][k] * invMass;
            }
        }
    }

    stats.potentialEnergy = potential;
    for (std::size_t i = 0; i < n; ++i) {
        double v2 = 0.0, f2 = 0.0;
        for (int k = 0; k < 3; ++k) {
            v2 += velocities_[i][k] * velocities_[i][k];
            f2 += forces[i][k] * forces[i][k];
        }
        stats.kineticEnergy += 0.5 * molecule_.atoms[i].mass * v2;
        stats.maxForce = std::max(stats.maxForce, std::sqrt(f2));
    }
    ctx.consume(stats.potentialEnergy);
    ctx.consume(stats.pairInteractions);
    return stats;
}

double
Simulation::potentialEnergy(runtime::ExecutionContext &ctx)
{
    std::vector<std::array<double, 3>> forces;
    return computeForces(forces, ctx);
}

Molecule
generateProtein(int residues, std::uint64_t seed)
{
    support::fatalIf(residues < 2, "nab: need >= 2 residues");
    support::Rng rng(seed);
    Molecule mol;

    // Backbone: a smooth self-avoiding-ish random walk, 3.8 A steps.
    std::array<double, 3> pos = {0, 0, 0};
    std::array<double, 3> dir = {1, 0, 0};
    for (int r = 0; r < residues; ++r) {
        Atom backbone;
        backbone.element = 'C';
        backbone.position = pos;
        backbone.charge = 0.0;
        mol.atoms.push_back(backbone);
        const int backboneIdx = static_cast<int>(mol.atoms.size()) - 1;
        if (r > 0) {
            mol.bonds.push_back({backboneIdx - 2, backboneIdx});
            mol.restLengths.push_back(3.8);
        }

        // A side-chain bead: alternating charge pattern plus noise.
        Atom side;
        side.element = rng.chance(0.5) ? 'N' : 'O';
        side.charge = (r % 2 == 0 ? 0.3 : -0.3) +
                      rng.real(-0.1, 0.1);
        side.mass = 14.0;
        side.sigma = 3.0;
        for (int k = 0; k < 3; ++k)
            side.position[k] = pos[k] + rng.real(-1.5, 1.5);
        side.position[1] += 2.0;
        mol.atoms.push_back(side);
        mol.bonds.push_back({backboneIdx,
                             static_cast<int>(mol.atoms.size()) - 1});
        mol.restLengths.push_back(2.2);

        // Advance the backbone direction with bounded curvature.
        for (int k = 0; k < 3; ++k)
            dir[k] += rng.real(-0.4, 0.4);
        double norm = std::sqrt(dir[0] * dir[0] + dir[1] * dir[1] +
                                dir[2] * dir[2]);
        if (norm < 1e-9) {
            dir = {1, 0, 0};
            norm = 1.0;
        }
        for (int k = 0; k < 3; ++k) {
            dir[k] /= norm;
            pos[k] += 3.8 * dir[k];
        }
    }
    return mol;
}

} // namespace alberta::nab
