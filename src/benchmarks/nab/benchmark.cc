#include "benchmarks/nab/benchmark.h"

#include "benchmarks/nab/forcefield.h"
#include "support/check.h"

namespace alberta::nab {

namespace {

runtime::Workload
makeWorkload(const std::string &name, std::uint64_t seed, int residues,
             const PrmConfig &prm)
{
    runtime::Workload w;
    w.name = name;
    w.seed = seed;
    w.params.set("residues", static_cast<long long>(residues));
    w.files["protein.pdb"] =
        generateProtein(residues, seed).serializePdb();
    w.files["config.prm"] = prm.serialize();
    return w;
}

} // namespace

std::vector<runtime::Workload>
NabBenchmark::workloads() const
{
    std::vector<runtime::Workload> out;

    PrmConfig refPrm;
    refPrm.steps = 12;
    out.push_back(makeWorkload("refrate", 0x544F, 200, refPrm));

    PrmConfig trainPrm = refPrm;
    trainPrm.steps = 4;
    out.push_back(makeWorkload("train", 0x5441, 60, trainPrm));

    PrmConfig testPrm = refPrm;
    testPrm.steps = 2;
    out.push_back(makeWorkload("test", 0x5442, 20, testPrm));

    // Seven distinct "proteins" (Section IV-B) plus a parameter
    // variation: sizes and prm knobs vary per workload.
    const int sizes[8] = {40, 65, 80, 95, 120, 140, 70, 100};
    for (int i = 0; i < 8; ++i) {
        PrmConfig prm = refPrm;
        prm.steps = 6 + (i % 3) * 4;
        prm.cutoff = 7.0 + (i % 4) * 2.0;
        prm.dielectric = i % 2 == 0 ? 1.0 : 4.0;
        out.push_back(makeWorkload(
            "alberta.protein-" + std::to_string(i + 1),
            0x5440A0 + i, sizes[i], prm));
    }
    return out;
}

void
NabBenchmark::run(const runtime::Workload &workload,
                  runtime::ExecutionContext &context) const
{
    Molecule molecule;
    PrmConfig prm;
    {
        auto scope = context.method("nab::read_pdb", 1600);
        molecule = Molecule::parsePdb(workload.file("protein.pdb"));
        prm = PrmConfig::parse(workload.file("config.prm"));
        context.machine().stream(
            topdown::OpKind::Load, 0xD20000000ULL,
            workload.file("protein.pdb").size() / 16 + 1, 16);
    }
    Simulation simulation(std::move(molecule), prm);
    const MdStats stats = simulation.run(context);
    support::fatalIf(!(stats.maxForce < 1e9),
                     "nab: forces diverged on '", workload.name, "'");
    context.consume(stats.kineticEnergy);
}

double
NabBenchmark::costHint(const runtime::Workload &workload) const
{
    // Nonbonded pair interactions dominate: quadratic in residues.
    const double residues = static_cast<double>(
        workload.params.getInt("residues", 0));
    return 200.0 * residues * residues;
}

} // namespace alberta::nab
