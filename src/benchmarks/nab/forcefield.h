/**
 * @file
 * Molecular-mechanics kernel for the 544.nab_r mini-benchmark:
 * simplified PDB structures, a bonded + Lennard-Jones + Coulomb force
 * field with cutoff, and velocity-Verlet dynamics.
 */
#ifndef ALBERTA_BENCHMARKS_NAB_FORCEFIELD_H
#define ALBERTA_BENCHMARKS_NAB_FORCEFIELD_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/context.h"
#include "support/rng.h"

namespace alberta::nab {

/** One atom. */
struct Atom
{
    std::array<double, 3> position = {};
    double charge = 0.0;
    double mass = 12.0;
    double sigma = 3.4;   //!< LJ diameter (angstrom)
    double epsilon = 0.1; //!< LJ well depth
    char element = 'C';
};

/** A molecule: atoms plus a chain of bonds. */
struct Molecule
{
    std::vector<Atom> atoms;
    /** Bonded pairs (indices) with rest lengths. */
    std::vector<std::array<int, 2>> bonds;
    std::vector<double> restLengths;

    /** Serialize ATOM/CONECT records (simplified PDB). */
    std::string serializePdb() const;

    /** Parse the simplified PDB format. */
    static Molecule parsePdb(const std::string &text);
};

/** Force-field / dynamics parameters (the .prm file). */
struct PrmConfig
{
    int steps = 10;
    double dt = 0.002;
    double cutoff = 9.0;
    double dielectric = 1.0;
    double bondK = 300.0; //!< bond spring constant

    std::string serialize() const;
    static PrmConfig parse(const std::string &text);
};

/** Simulation diagnostics. */
struct MdStats
{
    double potentialEnergy = 0.0;
    double kineticEnergy = 0.0;
    double maxForce = 0.0;
    std::uint64_t pairInteractions = 0;
};

/** Velocity-Verlet molecular dynamics over @p molecule. */
class Simulation
{
  public:
    Simulation(Molecule molecule, const PrmConfig &config);

    /** Run the configured number of steps. */
    MdStats run(runtime::ExecutionContext &ctx);

    /** Current potential energy (testing aid). */
    double potentialEnergy(runtime::ExecutionContext &ctx);

  private:
    double computeForces(std::vector<std::array<double, 3>> &forces,
                         runtime::ExecutionContext &ctx,
                         std::uint64_t *pairs = nullptr) const;

    Molecule molecule_;
    PrmConfig config_;
    std::vector<std::array<double, 3>> velocities_;
};

/**
 * Generate a protein-like chain of @p residues residues: a smooth
 * random-walk backbone with charged side-chain beads, the stand-in
 * for Brookhaven PDB downloads.
 */
Molecule generateProtein(int residues, std::uint64_t seed);

} // namespace alberta::nab

#endif // ALBERTA_BENCHMARKS_NAB_FORCEFIELD_H
