/**
 * @file
 * The 544.nab_r mini-benchmark: molecular-force simulation over
 * protein-like structures with pdb + prm workload files.
 */
#ifndef ALBERTA_BENCHMARKS_NAB_BENCHMARK_H
#define ALBERTA_BENCHMARKS_NAB_BENCHMARK_H

#include "runtime/benchmark.h"

namespace alberta::nab {

/** See file comment. */
class NabBenchmark : public runtime::Benchmark
{
  public:
    std::string name() const override { return "544.nab_r"; }
    std::string area() const override
    {
        return "Molecular modeling";
    }
    std::vector<runtime::Workload> workloads() const override;
    void run(const runtime::Workload &workload,
             runtime::ExecutionContext &context) const override;
    double costHint(const runtime::Workload &workload) const override;
};

} // namespace alberta::nab

#endif // ALBERTA_BENCHMARKS_NAB_BENCHMARK_H
