/**
 * @file
 * Method-coverage profiling: the paper's second characterization axis
 * (Section V-C), the fraction of execution spent in each method.
 *
 * Attribution is deterministic: instead of sampling wall time, coverage
 * is measured in accounted pipeline slots from the top-down machine, so
 * the same (benchmark, workload, seed) triple always yields identical
 * coverage vectors. Wall time is still measured separately for the
 * tables that report seconds.
 */
#ifndef ALBERTA_PROFILE_COVERAGE_H
#define ALBERTA_PROFILE_COVERAGE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stats/summary.h"
#include "topdown/machine.h"

namespace alberta::profile {

/** Interns method names to dense ids with per-method code footprints. */
class MethodRegistry
{
  public:
    /**
     * Intern @p name, returning a stable dense id (> 0).
     *
     * @param code_bytes approximate static code size of the method; used
     *        by the top-down model for instruction-cache pressure. The
     *        first interning of a name fixes its code size.
     */
    std::uint32_t intern(std::string_view name,
                         std::uint32_t code_bytes = 1024);

    /** Name of method @p id ("<unattributed>" for id 0). */
    const std::string &name(std::uint32_t id) const;

    /** Declared code footprint of method @p id. */
    std::uint32_t codeBytes(std::uint32_t id) const;

    /** Run-independent identity of method @p id (name hash, computed
     * once at interning so scope switches never re-hash the name). */
    std::uint64_t stableKey(std::uint32_t id) const;

    /** Number of ids in use, including the implicit id 0. */
    std::size_t size() const { return names_.size(); }

  private:
    std::vector<std::string> names_ = {"<unattributed>"};
    std::vector<std::uint32_t> codeBytes_ = {1024};
    std::vector<std::uint64_t> stableKeys_ = {
        std::hash<std::string>{}("<unattributed>")};
    std::unordered_map<std::string, std::uint32_t> index_;
};

class CoverageProfiler;

/** RAII guard that scopes slot attribution to one method. */
class MethodScope
{
  public:
    MethodScope(CoverageProfiler &profiler, std::uint32_t id);
    ~MethodScope();

    MethodScope(const MethodScope &) = delete;
    MethodScope &operator=(const MethodScope &) = delete;

  private:
    CoverageProfiler &profiler_;
};

/**
 * Maintains the active-method stack and reads back per-method coverage
 * fractions from the top-down machine's slot attribution.
 */
class CoverageProfiler
{
  public:
    explicit CoverageProfiler(topdown::Machine &machine);

    /** Enter method @p id; prefer the RAII @ref MethodScope. */
    void push(std::uint32_t id);

    /** Leave the innermost method. */
    void pop();

    /** Per-method fraction of accounted slots, keyed by method name. */
    stats::CoverageMap coverage(const MethodRegistry &registry) const;

    /** Reset the stack (machine state is reset separately). */
    void reset();

  private:
    topdown::Machine &machine_;
    const MethodRegistry *registry_ = nullptr;
    std::vector<std::uint32_t> stack_;

    friend class MethodScope;

  public:
    /** Bind the registry used to resolve code footprints on push. */
    void bindRegistry(const MethodRegistry &registry)
    {
        registry_ = &registry;
    }
};

} // namespace alberta::profile

#endif // ALBERTA_PROFILE_COVERAGE_H
