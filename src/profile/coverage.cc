#include "profile/coverage.h"

#include "support/check.h"

namespace alberta::profile {

std::uint32_t
MethodRegistry::intern(std::string_view name, std::uint32_t code_bytes)
{
    const auto it = index_.find(std::string(name));
    if (it != index_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    codeBytes_.push_back(code_bytes);
    stableKeys_.push_back(std::hash<std::string>{}(names_.back()));
    index_.emplace(names_.back(), id);
    return id;
}

const std::string &
MethodRegistry::name(std::uint32_t id) const
{
    support::panicIf(id >= names_.size(), "method id ", id,
                     " out of range");
    return names_[id];
}

std::uint32_t
MethodRegistry::codeBytes(std::uint32_t id) const
{
    support::panicIf(id >= codeBytes_.size(), "method id ", id,
                     " out of range");
    return codeBytes_[id];
}

std::uint64_t
MethodRegistry::stableKey(std::uint32_t id) const
{
    support::panicIf(id >= stableKeys_.size(), "method id ", id,
                     " out of range");
    return stableKeys_[id];
}

MethodScope::MethodScope(CoverageProfiler &profiler, std::uint32_t id)
    : profiler_(profiler)
{
    profiler_.push(id);
}

MethodScope::~MethodScope()
{
    profiler_.pop();
}

CoverageProfiler::CoverageProfiler(topdown::Machine &machine)
    : machine_(machine)
{
    stack_.push_back(0);
}

void
CoverageProfiler::push(std::uint32_t id)
{
    support::panicIf(registry_ == nullptr,
                     "CoverageProfiler has no bound MethodRegistry");
    stack_.push_back(id);
    machine_.setMethod(id, registry_->codeBytes(id),
                       registry_->stableKey(id));
}

void
CoverageProfiler::pop()
{
    support::panicIf(stack_.size() <= 1, "method scope underflow");
    stack_.pop_back();
    const std::uint32_t id = stack_.back();
    machine_.setMethod(id, registry_ ? registry_->codeBytes(id) : 1024,
                       registry_ ? registry_->stableKey(id) : id);
}

stats::CoverageMap
CoverageProfiler::coverage(const MethodRegistry &registry) const
{
    const auto &perMethod = machine_.perMethod();
    double total = 0.0;
    for (const auto &slots : perMethod)
        total += slots.total();

    stats::CoverageMap out;
    if (total <= 0.0)
        return out;
    for (std::uint32_t id = 0; id < perMethod.size(); ++id) {
        const double t = perMethod[id].total();
        if (t <= 0.0)
            continue;
        const std::string &name =
            id < registry.size() ? registry.name(id) : "<unknown>";
        out[name] += t / total;
    }
    return out;
}

void
CoverageProfiler::reset()
{
    stack_.assign(1, 0);
}

} // namespace alberta::profile
