/**
 * @file
 * Branch direction prediction for the top-down model: a gshare predictor
 * with an optional table of static FDO hints, plus a last-target
 * predictor for indirect branches (virtual dispatch, VM interpreters).
 *
 * The conditional predict-and-update path lives in the header (it runs
 * once per modelled branch), and the indirect-target table is a flat
 * open-addressing map instead of `std::unordered_map` — same outcomes,
 * no per-node allocation or pointer chasing.
 */
#ifndef ALBERTA_TOPDOWN_BRANCH_H
#define ALBERTA_TOPDOWN_BRANCH_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/rng.h"
#include "topdown/flatmap.h"

namespace alberta::topdown {

class BatchedKernel;

/** Static per-site branch hints produced by the FDO optimizer. */
struct BranchHints
{
    /**
     * Site key -> hinted direction. A hinted site bypasses dynamic
     * prediction entirely, modelling a compiler that laid out the code
     * so the hinted direction is the fall-through path.
     */
    std::unordered_map<std::uint64_t, bool> direction;
};

/** gshare conditional-branch predictor (12-bit history, 2-bit counters). */
class BranchPredictor
{
  public:
    BranchPredictor();

    /**
     * Predict and update for one conditional branch.
     *
     * @param site stable identifier of the static branch site
     * @param taken the actual outcome
     * @return true if the prediction was correct
     */
    bool
    conditional(std::uint64_t site, bool taken)
    {
        return conditionalHashed(site, support::mix64(site), taken);
    }

    /**
     * @ref conditional with the site hash precomputed by the caller as
     * `support::mix64(site)`: the batched replay kernel hashes whole
     * blocks of site keys in one vectorizable sweep before probing.
     * Outcomes and state evolution are identical to @ref conditional
     * (which is implemented on top of this).
     */
    bool
    conditionalHashed(std::uint64_t site, std::uint64_t hashed_site,
                      bool taken)
    {
        ++conditionals_;

        if (hints_) {
            const auto it = hints_->direction.find(site);
            if (it != hints_->direction.end()) {
                // Static hint: no dynamic state consulted or trained,
                // the compiler fixed the layout. History still records
                // the outcome so unhinted branches see a consistent
                // context.
                history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                           (kTableSize - 1);
                const bool correct = it->second == taken;
                if (!correct)
                    ++mispredicts_;
                return correct;
            }
        }

        const std::uint64_t index =
            (hashed_site ^ history_) & (kTableSize - 1);
        std::uint8_t &counter = counters_[index];
        const bool predicted = counter >= 2;
        if (taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & (kTableSize - 1);
        const bool correct = predicted == taken;
        if (!correct)
            ++mispredicts_;
        return correct;
    }

    /**
     * @ref conditionalHashed specialized for the batched replay
     * kernel when no FDO hints are installed (the caller must check
     * @ref hints first — this variant never consults the hint table,
     * so the site key is not needed). Table read, counter training,
     * history update, and statistics are expressed with arithmetic
     * selects instead of data-dependent branches: the modelled
     * outcomes are exactly the patterns a host branch predictor
     * cannot learn, so the `if (taken)` / `if (!correct)` pair in the
     * scalar path costs up to two host mispredictions per modelled
     * branch on adversarial workloads. Decisions and state evolution
     * are bit-identical to @ref conditionalHashed.
     */
    bool
    conditionalPrepared(std::uint64_t hashed_site, bool taken)
    {
        ++conditionals_;
        const std::uint64_t index =
            (hashed_site ^ history_) & (kTableSize - 1);
        const std::uint8_t counter = counters_[index];
        const bool predicted = counter >= 2;
        // Saturating increment and decrement are both computed, then
        // one select on `taken` picks the survivor (a cmov, not a
        // jump). Identical saturation behaviour to the scalar ifs.
        const std::uint8_t up =
            counter + static_cast<std::uint8_t>(counter < 3);
        const std::uint8_t down =
            counter - static_cast<std::uint8_t>(counter > 0);
        counters_[index] = taken ? up : down;
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & (kTableSize - 1);
        const bool correct = predicted == taken;
        mispredicts_ += static_cast<std::uint64_t>(!correct);
        return correct;
    }

    /**
     * Predict and update for one indirect branch via a last-target
     * table keyed by site.
     *
     * @return true if the predicted target matched @p target
     */
    bool indirect(std::uint64_t site, std::uint64_t target);

    /**
     * @ref indirect with the history-combined table key and both
     * hashes precomputed: @p key must equal
     * `site ^ indirectHistory() * 0x9e3779b97f4a7c15` at call time,
     * @p key_hash its mix64, and @p target_mix `mix64(target)`. The
     * batched kernel derives keys for a whole block by chaining the
     * history shadow through the trace's targets, then hashes them in
     * bulk; @ref indirect is implemented on top of this.
     */
    bool indirectPrepared(std::uint64_t key, std::uint64_t key_hash,
                          std::uint64_t target,
                          std::uint64_t target_mix);

    /** Current indirect-target history register, public so the batched
     * kernel can seed its per-block key-chaining shadow. */
    std::uint64_t indirectHistory() const { return indirectHistory_; }

    /** Install (or clear, with nullptr) FDO branch hints. */
    void setHints(const BranchHints *hints) { hints_ = hints; }

    /** Currently installed FDO hints (nullptr when none). */
    const BranchHints *hints() const { return hints_; }

    /** Forget all learned state (hints persist). */
    void reset();

    /** Conditional branches observed. */
    std::uint64_t conditionals() const { return conditionals_; }
    /** Conditional mispredictions observed. */
    std::uint64_t mispredicts() const { return mispredicts_; }

    /**
     * Fold the full learned state — gshare counters, histories,
     * indirect-target table, statistics — into @p seed. Equal digests
     * mean identical predictions on every future branch sequence
     * (installed hints are configuration, not learned state, and are
     * not folded). The predictor is copyable, so machine snapshots
     * copy it wholesale.
     */
    std::uint64_t digest(std::uint64_t seed) const;

    /** gshare geometry, public so the segment warm-up planner
     * (UopTrace::planWarmStarts) can mirror the counter indexing and
     * track staleness per table entry. */
    static constexpr int kHistoryBits = 12;
    static constexpr std::size_t kTableSize = std::size_t(1)
                                              << kHistoryBits;

  private:
    /** The batched replay kernel's dense all-branch loop mirrors the
     * gshare registers locally and folds the integer statistics once
     * per block (src/topdown/batched.cc); state evolution is pinned
     * bit-identical by the differential suite. */
    friend class BatchedKernel;

    std::vector<std::uint8_t> counters_;
    /** Indirect-target table indexed by site ^ folded history, so
     * interpreter dispatch loops with repeating opcode patterns are
     * predictable (ITTAGE-like behaviour). */
    FlatKeyMap<std::uint64_t> targets_;
    std::uint64_t history_ = 0;
    std::uint64_t indirectHistory_ = 0;
    std::uint64_t conditionals_ = 0;
    std::uint64_t mispredicts_ = 0;
    const BranchHints *hints_ = nullptr;
};

} // namespace alberta::topdown

#endif // ALBERTA_TOPDOWN_BRANCH_H
